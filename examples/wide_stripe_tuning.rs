//! Wide-stripe tuning: sweep the stripe width k (VAST-style wide stripes
//! motivate the paper) and watch the hardware prefetcher collapse past its
//! stream-table capacity while DIALGA's pipelined software prefetch keeps
//! scaling. Also shows the hill-climbed prefetch distance per point.
//!
//! ```sh
//! cargo run --release --example wide_stripe_tuning
//! ```

use dialga_repro::memsim::MachineConfig;
use dialga_repro::pipeline::cost::CostModel;
use dialga_repro::pipeline::isal::{IsalSource, Knobs};
use dialga_repro::pipeline::layout::StripeLayout;
use dialga_repro::pipeline::run_source;
use dialga_repro::scheduler::DialgaSource;

fn main() {
    let cfg = MachineConfig::pm();
    let (m, block, bytes) = (4usize, 1024u64, 4u64 << 20);
    println!("machine: {}", cfg.digest());
    println!(
        "{:>4}  {:>10} {:>12} {:>8}  {:>10} {:>8}",
        "k", "ISA-L GB/s", "DIALGA GB/s", "gain", "hw pf/MiB", "final d"
    );
    for k in [8usize, 16, 24, 32, 40, 48, 56, 64] {
        let layout = StripeLayout::sized_for(k, m, block, bytes);
        let cost = CostModel::default();

        let mut isal = IsalSource::new(layout, cost, Knobs::default(), 1);
        let r_isal = run_source(&cfg, 1, &mut isal);

        let mut dialga = DialgaSource::new(layout, cost, 1, &cfg);
        dialga.set_sample_interval(50_000.0);
        let r_dialga = run_source(&cfg, 1, &mut dialga);

        let mib = (r_isal.data_bytes as f64 / (1 << 20) as f64).max(1.0);
        println!(
            "{:>4}  {:>10.2} {:>12.2} {:>7.0}%  {:>10.0} {:>8}",
            k,
            r_isal.throughput_gbs(),
            r_dialga.throughput_gbs(),
            100.0 * (r_dialga.throughput_gbs() / r_isal.throughput_gbs() - 1.0),
            r_isal.counters.hw_prefetches as f64 / mib,
            dialga
                .knobs()
                .sw_distance
                .map_or("-".to_string(), |d| d.to_string()),
        );
    }
    println!();
    println!(
        "the ISA-L hw-prefetch column collapses past k = {} (stream-table capacity);",
        cfg.prefetcher.streams
    );
    println!("DIALGA's software prefetch distance adapts with k and keeps wide stripes fast.");
}
