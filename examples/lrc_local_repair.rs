//! LRC local repair: Azure-style LRC(12, 4, 2) on real bytes — a single
//! block failure repairs from its local group (6 reads) instead of a full
//! k-block decode (12 reads), while global parities still cover multi-block
//! failures (§4.1 "Other Coding Tasks").
//!
//! ```sh
//! cargo run --release --example lrc_local_repair
//! ```

use dialga_repro::ec::Lrc;

fn main() {
    let (k, m, l) = (12usize, 4usize, 2usize);
    let lrc = Lrc::new(k, m, l).expect("valid geometry");
    println!(
        "LRC({k},{m},{l}): {} local groups of {} blocks, {} global parities",
        lrc.groups(),
        lrc.group_size(),
        m
    );

    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..2048).map(|j| ((i * 67 + j * 11) % 256) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = lrc.encode_vec(&refs).expect("encode");
    println!(
        "encoded: {} global + {} local parity blocks",
        m,
        parity.len() - m
    );

    // Single failure: block 3 (group 0) -> local repair with k/l reads.
    let lost = 3usize;
    let group = lrc.group_of(lost);
    let gs = lrc.group_size();
    let peers: Vec<&[u8]> = (group * gs..(group + 1) * gs)
        .filter(|&i| i != lost)
        .map(|i| refs[i])
        .collect();
    let repaired = lrc
        .repair_local(lost, &peers, &parity[m + group])
        .expect("local repair");
    assert_eq!(repaired, data[lost]);
    println!(
        "block {lost}: locally repaired from {} peers + 1 local parity ({} reads instead of {k})",
        peers.len(),
        peers.len() + 1
    );

    // Triple failure in one stripe -> global decode path.
    let mut shards: Vec<Option<Vec<u8>>> = data
        .iter()
        .cloned()
        .map(Some)
        .chain(parity.iter().cloned().map(Some))
        .collect();
    shards[0] = None;
    shards[1] = None;
    shards[7] = None;
    lrc.decode(&mut shards).expect("global decode");
    for (i, d) in data.iter().enumerate() {
        assert_eq!(shards[i].as_ref().unwrap(), d);
    }
    println!("triple failure (blocks 0, 1, 7): repaired via global RS decode");
}
