//! PM store advisor: given a stripe geometry, block size, and expected
//! concurrency for a PM-resident store (e.g. a persistent KV cache that
//! erasure-codes its segments), run the simulated testbed and report which
//! encoding strategy to deploy and what DIALGA's coordinator would do.
//!
//! ```sh
//! cargo run --release --example pm_store_advisor -- 28 4 1024 8
//! ```
//! (arguments: k m block_bytes threads — all optional)

use dialga_repro::memsim::MachineConfig;
use dialga_repro::pipeline::cost::CostModel;
use dialga_repro::pipeline::isal::{IsalSource, Knobs};
use dialga_repro::pipeline::layout::StripeLayout;
use dialga_repro::pipeline::run_source;
use dialga_repro::scheduler::coordinator::Coordinator;
use dialga_repro::scheduler::DialgaSource;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(28);
    let m: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let block: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1024);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let cfg = MachineConfig::pm();
    println!(
        "workload: RS({},{k}) {block}B blocks, {threads} writer thread(s)",
        k + m
    );
    println!("machine:  {}", cfg.digest());
    println!();

    // What the coordinator decides statically for this pattern (§4.1).
    let coord = Coordinator::new(k, m, block, threads, &cfg);
    let policy = coord.policy();
    println!("DIALGA initial policy:");
    println!(
        "  hardware prefetcher : {}",
        if policy.hw_suppressed {
            "suppressed (shuffle mapping)"
        } else {
            "on"
        }
    );
    println!("  software prefetch d : {:?}", policy.knobs.sw_distance);
    println!(
        "  XPLine-first dist.  : {:?}",
        policy.knobs.bf_first_distance
    );
    println!("  256B task expansion : {}", policy.knobs.xpline_expand);
    println!("  Eq.(1) max distance : {}", coord.d_max());
    println!();

    // Measure plain ISA-L, ISA-L without prefetching, and DIALGA.
    let bytes = 4 << 20;
    let layout = StripeLayout::sized_for(k, m, block, bytes);
    let cost = CostModel::default();

    let mut isal = IsalSource::new(layout, cost, Knobs::default(), threads);
    let r_isal = run_source(&cfg, threads, &mut isal);

    let mut nopf_cfg = cfg.clone();
    nopf_cfg.prefetcher.enabled = false;
    let mut isal_nopf = IsalSource::new(layout, cost, Knobs::default(), threads);
    let r_nopf = run_source(&nopf_cfg, threads, &mut isal_nopf);

    let mut dialga = DialgaSource::new(layout, cost, threads, &cfg);
    dialga.set_sample_interval(50_000.0);
    let r_dialga = run_source(&cfg, threads, &mut dialga);

    println!("simulated encode throughput:");
    println!(
        "  ISA-L                : {:6.2} GB/s (media amp {:.2}x)",
        r_isal.throughput_gbs(),
        r_isal.counters.media_read_amplification()
    );
    println!(
        "  ISA-L, prefetcher off: {:6.2} GB/s (media amp {:.2}x)",
        r_nopf.throughput_gbs(),
        r_nopf.counters.media_read_amplification()
    );
    println!(
        "  DIALGA               : {:6.2} GB/s (media amp {:.2}x)",
        r_dialga.throughput_gbs(),
        r_dialga.counters.media_read_amplification()
    );
    println!();

    if let Some(coord) = dialga.coordinator() {
        let log = coord.policy_log();
        if !log.is_empty() {
            println!(
                "coordinator activity ({} samples, {} policy changes):",
                coord.samples(),
                log.len()
            );
            for (t, p) in log.iter().take(6) {
                println!(
                    "  t={:7.0}us  d={:?} first={:?} shuffle={} expand={} contended={}",
                    t / 1000.0,
                    p.knobs.sw_distance,
                    p.knobs.bf_first_distance,
                    p.knobs.shuffle,
                    p.knobs.xpline_expand,
                    p.pressure.contended,
                );
            }
            if log.len() > 6 {
                println!("  ... {} more", log.len() - 6);
            }
            println!();
        }
    }

    let best = r_dialga
        .throughput_gbs()
        .max(r_isal.throughput_gbs())
        .max(r_nopf.throughput_gbs());
    let gain = 100.0 * (r_dialga.throughput_gbs() / r_isal.throughput_gbs() - 1.0);
    if (r_dialga.throughput_gbs() - best).abs() < 1e-9 {
        println!("recommendation: deploy DIALGA ({gain:+.0}% vs plain ISA-L)");
    } else {
        println!("recommendation: plain ISA-L is already optimal for this point");
    }
    if k > cfg.prefetcher.streams {
        println!("note: k = {k} exceeds the {}-stream prefetcher table — the HW prefetcher is self-disabled here, software prefetching is doing the work", cfg.prefetcher.streams);
    }
    if threads > 12 {
        println!("note: {threads} threads exceed the PM read-buffer budget (Eq. 1) — DIALGA is running with suppressed HW prefetch and 256B task expansion");
    }
}
