//! Quickstart: encode, corrupt, and repair data with the DIALGA coder.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This exercises the *functional* API on real bytes: a DIALGA encoder is
//! a table-driven Reed–Solomon coder whose kernels are row-pipelined with
//! software prefetch hints (the paper's Fig. 9 mechanism). Output is
//! bit-exact with plain Reed–Solomon.

use dialga_repro::scheduler::encoder::{Dialga, DialgaOptions};

fn main() {
    // RS(16, 12): 12 data blocks, 4 parity blocks -> tolerates any 4 losses.
    let (k, m) = (12, 4);
    let coder = Dialga::with_options(
        k,
        m,
        DialgaOptions {
            prefetch_distance: Some(2 * k as u32), // or None for d = k
            bf_first_distance: Some(k as u32 + 4), // §4.3 long distance
            shuffle: false,
            ..Default::default()
        },
    )
    .expect("valid geometry");

    // Some application data: 12 blocks of 4 KiB.
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..4096).map(|j| ((i * 131 + j * 7) % 256) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();

    // Encode.
    let parity = coder.encode_vec(&refs).expect("encode");
    println!(
        "encoded {} data blocks + {} parity blocks of {} bytes",
        k,
        m,
        data[0].len()
    );

    // Simulate failures: lose three data blocks and one parity block.
    let mut shards: Vec<Option<Vec<u8>>> = data
        .iter()
        .cloned()
        .map(Some)
        .chain(parity.iter().cloned().map(Some))
        .collect();
    for lost in [2usize, 5, 9, 13] {
        shards[lost] = None;
        println!("lost block {lost}");
    }

    // Repair.
    coder.decode(&mut shards).expect("decode");
    for (i, original) in data.iter().enumerate() {
        assert_eq!(shards[i].as_ref().unwrap(), original, "block {i} mismatch");
    }
    for (i, original) in parity.iter().enumerate() {
        assert_eq!(shards[k + i].as_ref().unwrap(), original);
    }
    println!("all {} blocks repaired bit-exactly", k + m);
}
