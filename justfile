# Developer entry points. `just` is optional — every recipe is a one-line
# shell command you can paste, and scripts/lint.sh works without just.

# Build + tests (tier-1 verify)
test:
    cargo build --release && cargo test -q --workspace

# Formatting + clippy + dialga-lint, hard-failing (tier-1.5 verify)
lint:
    sh scripts/lint.sh

# Self-tests of the in-tree static analyzer (fixtures + live-workspace scan)
lint-fixtures:
    cargo test -q -p dialga-lint

# Full seeded interleaving sweep: every dialga-race model (pool latch,
# heal/respawn, DRR admission, lock order) across 1000 PCT schedules per
# seed, plus the bounded-exhaustive and PR 3 bug-model self-tests.
# Deterministic; RACE_SCHEDULES overrides the budget.
race:
    RACE_SCHEDULES=1000 cargo test -q -p dialga-race

# Fixed-seed chaos smoke: seeded fault plans through the self-healing
# pool plus the stripe-integrity suite (deterministic, <= 5 s)
chaos:
    cargo test -q --test chaos --test integrity

# Crash-point recovery sweep: exhaustive persist-boundary enumeration on
# (4,2) plus seeded random crash sweeps on (6,3)/(10,4). Deterministic;
# CRASH_SEEDS widens the random sweeps.
crash:
    CRASH_SEEDS=16 cargo test -q --test crash

# Figure tables (see crates/bench/src/bin)
figures:
    cargo run --release -p dialga-bench --bin all_figures

# Dispatch ablation for the persistent encode pool
pool:
    cargo run --release -p dialga-bench --bin pool -- --quick

# Repair-path smoke: simulated + host repair tables and the pool-decode
# dispatch ablation, on tiny inputs
repair-bench:
    cargo run --release -p dialga-bench --bin repair_path -- --quick
    cargo run --release -p dialga-bench --bin pool_decode -- --quick

# Host microbenchmarks (in-tree harness, no external deps)
bench:
    cargo bench -p dialga-bench

# Kernel-fusion ablation (fused vs per-row GF dot-product), full sweep,
# committed as BENCH_PR4.json
kernel-bench:
    cargo run --release -p dialga-bench --bin kernel_fusion -- --json BENCH_PR4.json

# Sharded stripe-service load generator: closed-loop mixed
# encode/decode/repair over a 1→8 shard sweep, committed as BENCH_PR6.json
service-bench:
    cargo run --release -p dialga-bench --bin service_bench -- --json BENCH_PR6.json

# Trace-driven production workload replay: steady / skewed+bursty /
# chaos-armed profiles plus the raw-pool baseline, committed as
# BENCH_PR7.json (the artifact self-validates before it is written)
workload-bench:
    cargo run --release -p dialga-bench --features fault-injection --bin workload_bench -- --json BENCH_PR7.json

# XOR-schedule optimizer over the code zoo: naive vs optimized schedules
# through the tiled executor, fused-RS reference for MDS families,
# committed as BENCH_PR9.json
xor-bench:
    cargo run --release -p dialga-bench --bin xor_opt -- --json BENCH_PR9.json

# Seeded power-fail sweeps over the journaled stripe store: timed
# recovery (commit-table walk + boot scrub) per crash, roll tallies,
# committed as BENCH_PR10.json (self-validated before the write; the
# gate hard-fails any torn-hybrid recovery)
recovery-bench:
    cargo run --release -p dialga-bench --bin recovery_bench -- --json BENCH_PR10.json

# Cross-PR latency/throughput trajectory over every committed
# BENCH_PRn.json; exits non-zero on any schema drift
trajectory:
    cargo run --release -p dialga-bench --bin trajectory
