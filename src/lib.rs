#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Facade crate for the DIALGA reproduction workspace.
//!
//! Re-exports the public surfaces of every sub-crate so examples and
//! integration tests can use a single dependency:
//!
//! * [`gf`] — GF(2^8) arithmetic and slice kernels.
//! * [`ec`] — Reed–Solomon, XOR-bitmatrix, and LRC codes (plus the
//!   Zerasure/Cerasure-style baselines and decompose strategy).
//! * [`memsim`] — the persistent-memory + cache-hierarchy + hardware
//!   prefetcher simulator that substitutes for Optane hardware.
//! * [`pipeline`] — access-pattern generators and the timed executor that
//!   couples coding strategies to the simulator.
//! * [`scheduler`] — the DIALGA adaptive prefetcher scheduler itself
//!   (coordinator, lightweight operator, buffer-friendly prefetch).
//! * [`service`] — the sharded stripe-service front end (bounded
//!   admission, tenant-fair scheduling, fused batch dispatch).
//! * [`store`] — the journaled stripe store (shadow-write + atomic
//!   commit record, crash recovery, boot scrub).

pub mod archive;

pub use dialga as scheduler;
pub use dialga_ec as ec;
pub use dialga_gf as gf;
pub use dialga_memsim as memsim;
pub use dialga_pipeline as pipeline;
pub use dialga_service as service;
pub use dialga_store as store;
