//! `dialga` — erasure-coded file archives from the command line.
//!
//! ```text
//! dialga encode <file> [--out DIR] [--k N] [--m N] [--threads N] [--shards N]
//! dialga verify <manifest.dialga>
//! dialga repair <manifest.dialga>
//! dialga restore <manifest.dialga> [--out FILE]
//! ```
//!
//! `--shards N` routes the encode through the sharded stripe service
//! (N shards, each with its own pool and coordinator) instead of the
//! direct parallel encoder.

use dialga_repro::archive;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dialga encode <file> [--out DIR] [--k N] [--m N] [--threads N] [--shards N]\n  dialga verify <manifest.dialga>\n  dialga repair <manifest.dialga>\n  dialga restore <manifest.dialga> [--out FILE]"
    );
    ExitCode::from(2)
}

fn flag(args: &mut Vec<String>, name: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == name)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "encode" => {
            let out = flag(&mut args, "--out").map(PathBuf::from);
            let k: usize = flag(&mut args, "--k")
                .and_then(|v| v.parse().ok())
                .unwrap_or(8);
            let m: usize = flag(&mut args, "--m")
                .and_then(|v| v.parse().ok())
                .unwrap_or(2);
            let threads: usize = flag(&mut args, "--threads")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            let shards: Option<usize> = flag(&mut args, "--shards").and_then(|v| v.parse().ok());
            let Some(file) = args.first().map(PathBuf::from) else {
                return usage();
            };
            let out_dir = out.unwrap_or_else(|| {
                file.parent()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| ".".into())
            });
            let encoded = match shards {
                Some(n) if n > 0 => archive::encode_file_sharded(&file, &out_dir, k, m, threads, n),
                _ => archive::encode_file(&file, &out_dir, k, m, threads),
            };
            encoded.map(|p| {
                let via = shards
                    .filter(|&n| n > 0)
                    .map(|n| format!(", via {n}-shard service"))
                    .unwrap_or_default();
                println!(
                    "encoded {} -> {} ({} data + {} parity shards{})",
                    file.display(),
                    p.display(),
                    k,
                    m,
                    via
                );
            })
        }
        "verify" => {
            let Some(manifest) = args.first().map(PathBuf::from) else {
                return usage();
            };
            match archive::verify(&manifest) {
                Ok(status) if status.healthy() => {
                    println!("healthy");
                    Ok(())
                }
                Ok(status) => {
                    println!("missing shards: {:?}", status.missing);
                    println!("corrupt shards: {:?}", status.corrupt);
                    if status.unlocalized {
                        println!("corruption detected but not localized by parity");
                    }
                    return ExitCode::FAILURE;
                }
                Err(e) => Err(e),
            }
        }
        "repair" => {
            let Some(manifest) = args.first().map(PathBuf::from) else {
                return usage();
            };
            archive::repair(&manifest).map(|n| println!("rebuilt {n} shard(s)"))
        }
        "restore" => {
            let out = flag(&mut args, "--out").map(PathBuf::from);
            let Some(manifest) = args.first().map(PathBuf::from) else {
                return usage();
            };
            archive::restore(&manifest, out.as_deref())
                .map(|p| println!("restored {}", p.display()))
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
