//! File-level erasure-coded archives: the adoption surface of the
//! functional library.
//!
//! A file is split into `k` equal data shards (zero-padded), `m` parity
//! shards are computed with the DIALGA coder, and a plain-text manifest
//! records the geometry. Any `m` lost or corrupted shard files can be
//! rebuilt; the original file is reassembled from the data shards.
//!
//! Shards are named `<stem>.s000 … <stem>.s<k+m-1>` (data first, then
//! parity) next to the manifest `<stem>.dialga`.

use dialga::encoder::Dialga;
use dialga::parallel::encode_parallel_vec;
use dialga_service::{ServiceConfig, StripeService};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Errors from archive operations.
#[derive(Debug)]
pub enum ArchiveError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Coding-layer failure.
    Ec(dialga_ec::EcError),
    /// Manifest is malformed or inconsistent.
    Manifest(String),
    /// More shards are missing/corrupt than the code can repair.
    Unrecoverable {
        /// Number of unusable shards.
        lost: usize,
        /// Fault tolerance m.
        tolerance: usize,
    },
    /// The stripe service refused or failed a routed request.
    Service(String),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "i/o error: {e}"),
            ArchiveError::Ec(e) => write!(f, "coding error: {e}"),
            ArchiveError::Manifest(m) => write!(f, "bad manifest: {m}"),
            ArchiveError::Unrecoverable { lost, tolerance } => {
                write!(f, "{lost} shards unusable, tolerance is {tolerance}")
            }
            ArchiveError::Service(msg) => write!(f, "service error: {msg}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<io::Error> for ArchiveError {
    fn from(e: io::Error) -> Self {
        ArchiveError::Io(e)
    }
}

impl From<dialga_ec::EcError> for ArchiveError {
    fn from(e: dialga_ec::EcError) -> Self {
        ArchiveError::Ec(e)
    }
}

/// Archive geometry and provenance, stored as `<stem>.dialga`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Data shards.
    pub k: usize,
    /// Parity shards.
    pub m: usize,
    /// Original file length in bytes.
    pub file_len: u64,
    /// Bytes per shard (file_len padded up to a multiple of 64·k, / k).
    pub shard_len: u64,
    /// Original file name (for restore).
    pub file_name: String,
}

impl Manifest {
    fn to_text(&self) -> String {
        format!(
            "dialga-archive v1\nk={}\nm={}\nfile_len={}\nshard_len={}\nfile_name={}\n",
            self.k, self.m, self.file_len, self.shard_len, self.file_name
        )
    }

    fn from_text(text: &str) -> Result<Manifest, ArchiveError> {
        let mut lines = text.lines();
        if lines.next() != Some("dialga-archive v1") {
            return Err(ArchiveError::Manifest("missing header".into()));
        }
        let mut k = None;
        let mut m = None;
        let mut file_len = None;
        let mut shard_len = None;
        let mut file_name = None;
        for line in lines {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            match key {
                "k" => k = value.parse().ok(),
                "m" => m = value.parse().ok(),
                "file_len" => file_len = value.parse().ok(),
                "shard_len" => shard_len = value.parse().ok(),
                "file_name" => file_name = Some(value.to_string()),
                _ => {}
            }
        }
        let manifest = Manifest {
            k: k.ok_or_else(|| ArchiveError::Manifest("missing k".into()))?,
            m: m.ok_or_else(|| ArchiveError::Manifest("missing m".into()))?,
            file_len: file_len.ok_or_else(|| ArchiveError::Manifest("missing file_len".into()))?,
            shard_len: shard_len
                .ok_or_else(|| ArchiveError::Manifest("missing shard_len".into()))?,
            file_name: file_name
                .ok_or_else(|| ArchiveError::Manifest("missing file_name".into()))?,
        };
        if manifest.k == 0 || manifest.m == 0 || manifest.k + manifest.m > 255 {
            return Err(ArchiveError::Manifest("invalid geometry".into()));
        }
        Ok(manifest)
    }

    /// Path of shard `i` (0..k+m) next to the manifest.
    pub fn shard_path(&self, manifest_path: &Path, i: usize) -> PathBuf {
        let stem = manifest_path.with_extension("");
        stem.with_extension(format!("s{i:03}"))
    }

    /// Load from disk.
    pub fn load(path: &Path) -> Result<Manifest, ArchiveError> {
        Manifest::from_text(&fs::read_to_string(path)?)
    }
}

/// Read and zero-pad `input` so it splits into `k` equal 64 B-aligned
/// shards; returns `(padded_bytes, file_len, shard_len)`.
fn read_padded(input: &Path, k: usize) -> Result<(Vec<u8>, u64, u64), ArchiveError> {
    let bytes = fs::read(input)?;
    let file_len = bytes.len() as u64;
    // Shards are 64 B-aligned so the kernels stay on full rows.
    let shard_len = (file_len.div_ceil(k as u64)).next_multiple_of(64).max(64);
    let mut padded = bytes;
    padded.resize((shard_len * k as u64) as usize, 0);
    Ok((padded, file_len, shard_len))
}

/// The manifest describing `input` encoded at the given geometry.
fn manifest_for(input: &Path, k: usize, m: usize, file_len: u64, shard_len: u64) -> Manifest {
    Manifest {
        k,
        m,
        file_len,
        shard_len,
        file_name: input
            .file_name()
            .and_then(|s| s.to_str())
            .unwrap_or("archive")
            .to_string(),
    }
}

/// Write `bytes` to `path` atomically: write a sibling `.tmp` file, then
/// `rename` over the target (atomic on POSIX). A failure at any point
/// removes the temp, so a crashed or failed write never leaves a
/// partially-written file under the real name.
fn write_file_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let result = fs::write(&tmp, bytes).and_then(|()| fs::rename(&tmp, path));
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Write all data and parity shard files, then the manifest; returns the
/// manifest path.
///
/// Commit ordering mirrors the stripe store: every shard lands (each one
/// atomically, temp + rename) *before* the manifest appears, and the
/// manifest itself is the atomic commit record — a reader either sees a
/// complete archive or no archive. Any failure rolls the already-written
/// shards back, so a failed encode leaves the output directory as it
/// found it instead of a truncated archive a later read would trust.
fn write_archive(
    out_dir: &Path,
    manifest: &Manifest,
    data: &[&[u8]],
    parity: &[Vec<u8>],
) -> Result<PathBuf, ArchiveError> {
    fs::create_dir_all(out_dir)?;
    let stem = Path::new(&manifest.file_name)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("archive");
    let manifest_path = out_dir.join(format!("{stem}.dialga"));
    let shard_files: Vec<(PathBuf, &[u8])> = data
        .iter()
        .copied()
        .chain(parity.iter().map(|p| p.as_slice()))
        .enumerate()
        .map(|(i, bytes)| (manifest.shard_path(&manifest_path, i), bytes))
        .collect();
    let mut written: Vec<&Path> = Vec::with_capacity(shard_files.len());
    let mut failure: Option<io::Error> = None;
    for (path, bytes) in &shard_files {
        match write_file_atomic(path, bytes) {
            Ok(()) => written.push(path),
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }
    if failure.is_none() {
        failure = write_file_atomic(&manifest_path, manifest.to_text().as_bytes()).err();
    }
    if let Some(e) = failure {
        for path in written {
            let _ = fs::remove_file(path);
        }
        return Err(e.into());
    }
    Ok(manifest_path)
}

/// Encode `input` into `k`+`m` shards in `out_dir`; returns the manifest
/// path. `threads` > 1 uses the parallel encoder.
pub fn encode_file(
    input: &Path,
    out_dir: &Path,
    k: usize,
    m: usize,
    threads: usize,
) -> Result<PathBuf, ArchiveError> {
    let (padded, file_len, shard_len) = read_padded(input, k)?;
    let data: Vec<&[u8]> = padded.chunks(shard_len as usize).collect();
    let coder = Dialga::new(k, m)?;
    let parity = if threads > 1 {
        encode_parallel_vec(&coder, &data, threads)?
    } else {
        coder.encode_vec(&data)?
    };
    write_archive(
        out_dir,
        &manifest_for(input, k, m, file_len, shard_len),
        &data,
        &parity,
    )
}

/// Encode `input` through a [`StripeService`] with `shards` shards
/// (`dialga encode --shards N`): the stripe is cut into 64 B-aligned
/// segments and each segment is submitted as an independent encode
/// request, fanned across the shards. Reed–Solomon parity is
/// byte-position-local, so the concatenated segment parity is bit-exact
/// with whole-stripe encoding — verified by the end-to-end tests.
pub fn encode_file_sharded(
    input: &Path,
    out_dir: &Path,
    k: usize,
    m: usize,
    threads: usize,
    shards: usize,
) -> Result<PathBuf, ArchiveError> {
    let (padded, file_len, shard_len) = read_padded(input, k)?;
    let data: Vec<&[u8]> = padded.chunks(shard_len as usize).collect();
    let shards = shards.max(1);

    // Enough segments to occupy every shard, each 64 B-aligned.
    let shard_len_us = shard_len as usize;
    let seg_len = shard_len_us
        .div_ceil(shards * 2)
        .next_multiple_of(64)
        .max(64);
    let service = StripeService::new(ServiceConfig {
        shards,
        threads_per_shard: threads.max(1),
        k,
        m,
        block_bytes: seg_len as u64,
        ..ServiceConfig::default()
    })?;

    let mut tickets = Vec::new();
    let mut offset = 0;
    while offset < shard_len_us {
        let end = (offset + seg_len).min(shard_len_us);
        let segment: Vec<Vec<u8>> = data.iter().map(|d| d[offset..end].to_vec()).collect();
        let ticket = service
            .submit_encode(0, segment, None)
            .map_err(|e| ArchiveError::Service(e.to_string()))?;
        tickets.push(ticket);
        offset = end;
    }
    let mut parity: Vec<Vec<u8>> = vec![Vec::with_capacity(shard_len_us); m];
    for ticket in tickets {
        let segment_parity = ticket
            .wait()
            .map_err(|e| ArchiveError::Service(e.to_string()))?;
        for (out, seg) in parity.iter_mut().zip(segment_parity) {
            out.extend_from_slice(&seg);
        }
    }
    write_archive(
        out_dir,
        &manifest_for(input, k, m, file_len, shard_len),
        &data,
        &parity,
    )
}

/// Read all shards; missing or wrong-length files become `None`.
fn read_shards(
    manifest: &Manifest,
    manifest_path: &Path,
) -> Result<Vec<Option<Vec<u8>>>, ArchiveError> {
    let n = manifest.k + manifest.m;
    let mut shards = Vec::with_capacity(n);
    for i in 0..n {
        let path = manifest.shard_path(manifest_path, i);
        match fs::read(&path) {
            Ok(bytes) if bytes.len() as u64 == manifest.shard_len => shards.push(Some(bytes)),
            Ok(_) => shards.push(None), // truncated/corrupt size
            Err(e) if e.kind() == io::ErrorKind::NotFound => shards.push(None),
            Err(e) => return Err(e.into()),
        }
    }
    Ok(shards)
}

/// Status of an archive on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveStatus {
    /// Indices of missing or wrong-sized shard files.
    pub missing: Vec<usize>,
    /// Indices present but scrubbed as byte-corrupted.
    pub corrupt: Vec<usize>,
    /// Parity detected corruption the code cannot pin to specific
    /// shards (too many altered shards, or no spare parity constraint
    /// left next to the missing ones).
    pub unlocalized: bool,
}

impl ArchiveStatus {
    /// True when every shard is present and consistent.
    pub fn healthy(&self) -> bool {
        self.missing.is_empty() && self.corrupt.is_empty() && !self.unlocalized
    }
}

/// A stripe in memory: `None` marks a missing/erased shard.
type Shards = Vec<Option<Vec<u8>>>;

/// Outcome of trial-rebuilding a stripe with a set of shards erased.
enum Rebuild {
    /// Decoded stripe re-verified clean end to end.
    Verified(Shards),
    /// Decoded, but parity still disagrees: the mismatching parity
    /// rows (as shard indices) are the evidence.
    Tainted(Vec<usize>),
}

/// Erase `erase`, decode, and re-verify the full stripe. Never writes.
fn rebuild_verified(
    coder: &Dialga,
    shards: &[Option<Vec<u8>>],
    erase: &[usize],
) -> Result<Rebuild, ArchiveError> {
    let mut trial: Vec<Option<Vec<u8>>> = shards.to_vec();
    for &i in erase {
        trial[i] = None;
    }
    coder.decode(&mut trial)?;
    let k = coder.params().k;
    let refs: Vec<&[u8]> = trial
        .iter()
        .map(|s| s.as_ref().unwrap().as_slice())
        .collect();
    match coder.verify(&refs[..k], &refs[k..]) {
        Ok(()) => Ok(Rebuild::Verified(trial)),
        Err(dialga_ec::EcError::Corrupt { shards: rows }) => Ok(Rebuild::Tainted(rows)),
        Err(e) => Err(e.into()),
    }
}

/// Verify an archive: all shards present and parity consistent.
///
/// With every shard on disk this runs the full `Dialga::scrub`, so a
/// single altered shard — data *or* parity — is named exactly. With
/// shards missing (but recoverable) the survivors are integrity-checked
/// by a trial decode plus full-stripe re-verify; corruption found that
/// way is reported as `unlocalized` (localization is `repair`'s job).
pub fn verify(manifest_path: &Path) -> Result<ArchiveStatus, ArchiveError> {
    let manifest = Manifest::load(manifest_path)?;
    let shards = read_shards(&manifest, manifest_path)?;
    let missing: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_none()).collect();
    let mut corrupt = Vec::new();
    let mut unlocalized = false;
    if missing.is_empty() {
        let coder = Dialga::new(manifest.k, manifest.m)?;
        let refs: Vec<&[u8]> = shards
            .iter()
            .map(|s| s.as_ref().unwrap().as_slice())
            .collect();
        match coder.scrub(&refs) {
            Ok(bad) => corrupt = bad,
            Err(dialga_ec::EcError::Corrupt { .. }) => unlocalized = true,
            Err(e) => return Err(e.into()),
        }
    } else if missing.len() <= manifest.m {
        let coder = Dialga::new(manifest.k, manifest.m)?;
        if let Rebuild::Tainted(_) = rebuild_verified(&coder, &shards, &missing)? {
            unlocalized = true;
        }
    }
    Ok(ArchiveStatus {
        missing,
        corrupt,
        unlocalized,
    })
}

/// Rebuild missing shard files — and, where parity can localize them,
/// byte-corrupted shard files — in place; returns how many were
/// rewritten.
///
/// Nothing is written unless the repaired stripe re-verifies clean end
/// to end: corruption the code cannot pin down surfaces as
/// [`dialga_ec::EcError::Corrupt`] and leaves the archive untouched,
/// rather than silently folding bad bytes into the rebuilt shards.
pub fn repair(manifest_path: &Path) -> Result<usize, ArchiveError> {
    let manifest = Manifest::load(manifest_path)?;
    let shards = read_shards(&manifest, manifest_path)?;
    let m = manifest.m;
    let missing: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_none()).collect();
    if missing.len() > m {
        return Err(ArchiveError::Unrecoverable {
            lost: missing.len(),
            tolerance: m,
        });
    }
    let coder = Dialga::new(manifest.k, m)?;
    let mut suspects = missing.clone();
    if suspects.is_empty() {
        let refs: Vec<&[u8]> = shards
            .iter()
            .map(|s| s.as_ref().unwrap().as_slice())
            .collect();
        // Err(Corrupt) here means the scrub itself could not localize.
        suspects = coder.scrub(&refs)?;
        if suspects.is_empty() {
            return Ok(0);
        }
    }
    let evidence = match rebuild_verified(&coder, &shards, &suspects)? {
        Rebuild::Verified(trial) => return persist(&manifest, manifest_path, &trial, &suspects),
        Rebuild::Tainted(rows) => rows,
    };
    // A survivor is corrupt alongside the missing shards. Localize by
    // erasing one extra survivor at a time, accepting only a *uniquely*
    // verifying fix — which needs a spare parity constraint, the same
    // `lost + 1 < m` bound as the pool's verified decode.
    if missing.len() + 1 < m {
        let mut fix: Option<(Shards, Vec<usize>)> = None;
        for s in (0..shards.len()).filter(|i| !missing.contains(i)) {
            let mut erase = missing.clone();
            erase.push(s);
            erase.sort_unstable();
            if let Rebuild::Verified(trial) = rebuild_verified(&coder, &shards, &erase)? {
                if fix.is_some() {
                    fix = None; // ambiguous — refuse rather than guess
                    break;
                }
                fix = Some((trial, erase));
            }
        }
        if let Some((trial, rebuilt)) = fix {
            return persist(&manifest, manifest_path, &trial, &rebuilt);
        }
    }
    Err(dialga_ec::EcError::Corrupt { shards: evidence }.into())
}

/// Write the named rebuilt shards of a verified trial stripe to disk.
/// Each shard lands atomically (temp + rename), so an interrupted repair
/// can corrupt no shard it did not fully rebuild.
fn persist(
    manifest: &Manifest,
    manifest_path: &Path,
    trial: &[Option<Vec<u8>>],
    rebuilt: &[usize],
) -> Result<usize, ArchiveError> {
    for &i in rebuilt {
        write_file_atomic(
            &manifest.shard_path(manifest_path, i),
            trial[i].as_ref().unwrap(),
        )?;
    }
    Ok(rebuilt.len())
}

/// Reassemble the original file (repairing first if needed) into
/// `output`, or next to the manifest under the original name.
pub fn restore(manifest_path: &Path, output: Option<&Path>) -> Result<PathBuf, ArchiveError> {
    let manifest = Manifest::load(manifest_path)?;
    repair(manifest_path)?;
    let shards = read_shards(&manifest, manifest_path)?;
    let mut bytes = Vec::with_capacity((manifest.shard_len * manifest.k as u64) as usize);
    for s in shards.iter().take(manifest.k) {
        bytes.extend_from_slice(
            s.as_ref()
                .ok_or_else(|| ArchiveError::Manifest("shard vanished during restore".into()))?,
        );
    }
    bytes.truncate(manifest.file_len as usize);
    let out = output
        .map(Path::to_path_buf)
        .unwrap_or_else(|| manifest_path.with_file_name(&manifest.file_name));
    fs::write(&out, bytes)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("dialga-archive-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_file(dir: &Path, len: usize) -> PathBuf {
        let p = dir.join("sample.bin");
        let bytes: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
        fs::write(&p, bytes).unwrap();
        p
    }

    #[test]
    fn encode_verify_restore_roundtrip() {
        let dir = tmpdir("roundtrip");
        let input = sample_file(&dir, 100_000);
        let manifest = encode_file(&input, &dir, 6, 3, 2).unwrap();
        assert!(verify(&manifest).unwrap().healthy());
        let out = restore(&manifest, Some(&dir.join("restored.bin"))).unwrap();
        assert_eq!(fs::read(&input).unwrap(), fs::read(out).unwrap());
    }

    #[test]
    fn repair_rebuilds_missing_shards() {
        let dir = tmpdir("repair");
        let input = sample_file(&dir, 50_000);
        let manifest_path = encode_file(&input, &dir, 5, 2, 1).unwrap();
        let manifest = Manifest::load(&manifest_path).unwrap();
        // Delete one data + one parity shard.
        fs::remove_file(manifest.shard_path(&manifest_path, 1)).unwrap();
        fs::remove_file(manifest.shard_path(&manifest_path, 6)).unwrap();
        let status = verify(&manifest_path).unwrap();
        assert_eq!(status.missing, vec![1, 6]);
        assert_eq!(repair(&manifest_path).unwrap(), 2);
        assert!(verify(&manifest_path).unwrap().healthy());
        let out = restore(&manifest_path, Some(&dir.join("r.bin"))).unwrap();
        assert_eq!(fs::read(&input).unwrap(), fs::read(out).unwrap());
    }

    #[test]
    fn too_many_losses_is_unrecoverable() {
        let dir = tmpdir("unrecoverable");
        let input = sample_file(&dir, 10_000);
        let manifest_path = encode_file(&input, &dir, 4, 2, 1).unwrap();
        let manifest = Manifest::load(&manifest_path).unwrap();
        for i in [0usize, 1, 2] {
            fs::remove_file(manifest.shard_path(&manifest_path, i)).unwrap();
        }
        assert!(matches!(
            repair(&manifest_path),
            Err(ArchiveError::Unrecoverable {
                lost: 3,
                tolerance: 2
            })
        ));
    }

    #[test]
    fn truncated_shard_detected_and_repaired() {
        let dir = tmpdir("truncated");
        let input = sample_file(&dir, 20_000);
        let manifest_path = encode_file(&input, &dir, 4, 2, 1).unwrap();
        let manifest = Manifest::load(&manifest_path).unwrap();
        let victim = manifest.shard_path(&manifest_path, 2);
        fs::write(&victim, b"short").unwrap();
        let status = verify(&manifest_path).unwrap();
        assert_eq!(status.missing, vec![2]);
        repair(&manifest_path).unwrap();
        assert!(verify(&manifest_path).unwrap().healthy());
    }

    #[test]
    fn corrupt_parity_detected() {
        let dir = tmpdir("corrupt");
        let input = sample_file(&dir, 30_000);
        let manifest_path = encode_file(&input, &dir, 4, 2, 1).unwrap();
        let manifest = Manifest::load(&manifest_path).unwrap();
        let victim = manifest.shard_path(&manifest_path, 5); // parity 1
        let mut bytes = fs::read(&victim).unwrap();
        bytes[100] ^= 0xFF;
        fs::write(&victim, bytes).unwrap();
        let status = verify(&manifest_path).unwrap();
        assert_eq!(status.corrupt, vec![5]);
        assert!(!status.healthy());
    }

    #[test]
    fn corrupt_data_shard_localized_and_repaired_in_place() {
        let dir = tmpdir("corrupt-data");
        let input = sample_file(&dir, 40_000);
        let manifest_path = encode_file(&input, &dir, 6, 3, 1).unwrap();
        let manifest = Manifest::load(&manifest_path).unwrap();
        let victim = manifest.shard_path(&manifest_path, 2); // data shard
        let mut bytes = fs::read(&victim).unwrap();
        bytes[3000] ^= 0x40;
        fs::write(&victim, bytes).unwrap();
        // Scrub names the data shard itself, not the parity rows it trips.
        let status = verify(&manifest_path).unwrap();
        assert_eq!(status.corrupt, vec![2]);
        assert!(!status.unlocalized);
        // Repair heals it in place and the restored file is bit-exact.
        assert_eq!(repair(&manifest_path).unwrap(), 1);
        assert!(verify(&manifest_path).unwrap().healthy());
        let out = restore(&manifest_path, Some(&dir.join("r.bin"))).unwrap();
        assert_eq!(fs::read(&input).unwrap(), fs::read(out).unwrap());
    }

    #[test]
    fn corrupt_survivor_next_to_missing_shard_is_repaired() {
        let dir = tmpdir("corrupt-survivor");
        let input = sample_file(&dir, 60_000);
        let manifest_path = encode_file(&input, &dir, 6, 3, 1).unwrap();
        let manifest = Manifest::load(&manifest_path).unwrap();
        fs::remove_file(manifest.shard_path(&manifest_path, 1)).unwrap();
        let victim = manifest.shard_path(&manifest_path, 4);
        let mut bytes = fs::read(&victim).unwrap();
        bytes[10] ^= 0x08;
        fs::write(&victim, bytes).unwrap();
        // verify flags the corruption without pinning it; repair's
        // leave-one-out pass (missing + 1 < m) rebuilds both shards.
        let status = verify(&manifest_path).unwrap();
        assert_eq!(status.missing, vec![1]);
        assert!(status.unlocalized);
        assert_eq!(repair(&manifest_path).unwrap(), 2);
        assert!(verify(&manifest_path).unwrap().healthy());
        let out = restore(&manifest_path, Some(&dir.join("r.bin"))).unwrap();
        assert_eq!(fs::read(&input).unwrap(), fs::read(out).unwrap());
    }

    #[test]
    fn unlocalizable_corruption_refuses_instead_of_writing_bad_shards() {
        let dir = tmpdir("refuse");
        let input = sample_file(&dir, 30_000);
        let manifest_path = encode_file(&input, &dir, 4, 2, 1).unwrap();
        let manifest = Manifest::load(&manifest_path).unwrap();
        // One missing + one corrupt survivor with m = 2: no spare parity
        // constraint, so localization is impossible.
        fs::remove_file(manifest.shard_path(&manifest_path, 0)).unwrap();
        let victim = manifest.shard_path(&manifest_path, 3);
        let before = fs::read(&victim).unwrap();
        let mut bytes = before.clone();
        bytes[42] ^= 0x01;
        fs::write(&victim, &bytes).unwrap();
        assert!(verify(&manifest_path).unwrap().unlocalized);
        assert!(matches!(
            repair(&manifest_path),
            Err(ArchiveError::Ec(dialga_ec::EcError::Corrupt { .. }))
        ));
        // The corrupt shard is untouched and nothing was rebuilt.
        assert_eq!(fs::read(&victim).unwrap(), bytes);
        assert!(!manifest.shard_path(&manifest_path, 0).exists());
        // restore flows through repair, so it refuses too.
        assert!(restore(&manifest_path, Some(&dir.join("r.bin"))).is_err());
    }

    /// Regression for the partial-output hazard: a mid-write failure used
    /// to leave a manifest pointing at missing/truncated shards, which a
    /// later `verify`/`restore` treated as a real (degraded) archive. Now
    /// the manifest is written last and every file goes temp-then-rename,
    /// so a failed encode leaves no visible archive at all.
    #[test]
    fn failed_encode_leaves_no_visible_archive() {
        let dir = tmpdir("atomic");
        let input = sample_file(&dir, 10_000);
        // Occupy a shard target with a directory: the rename onto it
        // must fail partway through the shard sequence.
        fs::create_dir_all(dir.join("sample.s002")).unwrap();
        assert!(encode_file(&input, &dir, 4, 2, 1).is_err());
        assert!(
            !dir.join("sample.dialga").exists(),
            "failed encode must not publish a manifest"
        );
        // No half-written shards or stray temp files either.
        for entry in fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name().into_string().unwrap();
            assert!(
                name == "sample.bin" || name == "sample.s002",
                "leftover file after failed encode: {name}"
            );
        }
        // With the obstruction gone the same encode succeeds cleanly.
        fs::remove_dir_all(dir.join("sample.s002")).unwrap();
        let manifest = encode_file(&input, &dir, 4, 2, 1).unwrap();
        assert!(verify(&manifest).unwrap().healthy());
    }

    #[test]
    fn tiny_and_empty_files() {
        let dir = tmpdir("tiny");
        for len in [0usize, 1, 63, 64, 65] {
            let p = dir.join(format!("f{len}.bin"));
            fs::write(&p, vec![7u8; len]).unwrap();
            let manifest = encode_file(&p, &dir, 3, 2, 1).unwrap();
            let out = restore(&manifest, Some(&dir.join(format!("o{len}.bin")))).unwrap();
            assert_eq!(fs::read(&p).unwrap(), fs::read(out).unwrap(), "len={len}");
        }
    }

    #[test]
    fn manifest_text_roundtrip() {
        let m = Manifest {
            k: 12,
            m: 4,
            file_len: 123456,
            shard_len: 10304,
            file_name: "video.mp4".into(),
        };
        assert_eq!(Manifest::from_text(&m.to_text()).unwrap(), m);
        assert!(Manifest::from_text("garbage").is_err());
    }
}
