//! File-level erasure-coded archives: the adoption surface of the
//! functional library.
//!
//! A file is split into `k` equal data shards (zero-padded), `m` parity
//! shards are computed with the DIALGA coder, and a plain-text manifest
//! records the geometry. Any `m` lost or corrupted shard files can be
//! rebuilt; the original file is reassembled from the data shards.
//!
//! Shards are named `<stem>.s000 … <stem>.s<k+m-1>` (data first, then
//! parity) next to the manifest `<stem>.dialga`.

use dialga::encoder::Dialga;
use dialga::parallel::encode_parallel_vec;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Errors from archive operations.
#[derive(Debug)]
pub enum ArchiveError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Coding-layer failure.
    Ec(dialga_ec::EcError),
    /// Manifest is malformed or inconsistent.
    Manifest(String),
    /// More shards are missing/corrupt than the code can repair.
    Unrecoverable {
        /// Number of unusable shards.
        lost: usize,
        /// Fault tolerance m.
        tolerance: usize,
    },
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "i/o error: {e}"),
            ArchiveError::Ec(e) => write!(f, "coding error: {e}"),
            ArchiveError::Manifest(m) => write!(f, "bad manifest: {m}"),
            ArchiveError::Unrecoverable { lost, tolerance } => {
                write!(f, "{lost} shards unusable, tolerance is {tolerance}")
            }
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<io::Error> for ArchiveError {
    fn from(e: io::Error) -> Self {
        ArchiveError::Io(e)
    }
}

impl From<dialga_ec::EcError> for ArchiveError {
    fn from(e: dialga_ec::EcError) -> Self {
        ArchiveError::Ec(e)
    }
}

/// Archive geometry and provenance, stored as `<stem>.dialga`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Data shards.
    pub k: usize,
    /// Parity shards.
    pub m: usize,
    /// Original file length in bytes.
    pub file_len: u64,
    /// Bytes per shard (file_len padded up to a multiple of 64·k, / k).
    pub shard_len: u64,
    /// Original file name (for restore).
    pub file_name: String,
}

impl Manifest {
    fn to_text(&self) -> String {
        format!(
            "dialga-archive v1\nk={}\nm={}\nfile_len={}\nshard_len={}\nfile_name={}\n",
            self.k, self.m, self.file_len, self.shard_len, self.file_name
        )
    }

    fn from_text(text: &str) -> Result<Manifest, ArchiveError> {
        let mut lines = text.lines();
        if lines.next() != Some("dialga-archive v1") {
            return Err(ArchiveError::Manifest("missing header".into()));
        }
        let mut k = None;
        let mut m = None;
        let mut file_len = None;
        let mut shard_len = None;
        let mut file_name = None;
        for line in lines {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            match key {
                "k" => k = value.parse().ok(),
                "m" => m = value.parse().ok(),
                "file_len" => file_len = value.parse().ok(),
                "shard_len" => shard_len = value.parse().ok(),
                "file_name" => file_name = Some(value.to_string()),
                _ => {}
            }
        }
        let manifest = Manifest {
            k: k.ok_or_else(|| ArchiveError::Manifest("missing k".into()))?,
            m: m.ok_or_else(|| ArchiveError::Manifest("missing m".into()))?,
            file_len: file_len.ok_or_else(|| ArchiveError::Manifest("missing file_len".into()))?,
            shard_len: shard_len
                .ok_or_else(|| ArchiveError::Manifest("missing shard_len".into()))?,
            file_name: file_name
                .ok_or_else(|| ArchiveError::Manifest("missing file_name".into()))?,
        };
        if manifest.k == 0 || manifest.m == 0 || manifest.k + manifest.m > 255 {
            return Err(ArchiveError::Manifest("invalid geometry".into()));
        }
        Ok(manifest)
    }

    /// Path of shard `i` (0..k+m) next to the manifest.
    pub fn shard_path(&self, manifest_path: &Path, i: usize) -> PathBuf {
        let stem = manifest_path.with_extension("");
        stem.with_extension(format!("s{i:03}"))
    }

    /// Load from disk.
    pub fn load(path: &Path) -> Result<Manifest, ArchiveError> {
        Manifest::from_text(&fs::read_to_string(path)?)
    }
}

/// Encode `input` into `k`+`m` shards in `out_dir`; returns the manifest
/// path. `threads` > 1 uses the parallel encoder.
pub fn encode_file(
    input: &Path,
    out_dir: &Path,
    k: usize,
    m: usize,
    threads: usize,
) -> Result<PathBuf, ArchiveError> {
    let bytes = fs::read(input)?;
    let file_len = bytes.len() as u64;
    // Shards are 64 B-aligned so the kernels stay on full rows.
    let shard_len = (file_len.div_ceil(k as u64)).next_multiple_of(64).max(64);
    let mut padded = bytes;
    padded.resize((shard_len * k as u64) as usize, 0);

    let data: Vec<&[u8]> = padded.chunks(shard_len as usize).collect();
    let coder = Dialga::new(k, m)?;
    let parity = if threads > 1 {
        encode_parallel_vec(&coder, &data, threads)?
    } else {
        coder.encode_vec(&data)?
    };

    fs::create_dir_all(out_dir)?;
    let stem = input
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("archive");
    let manifest = Manifest {
        k,
        m,
        file_len,
        shard_len,
        file_name: input
            .file_name()
            .and_then(|s| s.to_str())
            .unwrap_or("archive")
            .to_string(),
    };
    let manifest_path = out_dir.join(format!("{stem}.dialga"));
    fs::write(&manifest_path, manifest.to_text())?;
    for (i, shard) in data.iter().enumerate() {
        fs::write(manifest.shard_path(&manifest_path, i), shard)?;
    }
    for (i, shard) in parity.iter().enumerate() {
        fs::write(manifest.shard_path(&manifest_path, k + i), shard)?;
    }
    Ok(manifest_path)
}

/// Read all shards; missing or wrong-length files become `None`.
fn read_shards(
    manifest: &Manifest,
    manifest_path: &Path,
) -> Result<Vec<Option<Vec<u8>>>, ArchiveError> {
    let n = manifest.k + manifest.m;
    let mut shards = Vec::with_capacity(n);
    for i in 0..n {
        let path = manifest.shard_path(manifest_path, i);
        match fs::read(&path) {
            Ok(bytes) if bytes.len() as u64 == manifest.shard_len => shards.push(Some(bytes)),
            Ok(_) => shards.push(None), // truncated/corrupt size
            Err(e) if e.kind() == io::ErrorKind::NotFound => shards.push(None),
            Err(e) => return Err(e.into()),
        }
    }
    Ok(shards)
}

/// Status of an archive on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveStatus {
    /// Indices of missing or wrong-sized shard files.
    pub missing: Vec<usize>,
    /// Indices present but failing the parity check.
    pub corrupt: Vec<usize>,
}

impl ArchiveStatus {
    /// True when every shard is present and consistent.
    pub fn healthy(&self) -> bool {
        self.missing.is_empty() && self.corrupt.is_empty()
    }
}

/// Verify an archive: all shards present and parity consistent.
///
/// Corruption localization: if exactly one shard was altered, recomputing
/// parity from data identifies it (any parity mismatch with all data
/// present is reported as corrupt parity; corrupt *data* surfaces as a
/// global mismatch and is reported as such).
pub fn verify(manifest_path: &Path) -> Result<ArchiveStatus, ArchiveError> {
    let manifest = Manifest::load(manifest_path)?;
    let shards = read_shards(&manifest, manifest_path)?;
    let missing: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_none()).collect();
    let mut corrupt = Vec::new();
    if missing.is_empty() {
        let coder = Dialga::new(manifest.k, manifest.m)?;
        let data: Vec<&[u8]> = shards[..manifest.k]
            .iter()
            .map(|s| s.as_ref().unwrap().as_slice())
            .collect();
        let expect = coder.encode_vec(&data)?;
        for (i, p) in expect.iter().enumerate() {
            if shards[manifest.k + i].as_ref().unwrap() != p {
                corrupt.push(manifest.k + i);
            }
        }
    }
    Ok(ArchiveStatus { missing, corrupt })
}

/// Rebuild missing shard files in place; returns how many were rebuilt.
pub fn repair(manifest_path: &Path) -> Result<usize, ArchiveError> {
    let manifest = Manifest::load(manifest_path)?;
    let mut shards = read_shards(&manifest, manifest_path)?;
    let lost: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_none()).collect();
    if lost.is_empty() {
        return Ok(0);
    }
    if lost.len() > manifest.m {
        return Err(ArchiveError::Unrecoverable {
            lost: lost.len(),
            tolerance: manifest.m,
        });
    }
    let coder = Dialga::new(manifest.k, manifest.m)?;
    coder.decode(&mut shards)?;
    for &i in &lost {
        fs::write(
            manifest.shard_path(manifest_path, i),
            shards[i].as_ref().unwrap(),
        )?;
    }
    Ok(lost.len())
}

/// Reassemble the original file (repairing first if needed) into
/// `output`, or next to the manifest under the original name.
pub fn restore(manifest_path: &Path, output: Option<&Path>) -> Result<PathBuf, ArchiveError> {
    let manifest = Manifest::load(manifest_path)?;
    repair(manifest_path)?;
    let shards = read_shards(&manifest, manifest_path)?;
    let mut bytes = Vec::with_capacity((manifest.shard_len * manifest.k as u64) as usize);
    for s in shards.iter().take(manifest.k) {
        bytes.extend_from_slice(
            s.as_ref()
                .ok_or_else(|| ArchiveError::Manifest("shard vanished during restore".into()))?,
        );
    }
    bytes.truncate(manifest.file_len as usize);
    let out = output
        .map(Path::to_path_buf)
        .unwrap_or_else(|| manifest_path.with_file_name(&manifest.file_name));
    fs::write(&out, bytes)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("dialga-archive-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_file(dir: &Path, len: usize) -> PathBuf {
        let p = dir.join("sample.bin");
        let bytes: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
        fs::write(&p, bytes).unwrap();
        p
    }

    #[test]
    fn encode_verify_restore_roundtrip() {
        let dir = tmpdir("roundtrip");
        let input = sample_file(&dir, 100_000);
        let manifest = encode_file(&input, &dir, 6, 3, 2).unwrap();
        assert!(verify(&manifest).unwrap().healthy());
        let out = restore(&manifest, Some(&dir.join("restored.bin"))).unwrap();
        assert_eq!(fs::read(&input).unwrap(), fs::read(out).unwrap());
    }

    #[test]
    fn repair_rebuilds_missing_shards() {
        let dir = tmpdir("repair");
        let input = sample_file(&dir, 50_000);
        let manifest_path = encode_file(&input, &dir, 5, 2, 1).unwrap();
        let manifest = Manifest::load(&manifest_path).unwrap();
        // Delete one data + one parity shard.
        fs::remove_file(manifest.shard_path(&manifest_path, 1)).unwrap();
        fs::remove_file(manifest.shard_path(&manifest_path, 6)).unwrap();
        let status = verify(&manifest_path).unwrap();
        assert_eq!(status.missing, vec![1, 6]);
        assert_eq!(repair(&manifest_path).unwrap(), 2);
        assert!(verify(&manifest_path).unwrap().healthy());
        let out = restore(&manifest_path, Some(&dir.join("r.bin"))).unwrap();
        assert_eq!(fs::read(&input).unwrap(), fs::read(out).unwrap());
    }

    #[test]
    fn too_many_losses_is_unrecoverable() {
        let dir = tmpdir("unrecoverable");
        let input = sample_file(&dir, 10_000);
        let manifest_path = encode_file(&input, &dir, 4, 2, 1).unwrap();
        let manifest = Manifest::load(&manifest_path).unwrap();
        for i in [0usize, 1, 2] {
            fs::remove_file(manifest.shard_path(&manifest_path, i)).unwrap();
        }
        assert!(matches!(
            repair(&manifest_path),
            Err(ArchiveError::Unrecoverable {
                lost: 3,
                tolerance: 2
            })
        ));
    }

    #[test]
    fn truncated_shard_detected_and_repaired() {
        let dir = tmpdir("truncated");
        let input = sample_file(&dir, 20_000);
        let manifest_path = encode_file(&input, &dir, 4, 2, 1).unwrap();
        let manifest = Manifest::load(&manifest_path).unwrap();
        let victim = manifest.shard_path(&manifest_path, 2);
        fs::write(&victim, b"short").unwrap();
        let status = verify(&manifest_path).unwrap();
        assert_eq!(status.missing, vec![2]);
        repair(&manifest_path).unwrap();
        assert!(verify(&manifest_path).unwrap().healthy());
    }

    #[test]
    fn corrupt_parity_detected() {
        let dir = tmpdir("corrupt");
        let input = sample_file(&dir, 30_000);
        let manifest_path = encode_file(&input, &dir, 4, 2, 1).unwrap();
        let manifest = Manifest::load(&manifest_path).unwrap();
        let victim = manifest.shard_path(&manifest_path, 5); // parity 1
        let mut bytes = fs::read(&victim).unwrap();
        bytes[100] ^= 0xFF;
        fs::write(&victim, bytes).unwrap();
        let status = verify(&manifest_path).unwrap();
        assert_eq!(status.corrupt, vec![5]);
        assert!(!status.healthy());
    }

    #[test]
    fn tiny_and_empty_files() {
        let dir = tmpdir("tiny");
        for len in [0usize, 1, 63, 64, 65] {
            let p = dir.join(format!("f{len}.bin"));
            fs::write(&p, vec![7u8; len]).unwrap();
            let manifest = encode_file(&p, &dir, 3, 2, 1).unwrap();
            let out = restore(&manifest, Some(&dir.join(format!("o{len}.bin")))).unwrap();
            assert_eq!(fs::read(&p).unwrap(), fs::read(out).unwrap(), "len={len}");
        }
    }

    #[test]
    fn manifest_text_roundtrip() {
        let m = Manifest {
            k: 12,
            m: 4,
            file_len: 123456,
            shard_len: 10304,
            file_name: "video.mp4".into(),
        };
        assert_eq!(Manifest::from_text(&m.to_text()).unwrap(), m);
        assert!(Manifest::from_text("garbage").is_err());
    }
}
