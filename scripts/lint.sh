#!/usr/bin/env sh
# Tier-1.5 verify: formatting and lints, both hard-failing.
# Run from the repository root (or via `just lint`).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== dialga-lint (unsafe surface, atomic/lock/latch protocols, panic paths, const drift) =="
cargo run -q -p dialga-lint

echo "== race smoke (seeded interleaving models, bounded schedule budget) =="
# Fixed seeds are baked into the models; RACE_SCHEDULES caps the PCT
# sweep per model so the gate stays fast. `just race` runs the full
# 1000-schedule sweep.
RACE_SCHEDULES=64 cargo test -q -p dialga-race

echo "== kernel_fusion smoke (fused/per-row bit-exactness gate) =="
cargo run -q -p dialga-bench --bin kernel_fusion -- --smoke

echo "== xor_opt smoke (schedule optimizer bit-exactness + monotonicity gate) =="
cargo run -q -p dialga-bench --bin xor_opt -- --smoke

echo "== chaos smoke (fixed-seed fault plans + stripe integrity) =="
cargo test -q --test chaos --test integrity

echo "== crash smoke (every (4,2) persist boundary, sampled wide-code sweeps) =="
# Exhaustive enumeration for the smallest code; CRASH_SEEDS stays at its
# small default here. `just crash` runs the widened sweep.
cargo test -q --test crash

echo "== recovery smoke (seeded power-fail + timed reopen, torn-hybrid gate) =="
cargo run -q -p dialga-bench --bin recovery_bench -- --smoke

echo "== workload smoke (trace replay over all profiles, artifact self-check) =="
cargo run -q --release -p dialga-bench --features fault-injection \
    --bin workload_bench -- --smoke --json target/BENCH_SMOKE.json

echo "== trajectory (schema gate over committed BENCH_*.json artifacts) =="
cargo run -q --release -p dialga-bench --bin trajectory

echo "lint OK"
