//! SplitMix64-based pseudo-random generator.
//!
//! SplitMix64 passes BigCrush, needs one u64 of state, and is trivially
//! seedable — exactly what deterministic tests and the annealed matrix
//! search need. It is *not* cryptographic.

/// Deterministic pseudo-random generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed the generator. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        (self.u64() >> 32) as u32
    }

    /// Next uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        (self.u64() >> 56) as u8
    }

    /// Uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in `[0, bound)`. Panics when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Multiply-shift rejection-free mapping (Lemire); the tiny modulo
        // bias is irrelevant for test-case generation.
        ((self.u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`. Panics when the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`. Panics when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform `u32` in `[lo, hi)`. Panics when the range is empty.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Fill `buf` with uniform bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A vector of `len` uniform bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill(&mut v);
        v
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 255, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut rng = Rng::new(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.range(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of [0,4) reachable");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bool_with_respects_probability() {
        let mut rng = Rng::new(9);
        let hits = (0..10_000).filter(|_| rng.bool_with(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
