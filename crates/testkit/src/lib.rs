#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Dependency-free deterministic randomness and a miniature property-test
//! harness.
//!
//! The workspace builds in offline environments, so it cannot pull `rand`
//! or `proptest` from a registry. This crate provides the small slice of
//! their surface the workspace actually uses:
//!
//! * [`Rng`] — a SplitMix64 generator with the usual convenience methods
//!   (uniform integers, ranges, booleans with a probability, f64 in
//!   `[0, 1)`, byte fills, shuffles);
//! * [`run_cases`] — run a closure over `n` independently seeded cases,
//!   reporting the failing case's seed on panic so it can be replayed with
//!   [`Rng::new`].
//!
//! Everything is deterministic: case `i` always sees the same seed, so a
//! failure reproduces without any persisted regression file.

pub mod rng;

pub use rng::Rng;

/// Golden-ratio increment used to derive per-case seeds (SplitMix64's).
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Run `f` over `cases` deterministic cases, each with its own [`Rng`].
///
/// On panic the failing case index and seed are printed so the case can be
/// replayed in isolation with `Rng::new(seed)`.
///
/// # Examples
///
/// ```
/// dialga_testkit::run_cases(32, |rng| {
///     let a = rng.u8();
///     let b = rng.u8();
///     assert_eq!(a ^ b, b ^ a);
/// });
/// ```
pub fn run_cases(cases: u64, mut f: impl FnMut(&mut Rng)) {
    for i in 0..cases {
        let seed = i.wrapping_mul(SEED_STRIDE) ^ 0xD1A1_6A00_0000_0000u64.wrapping_add(i);
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            eprintln!("testkit: case {i}/{cases} failed (replay with Rng::new({seed:#x}))");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        run_cases(8, |rng| first.push(rng.u64()));
        let mut second = Vec::new();
        run_cases(8, |rng| second.push(rng.u64()));
        assert_eq!(first, second);
    }

    #[test]
    fn cases_see_distinct_seeds() {
        let mut draws = Vec::new();
        run_cases(16, |rng| draws.push(rng.u64()));
        draws.sort_unstable();
        draws.dedup();
        assert_eq!(draws.len(), 16, "case seeds must differ");
    }
}
