//! §6 generality: DIALGA's mechanisms target PM's *general* shape — a
//! buffered, high-latency, large-granularity tier — so they also apply to
//! CMM-H-class CXL devices (DRAM-buffered flash). This binary compares
//! ISA-L vs DIALGA on the Optane-like testbed and on the CMM-H-like
//! config, plus the 3rd-gen-Xeon (64-stream prefetcher) variant.

use dialga_bench::table::gbs;
use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;

fn main() {
    let args = Args::parse(4 << 20);
    let mut t = Table::new(
        "generality",
        &["device", "code", "ISA-L", "DIALGA", "dialga_gain"],
    );
    let devices: [(&str, MachineConfig); 3] = [
        ("Optane", MachineConfig::pm()),
        ("CMM-H", MachineConfig::cmm_h()),
        ("Optane-gen3", MachineConfig::gen3()),
    ];
    for (name, cfg) in devices {
        for (k, m) in [(12usize, 4usize), (48, 4)] {
            let mut spec = Spec::new(k, m, 1024, 1, args.bytes_per_thread);
            spec.cfg = cfg.clone();
            let isal = dialga_bench::systems::encode_report(System::Isal, &spec).unwrap();
            let dialga = dialga_bench::systems::encode_report(System::Dialga, &spec).unwrap();
            t.row(vec![
                name.into(),
                format!("RS({},{})", k + m, k),
                gbs(isal.throughput_gbs()),
                gbs(dialga.throughput_gbs()),
                format!(
                    "{:+.1}%",
                    100.0 * (dialga.throughput_gbs() / isal.throughput_gbs() - 1.0)
                ),
            ]);
        }
    }
    t.finish("multiple device configs (see rows)", args.csv);
}
