//! Dispatch ablation for the persistent encode pool (real host, real
//! bytes): per-stripe cost of [`dialga::pool::EncodePool`] versus spawning
//! a fresh set of scoped threads per stripe, at the paper's default 4 KiB
//! block size across thread counts. Both sides chunk and encode
//! identically, so the difference is dispatch overhead alone — the cost
//! the pool exists to remove.

use dialga_bench::systems::dispatch_ablation;
use dialga_bench::{Args, Table};

fn main() {
    // `--bytes` rescales the number of stripes timed per point.
    let args = Args::parse(64 << 20);
    let (k, m, block) = (12usize, 4usize, 4096usize);
    let stripes = (args.bytes_per_thread / (k as u64 * block as u64)).max(10);
    let mut t = Table::new(
        "pool",
        &[
            "threads",
            "pool_ns_per_stripe",
            "spawn_ns_per_stripe",
            "speedup",
        ],
    );
    for threads in [2usize, 4, 8, 16] {
        let r = dispatch_ablation(k, m, block, threads, stripes);
        t.row(vec![
            threads.to_string(),
            format!("{:.0}", r.pool_ns_per_stripe),
            format!("{:.0}", r.spawn_ns_per_stripe),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    t.finish(
        &format!("RS({k},{m}) block={block} stripes={stripes} per point"),
        args.csv,
    );
}
