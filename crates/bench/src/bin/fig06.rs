//! Figure 6: RS(28,24) encoding throughput and PM media read amplification
//! across block sizes, hardware prefetcher on vs off.
//!
//! Paper shape: no prefetcher effect (and no amplification) at ≤512 B;
//! speedup plus 23–37 % amplification at 1–3 KiB; best case at 4 KiB with
//! no amplification (page-clamped prefetching); mixed behaviour at 5 KiB.

use dialga_bench::table::gbs;
use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;

fn main() {
    let args = Args::parse(8 << 20);
    let mut t = Table::new(
        "fig06",
        &[
            "block",
            "pf_on_gbs",
            "pf_off_gbs",
            "media_amp_on",
            "media_amp_off",
        ],
    );
    for block in [256u64, 512, 1024, 2048, 3072, 4096, 5120] {
        let spec = Spec::new(28, 24, block, 1, args.bytes_per_thread);
        let on = dialga_bench::systems::encode_report(System::Isal, &spec).unwrap();
        let off = dialga_bench::systems::encode_report(System::IsalNoPf, &spec).unwrap();
        t.row(vec![
            block.to_string(),
            gbs(on.throughput_gbs()),
            gbs(off.throughput_gbs()),
            format!("{:.2}", on.counters.media_read_amplification()),
            format!("{:.2}", off.counters.media_read_amplification()),
        ]);
    }
    t.finish(&MachineConfig::pm().digest(), args.csv);
}
