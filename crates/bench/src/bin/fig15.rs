//! Figure 15: encoding throughput under AVX512 vs AVX256 (1 KiB blocks).
//!
//! Paper shape: dropping to AVX256 costs ISA-L only 12–24 % (it is
//! memory-latency-bound) but DIALGA 25–31 % (its prefetching exposes the
//! compute); DIALGA still leads ISA-L/Cerasure by 37–104 % under AVX256.
//! Zerasure/Cerasure are AVX256-only, so their columns repeat.

use dialga_bench::table::gbs;
use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;
use dialga_pipeline::cost::Simd;

fn main() {
    let args = Args::parse(4 << 20);
    let mut t = Table::new("fig15", &["code", "simd", "Cerasure", "ISA-L", "DIALGA"]);
    for (k, m) in [(12usize, 8usize), (28, 24)] {
        for simd in [Simd::Avx512, Simd::Avx256] {
            let mut spec = Spec::new(k, m, 1024, 1, args.bytes_per_thread);
            spec.simd = simd;
            let mut row = vec![format!("RS({},{})", k + m, k), format!("{simd:?}")];
            for sys in [System::Cerasure, System::Isal, System::Dialga] {
                row.push(match dialga_bench::systems::encode_report(sys, &spec) {
                    Some(r) => gbs(r.throughput_gbs()),
                    None => "-".into(),
                });
            }
            t.row(row);
        }
    }
    t.finish(&MachineConfig::pm().digest(), args.csv);
}
