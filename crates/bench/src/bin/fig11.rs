//! Figure 11: encoding throughput with different numbers of parity blocks
//! (m ∈ {2,3,4}) for narrow, medium, and wide stripes (1 KiB blocks).
//!
//! Paper shape: Cerasure degrades faster than ISA-L as m grows (XOR
//! schedule complexity is super-linear in m); DIALGA leads by 20–97 % over
//! the best alternative and stays stable on wide stripes.

use dialga_bench::table::gbs;
use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;

fn main() {
    let args = Args::parse(4 << 20);
    let systems = [
        System::Zerasure,
        System::Cerasure,
        System::Isal,
        System::IsalD,
        System::Dialga,
    ];
    let mut t = Table::new(
        "fig11",
        &[
            "k", "m", "Zerasure", "Cerasure", "ISA-L", "ISA-L-D", "DIALGA",
        ],
    );
    for k in [12usize, 28, 48] {
        for m in [2usize, 3, 4] {
            let spec = Spec::new(k, m, 1024, 1, args.bytes_per_thread);
            let mut row = vec![k.to_string(), m.to_string()];
            for sys in systems {
                row.push(match dialga_bench::systems::encode_report(sys, &spec) {
                    Some(r) => gbs(r.throughput_gbs()),
                    None => "-".into(),
                });
            }
            t.row(row);
        }
    }
    t.finish(&MachineConfig::pm().digest(), args.csv);
}
