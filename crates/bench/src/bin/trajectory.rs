//! Latency/throughput trajectory across every `BENCH_PRn.json` artifact
//! in the repository root.
//!
//! Each growth PR that lands a benchmark commits its artifact; this
//! binary is the cross-PR report *and* the schema gate: every artifact
//! is parsed and validated against its kind's schema
//! ([`dialga_workload::report::validate_artifact`]), and any parse
//! error, schema drift, or unknown kind makes the process exit
//! non-zero — which is how `scripts/lint.sh` catches an artifact edit
//! that would silently break the trajectory.
//!
//! Usage: `trajectory [dir]` (default: current directory).

use dialga_workload::json;
use dialga_workload::report::validate_artifact;
use std::process::ExitCode;

/// `BENCH_PR6.json` → `Some(6)`.
fn pr_number(name: &str) -> Option<u32> {
    name.strip_prefix("BENCH_PR")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let mut artifacts: Vec<(u32, std::path::PathBuf)> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                Some((pr_number(&name)?, e.path()))
            })
            .collect(),
        Err(why) => {
            eprintln!("trajectory: cannot read `{dir}`: {why}");
            return ExitCode::FAILURE;
        }
    };
    artifacts.sort_by_key(|(pr, _)| *pr);
    if artifacts.is_empty() {
        eprintln!("trajectory: no BENCH_PRn.json artifacts under `{dir}`");
        return ExitCode::FAILURE;
    }

    println!("{:<5} {:<14} {:<44} tail", "PR", "bench", "headline");
    let mut failed = false;
    for (pr, path) in &artifacts {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(why) => {
                eprintln!("PR{pr}: cannot read {}: {why}", path.display());
                failed = true;
                continue;
            }
        };
        let doc = match json::parse(&text) {
            Ok(d) => d,
            Err(why) => {
                eprintln!("PR{pr}: {}: {why}", path.display());
                failed = true;
                continue;
            }
        };
        match validate_artifact(&doc) {
            Ok(row) => println!(
                "{:<5} {:<14} {:<44} {}",
                pr, row.kind, row.headline, row.tail
            ),
            Err(why) => {
                eprintln!("PR{pr}: {} schema drift: {why}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("trajectory: schema validation FAILED");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
