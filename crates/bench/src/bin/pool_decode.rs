//! Dispatch ablation for the pool decode/repair path (real host, real
//! bytes): per-repair cost of [`dialga::pool::EncodePool::repair`] versus
//! spawning a fresh set of scoped threads per degraded read, at the
//! paper's default 4 KiB block size across thread counts. Both sides
//! build the same [`dialga::RepairPlan`] and run the identical chunked
//! kernel, so the difference is dispatch overhead alone — which dominates
//! at repair-sized (single-block) work items.

use dialga_bench::systems::repair_dispatch_ablation;
use dialga_bench::{Args, Table};

fn main() {
    // `--bytes` rescales the number of repairs timed per point.
    let args = Args::parse(16 << 20);
    let (k, m, block) = (12usize, 4usize, 4096usize);
    let repairs = (args.bytes_per_thread / block as u64).max(10);
    let mut t = Table::new(
        "pool_decode",
        &[
            "threads",
            "pool_ns_per_repair",
            "spawn_ns_per_repair",
            "speedup",
        ],
    );
    for threads in [2usize, 4, 8] {
        let r = repair_dispatch_ablation(k, m, block, threads, repairs);
        t.row(vec![
            threads.to_string(),
            format!("{:.0}", r.pool_ns_per_stripe),
            format!("{:.0}", r.spawn_ns_per_stripe),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    t.finish(
        &format!("RS({k},{m}) block={block} repairs={repairs} per point"),
        args.csv,
    );
}
