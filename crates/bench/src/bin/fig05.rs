//! Figure 5: impact of stripe width k on PM encoding (m = 4, 4 KiB blocks):
//! throughput, useless-prefetch ratio, and L2 prefetch ratio.
//!
//! Paper shape: throughput climbs with k while the prefetch window grows,
//! peaks near the 32-stream table limit, then collapses for k > 32 where
//! the stream prefetcher loses confidence and shuts off (prefetch ratio
//! drops to ~0).

use dialga_bench::table::{gbs, pct};
use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;

fn main() {
    let args = Args::parse(8 << 20);
    let mut t = Table::new(
        "fig05",
        &[
            "k",
            "throughput_gbs",
            "useless_pf_ratio",
            "l2_pf_ratio",
            "stream_evictions",
        ],
    );
    for k in [4usize, 8, 12, 16, 20, 24, 28, 32, 36, 40, 48, 56, 64] {
        let spec = Spec::new(k, 4, 4096, 1, args.bytes_per_thread);
        let r = dialga_bench::systems::encode_report(System::Isal, &spec).unwrap();
        t.row(vec![
            k.to_string(),
            gbs(r.throughput_gbs()),
            pct(r.counters.useless_prefetch_ratio()),
            pct(r.counters.prefetch_ratio()),
            r.counters.stream_evictions.to_string(),
        ]);
    }
    t.finish(&MachineConfig::pm().digest(), args.csv);
}
