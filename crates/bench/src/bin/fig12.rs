//! Figure 12: encoding throughput across block sizes for RS(12,8) and
//! RS(28,24), all systems plus ISA-L with the prefetcher off.
//!
//! Paper shape: at ≤512 B the prefetcher gives ISA-L nothing and the XOR
//! codes suffer tiny packets; DIALGA leads by 64–180 % at ≤1 KiB; at 4 KiB
//! the hardware prefetcher peaks and DIALGA's edge shrinks; at 5 KiB the
//! gain is 8–26 %.

use dialga_bench::table::gbs;
use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;

fn main() {
    let args = Args::parse(4 << 20);
    let systems = [
        System::Zerasure,
        System::Cerasure,
        System::Isal,
        System::IsalNoPf,
        System::Dialga,
    ];
    let mut t = Table::new(
        "fig12",
        &[
            "code",
            "block",
            "Zerasure",
            "Cerasure",
            "ISA-L",
            "ISA-L-noPF",
            "DIALGA",
        ],
    );
    for (k, m) in [(12usize, 8usize), (28, 24)] {
        for block in [256u64, 512, 1024, 2048, 4096, 5120] {
            let spec = Spec::new(k, m, block, 1, args.bytes_per_thread);
            let mut row = vec![format!("RS({},{})", k + m, k), block.to_string()];
            for sys in systems {
                row.push(match dialga_bench::systems::encode_report(sys, &spec) {
                    Some(r) => gbs(r.throughput_gbs()),
                    None => "-".into(),
                });
            }
            t.row(row);
        }
    }
    t.finish(&MachineConfig::pm().digest(), args.csv);
}
