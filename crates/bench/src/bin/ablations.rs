//! Ablations for DIALGA's design choices (DESIGN.md §6):
//!
//! 1. **switch** — the lightweight shuffle-based hardware-prefetcher
//!    control (§4.2) vs MSR-style per-call toggling (privileged mode
//!    switches, ~2.5 µs each) vs no control, under high concurrency.
//! 2. **eq1** — the Eq. (1) bound on the software prefetch distance at
//!    high thread counts vs an unbounded distance.
//! 3. **distance** — hill-climbed prefetch distance vs a fixed-d sweep.

use dialga::source::{DialgaSource, Variant};
use dialga_bench::table::gbs;
use dialga_bench::{Args, Table};
use dialga_memsim::{Counters, MachineConfig, RowTask, TaskSource};
use dialga_pipeline::cost::CostModel;
use dialga_pipeline::isal::{IsalSource, Knobs};
use dialga_pipeline::layout::StripeLayout;
use dialga_pipeline::runner::run_source;

/// Wraps a source, injecting MSR-style prefetcher toggles every
/// `period` tasks (emulating per-encode-call toggling via msr-tools).
struct MsrToggled {
    inner: IsalSource,
    period: u64,
    count: Vec<u64>,
}

impl TaskSource for MsrToggled {
    fn next_task(&mut self, tid: usize, now: f64, c: &Counters, task: &mut RowTask) -> bool {
        if !self.inner.next_task(tid, now, c, task) {
            return false;
        }
        let n = &mut self.count[tid];
        // Off at the start of each period, back on at its midpoint —
        // the "switch around each coding call" pattern of prior work.
        if (*n).is_multiple_of(self.period) {
            task.toggle_hw_prefetch = Some(false);
        } else if *n % self.period == self.period / 2 {
            task.toggle_hw_prefetch = Some(true);
        }
        *n += 1;
        true
    }
    fn data_bytes(&self) -> u64 {
        self.inner.data_bytes()
    }
}

fn main() {
    let args = Args::parse(1 << 20);
    let cfg = MachineConfig::pm();
    let cost = CostModel::default();
    let (k, m, block, threads) = (28usize, 4usize, 1024u64, 16usize);
    let layout = StripeLayout::sized_for(k, m, block, args.bytes_per_thread);

    // --- 1. switching mechanism ---------------------------------------
    // All three arms run DIALGA's high-pressure kernel (SW prefetch +
    // 256 B expansion); they differ only in how the HW prefetcher is kept
    // out of the way. MSR toggling pays a privileged mode switch per
    // encode call; the shuffle mapping is free; leaving the prefetcher
    // uncontrolled lets it pollute the read buffer.
    let hp_knobs = Knobs {
        sw_distance: Some(k as u32),
        xpline_expand: true,
        ..Default::default()
    };
    let mut t = Table::new(
        "ablation_switch",
        &["mechanism", "throughput_gbs", "media_amp"],
    );
    {
        let mut uncontrolled = IsalSource::new(layout, cost, hp_knobs, threads);
        let r = run_source(&cfg, threads, &mut uncontrolled);
        t.row(vec![
            "none (HW PF uncontrolled)".into(),
            gbs(r.throughput_gbs()),
            format!("{:.2}", r.counters.media_read_amplification()),
        ]);

        // MSR arm: prefetcher held off for the whole call, but each call
        // boundary costs two privileged toggles.
        let steps_per_stripe = (layout.rows_per_block() / 4) * k as u64;
        let mut msr = MsrToggled {
            inner: IsalSource::new(layout, cost, hp_knobs, threads),
            period: steps_per_stripe,
            count: vec![0; threads],
        };
        let r = run_source(&cfg, threads, &mut msr);
        t.row(vec![
            "MSR toggle per call".into(),
            gbs(r.throughput_gbs()),
            format!("{:.2}", r.counters.media_read_amplification()),
        ]);

        let mut shuffled = IsalSource::new(
            layout,
            cost,
            Knobs {
                shuffle: true,
                ..hp_knobs
            },
            threads,
        );
        let r = run_source(&cfg, threads, &mut shuffled);
        t.row(vec![
            "shuffle mapping (DIALGA)".into(),
            gbs(r.throughput_gbs()),
            format!("{:.2}", r.counters.media_read_amplification()),
        ]);
    }
    t.finish(&cfg.digest(), args.csv);

    // --- 2. Eq. (1) distance bound ------------------------------------
    // At 14 threads the Eq. (1) budget is exhausted; a long prefetch
    // distance multiplies the simultaneously-live XPLines per stream and
    // thrashes the read buffer. (No expansion here — this isolates the
    // distance's buffer footprint.)
    let mut t = Table::new(
        "ablation_eq1",
        &[
            "policy",
            "throughput_gbs",
            "media_amp",
            "buffer_evicted_unused",
        ],
    );
    {
        let threads = 14;
        for (label, d) in [
            ("Eq.1 floor (d=k)", k as u32),
            ("5x over (d=5k)", 5 * k as u32),
            ("13x over (d=13k)", 13 * k as u32),
        ] {
            let mut src = IsalSource::new(
                layout,
                cost,
                Knobs {
                    shuffle: true,
                    sw_distance: Some(d),
                    ..Default::default()
                },
                threads,
            );
            let r = run_source(&cfg, threads, &mut src);
            t.row(vec![
                label.into(),
                gbs(r.throughput_gbs()),
                format!("{:.2}", r.counters.media_read_amplification()),
                r.counters.buffer_evicted_unused.to_string(),
            ]);
        }
    }
    t.finish(&cfg.digest(), args.csv);

    // --- 3. hill-climbed vs fixed distance (single thread) -------------
    let mut t = Table::new("ablation_distance", &["d", "throughput_gbs"]);
    {
        let layout1 = StripeLayout::sized_for(k, m, block, args.bytes_per_thread * 4);
        let mut best_fixed = 0.0f64;
        for d in [4u32, 8, 16, 28, 56, 112, 224] {
            let mut src = IsalSource::new(
                layout1,
                cost,
                Knobs {
                    sw_distance: Some(d),
                    ..Default::default()
                },
                1,
            );
            let r = run_source(&cfg, 1, &mut src);
            best_fixed = best_fixed.max(r.throughput_gbs());
            t.row(vec![format!("fixed {d}"), gbs(r.throughput_gbs())]);
        }
        let mut adaptive = DialgaSource::with_variant(layout1, cost, 1, &cfg, Variant::Adaptive);
        adaptive.set_sample_interval(50_000.0);
        let r = run_source(&cfg, 1, &mut adaptive);
        t.row(vec![
            "hill-climbed (DIALGA)".into(),
            gbs(r.throughput_gbs()),
        ]);
        let ratio = r.throughput_gbs() / best_fixed;
        t.row(vec![
            "adaptive / best-fixed".into(),
            format!("{:.2}x", ratio),
        ]);
    }
    t.finish(&cfg.digest(), args.csv);
}
