//! Figure 14: decoding throughput with different stripe sizes (m = 4,
//! 1 KiB blocks, repairing m lost data blocks).
//!
//! Paper shape: XOR-based libraries collapse on decode — their decode
//! bitmatrix is derived by inversion and cannot be optimized like the
//! encode matrix — while table-driven ISA-L and DIALGA are stable;
//! DIALGA decodes 142–341 % above Cerasure and 76–88 % above ISA-L.

use dialga_bench::table::gbs;
use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;

fn main() {
    let args = Args::parse(4 << 20);
    let systems = [
        System::Zerasure,
        System::Cerasure,
        System::Isal,
        System::Dialga,
    ];
    let mut t = Table::new("fig14", &["k", "Zerasure", "Cerasure", "ISA-L", "DIALGA"]);
    for k in [12usize, 20, 28, 48] {
        let spec = Spec::new(k, 4, 1024, 1, args.bytes_per_thread);
        let mut row = vec![k.to_string()];
        for sys in systems {
            row.push(match dialga_bench::systems::decode_report(sys, &spec, 4) {
                Some(r) => gbs(r.throughput_gbs()),
                None => "-".into(),
            });
        }
        t.row(row);
    }
    t.finish(&MachineConfig::pm().digest(), args.csv);
}
