//! Figure 18: breakdown of 1 KiB encoding throughput across DIALGA's
//! mechanisms: Vanilla → +SW (pipelined software prefetch) → +HW (managed
//! hardware prefetching) → +BF (buffer-friendly prefetch).
//!
//! Paper shape: +SW adds 29–49 %, +HW another 9–16 % (single-thread runs
//! are low-pressure), +BF another 18–29 % — smallest on narrow stripes.

use dialga::Variant;
use dialga_bench::table::gbs;
use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;

fn main() {
    let args = Args::parse(4 << 20);
    let mut t = Table::new("fig18", &["code", "Vanilla", "+SW", "+HW", "+BF"]);
    for (k, m) in [(12usize, 8usize), (28, 24), (48, 4)] {
        let spec = Spec::new(k, m, 1024, 1, args.bytes_per_thread);
        let mut row = vec![format!("RS({},{})", k + m, k)];
        for v in [
            Variant::Vanilla,
            Variant::Sw,
            Variant::SwHw,
            Variant::SwHwBf,
        ] {
            let r = dialga_bench::systems::encode_report(System::DialgaVariant(v), &spec).unwrap();
            row.push(gbs(r.throughput_gbs()));
        }
        t.row(row);
    }
    t.finish(&MachineConfig::pm().digest(), args.csv);
}
