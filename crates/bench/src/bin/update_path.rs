//! Extension experiment: the parity-*update* write path (one block of a
//! stripe changes; all parities are delta-patched in place). This is the
//! workload the TVARAK/Vilamb/CodePM line of work (§7) optimizes with
//! hardware or crash-consistency tricks; here we show DIALGA's load-side
//! scheduling also transfers to it — the update reads m+1 short streams,
//! another bad case for the hardware prefetcher.

use dialga_bench::table::gbs;
use dialga_bench::{Args, Table};
use dialga_memsim::MachineConfig;
use dialga_pipeline::cost::CostModel;
use dialga_pipeline::layout::StripeLayout;
use dialga_pipeline::runner::run_source;
use dialga_pipeline::update_pat::UpdateSource;

fn main() {
    let args = Args::parse(2 << 20);
    let cfg = MachineConfig::pm();
    let mut t = Table::new(
        "update_path",
        &["k", "m", "plain_gbs", "dialga_sw_gbs", "gain"],
    );
    for (k, m) in [(12usize, 2usize), (12, 4), (28, 4), (48, 4)] {
        let layout = StripeLayout::sized_for(k, m, 1024, args.bytes_per_thread);
        let mut plain = UpdateSource::new(layout, CostModel::default(), None, 1);
        let r_plain = run_source(&cfg, 1, &mut plain);
        let d = 2 * (m as u32 + 1);
        let mut dialga = UpdateSource::new(layout, CostModel::default(), Some(d), 1);
        let r_dialga = run_source(&cfg, 1, &mut dialga);
        t.row(vec![
            k.to_string(),
            m.to_string(),
            gbs(r_plain.throughput_gbs()),
            gbs(r_dialga.throughput_gbs()),
            format!(
                "{:+.1}%",
                100.0 * (r_dialga.throughput_gbs() / r_plain.throughput_gbs() - 1.0)
            ),
        ]);
    }
    t.finish(&cfg.digest(), args.csv);
}
