//! Figure 10: encoding throughput vs number of data blocks k (m = 4, 1 KiB
//! blocks) across the five systems.
//!
//! Paper shape: DIALGA best everywhere (+54–102 % narrow, +194–199 % over
//! ISA-L on wide stripes, only ~+22 % at the k = 32 sweet spot); ISA-L
//! collapses past k = 32; decompose (ISA-L-D) recovers part of it and
//! beats Cerasure; Zerasure has no wide-stripe results.

use dialga_bench::table::gbs;
use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;

fn main() {
    let args = Args::parse(4 << 20);
    let systems = [
        System::Zerasure,
        System::Cerasure,
        System::Isal,
        System::IsalD,
        System::Dialga,
    ];
    let mut t = Table::new(
        "fig10",
        &["k", "Zerasure", "Cerasure", "ISA-L", "ISA-L-D", "DIALGA"],
    );
    for k in [4usize, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64] {
        let spec = Spec::new(k, 4, 1024, 1, args.bytes_per_thread);
        let mut row = vec![k.to_string()];
        for sys in systems {
            row.push(match dialga_bench::systems::encode_report(sys, &spec) {
                Some(r) => gbs(r.throughput_gbs()),
                None => "-".into(),
            });
        }
        t.row(row);
    }
    t.finish(&MachineConfig::pm().digest(), args.csv);
}
