//! Extension experiment: degraded reads (single-block repair latency
//! path). LRC's selling point is repairing one block from `k/l` local reads
//! instead of `k`; DIALGA's prefetch scheduling applies to both. This
//! regenerates repair throughput for RS full decode vs LRC local repair,
//! plain vs DIALGA-scheduled — first on the PM simulator, then on the
//! real host comparing serial repair against the persistent pool's
//! decode/repair path on real bytes.

use dialga::{Dialga, EncodePool};
use dialga_bench::table::gbs;
use dialga_bench::{Args, Table};
use dialga_ec::Lrc;
use dialga_memsim::MachineConfig;
use dialga_pipeline::cost::CostModel;
use dialga_pipeline::isal::{IsalSource, Knobs};
use dialga_pipeline::layout::StripeLayout;
use dialga_pipeline::runner::run_source;

/// Repair one block from `reads` sources (the decode load pattern with a
/// single output stream).
fn repair(cfg: &MachineConfig, reads: usize, block: u64, bytes: u64, d: Option<u32>) -> f64 {
    let layout = StripeLayout::sized_for(reads, 1, block, bytes);
    let knobs = Knobs {
        sw_distance: d,
        bf_first_distance: d.map(|x| 4 * x),
        ..Default::default()
    };
    let mut src = IsalSource::new(layout, CostModel::default(), knobs, 1);
    // Throughput here counts survivor bytes read; normalize instead to
    // repaired bytes = bytes / reads.
    let r = run_source(cfg, 1, &mut src);
    r.data_bytes as f64 / reads as f64 / r.elapsed_ns
}

fn main() {
    let args = Args::parse(4 << 20);
    let cfg = MachineConfig::pm();
    let mut t = Table::new(
        "repair_path",
        &["scheme", "reads", "plain_gbs", "dialga_gbs", "gain"],
    );
    // RS(16,12) full repair vs LRC(12,4,2) local repair (6+1 reads) at 1 KiB.
    for (label, reads) in [("RS full decode", 12usize), ("LRC local repair", 7)] {
        let plain = repair(&cfg, reads, 1024, args.bytes_per_thread, None);
        let dialga = repair(&cfg, reads, 1024, args.bytes_per_thread, Some(reads as u32));
        t.row(vec![
            label.into(),
            reads.to_string(),
            gbs(plain),
            gbs(dialga),
            format!("{:+.1}%", 100.0 * (dialga / plain - 1.0)),
        ]);
    }
    t.finish(&cfg.digest(), args.csv);
    host_table(&args);
}

/// Time `calls` invocations of `f`, returning ns per call after a warm-up.
fn time_per_call(calls: u64, mut f: impl FnMut()) -> f64 {
    f();
    let t = std::time::Instant::now();
    for _ in 0..calls {
        f();
    }
    t.elapsed().as_nanos() as f64 / calls as f64
}

/// Real-host repair paths: serial versus the persistent pool on real
/// bytes — RS single-block repair, RS full decode (m losses), and LRC
/// local repair over the `local_repair_plan` read set.
fn host_table(args: &Args) {
    let (k, m, l, block, threads) = (12usize, 4usize, 2usize, 64 * 1024usize, 4usize);
    let calls = (args.bytes_per_thread / (k as u64 * block as u64)).max(5);
    let pool = EncodePool::new(threads);
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| {
            (0..block)
                .map(|j| ((i * 41 + j * 17) % 256) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();

    let coder = Dialga::new(k, m).expect("geometry");
    let parity = coder.encode_vec(&refs).expect("encode");
    let full: Vec<Option<Vec<u8>>> = data
        .iter()
        .cloned()
        .map(Some)
        .chain(parity.into_iter().map(Some))
        .collect();
    let mut one_lost = full.clone();
    one_lost[0] = None;
    let mut m_lost = full.clone();
    for s in m_lost.iter_mut().take(m) {
        *s = None;
    }

    let lrc = Lrc::new(k, m, l).expect("geometry");
    let lrc_parity = lrc.encode_vec(&refs).expect("encode");
    let plan = lrc.local_repair_plan(0).expect("plan");
    let peers: Vec<&[u8]> = plan.peers.iter().map(|&i| refs[i]).collect();
    let local = lrc_parity[plan.parity_index].as_slice();

    let mut t = Table::new(
        "repair_path_host",
        &["task", "reads", "serial_ns", "pool_ns", "speedup"],
    );
    let rows: [(&str, usize, f64, f64); 3] = [
        (
            "RS single-block repair",
            k,
            time_per_call(calls, || {
                let mut s = one_lost.clone();
                coder.decode(&mut s).expect("decode");
            }),
            time_per_call(calls, || {
                pool.repair(&coder, &one_lost, 0).expect("repair");
            }),
        ),
        (
            "RS full decode",
            k,
            time_per_call(calls, || {
                let mut s = m_lost.clone();
                coder.decode(&mut s).expect("decode");
            }),
            time_per_call(calls, || {
                let mut s = m_lost.clone();
                pool.decode(&coder, &mut s).expect("decode");
            }),
        ),
        (
            "LRC local repair",
            peers.len() + 1,
            time_per_call(calls, || {
                lrc.repair_local(0, &peers, local).expect("repair");
            }),
            time_per_call(calls, || {
                pool.repair_local(&lrc, 0, &peers, local).expect("repair");
            }),
        ),
    ];
    for (task, reads, serial_ns, pool_ns) in rows {
        t.row(vec![
            task.into(),
            reads.to_string(),
            format!("{serial_ns:.0}"),
            format!("{pool_ns:.0}"),
            format!("{:.2}x", serial_ns / pool_ns),
        ]);
    }
    t.finish(
        &format!(
            "host bytes RS({k},{m}) LRC({k},{m},{l}) block={block} threads={threads} calls={calls}"
        ),
        args.csv,
    );
}
