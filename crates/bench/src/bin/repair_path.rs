//! Extension experiment: degraded reads (single-block repair latency
//! path). LRC's selling point is repairing one block from `k/l` local reads
//! instead of `k`; DIALGA's prefetch scheduling applies to both. This
//! regenerates repair throughput for RS full decode vs LRC local repair,
//! plain vs DIALGA-scheduled.

use dialga_bench::table::gbs;
use dialga_bench::{Args, Table};
use dialga_memsim::MachineConfig;
use dialga_pipeline::cost::CostModel;
use dialga_pipeline::isal::{IsalSource, Knobs};
use dialga_pipeline::layout::StripeLayout;
use dialga_pipeline::runner::run_source;

/// Repair one block from `reads` sources (the decode load pattern with a
/// single output stream).
fn repair(cfg: &MachineConfig, reads: usize, block: u64, bytes: u64, d: Option<u32>) -> f64 {
    let layout = StripeLayout::sized_for(reads, 1, block, bytes);
    let knobs = Knobs {
        sw_distance: d,
        bf_first_distance: d.map(|x| 4 * x),
        ..Default::default()
    };
    let mut src = IsalSource::new(layout, CostModel::default(), knobs, 1);
    // Throughput here counts survivor bytes read; normalize instead to
    // repaired bytes = bytes / reads.
    let r = run_source(cfg, 1, &mut src);
    r.data_bytes as f64 / reads as f64 / r.elapsed_ns
}

fn main() {
    let args = Args::parse(4 << 20);
    let cfg = MachineConfig::pm();
    let mut t = Table::new(
        "repair_path",
        &["scheme", "reads", "plain_gbs", "dialga_gbs", "gain"],
    );
    // RS(16,12) full repair vs LRC(12,4,2) local repair (6+1 reads) at 1 KiB.
    for (label, reads) in [("RS full decode", 12usize), ("LRC local repair", 7)] {
        let plain = repair(&cfg, reads, 1024, args.bytes_per_thread, None);
        let dialga = repair(&cfg, reads, 1024, args.bytes_per_thread, Some(reads as u32));
        t.row(vec![
            label.into(),
            reads.to_string(),
            gbs(plain),
            gbs(dialga),
            format!("{:+.1}%", 100.0 * (dialga / plain - 1.0)),
        ]);
    }
    t.finish(&cfg.digest(), args.csv);
}
