//! Figure 16: LRC(k, m, l) encoding throughput (1 KiB blocks).
//!
//! Paper shape: every system loses throughput relative to RS (the extra
//! local parities add computation and stores); DIALGA gains 24–33 % on
//! non-wide stripes and 35–38 % on wide ones — smaller margins than RS
//! because the store share grows.

use dialga_bench::table::gbs;
use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;

fn main() {
    let args = Args::parse(4 << 20);
    let mut t = Table::new(
        "fig16",
        &["lrc", "ISA-L", "ISA-L-noPF", "DIALGA", "dialga_gain"],
    );
    for (k, m, l) in [(12usize, 4usize, 2usize), (24, 4, 4), (48, 4, 4)] {
        let spec = Spec::new(k, m, 1024, 1, args.bytes_per_thread);
        let isal = dialga_bench::systems::lrc_report(System::Isal, &spec, l).unwrap();
        let nopf = dialga_bench::systems::lrc_report(System::IsalNoPf, &spec, l).unwrap();
        let dialga = dialga_bench::systems::lrc_report(System::Dialga, &spec, l).unwrap();
        let best = isal.throughput_gbs().max(nopf.throughput_gbs());
        t.row(vec![
            format!("LRC({k},{m},{l})"),
            gbs(isal.throughput_gbs()),
            gbs(nopf.throughput_gbs()),
            gbs(dialga.throughput_gbs()),
            format!("{:+.1}%", 100.0 * (dialga.throughput_gbs() / best - 1.0)),
        ]);
    }
    t.finish(&MachineConfig::pm().digest(), args.csv);
}
