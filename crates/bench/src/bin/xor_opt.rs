//! XOR-schedule optimizer bench (PR 9): naive (greedy, one op per set
//! bit) vs optimized (cross-row CSE + cache-aware reorder) schedules per
//! code-zoo family, executed through the batched tiled executor
//! (`dialga_gf::xorexec`), with the fused table-driven RS kernel as the
//! throughput reference at the same geometry for MDS families.
//!
//! Three gates ride on every row:
//!
//! * **bit-exactness** — naive, optimized and the serial staging executor
//!   must agree byte-for-byte before any number is reported;
//! * **monotonicity** — the optimizer must never increase the XOR count
//!   (its candidate set includes the input schedule);
//! * the emitted artifact (`"bench": "xor_opt"`) is schema- and
//!   improvement-gated by the `trajectory` bin (>= 3 families strictly
//!   reduced).
//!
//! `--smoke` runs a cheap three-family subset as a lint-stage sanity gate;
//! `--json <path>` writes `BENCH_PR9.json`.

use dialga_bench::harness;
use dialga_ec::zoo::{self, ZooEntry};
use dialga_ec::{ReedSolomon, XorScratch};
use dialga_gf::bitmatrix::W;
use dialga_gf::sched::FusedSched;
use dialga_gf::simd::{detected_kernel, dot_prod_fused};
use dialga_gf::tables::NibbleTables;
use dialga_gf::xorexec::{execute_packets, TempArena, XorProgram};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

fn make_data(k: usize, block: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|b| {
            (0..block)
                .map(|i| ((b * 131 + i * 29 + 17) & 0xFF) as u8)
                .collect()
        })
        .collect()
}

/// Run one lowered program over whole blocks through the tiled executor.
fn run_program(
    prog: &XorProgram,
    data: &[Vec<u8>],
    parity: &mut [Vec<u8>],
    arena: &mut TempArena,
    d: u32,
) {
    let len = data[0].len();
    let psize = len / W;
    let srcs: Vec<&[u8]> = data.iter().flat_map(|b| b.chunks(psize)).collect();
    let mut outs: Vec<&mut [u8]> = parity
        .iter_mut()
        .flat_map(|b| b.chunks_mut(psize))
        .collect();
    execute_packets(prog, &srcs, &mut outs, arena, FusedSched::distance(d));
}

struct Row {
    family: String,
    k: usize,
    m: usize,
    naive_xors: usize,
    opt_xors: usize,
    naive_gibs: f64,
    opt_gibs: f64,
    fused_rs_gibs: Option<f64>,
}

fn run_family(entry: &ZooEntry, block: usize) -> Row {
    let params = entry.code.params();
    let (k, m) = (params.k, params.m);
    let d = k as u32;

    let naive = entry.code.naive_schedule();
    let opt = entry
        .code
        .optimized_schedule()
        .expect("optimizer on a valid schedule");
    let (ncost, ocost) = (naive.cost(), opt.cost());
    assert!(
        ocost.xors <= ncost.xors,
        "{}: optimizer increased XOR count ({} -> {})",
        entry.name,
        ncost.xors,
        ocost.xors
    );
    let nprog = naive.to_program().expect("lower naive schedule");
    let oprog = opt.to_program().expect("lower optimized schedule");

    let data = make_data(k, block);
    let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();

    // Correctness gate: serial staging executor vs both tiled programs.
    let mut scratch = XorScratch::new();
    let want = entry
        .code
        .encode_vec_with(&refs, &mut scratch)
        .expect("serial encode");
    let mut arena = TempArena::new();
    let mut got_n = vec![vec![0u8; block]; m];
    let mut got_o = vec![vec![0u8; block]; m];
    run_program(&nprog, &data, &mut got_n, &mut arena, d);
    run_program(&oprog, &data, &mut got_o, &mut arena, d);
    assert_eq!(want, got_n, "{}: naive program mismatch", entry.name);
    assert_eq!(want, got_o, "{}: optimized program mismatch", entry.name);

    let mut g = harness::group(entry.name);
    g.throughput_bytes((k * block) as u64);
    g.bench("naive", || {
        run_program(&nprog, &data, &mut got_n, &mut arena, d)
    });
    g.bench("optimized", || {
        run_program(&oprog, &data, &mut got_o, &mut arena, d)
    });
    let fused_rs_gibs = entry.mds.then(|| {
        let rs = ReedSolomon::new(k, m).expect("zoo geometry");
        let pm = rs.parity_matrix();
        let tables: Vec<NibbleTables> = (0..m)
            .flat_map(|i| (0..k).map(move |j| NibbleTables::new(pm[(i, j)].0)))
            .collect();
        let mut fused_out = vec![vec![0u8; block]; m];
        g.bench("fused_rs", || {
            let mut outs: Vec<&mut [u8]> = fused_out.iter_mut().map(|o| o.as_mut_slice()).collect();
            dot_prod_fused(&tables, &refs, &mut outs, FusedSched::distance(d));
        });
        g.results[2].throughput_gbs().unwrap_or(0.0) * 1e9 / GIB
    });
    let gibs = |i: usize| g.results[i].throughput_gbs().unwrap_or(0.0) * 1e9 / GIB;

    Row {
        family: entry.name.to_string(),
        k,
        m,
        naive_xors: ncost.xors,
        opt_xors: ocost.xors,
        naive_gibs: gibs(0),
        opt_gibs: gibs(1),
        fused_rs_gibs,
    }
}

fn emit_json(path: &str, smoke: bool, rows: &[Row]) {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"xor_opt\",\n  \"pr\": 9,\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!("  \"kernel\": \"{:?}\",\n", detected_kernel()));
    s.push_str("  \"unit\": \"XORs per stripe, GiB/s\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let fused = r
            .fused_rs_gibs
            .map_or("null".to_string(), |v| format!("{v:.3}"));
        s.push_str(&format!(
            "    {{\"family\": \"{}\", \"k\": {}, \"m\": {}, \"naive_xors\": {}, \"opt_xors\": {}, \"naive_gibs\": {:.3}, \"opt_gibs\": {:.3}, \"fused_rs_gibs\": {}}}{}\n",
            r.family,
            r.k,
            r.m,
            r.naive_xors,
            r.opt_xors,
            r.naive_gibs,
            r.opt_gibs,
            fused,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write json artifact");
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // Smoke skips the expensive constructions (Cerasure annealing, wide
    // k=20 CSE) so the lint stage stays fast; the correctness and
    // monotonicity asserts run either way.
    let (entries, block): (Vec<ZooEntry>, usize) = if smoke {
        (
            vec![
                ZooEntry {
                    name: "cauchy-rs(6,3)",
                    code: zoo::cauchy_rs(6, 3).expect("cauchy-rs(6,3)"),
                    mds: true,
                },
                ZooEntry {
                    name: "raid6(8)",
                    code: zoo::raid6(8).expect("raid6(8)"),
                    mds: true,
                },
                ZooEntry {
                    name: "lrc(8,2,2)",
                    code: zoo::lrc_bitmatrix(8, 2, 2).expect("lrc(8,2,2)"),
                    mds: false,
                },
            ],
            16 * 1024,
        )
    } else {
        (zoo::code_zoo().expect("code zoo"), 64 * 1024)
    };

    println!(
        "xor_opt: schedule optimizer over the code zoo (detected kernel: {:?})",
        detected_kernel()
    );
    let rows: Vec<Row> = entries.iter().map(|e| run_family(e, block)).collect();

    println!();
    println!(
        "{:<18} {:>5} {:>4} {:>11} {:>9} {:>12} {:>10} {:>12}",
        "family", "k", "m", "naive_xors", "opt_xors", "naive GiB/s", "opt GiB/s", "fused GiB/s"
    );
    let mut improved = 0;
    for r in &rows {
        let fused = r
            .fused_rs_gibs
            .map_or("-".to_string(), |v| format!("{v:.2}"));
        println!(
            "{:<18} {:>5} {:>4} {:>11} {:>9} {:>12.2} {:>10.2} {:>12}",
            r.family, r.k, r.m, r.naive_xors, r.opt_xors, r.naive_gibs, r.opt_gibs, fused
        );
        if r.opt_xors < r.naive_xors {
            improved += 1;
        }
    }
    println!(
        "\n{improved}/{} families strictly reduced their XOR count",
        rows.len()
    );

    if let Some(path) = json {
        emit_json(&path, smoke, &rows);
    }
}
