//! Figure 19: read traffic at the encode / memory-controller / PM-media
//! layers for RS(28,24) 1 KiB encoding, under low pressure (1 thread) and
//! high pressure (18 threads), normalized by the demanded bytes.
//!
//! Paper shape: at low pressure DIALGA actually reads *more* through the
//! controller (software prefetches train the hardware prefetcher) but is
//! faster; at high pressure ISA-L's media amplification jumps (read-buffer
//! thrashing) while DIALGA suppresses hardware prefetching and expands
//! task granularity, cutting media amplification sharply.

use dialga_bench::table::gbs;
use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;

fn main() {
    let args = Args::parse(2 << 20);
    let mut t = Table::new(
        "fig19",
        &[
            "threads",
            "system",
            "throughput_gbs",
            "encode_norm",
            "imc_norm",
            "media_norm",
        ],
    );
    for threads in [1usize, 18] {
        for sys in [System::Isal, System::Dialga] {
            let spec = Spec::new(28, 24, 1024, threads, args.bytes_per_thread);
            let r = dialga_bench::systems::encode_report(sys, &spec).unwrap();
            let c = &r.counters;
            let base = c.encode_read_bytes as f64;
            t.row(vec![
                threads.to_string(),
                sys.label().into(),
                gbs(r.throughput_gbs()),
                format!("{:.2}", 1.0),
                format!("{:.2}", c.imc_read_bytes as f64 / base),
                format!("{:.2}", c.media_read_bytes as f64 / base),
            ]);
        }
    }
    t.finish(&MachineConfig::pm().digest(), args.csv);
}
