//! Sharded stripe-service shard-count sweep (PR 6 artifact): mixed
//! encode/decode/repair traffic against [`dialga_service::StripeService`]
//! at 1..=8 shards, reporting throughput scaling and tail latency.
//!
//! Since PR 7 the load generator is [`dialga_workload`]: one closed-loop
//! phase per shard count, same deterministic seed across the sweep, with
//! the ~60/25/15 encode/decode/repair mix the original ad-hoc generator
//! used. The replayer measures client-observed latency per op class and
//! an `all` aggregate; this bench publishes the aggregate so the
//! `BENCH_PR6.json` schema (one combined p50/p99 per row) is unchanged.
//!
//! `--smoke` runs a reduced sweep as a sanity gate; `--json <path>`
//! writes the results artifact (`BENCH_PR6.json` in CI parlance).

use dialga_faultkit::FaultSchedule;
use dialga_workload::{replay_service, Mix, Phase, RunReport, WorkloadSpec};

const K: usize = 6;
const M: usize = 3;
const TENANTS: u32 = 8;
const SEED: u64 = 0x5eed;

struct Row {
    shards: usize,
    ops: u64,
    ops_per_s: f64,
    gibs: f64,
    p50_us: f64,
    p99_us: f64,
    rejected_retries: u64,
    spilled: u64,
    coalescing: f64,
}

fn run_config(shards: usize, n: u64, block: usize) -> Row {
    let mut spec = WorkloadSpec::new(SEED).phase(
        Phase::new("sweep", n, Mix::new(12, 5, 3, 0))
            .block(block)
            .closed(64),
    );
    spec.k = K;
    spec.m = M;
    spec.tenants = TENANTS;
    spec.shards = shards;
    spec.threads_per_shard = 1;
    let report: RunReport =
        replay_service("sweep", &spec, &FaultSchedule::new()).expect("replay failed");
    let all = report
        .classes
        .iter()
        .find(|c| c.op == "all")
        .expect("aggregate class");
    Row {
        shards,
        ops: report.ops,
        ops_per_s: report.ops_per_s,
        gibs: report.mib_s / 1024.0,
        p50_us: all.p50_us,
        p99_us: all.p99_us,
        rejected_retries: report.service.rejected,
        spilled: report.service.spilled,
        coalescing: if report.service.batches > 0 {
            report.service.coalesced as f64 / report.service.batches as f64
        } else {
            0.0
        },
    }
}

fn emit_json(path: &str, block: usize, rows: &[Row]) {
    let base = rows.first().map_or(0.0, |r| r.ops_per_s);
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"service_bench\",\n");
    s.push_str(&format!(
        "  \"k\": {K}, \"m\": {M}, \"block_bytes\": {block}, \"tenants\": {TENANTS},\n"
    ));
    s.push_str("  \"unit\": \"ops/s, GiB/s, us\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"shards\": {}, \"ops\": {}, \"ops_per_s\": {:.1}, \"gibs\": {:.3}, \"scaling_vs_1shard\": {:.3}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"coalescing\": {:.2}, \"spilled\": {}, \"rejected_retries\": {}}}{}\n",
            r.shards,
            r.ops,
            r.ops_per_s,
            r.gibs,
            if base > 0.0 { r.ops_per_s / base } else { 0.0 },
            r.p50_us,
            r.p99_us,
            r.coalescing,
            r.spilled,
            r.rejected_retries,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write json artifact");
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (shard_counts, n, block): (&[usize], u64, usize) = if smoke {
        (&[1, 2], 48, 4 * 1024)
    } else {
        (&[1, 2, 4, 8], 320, 16 * 1024)
    };

    println!("service_bench: closed-loop mixed encode/decode/repair, k={K} m={M}, block {block} B, {n} ops per config");
    let rows: Vec<Row> = shard_counts
        .iter()
        .map(|&s| run_config(s, n, block))
        .collect();

    println!();
    println!(
        "{:<7} {:>9} {:>8} {:>9} {:>9} {:>10} {:>8} {:>8}",
        "shards", "ops/s", "GiB/s", "p50 us", "p99 us", "coalesce", "spill", "retries"
    );
    for r in &rows {
        println!(
            "{:<7} {:>9.1} {:>8.3} {:>9.1} {:>9.1} {:>10.2} {:>8} {:>8}",
            r.shards,
            r.ops_per_s,
            r.gibs,
            r.p50_us,
            r.p99_us,
            r.coalescing,
            r.spilled,
            r.rejected_retries
        );
    }

    if let Some(path) = json {
        emit_json(&path, block, &rows);
    }
}
