//! Sharded stripe-service load generator (PR 6): open-loop mixed
//! encode/decode/repair traffic against [`dialga_service::StripeService`]
//! across a shard-count sweep.
//!
//! The generator pre-builds every request payload, then fires the whole
//! set as fast as admission allows (bounded retry on `Rejected`, counted —
//! the submitter never blocks inside the service). A small collector pool
//! redeems tickets concurrently, so per-request latency spans submit →
//! response including queueing, batching and dispatch. Reported per shard
//! count: ops/s, data GiB/s, p50/p99 latency, coalescing ratio, and the
//! backpressure tallies.
//!
//! `--smoke` runs a reduced sweep as a sanity gate; `--json <path>` writes
//! the results artifact (`BENCH_PR6.json` in CI parlance).

use dialga::Dialga;
use dialga_service::{ServiceConfig, ServiceError, StripeService, Ticket};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const K: usize = 6;
const M: usize = 3;
const TENANTS: u32 = 8;
const COLLECTORS: usize = 2;

/// One pre-built request, ready to submit.
enum Req {
    Encode(Vec<Vec<u8>>),
    Decode(Vec<Option<Vec<u8>>>),
    Repair(Vec<Option<Vec<u8>>>, usize),
}

/// Deterministic splitmix64 stream for the op mix.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn make_stripe(block: usize, salt: u64) -> Vec<Vec<u8>> {
    (0..K)
        .map(|i| {
            (0..block)
                .map(|j| ((salt as usize * 7 + i * 131 + j * 17) % 256) as u8)
                .collect()
        })
        .collect()
}

/// A template stripe: its `k` data blocks and `m` parity blocks.
type Template = (Vec<Vec<u8>>, Vec<Vec<u8>>);

/// Pre-build `n` requests: ~60% encode, ~25% decode, ~15% repair, cycling
/// over a few template stripes so build time stays off the clock.
fn build_requests(n: usize, block: usize) -> Vec<Req> {
    let coder = Dialga::new(K, M).unwrap();
    let templates: Vec<Template> = (0..4)
        .map(|t| {
            let data = make_stripe(block, t);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let parity = coder.encode_vec(&refs).unwrap();
            (data, parity)
        })
        .collect();
    let mut rng = Rng(0x5eed);
    (0..n)
        .map(|i| {
            let (data, parity) = &templates[i % templates.len()];
            let full = || {
                data.iter()
                    .chain(parity.iter())
                    .cloned()
                    .map(Some)
                    .collect::<Vec<_>>()
            };
            match rng.next() % 100 {
                0..=59 => Req::Encode(data.clone()),
                60..=84 => {
                    let mut shards = full();
                    shards[(i * 5) % (K + M)] = None;
                    Req::Decode(shards)
                }
                _ => {
                    let target = (i * 3) % (K + M);
                    let mut shards = full();
                    shards[target] = None;
                    Req::Repair(shards, target)
                }
            }
        })
        .collect()
}

struct Row {
    shards: usize,
    ops: usize,
    elapsed: Duration,
    data_bytes: u64,
    p50_us: f64,
    p99_us: f64,
    rejected_retries: u64,
    spilled: u64,
    coalescing: f64,
}

impl Row {
    fn ops_per_s(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
    fn gibs(&self) -> f64 {
        self.data_bytes as f64 / self.elapsed.as_secs_f64() / (1024.0 * 1024.0 * 1024.0)
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn run_config(shards: usize, n: usize, block: usize) -> Row {
    let svc = StripeService::new(ServiceConfig {
        shards,
        threads_per_shard: 1,
        k: K,
        m: M,
        block_bytes: block as u64,
        queue_depth: 256,
        ..ServiceConfig::default()
    })
    .unwrap();
    let requests = build_requests(n, block);
    let data_bytes: u64 = requests
        .iter()
        .map(|r| match r {
            Req::Encode(_) => (K * block) as u64,
            Req::Decode(_) | Req::Repair(_, _) => ((K + M) * block) as u64,
        })
        .sum();

    // Collector pool: redeem tickets off the submit path so submission
    // stays open-loop and latency timestamps are taken at response time.
    let (tx, rx) = mpsc::channel::<(Ticket, Instant)>();
    let rx = Arc::new(Mutex::new(rx));
    let lats: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::with_capacity(n)));
    let collectors: Vec<_> = (0..COLLECTORS)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let lats = Arc::clone(&lats);
            std::thread::spawn(move || loop {
                let item = rx.lock().unwrap().recv();
                let Ok((ticket, submitted)) = item else {
                    return;
                };
                ticket.wait().expect("bench request failed");
                let us = submitted.elapsed().as_secs_f64() * 1e6;
                lats.lock().unwrap().push(us);
            })
        })
        .collect();

    let mut rejected_retries = 0u64;
    let started = Instant::now();
    let mut rng = Rng(0xfeed);
    for req in &requests {
        let tenant = (rng.next() % TENANTS as u64) as u32;
        loop {
            let submitted = Instant::now();
            let attempt = match req {
                Req::Encode(data) => svc.submit_encode(tenant, data.clone(), None),
                Req::Decode(shards) => svc.submit_decode(tenant, shards.clone(), None),
                Req::Repair(shards, target) => {
                    svc.submit_repair(tenant, shards.clone(), *target, None)
                }
            };
            match attempt {
                Ok(ticket) => {
                    tx.send((ticket, submitted)).unwrap();
                    break;
                }
                Err(ServiceError::Rejected { .. }) => {
                    // Open-loop backoff: the submitter is never blocked by
                    // the service itself, only paced by its own retry.
                    rejected_retries += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => panic!("submit failed: {e}"),
            }
        }
    }
    drop(tx);
    for c in collectors {
        c.join().unwrap();
    }
    let elapsed = started.elapsed();

    let stats = svc.stats();
    let mut sorted = Arc::try_unwrap(lats).unwrap().into_inner().unwrap();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(sorted.len(), n, "every request must complete");
    Row {
        shards,
        ops: n,
        elapsed,
        data_bytes,
        p50_us: percentile(&sorted, 0.50),
        p99_us: percentile(&sorted, 0.99),
        rejected_retries,
        spilled: stats.spilled,
        coalescing: if stats.batches > 0 {
            stats.coalesced as f64 / stats.batches as f64
        } else {
            0.0
        },
    }
}

fn emit_json(path: &str, block: usize, rows: &[Row]) {
    let base = rows.first().map_or(0.0, Row::ops_per_s);
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"service_bench\",\n");
    s.push_str(&format!(
        "  \"k\": {K}, \"m\": {M}, \"block_bytes\": {block}, \"tenants\": {TENANTS},\n"
    ));
    s.push_str("  \"unit\": \"ops/s, GiB/s, us\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"shards\": {}, \"ops\": {}, \"ops_per_s\": {:.1}, \"gibs\": {:.3}, \"scaling_vs_1shard\": {:.3}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"coalescing\": {:.2}, \"spilled\": {}, \"rejected_retries\": {}}}{}\n",
            r.shards,
            r.ops,
            r.ops_per_s(),
            r.gibs(),
            if base > 0.0 { r.ops_per_s() / base } else { 0.0 },
            r.p50_us,
            r.p99_us,
            r.coalescing,
            r.spilled,
            r.rejected_retries,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write json artifact");
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (shard_counts, n, block): (&[usize], usize, usize) = if smoke {
        (&[1, 2], 48, 4 * 1024)
    } else {
        (&[1, 2, 4, 8], 320, 16 * 1024)
    };

    println!("service_bench: open-loop mixed encode/decode/repair, k={K} m={M}, block {block} B, {n} ops per config");
    let rows: Vec<Row> = shard_counts
        .iter()
        .map(|&s| run_config(s, n, block))
        .collect();

    println!();
    println!(
        "{:<7} {:>9} {:>8} {:>9} {:>9} {:>10} {:>8} {:>8}",
        "shards", "ops/s", "GiB/s", "p50 us", "p99 us", "coalesce", "spill", "retries"
    );
    for r in &rows {
        println!(
            "{:<7} {:>9.1} {:>8.3} {:>9.1} {:>9.1} {:>10.2} {:>8} {:>8}",
            r.shards,
            r.ops_per_s(),
            r.gibs(),
            r.p50_us,
            r.p99_us,
            r.coalescing,
            r.spilled,
            r.rejected_retries
        );
    }

    if let Some(path) = json {
        emit_json(&path, block, &rows);
    }
}
