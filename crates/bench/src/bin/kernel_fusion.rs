//! Kernel-fusion ablation (PR 4): fused multi-output GF dot-product vs the
//! per-row baseline DIALGA shipped before fusion.
//!
//! Both arms compute the same Reed-Solomon parity math over identical
//! tables and issue the same Fig. 9 software-prefetch stream:
//!
//! * **per-row** — one pass over all `k` sources *per parity row*
//!   (`m` passes total), calling `mul_add_slice_simd` once per
//!   (row, source, cacheline) like the pre-fusion `apply_tables`, with
//!   the prefetch-pointer array materialized via `build_prefetch_ptrs`.
//! * **fused** — a single pass over the sources accumulating into up to
//!   `FUSED_GROUP` register-resident rows (`dot_prod_fused`), prefetch
//!   targets computed arithmetically inside the row loop.
//!
//! Sweeps k ∈ {4, 6, 10} × m ∈ {2, 3, 4} × block ∈ 4 KiB..1 MiB.
//! `--smoke` runs a two-config subset as a lint-stage sanity gate;
//! `--json <path>` writes the full results as a JSON artifact
//! (`BENCH_PR4.json` in CI parlance).

use dialga::operator::build_prefetch_ptrs;
use dialga_bench::harness;
use dialga_gf::sched::FusedSched;
use dialga_gf::simd::{detected_kernel, dot_prod_fused, mul_add_slice_simd};
use dialga_gf::slice::prefetch_read;
use dialga_gf::tables::NibbleTables;

const CACHELINE: usize = 64;
const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Deterministic non-trivial coefficient table set: `m` rows × `k` cols.
fn make_tables(k: usize, m: usize) -> Vec<NibbleTables> {
    (0..m * k)
        .map(|i| NibbleTables::new(((i * 83 + 7) % 255 + 1) as u8))
        .collect()
}

/// The pre-fusion encode shape: each parity row re-streams every source.
/// Prefetches are issued on the first row only, mirroring the fused
/// kernel's single prefetch stream per source pass.
fn per_row_encode(tables: &[NibbleTables], sources: &[&[u8]], outputs: &mut [Vec<u8>], d: u32) {
    let k = sources.len();
    let len = sources.first().map_or(0, |s| s.len());
    let rows = (len / CACHELINE) as u64;
    for (p, out) in outputs.iter_mut().enumerate() {
        out.fill(0);
        for vr in 0..rows {
            let base = vr as usize * CACHELINE;
            let ptrs = if p == 0 {
                build_prefetch_ptrs(vr, k, rows, d, false)
            } else {
                Vec::new()
            };
            for (j, src) in sources.iter().enumerate() {
                if let Some(Some(ptr)) = ptrs.get(j) {
                    prefetch_read(sources[ptr.block][ptr.row as usize * CACHELINE..].as_ptr());
                }
                mul_add_slice_simd(
                    &tables[p * k + j],
                    &src[base..base + CACHELINE],
                    &mut out[base..base + CACHELINE],
                );
            }
        }
        let tail = rows as usize * CACHELINE;
        for (j, src) in sources.iter().enumerate() {
            mul_add_slice_simd(&tables[p * k + j], &src[tail..], &mut out[tail..]);
        }
    }
}

fn fused_encode(tables: &[NibbleTables], sources: &[&[u8]], outputs: &mut [Vec<u8>], d: u32) {
    let mut refs: Vec<&mut [u8]> = outputs.iter_mut().map(|o| o.as_mut_slice()).collect();
    dot_prod_fused(tables, sources, &mut refs, FusedSched::distance(d));
}

struct Row {
    k: usize,
    m: usize,
    block: usize,
    per_row_gibs: f64,
    fused_gibs: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.fused_gibs / self.per_row_gibs
    }
}

fn run_config(k: usize, m: usize, block: usize) -> Row {
    let tables = make_tables(k, m);
    let d = k as u32;
    let srcs: Vec<Vec<u8>> = (0..k)
        .map(|b| {
            (0..block)
                .map(|i| ((b * 131 + i * 29) & 0xFF) as u8)
                .collect()
        })
        .collect();
    let src_refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();
    let mut out_a: Vec<Vec<u8>> = vec![vec![0u8; block]; m];
    let mut out_b: Vec<Vec<u8>> = vec![vec![0u8; block]; m];

    // Correctness gate: the two arms must agree bit-for-bit before any
    // throughput number is reported.
    per_row_encode(&tables, &src_refs, &mut out_a, d);
    fused_encode(&tables, &src_refs, &mut out_b, d);
    assert_eq!(
        out_a, out_b,
        "fused/per-row mismatch at k={k} m={m} block={block}"
    );

    let mut g = harness::group(&format!("k{k}_m{m}_{}KiB", block / 1024));
    g.throughput_bytes((k * block) as u64);
    g.bench("per_row", || {
        per_row_encode(&tables, &src_refs, &mut out_a, d)
    });
    g.bench("fused", || fused_encode(&tables, &src_refs, &mut out_b, d));
    let gibs = |i: usize| {
        let meas: &harness::Measurement = &g.results[i];
        // throughput_gbs() is bytes/ns == GB/s; rescale to GiB/s.
        meas.throughput_gbs().unwrap_or(0.0) * 1e9 / GIB
    };
    Row {
        k,
        m,
        block,
        per_row_gibs: gibs(0),
        fused_gibs: gibs(1),
    }
}

fn emit_json(path: &str, rows: &[Row]) {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"kernel_fusion\",\n");
    s.push_str(&format!("  \"kernel\": \"{:?}\",\n", detected_kernel()));
    s.push_str("  \"unit\": \"GiB/s\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"k\": {}, \"m\": {}, \"block_bytes\": {}, \"per_row_gibs\": {:.3}, \"fused_gibs\": {:.3}, \"speedup\": {:.3}}}{}\n",
            r.k,
            r.m,
            r.block,
            r.per_row_gibs,
            r.fused_gibs,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write json artifact");
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let configs: Vec<(usize, usize, usize)> = if smoke {
        // Fast sanity pass for the lint pipeline: one small and one
        // group-boundary config, correctness asserts included.
        vec![(4, 2, 16 * 1024), (10, 4, 64 * 1024)]
    } else {
        let mut v = Vec::new();
        for &k in &[4usize, 6, 10] {
            for &m in &[2usize, 3, 4] {
                for &block in &[4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024] {
                    v.push((k, m, block));
                }
            }
        }
        v
    };

    println!(
        "kernel_fusion ablation (detected kernel: {:?})",
        detected_kernel()
    );
    let rows: Vec<Row> = configs
        .iter()
        .map(|&(k, m, b)| run_config(k, m, b))
        .collect();

    println!();
    println!(
        "{:<6} {:<4} {:>10} {:>14} {:>12} {:>9}",
        "k", "m", "block", "per_row GiB/s", "fused GiB/s", "speedup"
    );
    for r in &rows {
        println!(
            "{:<6} {:<4} {:>10} {:>14.2} {:>12.2} {:>8.2}x",
            r.k,
            r.m,
            r.block,
            r.per_row_gibs,
            r.fused_gibs,
            r.speedup()
        );
    }

    if let Some(path) = json {
        emit_json(&path, &rows);
    }
}
