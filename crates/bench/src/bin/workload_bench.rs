//! Trace-driven production-workload bench (PR 7): replay the three
//! canonical [`dialga_workload`] profiles against a live
//! [`dialga_service::StripeService`] and emit `BENCH_PR7.json`.
//!
//! Profiles:
//!
//! * `steady` — uniform closed-loop mixed traffic, the baseline row;
//! * `skewed_bursty` — Zipf-hot bursty small blocks, then a mid-run
//!   shift to large read-heavy traffic that forces the per-shard
//!   coordinators to re-converge (the report times it);
//! * `chaos` — scrub-heavy traffic with stripe corruption; with the
//!   `fault-injection` feature the storm phase also arms a seeded fault
//!   plan inside the shard pools (worker deaths, send failures, sample
//!   spikes), exercising self-healing under load.
//!
//! A raw [`EncodePool`] fused-batch replay rides along as the
//! service-free baseline (`pool` object in the artifact).
//!
//! The emitted artifact is parsed back and schema-validated before it is
//! written — `workload_bench` refuses to publish a document that
//! `just trajectory` would reject. `--smoke` shrinks every phase for CI;
//! `--json <path>` overrides the output path (default `BENCH_PR7.json`).
//!
//! [`EncodePool`]: dialga::pool::EncodePool

use dialga_faultkit::FaultSchedule;
use dialga_workload::json;
use dialga_workload::report::{bench_json, validate_workload};
use dialga_workload::{replay_pool, replay_service, RunReport, WorkloadSpec};

const SEED: u64 = 0xD1A1_6A07;

fn chaos_schedule(workers: usize) -> FaultSchedule {
    // Phase-scoped: only the storm phase gets faults; the warm phase
    // establishes a clean baseline first.
    FaultSchedule::seeded(SEED, workers, &["chaos_storm"])
}

fn run_profile(name: &str, spec: WorkloadSpec, chaos: &FaultSchedule) -> RunReport {
    println!(
        "workload_bench: profile `{name}` — {} phase(s), {} ops, k={} m={}, {} shard(s) x {} worker(s)",
        spec.phases.len(),
        spec.total_ops(),
        spec.k,
        spec.m,
        spec.shards,
        spec.threads_per_shard,
    );
    let report = replay_service(name, &spec, chaos).expect("replay failed");
    let conv = report
        .convergence_after_shift_ms
        .map_or("n/a".to_string(), |ms| format!("{ms:.1} ms"));
    println!(
        "  {:.0} ops/s, {:.1} MiB/s, convergence-after-shift {conv}, scrubs clean/detected/missed {}/{}/{}",
        report.ops_per_s,
        report.mib_s,
        report.scrubs.clean,
        report.scrubs.corrupt_detected,
        report.scrubs.missed,
    );
    for class in report.classes.iter().filter(|c| c.count > 0) {
        println!(
            "    {:<7} n={:<5} p50 {:>8.1} us  p99 {:>8.1} us  p999 {:>8.1} us",
            class.op, class.count, class.p50_us, class.p99_us, class.p999_us
        );
    }
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());
    let shrink = if smoke { 8 } else { 1 };

    let specs = [
        ("steady", WorkloadSpec::steady(SEED).smoke(shrink)),
        (
            "skewed_bursty",
            WorkloadSpec::skewed_bursty(SEED).smoke(shrink),
        ),
        ("chaos", WorkloadSpec::chaos(SEED).smoke(shrink)),
    ];
    let clean = FaultSchedule::new();
    let mut profiles = Vec::with_capacity(specs.len());
    for (name, spec) in specs {
        let chaos = if name == "chaos" {
            chaos_schedule(spec.threads_per_shard)
        } else {
            clean.clone()
        };
        profiles.push(run_profile(name, spec, &chaos));
    }

    let pool_ops = if smoke { 64 } else { 512 };
    let pool = replay_pool(SEED, 6, 3, 2, 16 * 1024, pool_ops, 8).expect("pool replay failed");
    println!(
        "workload_bench: raw-pool baseline — {:.0} stripes/s, {:.1} MiB/s, batch p50/p99 {:.1}/{:.1} us",
        pool.ops_per_s, pool.mib_s, pool.p50_batch_us, pool.p99_batch_us
    );

    for report in &profiles {
        assert_eq!(
            report.scrubs.missed, 0,
            "integrity scrub missed scripted corruption in `{}`",
            report.profile
        );
    }

    let artifact = bench_json(7, smoke, &profiles, Some(&pool));
    // Self-check: never publish an artifact `just trajectory` would
    // reject.
    let doc = json::parse(&artifact).expect("emitted artifact must parse");
    match validate_workload(&doc) {
        Ok(rows) => {
            for row in rows {
                println!("  schema-ok: {row}");
            }
        }
        Err(why) => panic!("emitted artifact failed schema validation: {why}"),
    }
    std::fs::write(&path, &artifact).expect("write artifact");
    println!("wrote {path}");
}
