//! Figure 7: multi-thread scalability of RS(28,24) encoding on PM, hardware
//! prefetcher on vs off.
//!
//! Paper shape: with the prefetcher on, throughput plateaus (then declines)
//! around 8–10 threads as aggressive prefetching thrashes the PM read
//! buffer; with it off, scaling continues further at a lower single-thread
//! level.

use dialga_bench::table::gbs;
use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;

fn main() {
    let args = Args::parse(2 << 20);
    let mut t = Table::new(
        "fig07",
        &[
            "threads",
            "pf_on_gbs",
            "pf_off_gbs",
            "amp_on",
            "buffer_hit_on",
        ],
    );
    for threads in [1usize, 2, 4, 6, 8, 10, 12, 14, 16, 18] {
        let spec = Spec::new(28, 24, 4096, threads, args.bytes_per_thread);
        let on = dialga_bench::systems::encode_report(System::Isal, &spec).unwrap();
        let off = dialga_bench::systems::encode_report(System::IsalNoPf, &spec).unwrap();
        let c = &on.counters;
        t.row(vec![
            threads.to_string(),
            gbs(on.throughput_gbs()),
            gbs(off.throughput_gbs()),
            format!("{:.2}", c.media_read_amplification()),
            format!(
                "{:.0}%",
                100.0 * c.buffer_hits as f64 / (c.buffer_hits + c.xpline_fetches).max(1) as f64
            ),
        ]);
    }
    t.finish(&MachineConfig::pm().digest(), args.csv);
}
