//! Run every figure binary's logic in sequence (invoking the compiled
//! binaries), writing CSVs into `results/`. Used to produce the
//! EXPERIMENTS.md numbers in one go.

use std::process::Command;

fn main() {
    let figs = [
        "fig03",
        "fig04",
        "fig05",
        "fig06",
        "fig07",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "generality",
        "ablations",
        "update_path",
        "repair_path",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let extra: Vec<String> = std::env::args().skip(1).collect();
    for fig in figs {
        let path = dir.join(fig);
        let status = Command::new(&path)
            .arg("--csv")
            .args(&extra)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", path.display()));
        assert!(status.success(), "{fig} failed");
    }
    eprintln!("all figures done; CSVs in ./results/");
}
