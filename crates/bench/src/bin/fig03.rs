//! Figure 3: RS(12,8) encoding throughput and demand-miss stall cycles with
//! different load sources (DRAM vs PM) and the hardware prefetcher on/off.
//!
//! Paper shape: DRAM 195–272 % above PM; the prefetcher buys DRAM ~109 %
//! but PM only ~50 %. (Block size: the §3.2 default of 4 KiB; see
//! EXPERIMENTS.md for the "1 KB stripes" reading.)

use dialga_bench::table::gbs;
use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;

fn main() {
    let args = Args::parse(8 << 20);
    let mut t = Table::new(
        "fig03",
        &[
            "source",
            "prefetcher",
            "throughput_gbs",
            "stall_cyc_per_load",
        ],
    );
    let base = MachineConfig::pm();
    for (label, dram) in [("PM", false), ("DRAM", true)] {
        for (pf_label, sys) in [("on", System::Isal), ("off", System::IsalNoPf)] {
            let mut spec = Spec::new(12, 8, 4096, 1, args.bytes_per_thread);
            if dram {
                spec.cfg = MachineConfig::dram();
            }
            let r = dialga_bench::systems::encode_report(sys, &spec).unwrap();
            t.row(vec![
                label.into(),
                pf_label.into(),
                gbs(r.throughput_gbs()),
                format!("{:.1}", r.stall_cycles_per_load(spec.cfg.freq_ghz)),
            ]);
        }
    }
    t.finish(&base.digest(), args.csv);
}
