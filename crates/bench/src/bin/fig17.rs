//! Figure 17: CPU cache-miss stall cycles per load during encoding (1 KiB
//! blocks), normalized by load count.
//!
//! Paper shape: at RS(12,8) ISA-L stalls ~2x DIALGA (mirroring the ~2x
//! throughput gap); at RS(28,24) the prefetcher is already efficient so
//! the gap narrows; at RS(52,48) DIALGA cuts ~35 % of the decompose
//! strategy's cycles (no parity reloading, better prefetch).

use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;

fn main() {
    let args = Args::parse(4 << 20);
    let mut t = Table::new("fig17", &["code", "ISA-L", "ISA-L-D", "DIALGA"]);
    for (k, m) in [(12usize, 8usize), (28, 24), (48, 4)] {
        let spec = Spec::new(k, m, 1024, 1, args.bytes_per_thread);
        let mut row = vec![format!("RS({},{})", k + m, k)];
        for sys in [System::Isal, System::IsalD, System::Dialga] {
            row.push(match dialga_bench::systems::encode_report(sys, &spec) {
                Some(r) => format!("{:.1}", r.stall_cycles_per_load(spec.cfg.freq_ghz)),
                None => "-".into(),
            });
        }
        t.row(row);
    }
    t.finish(&MachineConfig::pm().digest(), args.csv);
}
