//! Crash-recovery benchmark (PR 10): seeded power-fail sweeps over the
//! journaled stripe store, timing `StripeStore::open` (commit-table
//! walk plus boot scrub) after each crash and tallying how recovery
//! resolved the in-flight stripe.
//!
//! Each trial formats a fresh persistence-domain image, commits a full
//! set of stripes, corrupts one settled shard on a cadence (so the boot
//! scrub's repair path is timed too), then power-fails an overwrite at
//! one of its two persist boundaries (slot persist / commit persist).
//! Recovery must land every stripe on exactly its pre- or post-image —
//! a torn hybrid fails the run on the spot, and the emitted artifact
//! (`"bench": "recovery"`) re-gates `torn_hybrid == 0` through the
//! `trajectory` schema check.
//!
//! `--smoke` runs one small geometry; `--json <path>` writes
//! `BENCH_PR10.json` (self-validated before the write).

use dialga_memsim::PersistMem;
use dialga_store::{Geometry, StoreError, StripeStore};
use dialga_workload::json::parse;
use dialga_workload::report::{recovery_json, validate_artifact, RecoveryRow};

/// Deterministic data generator (splitmix64) — the bench carries no RNG
/// dependency and every trial must be reproducible from its seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn stripe_data(state: &mut u64, k: usize, shard_len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|_| (0..shard_len).map(|_| splitmix(state) as u8).collect())
        .collect()
}

fn refs(data: &[Vec<u8>]) -> Vec<&[u8]> {
    data.iter().map(|d| d.as_slice()).collect()
}

struct GeomSpec {
    k: usize,
    m: usize,
    stripes: usize,
    shard_len: usize,
    trials: u64,
}

/// Sweep one geometry: `trials` independent crash/recover cycles.
/// Every third trial also corrupts one settled shard so the boot scrub's
/// decode-and-repair path contributes to the recovery timing.
fn run_geometry(spec: &GeomSpec) -> RecoveryRow {
    let geo = Geometry::new(spec.k, spec.m, spec.shard_len, spec.stripes).expect("geometry");
    let mut ns_samples: Vec<u64> = Vec::new();
    let mut row = RecoveryRow {
        k: spec.k,
        m: spec.m,
        stripes: spec.stripes,
        shard_len: spec.shard_len,
        crashes: spec.trials,
        // One overwrite cycle = slot persist + commit persist.
        boundaries: 2,
        ..RecoveryRow::default()
    };

    for trial in 0..spec.trials {
        let seed = 0xD1A1_6A00 ^ (trial.wrapping_mul(0x9E37_79B9));
        let mem = PersistMem::with_seed(geo.image_len(), seed);
        let mut store = StripeStore::format(mem, geo).expect("format");

        let mut state = seed;
        let old: Vec<Vec<Vec<u8>>> = (0..spec.stripes)
            .map(|_| stripe_data(&mut state, spec.k, spec.shard_len))
            .collect();
        for (stripe, data) in old.iter().enumerate() {
            store.write_stripe(stripe, &refs(data)).expect("seed write");
        }

        // Cadenced corruption of a settled stripe (never the overwrite
        // target): flip one shard in place so recovery must re-derive it.
        let corrupted = trial % 3 == 0 && spec.stripes > 1;
        if corrupted {
            let victim_shard = (trial as usize) % (spec.k + spec.m);
            // First write of every stripe lands in slot 0.
            let off = geo.shard_off(1, 0, victim_shard);
            let garbage: Vec<u8> = (0..spec.shard_len)
                .map(|_| splitmix(&mut state) as u8)
                .collect();
            store.image_mut().store(off, &garbage).expect("corrupt");
            store
                .image_mut()
                .persist(off, spec.shard_len)
                .expect("persist corruption");
        }

        // Power-fail the overwrite of stripe 0 at one of its two
        // boundaries, alternating so both roll directions are timed.
        let crash_at = trial % 2;
        store.image_mut().arm_crash(crash_at);
        let new = stripe_data(&mut state, spec.k, spec.shard_len);
        match store.write_stripe(0, &refs(&new)) {
            Err(StoreError::Crashed) => {}
            other => panic!("armed write did not crash: {other:?}"),
        }

        // Reboot from the durable (possibly torn) image; `open` times its
        // own recovery into the report.
        let image = store.into_image().durable_image().to_vec();
        let store = StripeStore::open(PersistMem::from_bytes(image, seed ^ 0xFACE)).expect("open");
        let report = store.recovery_report();
        ns_samples.push(report.recovery_ns);
        row.stripes_rolled_back += report.rolled_back as u64;
        row.stripes_rolled_forward += report.rolled_forward as u64;
        row.shards_repaired += report.shards_repaired as u64;
        assert!(
            report.corrupt.is_empty(),
            "({},{}) trial {trial}: scrub could not localize the damage",
            spec.k,
            spec.m
        );

        // The in-flight stripe must be exactly old or new; everything
        // settled must be byte-identical (including the repaired victim).
        match store.read_stripe(0) {
            Ok(got) if got == old[0] || got == new => {}
            Ok(_) => row.torn_hybrid += 1,
            Err(e) => panic!("({},{}) trial {trial}: {e}", spec.k, spec.m),
        }
        for (stripe, data) in old.iter().enumerate().skip(1) {
            assert_eq!(
                &store.read_stripe(stripe).expect("settled stripe"),
                data,
                "({},{}) trial {trial}: settled stripe {stripe} changed",
                spec.k,
                spec.m
            );
        }
        if corrupted {
            assert!(
                row.shards_repaired > 0,
                "({},{}) trial {trial}: corrupted shard was not repaired",
                spec.k,
                spec.m
            );
        }
    }

    let total: u64 = ns_samples.iter().sum();
    row.recovery_ns_mean = total as f64 / ns_samples.len().max(1) as f64;
    row.recovery_ns_max = ns_samples.iter().copied().max().unwrap_or(0);
    row
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let specs: Vec<GeomSpec> = if smoke {
        vec![GeomSpec {
            k: 4,
            m: 2,
            stripes: 4,
            shard_len: 256,
            trials: 6,
        }]
    } else {
        vec![
            GeomSpec {
                k: 4,
                m: 2,
                stripes: 8,
                shard_len: 256,
                trials: 48,
            },
            GeomSpec {
                k: 6,
                m: 3,
                stripes: 6,
                shard_len: 256,
                trials: 32,
            },
            GeomSpec {
                k: 10,
                m: 4,
                stripes: 4,
                shard_len: 512,
                trials: 24,
            },
        ]
    };

    println!("recovery_bench: seeded power-fail sweeps over the journaled stripe store");
    let rows: Vec<RecoveryRow> = specs.iter().map(run_geometry).collect();

    println!();
    println!(
        "{:>3} {:>3} {:>8} {:>9} {:>8} {:>13} {:>12} {:>7} {:>8} {:>9} {:>7}",
        "k",
        "m",
        "stripes",
        "shard",
        "crashes",
        "mean_rec_us",
        "max_rec_us",
        "back",
        "forward",
        "repaired",
        "hybrid"
    );
    for r in &rows {
        println!(
            "{:>3} {:>3} {:>8} {:>9} {:>8} {:>13.1} {:>12.1} {:>7} {:>8} {:>9} {:>7}",
            r.k,
            r.m,
            r.stripes,
            r.shard_len,
            r.crashes,
            r.recovery_ns_mean / 1_000.0,
            r.recovery_ns_max as f64 / 1_000.0,
            r.stripes_rolled_back,
            r.stripes_rolled_forward,
            r.shards_repaired,
            r.torn_hybrid
        );
    }

    // Self-validate the emission through the same gate `trajectory` runs,
    // so a drifted artifact can never be written in the first place.
    let artifact = recovery_json(10, smoke, &rows);
    let doc = parse(&artifact).expect("own emission must parse");
    let traj = validate_artifact(&doc).expect("own emission must validate");
    println!("\n{} — {}", traj.headline, traj.tail);

    if let Some(path) = json {
        std::fs::write(&path, artifact).expect("write json artifact");
        println!("wrote {path}");
    }
}
