//! Figure 4: RS(12,8) encoding throughput vs CPU frequency, on DRAM and PM,
//! under AVX512 and AVX256.
//!
//! Paper shape: on PM, gains flatten beyond ~2 GHz (cycles are spent
//! waiting on memory); DRAM keeps improving; the effect is stronger under
//! AVX256.

use dialga_bench::table::gbs;
use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;
use dialga_pipeline::cost::Simd;

fn main() {
    let args = Args::parse(8 << 20);
    let mut t = Table::new(
        "fig04",
        &[
            "freq_ghz",
            "pm_avx512",
            "pm_avx256",
            "dram_avx512",
            "dram_avx256",
        ],
    );
    for freq10 in [10u32, 14, 18, 22, 26, 30, 33] {
        let freq = freq10 as f64 / 10.0;
        let mut row = vec![format!("{freq:.1}")];
        for dram in [false, true] {
            for simd in [Simd::Avx512, Simd::Avx256] {
                let mut spec = Spec::new(12, 8, 4096, 1, args.bytes_per_thread);
                spec.cfg = if dram {
                    MachineConfig::dram()
                } else {
                    MachineConfig::pm()
                };
                spec.cfg.freq_ghz = freq;
                spec.simd = simd;
                let r = dialga_bench::systems::encode_report(System::Isal, &spec).unwrap();
                row.push(gbs(r.throughput_gbs()));
            }
        }
        t.row(row);
    }
    t.finish(&MachineConfig::pm().digest(), args.csv);
}
