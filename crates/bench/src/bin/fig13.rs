//! Figure 13: multi-thread encoding scalability for RS(28,24) at 1 KiB and
//! 4 KiB blocks and RS(52,48) at 1 KiB.
//!
//! Paper shape: at RS(28,24)/1 KiB DIALGA scales further than ISA-L and
//! peaks ~50 % higher; at 4 KiB the gap is marginal until ISA-L's
//! high-concurrency degradation (then ~21 %); on the wide stripe DIALGA
//! beats ISA-L by up to ~183 % and the decompose strategy by up to ~140 %.

use dialga_bench::table::gbs;
use dialga_bench::{Args, Spec, System, Table};
use dialga_memsim::MachineConfig;

fn main() {
    let args = Args::parse(2 << 20);
    let mut t = Table::new(
        "fig13",
        &["code", "block", "threads", "ISA-L", "ISA-L-D", "DIALGA"],
    );
    for (k, m, block) in [(28usize, 24usize, 1024u64), (28, 24, 4096), (48, 4, 1024)] {
        for threads in [1usize, 2, 4, 8, 12, 16, 18] {
            let spec = Spec::new(k, m, block, threads, args.bytes_per_thread);
            let mut row = vec![
                format!("RS({},{})", k + m, k),
                block.to_string(),
                threads.to_string(),
            ];
            for sys in [System::Isal, System::IsalD, System::Dialga] {
                row.push(match dialga_bench::systems::encode_report(sys, &spec) {
                    Some(r) => gbs(r.throughput_gbs()),
                    None => "-".into(),
                });
            }
            t.row(row);
        }
    }
    t.finish(&MachineConfig::pm().digest(), args.csv);
}
