//! Systems under test: constructors that map each library the paper
//! compares (§5.1) onto a simulated task source.
//!
//! * **ISA-L** — table-driven dot-product pattern, HW prefetcher on.
//! * **ISA-L-noPF** — same with the BIOS-level prefetcher switch off.
//! * **ISA-L-D** — ISA-L with wide stripes decomposed into sub-stripes of
//!   24 (the same size Cerasure uses, §5.1).
//! * **Zerasure** — annealed-bitmatrix XOR code. Reported only for
//!   k ≤ 32: the paper notes its search does not converge for wide
//!   stripes ("some missing results", §5.2.1) — we reproduce the gap.
//! * **Cerasure** — greedy-bitmatrix XOR code; for wide stripes it
//!   decomposes into 24-wide sub-stripes (approximated by the decompose
//!   pattern with XOR-derived compute costs — see DESIGN.md).
//! * **DIALGA** — the adaptive scheduler (or a pinned Fig. 18 variant).

use dialga::pool::{split_ranges, EncodePool};
use dialga::source::{DialgaSource, Variant};
use dialga::Dialga;
use dialga_ec::xor::{XorCode, XorFlavor};
use dialga_memsim::{MachineConfig, RunReport};
use dialga_pipeline::cost::{CostModel, Simd};
use dialga_pipeline::decomp::DecomposeSource;
use dialga_pipeline::isal::{IsalSource, Knobs};
use dialga_pipeline::layout::StripeLayout;
use dialga_pipeline::lrc_pat::LrcSource;
use dialga_pipeline::runner::run_source;
use dialga_pipeline::xorpat::XorSource;
use std::collections::HashMap;
use std::sync::Mutex;

/// Decomposition sub-stripe width (the size Cerasure uses; §5.1).
pub const SUB_K: usize = 24;
/// Coordinator sampling interval used by figure runs (short enough that
/// multi-millisecond simulations adapt within the run).
pub const FIG_SAMPLE_NS: f64 = 50_000.0;

/// One workload point.
#[derive(Debug, Clone)]
pub struct Spec {
    /// Data blocks per stripe.
    pub k: usize,
    /// Parity blocks per stripe.
    pub m: usize,
    /// Block size in bytes.
    pub block: u64,
    /// Concurrent encoding threads.
    pub threads: usize,
    /// Data footprint per thread.
    pub bytes_per_thread: u64,
    /// Machine configuration.
    pub cfg: MachineConfig,
    /// Vector instruction set.
    pub simd: Simd,
}

impl Spec {
    /// Default-testbed spec.
    pub fn new(k: usize, m: usize, block: u64, threads: usize, bytes_per_thread: u64) -> Spec {
        Spec {
            k,
            m,
            block,
            threads,
            bytes_per_thread,
            cfg: MachineConfig::pm(),
            simd: Simd::Avx512,
        }
    }

    fn layout(&self) -> StripeLayout {
        StripeLayout::sized_for(self.k, self.m, self.block, self.bytes_per_thread)
    }

    fn cost(&self) -> CostModel {
        CostModel::new(self.simd)
    }
}

/// The compared systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// Zerasure-like annealed XOR code (k ≤ 32 only).
    Zerasure,
    /// Cerasure-like greedy XOR code (+ decompose for wide stripes).
    Cerasure,
    /// Plain ISA-L.
    Isal,
    /// ISA-L with the hardware prefetcher disabled machine-wide.
    IsalNoPf,
    /// ISA-L with decompose.
    IsalD,
    /// DIALGA (adaptive).
    Dialga,
    /// A pinned DIALGA breakdown variant (Fig. 18).
    DialgaVariant(Variant),
}

impl System {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            System::Zerasure => "Zerasure",
            System::Cerasure => "Cerasure",
            System::Isal => "ISA-L",
            System::IsalNoPf => "ISA-L-noPF",
            System::IsalD => "ISA-L-D",
            System::Dialga => "DIALGA",
            System::DialgaVariant(Variant::Vanilla) => "Vanilla",
            System::DialgaVariant(Variant::Sw) => "+SW",
            System::DialgaVariant(Variant::SwHw) => "+HW",
            System::DialgaVariant(Variant::SwHwBf) => "+BF",
            System::DialgaVariant(Variant::Adaptive) => "DIALGA",
        }
    }
}

/// XOR codes are expensive to construct (matrix search + scheduling);
/// cache them per (k, m, flavor).
fn xor_code(k: usize, m: usize, flavor: XorFlavor) -> XorCode {
    type CodeCache = HashMap<(usize, usize, u8), XorCode>;
    static CACHE: Mutex<Option<CodeCache>> = Mutex::new(None);
    let key = (
        k,
        m,
        match flavor {
            XorFlavor::Plain => 0,
            XorFlavor::Zerasure => 1,
            XorFlavor::Cerasure => 2,
            XorFlavor::Matrix => 3,
        },
    );
    let mut guard = CACHE.lock().unwrap();
    let map = guard.get_or_insert_with(HashMap::new);
    map.entry(key)
        .or_insert_with(|| XorCode::new(k, m, flavor).expect("valid geometry"))
        .clone()
}

/// Compute-cost model for a decomposed XOR encode: derive the per-source
/// per-parity cycle cost from the narrow sub-code's real schedule so the
/// decompose pattern carries Cerasure's (higher, XOR-schedule) compute.
fn xor_decomposed_cost(sub: &XorCode, block: u64, simd: Simd) -> CostModel {
    let mut cost = CostModel::new(simd);
    let packet_lines = (block / 8).div_ceil(64).max(1) as f64;
    let rows = (block / 64) as f64;
    let cycles_per_row =
        sub.schedule().op_count() as f64 * (packet_lines * cost.xor_cycles + 1.0) / rows;
    let (k, m) = (sub.params().k, sub.params().m);
    cost.gf_mad_cycles = cycles_per_row / (k as f64 * m as f64);
    cost
}

/// Run an encode workload; `None` when the system has no result at this
/// point (Zerasure on wide stripes).
pub fn encode_report(system: System, spec: &Spec) -> Option<RunReport> {
    let layout = spec.layout();
    let cost = spec.cost();
    match system {
        System::Isal => {
            let mut src = IsalSource::new(layout, cost, Knobs::default(), spec.threads);
            Some(run_source(&spec.cfg, spec.threads, &mut src))
        }
        System::IsalNoPf => {
            let mut cfg = spec.cfg.clone();
            cfg.prefetcher.enabled = false;
            let mut src = IsalSource::new(layout, cost, Knobs::default(), spec.threads);
            Some(run_source(&cfg, spec.threads, &mut src))
        }
        System::IsalD => {
            let sub_k = SUB_K.min(spec.k);
            let mut src = DecomposeSource::new(layout, cost, sub_k, spec.threads);
            Some(run_source(&spec.cfg, spec.threads, &mut src))
        }
        System::Zerasure => {
            if spec.k > 32 {
                return None; // search does not converge (paper §5.2.1)
            }
            // Zerasure and Cerasure only support AVX256 (§5.1).
            let cost = CostModel::new(Simd::Avx256);
            let code = xor_code(spec.k, spec.m, XorFlavor::Zerasure);
            let mut src = XorSource::new(layout, cost, code.schedule().clone(), spec.threads);
            Some(run_source(&spec.cfg, spec.threads, &mut src))
        }
        System::Cerasure => {
            if spec.k <= 32 {
                let cost = CostModel::new(Simd::Avx256);
                let code = xor_code(spec.k, spec.m, XorFlavor::Cerasure);
                let mut src = XorSource::new(layout, cost, code.schedule().clone(), spec.threads);
                Some(run_source(&spec.cfg, spec.threads, &mut src))
            } else {
                // Wide stripe: decompose into SUB_K-wide XOR sub-encodes.
                let sub = xor_code(SUB_K, spec.m, XorFlavor::Cerasure);
                let cost = xor_decomposed_cost(&sub, spec.block, Simd::Avx256);
                let mut src = DecomposeSource::new(layout, cost, SUB_K, spec.threads);
                Some(run_source(&spec.cfg, spec.threads, &mut src))
            }
        }
        System::Dialga => {
            let mut src = DialgaSource::new(layout, cost, spec.threads, &spec.cfg);
            src.set_sample_interval(FIG_SAMPLE_NS);
            Some(run_source(&spec.cfg, spec.threads, &mut src))
        }
        System::DialgaVariant(v) => {
            let mut src = DialgaSource::with_variant(layout, cost, spec.threads, &spec.cfg, v);
            src.set_sample_interval(FIG_SAMPLE_NS);
            Some(run_source(&spec.cfg, spec.threads, &mut src))
        }
    }
}

/// Run a decode workload repairing `lost` data blocks per stripe.
/// Survivors are the remaining data blocks plus the first parities; the
/// memory pattern reads k blocks and writes `lost` (§4.1: decode shares the
/// encode load pattern).
pub fn decode_report(system: System, spec: &Spec, lost: usize) -> Option<RunReport> {
    assert!(lost >= 1 && lost <= spec.m, "lost out of range");
    let layout = StripeLayout::sized_for(spec.k, lost, spec.block, spec.bytes_per_thread);
    let cost = spec.cost();
    // Decode compute: k sources into `lost` outputs.
    match system {
        System::Isal | System::IsalNoPf | System::IsalD => {
            let mut cfg = spec.cfg.clone();
            if system == System::IsalNoPf {
                cfg.prefetcher.enabled = false;
            }
            let mut src = IsalSource::new(layout, cost, Knobs::default(), spec.threads);
            Some(run_source(&cfg, spec.threads, &mut src))
        }
        System::Zerasure | System::Cerasure => {
            if system == System::Zerasure && spec.k > 32 {
                return None;
            }
            let flavor = if system == System::Zerasure {
                XorFlavor::Zerasure
            } else {
                XorFlavor::Cerasure
            };
            let cost = CostModel::new(Simd::Avx256); // XOR libraries are AVX256-only
            let code = xor_code(spec.k, spec.m, flavor);
            // Lose the first `lost` data blocks; survive on the rest plus
            // parity. The decode schedule is dense — the §5.4 effect.
            let lost_ids: Vec<usize> = (0..lost).collect();
            let survivors: Vec<usize> = (lost..spec.k + lost).collect();
            let schedule = code
                .decode_schedule(&survivors, &lost_ids)
                .expect("decodable");
            let mut src = XorSource::new(layout, cost, schedule, spec.threads);
            Some(run_source(&spec.cfg, spec.threads, &mut src))
        }
        System::Dialga | System::DialgaVariant(_) => {
            let mut src = DialgaSource::new(layout, cost, spec.threads, &spec.cfg);
            src.set_sample_interval(FIG_SAMPLE_NS);
            Some(run_source(&spec.cfg, spec.threads, &mut src))
        }
    }
}

/// Run an LRC(k, m, l) encode (Fig. 16). DIALGA applies its pipelined
/// software prefetching to the LRC pattern; the baselines run it plain.
pub fn lrc_report(system: System, spec: &Spec, l: usize) -> Option<RunReport> {
    let layout = StripeLayout::sized_for(spec.k, spec.m + l, spec.block, spec.bytes_per_thread);
    let cost = spec.cost();
    let knobs = match system {
        System::Dialga => Knobs {
            sw_distance: Some(spec.k as u32),
            bf_first_distance: Some(spec.k as u32 + 4),
            ..Default::default()
        },
        System::Isal => Knobs::default(),
        System::IsalNoPf => Knobs::default(),
        _ => return None,
    };
    let mut cfg = spec.cfg.clone();
    if system == System::IsalNoPf {
        cfg.prefetcher.enabled = false;
    }
    let mut src = LrcSource::new(layout, cost, spec.m, l, knobs, spec.threads);
    Some(run_source(&cfg, spec.threads, &mut src))
}

/// Real-host dispatch ablation: per-stripe cost of the persistent encode
/// pool versus spawning (and joining) a fresh set of scoped threads per
/// stripe — the pre-pool design. Both sides run the identical chunking
/// ([`split_ranges`]) and the identical kernel, so the difference is pure
/// dispatch overhead.
#[derive(Debug, Clone, Copy)]
pub struct DispatchReport {
    /// Worker threads used.
    pub threads: usize,
    /// Stripes encoded per side.
    pub stripes: u64,
    /// Persistent-pool nanoseconds per stripe.
    pub pool_ns_per_stripe: f64,
    /// Spawn-per-stripe nanoseconds per stripe.
    pub spawn_ns_per_stripe: f64,
}

impl DispatchReport {
    /// Spawn-per-stripe cost relative to the pool (>1 means the pool wins).
    pub fn speedup(&self) -> f64 {
        self.spawn_ns_per_stripe / self.pool_ns_per_stripe
    }
}

/// Encode one stripe by spawning a scoped thread per chunk (the old
/// per-call dispatch), with the same chunk boundaries the pool uses.
fn spawn_encode(coder: &Dialga, data: &[&[u8]], parity: &mut [&mut [u8]], threads: usize) {
    let len = data.first().map_or(0, |d| d.len());
    let ranges = split_ranges(len, threads);
    if ranges.len() <= 1 {
        coder.encode(data, parity).expect("encode");
        return;
    }
    let mut parity_chunks: Vec<Vec<&mut [u8]>> = ranges.iter().map(|_| Vec::new()).collect();
    for p in parity.iter_mut() {
        let mut rest: &mut [u8] = p;
        for (i, r) in ranges.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(r.len().min(rest.len()));
            parity_chunks[i].push(head);
            rest = tail;
        }
    }
    std::thread::scope(|scope| {
        for (range, mut chunk) in ranges.iter().cloned().zip(parity_chunks) {
            let data_slices: Vec<&[u8]> = data.iter().map(|d| &d[range.clone()]).collect();
            scope.spawn(move || coder.encode(&data_slices, &mut chunk).expect("encode"));
        }
    });
}

/// Measure pool vs spawn-per-stripe dispatch at one (k, m, block, threads)
/// point, `stripes` stripes per side.
pub fn dispatch_ablation(
    k: usize,
    m: usize,
    block: usize,
    threads: usize,
    stripes: u64,
) -> DispatchReport {
    let coder = Dialga::new(k, m).expect("geometry");
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..block).map(|j| ((i * 31 + j * 7) % 256) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let mut parity = vec![vec![0u8; block]; m];

    let pool = EncodePool::new(threads);
    let mut time_side = |encode: &mut dyn FnMut(&mut [&mut [u8]])| {
        let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
        encode(&mut prefs); // warm up (pool spin-up, page faults)
        let t = std::time::Instant::now();
        for _ in 0..stripes {
            encode(&mut prefs);
        }
        t.elapsed().as_nanos() as f64 / stripes as f64
    };
    let pool_ns = time_side(&mut |prefs| {
        pool.encode(&coder, &refs, prefs).expect("encode");
    });
    let spawn_ns = time_side(&mut |prefs| {
        spawn_encode(&coder, &refs, prefs, threads);
    });
    DispatchReport {
        threads,
        stripes,
        pool_ns_per_stripe: pool_ns,
        spawn_ns_per_stripe: spawn_ns,
    }
}

/// Repair one block by spawning a scoped thread per chunk (per-call
/// dispatch), with the same chunk boundaries and [`dialga::RepairPlan`]
/// kernel the pool uses.
fn spawn_repair(
    coder: &Dialga,
    shards: &[Option<Vec<u8>>],
    target: usize,
    threads: usize,
) -> Vec<u8> {
    let k = coder.params().k;
    let survivors: Vec<usize> = (0..shards.len())
        .filter(|&i| i != target && shards[i].is_some())
        .take(k)
        .collect();
    let plan = coder.repair_plan(&survivors, target).expect("plan");
    let srcs: Vec<&[u8]> = plan
        .survivors()
        .iter()
        .map(|&i| shards[i].as_deref().expect("survivor present"))
        .collect();
    let len = srcs[0].len();
    let d = coder.prefetch_distance();
    let mut out = vec![0u8; len];
    let ranges = split_ranges(len, threads);
    if ranges.len() <= 1 {
        plan.apply(&srcs, &mut out, d, false).expect("repair");
        return out;
    }
    let mut chunks: Vec<&mut [u8]> = Vec::with_capacity(ranges.len());
    let mut rest: &mut [u8] = &mut out;
    for r in &ranges {
        let (head, tail) = rest.split_at_mut(r.len().min(rest.len()));
        chunks.push(head);
        rest = tail;
    }
    std::thread::scope(|scope| {
        for (range, chunk) in ranges.iter().cloned().zip(chunks) {
            let sub: Vec<&[u8]> = srcs.iter().map(|s| &s[range.clone()]).collect();
            let plan = &plan;
            scope.spawn(move || plan.apply(&sub, chunk, d, false).expect("repair"));
        }
    });
    out
}

/// Measure pool vs spawn-per-call single-block repair dispatch at one
/// (k, m, block, threads) point, `repairs` degraded reads per side. The
/// `DispatchReport` "stripe" fields count repair calls here.
pub fn repair_dispatch_ablation(
    k: usize,
    m: usize,
    block: usize,
    threads: usize,
    repairs: u64,
) -> DispatchReport {
    let coder = Dialga::new(k, m).expect("geometry");
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| {
            (0..block)
                .map(|j| ((i * 29 + j * 13) % 256) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = coder.encode_vec(&refs).expect("encode");
    let mut shards: Vec<Option<Vec<u8>>> = data
        .into_iter()
        .map(Some)
        .chain(parity.into_iter().map(Some))
        .collect();
    let target = 0usize;
    shards[target] = None;
    let expected = {
        let mut s = shards.clone();
        coder.decode(&mut s).expect("decode");
        s[target].take().expect("repaired")
    };

    let pool = EncodePool::new(threads);
    let time_side = |repair: &mut dyn FnMut() -> Vec<u8>| {
        assert_eq!(repair(), expected); // warm up + correctness
        let t = std::time::Instant::now();
        for _ in 0..repairs {
            std::hint::black_box(repair());
        }
        t.elapsed().as_nanos() as f64 / repairs as f64
    };
    let pool_ns = time_side(&mut || pool.repair(&coder, &shards, target).expect("repair"));
    let spawn_ns = time_side(&mut || spawn_repair(&coder, &shards, target, threads));
    DispatchReport {
        threads,
        stripes: repairs,
        pool_ns_per_stripe: pool_ns,
        spawn_ns_per_stripe: spawn_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(k: usize, m: usize) -> Spec {
        Spec::new(k, m, 1024, 1, 1 << 20)
    }

    #[test]
    fn all_systems_produce_reports_on_narrow_stripes() {
        for sys in [
            System::Zerasure,
            System::Cerasure,
            System::Isal,
            System::IsalNoPf,
            System::IsalD,
            System::Dialga,
        ] {
            let r = encode_report(sys, &spec(8, 4)).expect("narrow stripe result");
            assert!(r.throughput_gbs() > 0.0, "{sys:?}");
        }
    }

    #[test]
    fn zerasure_has_no_wide_stripe_result() {
        assert!(encode_report(System::Zerasure, &spec(48, 4)).is_none());
        assert!(encode_report(System::Cerasure, &spec(48, 4)).is_some());
    }

    #[test]
    fn dialga_beats_isal_at_default_point() {
        let d = encode_report(System::Dialga, &spec(12, 4)).unwrap();
        let i = encode_report(System::Isal, &spec(12, 4)).unwrap();
        assert!(
            d.throughput_gbs() > i.throughput_gbs(),
            "DIALGA {:.2} vs ISA-L {:.2}",
            d.throughput_gbs(),
            i.throughput_gbs()
        );
    }

    #[test]
    fn decode_reports_exist() {
        for sys in [System::Cerasure, System::Isal, System::Dialga] {
            let r = decode_report(sys, &spec(8, 4), 2).expect("decode result");
            assert!(r.throughput_gbs() > 0.0, "{sys:?}");
        }
    }

    #[test]
    fn dispatch_ablation_times_both_sides() {
        let r = dispatch_ablation(6, 2, 4096, 2, 10);
        assert_eq!(r.threads, 2);
        assert!(r.pool_ns_per_stripe > 0.0);
        assert!(r.spawn_ns_per_stripe > 0.0);
        assert!(r.speedup() > 0.0);
    }

    #[test]
    fn repair_dispatch_ablation_times_both_sides() {
        let r = repair_dispatch_ablation(6, 2, 4096, 2, 10);
        assert_eq!(r.threads, 2);
        assert!(r.pool_ns_per_stripe > 0.0);
        assert!(r.spawn_ns_per_stripe > 0.0);
        assert!(r.speedup() > 0.0);
    }

    #[test]
    fn lrc_reports_exist_for_supported_systems() {
        let s = spec(12, 4);
        assert!(lrc_report(System::Isal, &s, 2).is_some());
        assert!(lrc_report(System::Dialga, &s, 2).is_some());
        assert!(lrc_report(System::Cerasure, &s, 2).is_none());
    }
}
