//! Minimal wall-clock micro-benchmark harness.
//!
//! The bench targets are plain `harness = false` binaries so the workspace
//! carries no external benchmarking dependency. The API mirrors the shape
//! of the usual group/function benchmarking crates: a [`Group`] times
//! closures with a warm-up phase and repeated fixed-size batches, and
//! reports the best batch (least interference) in ns/iter plus GB/s when a
//! throughput is declared.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target duration of one timed batch.
const BATCH: Duration = Duration::from_millis(40);
/// Warm-up duration before timing starts.
const WARMUP: Duration = Duration::from_millis(10);
/// Timed batches per benchmark; the fastest is reported.
const BATCHES: usize = 5;

/// One result line.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` identifier.
    pub id: String,
    /// Best-batch nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Bytes processed per iteration (0 when not declared).
    pub bytes_per_iter: u64,
}

impl Measurement {
    /// Throughput in GB/s, when a per-iteration byte count was declared.
    pub fn throughput_gbs(&self) -> Option<f64> {
        (self.bytes_per_iter > 0).then(|| self.bytes_per_iter as f64 / self.ns_per_iter)
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct Group {
    name: String,
    bytes: u64,
    /// Results accumulated so far (also printed as they complete).
    pub results: Vec<Measurement>,
}

/// Open a benchmark group.
pub fn group(name: &str) -> Group {
    Group {
        name: name.to_string(),
        bytes: 0,
        results: Vec::new(),
    }
}

impl Group {
    /// Declare the bytes processed per iteration (enables GB/s reporting).
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.bytes = bytes;
        self
    }

    /// Time `f`, print one aligned result line, and record it.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &mut Self {
        // Warm-up: also calibrates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let iters = ((BATCH.as_nanos() as f64 / est).ceil() as u64).max(1);

        let mut best = f64::INFINITY;
        for _ in 0..BATCHES {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
        }

        let m = Measurement {
            id: format!("{}/{}", self.name, name),
            ns_per_iter: best,
            bytes_per_iter: self.bytes,
        };
        match m.throughput_gbs() {
            Some(gbs) => println!("{:<44} {:>14.1} ns/iter {:>9.3} GB/s", m.id, best, gbs),
            None => println!("{:<44} {:>14.1} ns/iter", m.id, best),
        }
        self.results.push(m);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_reports() {
        let mut g = group("t");
        g.throughput_bytes(1024);
        g.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let m = &g.results[0];
        assert!(m.ns_per_iter > 0.0);
        assert_eq!(m.id, "t/spin");
        assert!(m.throughput_gbs().unwrap() > 0.0);
    }
}
