//! Aligned-table and CSV output for the figure binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned results table that can also serialize to CSV.
pub struct Table {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table for figure `name` with the given column headers.
    pub fn new(name: &str, header: &[&str]) -> Table {
        Table {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Print the table, preceded by the figure name and a config line.
    pub fn print(&self, config_digest: &str) {
        println!("== {} ==", self.name);
        println!("config: {config_digest}");
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(line, "{c:>w$}  ", w = w);
            }
            line.trim_end().to_string()
        };
        println!("{}", fmt_row(&self.header));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
        println!();
    }

    /// Write `results/<name>.csv`.
    pub fn write_csv(&self) -> std::io::Result<()> {
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        fs::write(dir.join(format!("{}.csv", self.name)), out)
    }

    /// Finish: print and optionally write CSV.
    pub fn finish(&self, config_digest: &str, csv: bool) {
        self.print(config_digest);
        if csv {
            if let Err(e) = self.write_csv() {
                eprintln!("csv write failed: {e}");
            }
        }
    }

    /// Access rows (for tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

/// Format a GB/s value.
pub fn gbs(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a ratio as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("figtest", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows().len(), 1);
        t.print("cfg");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn column_mismatch_panics() {
        let mut t = Table::new("figtest", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
