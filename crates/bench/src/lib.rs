#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Shared machinery for the figure-regeneration binaries.
//!
//! Every figure of the paper's evaluation (Figs. 3–19) has a binary in
//! `src/bin/` that prints the figure's series as an aligned table and,
//! with `--csv`, writes `results/figNN.csv`. This library provides the
//! systems-under-test constructors ([`systems`]) and the output helpers
//! ([`table`]).

pub mod harness;
pub mod systems;
pub mod table;

pub use systems::{Spec, System};
pub use table::Table;

/// Parse common CLI flags: `--bytes <n>` scales the per-thread footprint,
/// `--csv` writes results/<name>.csv alongside the printed table.
pub struct Args {
    /// Per-thread data footprint in bytes.
    pub bytes_per_thread: u64,
    /// Write CSV output.
    pub csv: bool,
}

impl Args {
    /// Parse from `std::env::args`, with a figure-appropriate default
    /// footprint.
    pub fn parse(default_bytes: u64) -> Args {
        let mut args = Args {
            bytes_per_thread: default_bytes,
            csv: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--bytes" => {
                    args.bytes_per_thread = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--bytes needs a number");
                }
                "--csv" => args.csv = true,
                "--quick" => args.bytes_per_thread = args.bytes_per_thread.min(1 << 20),
                other => panic!("unknown flag {other} (expected --bytes N | --csv | --quick)"),
            }
        }
        args
    }
}
