//! Microbenchmarks for the functional data-plane kernels: the real-bytes
//! GF arithmetic, RS/XOR encoders, and DIALGA's operator mechanics. These
//! measure this crate's actual code on the host CPU (unlike the figure
//! benches, which measure the simulated PM system). Timed with the
//! in-tree harness (`dialga_bench::harness`).

use dialga::encoder::{Dialga, DialgaOptions};
use dialga::operator::build_prefetch_ptrs;
use dialga_bench::harness::group;
use dialga_ec::xor::{XorCode, XorFlavor};
use dialga_ec::ReedSolomon;
use dialga_gf::slice::{mul_add_slice, mul_slice, xor_slice};
use dialga_pipeline::isal::shuffle_row;
use std::hint::black_box;

const BLOCK: usize = 64 * 1024;

fn data(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..len).map(|j| ((i * 31 + j * 7) % 256) as u8).collect())
        .collect()
}

fn bench_gf_kernels() {
    let src = data(1, BLOCK).pop().unwrap();
    let mut dst = vec![0u8; BLOCK];
    let mut g = group("gf_kernels");
    g.throughput_bytes(BLOCK as u64);
    g.bench("mul_slice", || {
        mul_slice(black_box(0x57), black_box(&src), black_box(&mut dst))
    });
    g.bench("mul_add_slice", || {
        mul_add_slice(black_box(0x57), black_box(&src), black_box(&mut dst))
    });
    g.bench("xor_slice", || {
        xor_slice(black_box(&src), black_box(&mut dst))
    });
}

fn bench_rs_encode() {
    let (k, m) = (12, 4);
    let blocks = data(k, BLOCK);
    let refs: Vec<&[u8]> = blocks.iter().map(|d| d.as_slice()).collect();
    let rs = ReedSolomon::new(k, m).unwrap();
    let dialga = Dialga::new(k, m).unwrap();
    let dialga_shuffled = Dialga::with_options(
        k,
        m,
        DialgaOptions {
            prefetch_distance: Some(2 * k as u32),
            bf_first_distance: Some(k as u32 + 4),
            shuffle: true,
            ..Default::default()
        },
    )
    .unwrap();
    let mut g = group("encode_rs12_4_64k");
    g.throughput_bytes((k * BLOCK) as u64);
    g.bench("isal_style", || rs.encode_vec(black_box(&refs)));
    g.bench("dialga_pipelined", || dialga.encode_vec(black_box(&refs)));
    g.bench("dialga_shuffled", || {
        dialga_shuffled.encode_vec(black_box(&refs))
    });
}

fn bench_xor_encode() {
    let (k, m) = (8, 4);
    let blocks = data(k, 8192);
    let refs: Vec<&[u8]> = blocks.iter().map(|d| d.as_slice()).collect();
    let plain = XorCode::new(k, m, XorFlavor::Plain).unwrap();
    let cerasure = XorCode::new(k, m, XorFlavor::Cerasure).unwrap();
    let mut g = group("encode_xor8_4_8k");
    g.throughput_bytes((k * 8192) as u64);
    g.bench("jerasure_style", || plain.encode_vec(black_box(&refs)));
    g.bench("cerasure_style", || cerasure.encode_vec(black_box(&refs)));
}

fn bench_decode() {
    let (k, m) = (12, 4);
    let blocks = data(k, 8192);
    let refs: Vec<&[u8]> = blocks.iter().map(|d| d.as_slice()).collect();
    let dialga = Dialga::new(k, m).unwrap();
    let parity = dialga.encode_vec(&refs).unwrap();
    let shards: Vec<Option<Vec<u8>>> = blocks
        .iter()
        .cloned()
        .map(Some)
        .chain(parity.into_iter().map(Some))
        .collect();
    let mut g = group("decode_rs12_4_8k");
    g.throughput_bytes((k * 8192) as u64);
    g.bench("repair_2_data", || {
        let mut s = shards.clone();
        s[1] = None;
        s[5] = None;
        dialga.decode(black_box(&mut s)).unwrap();
        s
    });
}

fn bench_operator() {
    let mut g = group("operator");
    g.bench("shuffle_row_64", || {
        let mut acc = 0u64;
        for r in 0..64u64 {
            acc ^= shuffle_row(black_box(r), 64);
        }
        acc
    });
    g.bench("build_prefetch_ptrs_k28", || {
        build_prefetch_ptrs(black_box(7), 28, 64, 56, true)
    });
}

fn main() {
    bench_gf_kernels();
    bench_rs_encode();
    bench_xor_encode();
    bench_decode();
    bench_operator();
}
