//! Criterion microbenchmarks for the functional data-plane kernels: the
//! real-bytes GF arithmetic, RS/XOR encoders, and DIALGA's operator
//! mechanics. These measure this crate's actual code on the host CPU
//! (unlike the figure benches, which measure the simulated PM system).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dialga::encoder::{Dialga, DialgaOptions};
use dialga::operator::build_prefetch_ptrs;
use dialga_ec::xor::{XorCode, XorFlavor};
use dialga_ec::ReedSolomon;
use dialga_gf::slice::{mul_add_slice, mul_slice, xor_slice};
use dialga_pipeline::isal::shuffle_row;
use std::hint::black_box;

const BLOCK: usize = 64 * 1024;

fn data(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..len).map(|j| ((i * 31 + j * 7) % 256) as u8).collect())
        .collect()
}

fn bench_gf_kernels(c: &mut Criterion) {
    let src = data(1, BLOCK).pop().unwrap();
    let mut dst = vec![0u8; BLOCK];
    let mut g = c.benchmark_group("gf_kernels");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    g.bench_function("mul_slice", |b| {
        b.iter(|| mul_slice(black_box(0x57), black_box(&src), black_box(&mut dst)))
    });
    g.bench_function("mul_add_slice", |b| {
        b.iter(|| mul_add_slice(black_box(0x57), black_box(&src), black_box(&mut dst)))
    });
    g.bench_function("xor_slice", |b| {
        b.iter(|| xor_slice(black_box(&src), black_box(&mut dst)))
    });
    g.finish();
}

fn bench_rs_encode(c: &mut Criterion) {
    let (k, m) = (12, 4);
    let blocks = data(k, BLOCK);
    let refs: Vec<&[u8]> = blocks.iter().map(|d| d.as_slice()).collect();
    let rs = ReedSolomon::new(k, m).unwrap();
    let dialga = Dialga::new(k, m).unwrap();
    let dialga_shuffled = Dialga::with_options(
        k,
        m,
        DialgaOptions {
            prefetch_distance: Some(2 * k as u32),
            shuffle: true,
        },
    )
    .unwrap();
    let mut g = c.benchmark_group("encode_rs12_4_64k");
    g.throughput(Throughput::Bytes((k * BLOCK) as u64));
    g.bench_function("isal_style", |b| b.iter(|| rs.encode_vec(black_box(&refs))));
    g.bench_function("dialga_pipelined", |b| {
        b.iter(|| dialga.encode_vec(black_box(&refs)))
    });
    g.bench_function("dialga_shuffled", |b| {
        b.iter(|| dialga_shuffled.encode_vec(black_box(&refs)))
    });
    g.finish();
}

fn bench_xor_encode(c: &mut Criterion) {
    let (k, m) = (8, 4);
    let blocks = data(k, 8192);
    let refs: Vec<&[u8]> = blocks.iter().map(|d| d.as_slice()).collect();
    let plain = XorCode::new(k, m, XorFlavor::Plain).unwrap();
    let cerasure = XorCode::new(k, m, XorFlavor::Cerasure).unwrap();
    let mut g = c.benchmark_group("encode_xor8_4_8k");
    g.throughput(Throughput::Bytes((k * 8192) as u64));
    g.bench_function("jerasure_style", |b| {
        b.iter(|| plain.encode_vec(black_box(&refs)))
    });
    g.bench_function("cerasure_style", |b| {
        b.iter(|| cerasure.encode_vec(black_box(&refs)))
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let (k, m) = (12, 4);
    let blocks = data(k, 8192);
    let refs: Vec<&[u8]> = blocks.iter().map(|d| d.as_slice()).collect();
    let dialga = Dialga::new(k, m).unwrap();
    let parity = dialga.encode_vec(&refs).unwrap();
    let shards: Vec<Option<Vec<u8>>> = blocks
        .iter()
        .cloned()
        .map(Some)
        .chain(parity.into_iter().map(Some))
        .collect();
    let mut g = c.benchmark_group("decode_rs12_4_8k");
    g.throughput(Throughput::Bytes((k * 8192) as u64));
    g.bench_function("repair_2_data", |b| {
        b.iter_batched(
            || {
                let mut s = shards.clone();
                s[1] = None;
                s[5] = None;
                s
            },
            |mut s| dialga.decode(black_box(&mut s)).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_operator(c: &mut Criterion) {
    let mut g = c.benchmark_group("operator");
    g.bench_function("shuffle_row_64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in 0..64u64 {
                acc ^= shuffle_row(black_box(r), 64);
            }
            acc
        })
    });
    g.bench_function("build_prefetch_ptrs_k28", |b| {
        b.iter(|| build_prefetch_ptrs(black_box(7), 28, 64, 56, true))
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_gf_kernels,
    bench_rs_encode,
    bench_xor_encode,
    bench_decode,
    bench_operator
);
criterion_main!(kernels);
