//! Criterion benches, one group per paper figure.
//!
//! Each group runs a reduced-footprint version of the corresponding figure
//! point through the PM simulator (the figure *binaries* in `src/bin/`
//! print the full series; these criterion entries time the regeneration
//! itself and pin one representative configuration per figure so
//! `cargo bench` exercises every experiment end to end).

use criterion::{criterion_group, criterion_main, Criterion};
use dialga::Variant;
use dialga_bench::systems::{decode_report, encode_report, lrc_report, Spec, System};
use dialga_memsim::MachineConfig;
use dialga_pipeline::cost::Simd;
use std::hint::black_box;
use std::time::Duration;

/// Small footprint so each criterion sample is a few milliseconds.
const BYTES: u64 = 512 << 10;

fn spec(k: usize, m: usize, block: u64, threads: usize) -> Spec {
    Spec::new(k, m, block, threads, BYTES)
}

fn group<'a>(c: &'a mut Criterion, name: &str) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10).measurement_time(Duration::from_secs(1)).warm_up_time(Duration::from_millis(300));
    g
}

fn fig03(c: &mut Criterion) {
    let mut g = group(c, "fig03");
    g.bench_function("pm_vs_dram", |b| {
        b.iter(|| {
            let pm = encode_report(System::Isal, &spec(12, 8, 4096, 1)).unwrap();
            let mut s = spec(12, 8, 4096, 1);
            s.cfg = MachineConfig::dram();
            let dram = encode_report(System::Isal, &s).unwrap();
            black_box((pm.throughput_gbs(), dram.throughput_gbs()))
        })
    });
    g.finish();
}

fn fig04(c: &mut Criterion) {
    let mut g = group(c, "fig04");
    g.bench_function("freq_2ghz_pm", |b| {
        b.iter(|| {
            let mut s = spec(12, 8, 4096, 1);
            s.cfg.freq_ghz = 2.0;
            black_box(encode_report(System::Isal, &s).unwrap().throughput_gbs())
        })
    });
    g.finish();
}

fn fig05(c: &mut Criterion) {
    let mut g = group(c, "fig05");
    for k in [12usize, 40] {
        g.bench_function(format!("k{k}"), |b| {
            b.iter(|| {
                black_box(
                    encode_report(System::Isal, &spec(k, 4, 4096, 1))
                        .unwrap()
                        .throughput_gbs(),
                )
            })
        });
    }
    g.finish();
}

fn fig06(c: &mut Criterion) {
    let mut g = group(c, "fig06");
    g.bench_function("block_1k_amp", |b| {
        b.iter(|| {
            black_box(
                encode_report(System::Isal, &spec(28, 24, 1024, 1))
                    .unwrap()
                    .counters
                    .media_read_amplification(),
            )
        })
    });
    g.finish();
}

fn fig07(c: &mut Criterion) {
    let mut g = group(c, "fig07");
    g.bench_function("threads8", |b| {
        b.iter(|| {
            black_box(
                encode_report(System::Isal, &spec(28, 24, 4096, 8))
                    .unwrap()
                    .throughput_gbs(),
            )
        })
    });
    g.finish();
}

fn fig10(c: &mut Criterion) {
    let mut g = group(c, "fig10");
    for sys in [System::Cerasure, System::Isal, System::IsalD, System::Dialga] {
        g.bench_function(sys.label(), |b| {
            b.iter(|| {
                black_box(
                    encode_report(sys, &spec(12, 4, 1024, 1))
                        .unwrap()
                        .throughput_gbs(),
                )
            })
        });
    }
    g.finish();
}

fn fig11(c: &mut Criterion) {
    let mut g = group(c, "fig11");
    g.bench_function("m3_dialga", |b| {
        b.iter(|| {
            black_box(
                encode_report(System::Dialga, &spec(12, 3, 1024, 1))
                    .unwrap()
                    .throughput_gbs(),
            )
        })
    });
    g.finish();
}

fn fig12(c: &mut Criterion) {
    let mut g = group(c, "fig12");
    g.bench_function("block512_dialga", |b| {
        b.iter(|| {
            black_box(
                encode_report(System::Dialga, &spec(12, 8, 512, 1))
                    .unwrap()
                    .throughput_gbs(),
            )
        })
    });
    g.finish();
}

fn fig13(c: &mut Criterion) {
    let mut g = group(c, "fig13");
    g.bench_function("wide_8threads_dialga", |b| {
        b.iter(|| {
            black_box(
                encode_report(System::Dialga, &spec(48, 4, 1024, 8))
                    .unwrap()
                    .throughput_gbs(),
            )
        })
    });
    g.finish();
}

fn fig14(c: &mut Criterion) {
    let mut g = group(c, "fig14");
    g.bench_function("decode_dialga", |b| {
        b.iter(|| {
            black_box(
                decode_report(System::Dialga, &spec(12, 4, 1024, 1), 4)
                    .unwrap()
                    .throughput_gbs(),
            )
        })
    });
    g.bench_function("decode_cerasure", |b| {
        b.iter(|| {
            black_box(
                decode_report(System::Cerasure, &spec(12, 4, 1024, 1), 4)
                    .unwrap()
                    .throughput_gbs(),
            )
        })
    });
    g.finish();
}

fn fig15(c: &mut Criterion) {
    let mut g = group(c, "fig15");
    g.bench_function("avx256_dialga", |b| {
        b.iter(|| {
            let mut s = spec(12, 8, 1024, 1);
            s.simd = Simd::Avx256;
            black_box(encode_report(System::Dialga, &s).unwrap().throughput_gbs())
        })
    });
    g.finish();
}

fn fig16(c: &mut Criterion) {
    let mut g = group(c, "fig16");
    g.bench_function("lrc12_4_2_dialga", |b| {
        b.iter(|| {
            black_box(
                lrc_report(System::Dialga, &spec(12, 4, 1024, 1), 2)
                    .unwrap()
                    .throughput_gbs(),
            )
        })
    });
    g.finish();
}

fn fig17(c: &mut Criterion) {
    let mut g = group(c, "fig17");
    g.bench_function("stall_cycles_isal", |b| {
        b.iter(|| {
            let s = spec(12, 8, 1024, 1);
            black_box(
                encode_report(System::Isal, &s)
                    .unwrap()
                    .stall_cycles_per_load(s.cfg.freq_ghz),
            )
        })
    });
    g.finish();
}

fn fig18(c: &mut Criterion) {
    let mut g = group(c, "fig18");
    for v in [Variant::Vanilla, Variant::Sw, Variant::SwHw, Variant::SwHwBf] {
        g.bench_function(System::DialgaVariant(v).label(), |b| {
            b.iter(|| {
                black_box(
                    encode_report(System::DialgaVariant(v), &spec(12, 8, 1024, 1))
                        .unwrap()
                        .throughput_gbs(),
                )
            })
        });
    }
    g.finish();
}

fn fig19(c: &mut Criterion) {
    let mut g = group(c, "fig19");
    g.bench_function("traffic_layers", |b| {
        b.iter(|| {
            let r = encode_report(System::Dialga, &spec(28, 24, 1024, 4)).unwrap();
            black_box((r.counters.imc_read_bytes, r.counters.media_read_bytes))
        })
    });
    g.finish();
}

criterion_group!(
    figures, fig03, fig04, fig05, fig06, fig07, fig10, fig11, fig12, fig13, fig14, fig15,
    fig16, fig17, fig18, fig19
);
criterion_main!(figures);
