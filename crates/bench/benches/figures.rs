//! Timed regeneration of one representative configuration per paper
//! figure.
//!
//! The figure *binaries* in `src/bin/` print the full series; these
//! entries time the regeneration itself through the PM simulator so
//! `cargo bench` exercises every experiment end to end. Timed with the
//! in-tree harness (`dialga_bench::harness`).

use dialga::Variant;
use dialga_bench::harness::group;
use dialga_bench::systems::{decode_report, encode_report, lrc_report, Spec, System};
use dialga_memsim::MachineConfig;
use dialga_pipeline::cost::Simd;
use std::hint::black_box;

/// Small footprint so each sample is a few milliseconds.
const BYTES: u64 = 512 << 10;

fn spec(k: usize, m: usize, block: u64, threads: usize) -> Spec {
    Spec::new(k, m, block, threads, BYTES)
}

fn fig03() {
    let mut g = group("fig03");
    g.bench("pm_vs_dram", || {
        let pm = encode_report(System::Isal, &spec(12, 8, 4096, 1)).unwrap();
        let mut s = spec(12, 8, 4096, 1);
        s.cfg = MachineConfig::dram();
        let dram = encode_report(System::Isal, &s).unwrap();
        black_box((pm.throughput_gbs(), dram.throughput_gbs()))
    });
}

fn fig04() {
    let mut g = group("fig04");
    g.bench("freq_2ghz_pm", || {
        let mut s = spec(12, 8, 4096, 1);
        s.cfg.freq_ghz = 2.0;
        black_box(encode_report(System::Isal, &s).unwrap().throughput_gbs())
    });
}

fn fig05() {
    let mut g = group("fig05");
    for k in [12usize, 40] {
        g.bench(&format!("k{k}"), || {
            black_box(
                encode_report(System::Isal, &spec(k, 4, 4096, 1))
                    .unwrap()
                    .throughput_gbs(),
            )
        });
    }
}

fn fig06() {
    let mut g = group("fig06");
    g.bench("block_1k_amp", || {
        black_box(
            encode_report(System::Isal, &spec(28, 24, 1024, 1))
                .unwrap()
                .counters
                .media_read_amplification(),
        )
    });
}

fn fig07() {
    let mut g = group("fig07");
    g.bench("threads8", || {
        black_box(
            encode_report(System::Isal, &spec(28, 24, 4096, 8))
                .unwrap()
                .throughput_gbs(),
        )
    });
}

fn fig10() {
    let mut g = group("fig10");
    for sys in [
        System::Cerasure,
        System::Isal,
        System::IsalD,
        System::Dialga,
    ] {
        g.bench(sys.label(), || {
            black_box(
                encode_report(sys, &spec(12, 4, 1024, 1))
                    .unwrap()
                    .throughput_gbs(),
            )
        });
    }
}

fn fig11() {
    let mut g = group("fig11");
    g.bench("m3_dialga", || {
        black_box(
            encode_report(System::Dialga, &spec(12, 3, 1024, 1))
                .unwrap()
                .throughput_gbs(),
        )
    });
}

fn fig12() {
    let mut g = group("fig12");
    g.bench("block512_dialga", || {
        black_box(
            encode_report(System::Dialga, &spec(12, 8, 512, 1))
                .unwrap()
                .throughput_gbs(),
        )
    });
}

fn fig13() {
    let mut g = group("fig13");
    g.bench("wide_8threads_dialga", || {
        black_box(
            encode_report(System::Dialga, &spec(48, 4, 1024, 8))
                .unwrap()
                .throughput_gbs(),
        )
    });
}

fn fig14() {
    let mut g = group("fig14");
    g.bench("decode_dialga", || {
        black_box(
            decode_report(System::Dialga, &spec(12, 4, 1024, 1), 4)
                .unwrap()
                .throughput_gbs(),
        )
    });
    g.bench("decode_cerasure", || {
        black_box(
            decode_report(System::Cerasure, &spec(12, 4, 1024, 1), 4)
                .unwrap()
                .throughput_gbs(),
        )
    });
}

fn fig15() {
    let mut g = group("fig15");
    g.bench("avx256_dialga", || {
        let mut s = spec(12, 8, 1024, 1);
        s.simd = Simd::Avx256;
        black_box(encode_report(System::Dialga, &s).unwrap().throughput_gbs())
    });
}

fn fig16() {
    let mut g = group("fig16");
    g.bench("lrc12_4_2_dialga", || {
        black_box(
            lrc_report(System::Dialga, &spec(12, 4, 1024, 1), 2)
                .unwrap()
                .throughput_gbs(),
        )
    });
}

fn fig17() {
    let mut g = group("fig17");
    g.bench("stall_cycles_isal", || {
        let s = spec(12, 8, 1024, 1);
        black_box(
            encode_report(System::Isal, &s)
                .unwrap()
                .stall_cycles_per_load(s.cfg.freq_ghz),
        )
    });
}

fn fig18() {
    let mut g = group("fig18");
    for v in [
        Variant::Vanilla,
        Variant::Sw,
        Variant::SwHw,
        Variant::SwHwBf,
    ] {
        g.bench(System::DialgaVariant(v).label(), || {
            black_box(
                encode_report(System::DialgaVariant(v), &spec(12, 8, 1024, 1))
                    .unwrap()
                    .throughput_gbs(),
            )
        });
    }
}

fn fig19() {
    let mut g = group("fig19");
    g.bench("traffic_layers", || {
        let r = encode_report(System::Dialga, &spec(28, 24, 1024, 4)).unwrap();
        black_box((r.counters.imc_read_bytes, r.counters.media_read_bytes))
    });
}

fn main() {
    fig03();
    fig04();
    fig05();
    fig06();
    fig07();
    fig10();
    fig11();
    fig12();
    fig13();
    fig14();
    fig15();
    fig16();
    fig17();
    fig18();
    fig19();
}
