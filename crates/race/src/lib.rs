#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! `dialga-race` — a deterministic, seeded interleaving explorer in the
//! loom/PCT shape, std-only, built on `dialga-testkit`'s SplitMix64 RNG.
//!
//! The workspace's concurrency protocols (the pool's batch latch, worker
//! healing, the shard admission queue) are pinned statically by
//! `dialga-lint` rules R8–R10; this crate pins them *dynamically*: small
//! models of those protocols written against shim sync primitives
//! ([`Mutex`], [`Condvar`], [`channel`], [`AtomicU64`] & friends,
//! [`spawn`]) run under a scheduler that serializes every sync operation
//! and explores thread interleavings:
//!
//! * **PCT mode** ([`Explorer::pct`]): seeded randomized priorities with
//!   `d` priority-change points per schedule (probabilistic concurrency
//!   testing). Every schedule is reproducible from `(seed, index)`.
//! * **Bounded exhaustive mode** ([`Explorer::exhaustive`]): depth-first
//!   enumeration of every scheduling choice, practical for models with
//!   ≤ 3 threads and short op sequences; reports completeness.
//!
//! A model is an ordinary closure using the shim types. When no
//! exploration is active the shims behave exactly like their `std::sync`
//! counterparts (pass-through mode), so model code can also run under
//! plain `cargo test`; inside [`Explorer::run`] every operation becomes a
//! *schedule point* routed through the scheduler. (The original design
//! sketch gated scheduling under `cfg(race)`; routing on an active
//! explorer instead keeps one set of compiled artifacts for tier-1 and
//! the race sweep, with zero cost outside a run — pass-through is one
//! thread-local read.)
//!
//! The explorer detects three violation classes: **deadlock** (no thread
//! runnable, not all finished — includes lost-completion hangs), **panic**
//! (any model thread panics, e.g. an assertion on a protocol invariant)
//! and **step-limit** (livelock guard). The failing schedule's op trace
//! and replay coordinates are carried on the [`Violation`].
//!
//! Scope: interleavings are explored under sequential consistency — the
//! shim atomics accept `Ordering` arguments for API fidelity but execute
//! `SeqCst` (one thread runs at a time). Weak-memory reorderings are out
//! of scope; the lint R9 role taxonomy covers ordering discipline
//! statically.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

use dialga_testkit::Rng;

// ---------------------------------------------------------------------------
// Scheduler core
// ---------------------------------------------------------------------------

/// Sentinel panic payload used to unwind model threads when a run aborts
/// (violation found elsewhere); never reported as a model failure.
struct Abort;

#[derive(Clone)]
struct Ctx {
    sched: Arc<Sched>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// What a blocked thread is waiting for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Wait {
    /// Mutex acquisition (resource id).
    Lock(usize),
    /// Condvar wait (resource id).
    Cond(usize),
    /// Channel receive (resource id).
    Recv(usize),
    /// Thread join (thread id).
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(Wait),
    Done,
}

/// One recorded scheduling decision (exhaustive mode).
#[derive(Clone, Copy, Debug)]
struct Choice {
    /// How many runnable threads there were to choose from.
    options: usize,
    /// Which one (by index into the sorted runnable set) ran.
    chosen: usize,
}

enum Strategy {
    /// Probabilistic concurrency testing: random per-thread priorities,
    /// lowered at `change_at` step indices; highest priority runs.
    Pct {
        rng: Rng,
        prio: Vec<u64>,
        change_at: Vec<usize>,
        next_change: usize,
    },
    /// Replay a recorded choice prefix, then first-choice; records every
    /// decision for the DFS driver.
    Replay { choices: Vec<Choice>, pos: usize },
}

struct SchedState {
    status: Vec<Status>,
    current: usize,
    abort: bool,
    all_done: bool,
    violation: Option<Violation>,
    steps: usize,
    max_steps: usize,
    trace: Vec<String>,
    /// Mutex resource id → owning thread id.
    lock_owner: Vec<(usize, usize)>,
    strategy: Strategy,
    /// Pending result slots of spawned threads (panic messages).
    panic_msg: Vec<Option<String>>,
}

struct Sched {
    m: StdMutex<SchedState>,
    cv: StdCondvar,
    /// Monotonic resource-id source for mutexes/condvars/channels created
    /// during this run.
    next_resource: std::sync::atomic::AtomicUsize,
    os: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Sched {
    fn new(strategy: Strategy, max_steps: usize) -> Arc<Sched> {
        Arc::new(Sched {
            m: StdMutex::new(SchedState {
                status: Vec::new(),
                current: 0,
                abort: false,
                all_done: false,
                violation: None,
                steps: 0,
                max_steps,
                trace: Vec::new(),
                lock_owner: Vec::new(),
                strategy,
                panic_msg: Vec::new(),
            }),
            cv: StdCondvar::new(),
            next_resource: std::sync::atomic::AtomicUsize::new(0),
            os: StdMutex::new(Vec::new()),
        })
    }

    fn resource_id(&self) -> usize {
        // Plain id mint; never contended for ordering (one thread runs at
        // a time), so Relaxed is enough.
        self.next_resource.fetch_add(1, Ordering::Relaxed)
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register a new logical thread; returns its id.
    fn register(&self) -> usize {
        let mut st = self.lock_state();
        let tid = st.status.len();
        st.status.push(Status::Runnable);
        st.panic_msg.push(None);
        if let Strategy::Pct { rng, prio, .. } = &mut st.strategy {
            // Initial priorities sit above every change-point value (which
            // are < 64): random and distinct with overwhelming probability.
            prio.push(64 + (rng.u64() >> 1));
        }
        tid
    }

    /// Pick the next thread to run among runnable ones. Returns `None`
    /// when nothing is runnable.
    fn pick_next(st: &mut SchedState) -> Option<usize> {
        let runnable: Vec<usize> = (0..st.status.len())
            .filter(|&t| st.status[t] == Status::Runnable)
            .collect();
        if runnable.is_empty() {
            return None;
        }
        let idx = match &mut st.strategy {
            Strategy::Pct {
                prio,
                change_at,
                next_change,
                ..
            } => {
                // PCT priority change: at each scripted step index, the
                // thread about to be descheduled drops below everyone.
                while *next_change < change_at.len() && st.steps >= change_at[*next_change] {
                    let cur = st.current;
                    if cur < prio.len() {
                        prio[cur] = (change_at.len() - *next_change) as u64;
                    }
                    *next_change += 1;
                }
                runnable
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &t)| prio.get(t).copied().unwrap_or(0))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            }
            Strategy::Replay { choices, pos } => {
                let chosen = if *pos < choices.len() {
                    choices[*pos].chosen.min(runnable.len() - 1)
                } else {
                    choices.push(Choice {
                        options: runnable.len(),
                        chosen: 0,
                    });
                    0
                };
                choices[*pos].options = runnable.len();
                *pos += 1;
                chosen
            }
        };
        Some(runnable[idx])
    }

    /// Record a violation (first wins), abort the run, wake everyone.
    fn violate(&self, st: &mut SchedState, kind: ViolationKind, message: String) {
        if st.violation.is_none() {
            st.violation = Some(Violation {
                kind,
                message,
                trace: st.trace.clone(),
                schedule: 0,
            });
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// One schedule point: log `label`, let the strategy pick who runs
    /// next, and block until it is this thread's turn again.
    fn point(&self, tid: usize, label: &str) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            std::panic::panic_any(Abort);
        }
        st.steps += 1;
        let step = st.steps;
        st.trace.push(format!("t{tid}: {label}"));
        if step > st.max_steps {
            let budget = st.max_steps;
            self.violate(
                &mut st,
                ViolationKind::StepLimit,
                format!("schedule exceeded {budget} steps (livelock?)"),
            );
            drop(st);
            std::panic::panic_any(Abort);
        }
        match Self::pick_next(&mut st) {
            Some(next) => st.current = next,
            None => {
                // The caller is runnable, so this cannot happen; guard
                // anyway to keep the host from hanging.
                st.current = tid;
            }
        }
        self.cv.notify_all();
        while st.current != tid && !st.abort {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.abort {
            drop(st);
            std::panic::panic_any(Abort);
        }
    }

    /// Block this thread on `wait` until [`Self::unblock`] frees it.
    /// Detects deadlock: nothing runnable while threads are blocked.
    fn block_on(&self, tid: usize, wait: Wait, label: &str) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            std::panic::panic_any(Abort);
        }
        st.status[tid] = Status::Blocked(wait);
        st.trace.push(format!("t{tid}: blocked {label}"));
        match Self::pick_next(&mut st) {
            Some(next) => {
                st.current = next;
                self.cv.notify_all();
            }
            None => {
                let blocked: Vec<String> = (0..st.status.len())
                    .filter_map(|t| match st.status[t] {
                        Status::Blocked(w) => Some(format!("t{t} on {w:?}")),
                        _ => None,
                    })
                    .collect();
                self.violate(
                    &mut st,
                    ViolationKind::Deadlock,
                    format!("deadlock: no runnable thread ({})", blocked.join(", ")),
                );
                drop(st);
                std::panic::panic_any(Abort);
            }
        }
        while st.status[tid] != Status::Runnable || st.current != tid {
            if st.abort {
                drop(st);
                std::panic::panic_any(Abort);
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Make every thread blocked on a wait matching `f` runnable again.
    fn unblock(st: &mut SchedState, f: impl Fn(Wait) -> bool) {
        for t in 0..st.status.len() {
            if let Status::Blocked(w) = st.status[t] {
                if f(w) {
                    st.status[t] = Status::Runnable;
                }
            }
        }
    }

    /// Like [`Self::unblock`] but frees at most one thread (lowest id —
    /// deterministic), for `notify_one` semantics.
    fn unblock_one(st: &mut SchedState, f: impl Fn(Wait) -> bool) {
        for t in 0..st.status.len() {
            if let Status::Blocked(w) = st.status[t] {
                if f(w) {
                    st.status[t] = Status::Runnable;
                    return;
                }
            }
        }
    }

    /// Mark `tid` finished (with its panic message, if it panicked on a
    /// model error), wake joiners, hand off or close out the run.
    fn finish(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.lock_state();
        st.status[tid] = Status::Done;
        st.trace.push(format!("t{tid}: exit"));
        if let Some(msg) = panic_msg {
            st.panic_msg[tid] = Some(msg.clone());
            self.violate(
                &mut st,
                ViolationKind::Panic,
                format!("thread t{tid} panicked: {msg}"),
            );
        }
        Self::unblock(&mut st, |w| w == Wait::Join(tid));
        if st.status.iter().all(|&s| s == Status::Done) {
            st.all_done = true;
            self.cv.notify_all();
            return;
        }
        match Self::pick_next(&mut st) {
            Some(next) => {
                st.current = next;
                self.cv.notify_all();
            }
            None => {
                if !st.abort {
                    let blocked: Vec<String> = (0..st.status.len())
                        .filter_map(|t| match st.status[t] {
                            Status::Blocked(w) => Some(format!("t{t} on {w:?}")),
                            _ => None,
                        })
                        .collect();
                    self.violate(
                        &mut st,
                        ViolationKind::Deadlock,
                        format!("deadlock after t{tid} exited ({})", blocked.join(", ")),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

/// Which violation class a failing schedule hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// No thread runnable while at least one is blocked — includes
    /// lost-completion hangs (a latch that never closes).
    Deadlock,
    /// A model thread panicked (failed assertion, explicit panic).
    Panic,
    /// The per-schedule step budget was exhausted (livelock guard).
    StepLimit,
}

/// A failing schedule: what went wrong, where, and how to replay it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Violation class.
    pub kind: ViolationKind,
    /// Human-readable description (panic payload, blocked-thread set, …).
    pub message: String,
    /// The serialized op trace of the failing schedule (`t<id>: <op>`).
    pub trace: Vec<String>,
    /// Index of the failing schedule within the exploration — replay with
    /// the same [`Explorer`] parameters to reproduce it.
    pub schedule: usize,
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules actually executed.
    pub schedules: usize,
    /// First violation found, if any (exploration stops at the first).
    pub violation: Option<Violation>,
    /// Exhaustive mode only: the whole bounded space was covered.
    pub complete: bool,
}

impl Report {
    /// Panic with the violation trace if one was found — the assertion
    /// helper for "this protocol model must be clean" tests.
    pub fn assert_clean(&self) {
        if let Some(v) = &self.violation {
            panic!(
                "schedule {} violated ({:?}): {}\n  trace:\n    {}",
                v.schedule,
                v.kind,
                v.message,
                v.trace.join("\n    ")
            );
        }
    }
}

enum Mode {
    Pct { seed: u64, preemptions: usize },
    Exhaustive,
}

/// Deterministic interleaving explorer. Construct with [`Explorer::pct`]
/// or [`Explorer::exhaustive`], then [`Explorer::run`] a model closure.
pub struct Explorer {
    mode: Mode,
    schedules: usize,
    max_steps: usize,
}

impl Explorer {
    /// Seeded PCT exploration over at most `schedules` schedules, with 3
    /// priority-change points per schedule (override with
    /// [`Explorer::preemptions`]).
    pub fn pct(seed: u64, schedules: usize) -> Explorer {
        Explorer {
            mode: Mode::Pct {
                seed,
                preemptions: 3,
            },
            schedules,
            max_steps: 20_000,
        }
    }

    /// Bounded exhaustive (DFS) exploration of every scheduling choice,
    /// capped at `max_schedules`. Practical for ≤ 3 threads; the report's
    /// `complete` flag says whether the bound was reached.
    pub fn exhaustive(max_schedules: usize) -> Explorer {
        Explorer {
            mode: Mode::Exhaustive,
            schedules: max_schedules,
            max_steps: 20_000,
        }
    }

    /// Set the PCT priority-change-point count (`d` in the PCT paper).
    pub fn preemptions(mut self, d: usize) -> Explorer {
        if let Mode::Pct { preemptions, .. } = &mut self.mode {
            *preemptions = d;
        }
        self
    }

    /// Set the per-schedule step budget (livelock guard).
    pub fn max_steps(mut self, steps: usize) -> Explorer {
        self.max_steps = steps;
        self
    }

    /// Explore `model` until a violation is found, the schedule budget is
    /// exhausted, or (exhaustive mode) the space is fully covered.
    pub fn run<F>(&self, model: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let model = Arc::new(model);
        let mut dfs: Vec<Choice> = Vec::new();
        let mut prev_steps = 64usize;
        for i in 0..self.schedules {
            let strategy = match &self.mode {
                Mode::Pct { seed, preemptions } => {
                    // Derive the schedule seed SplitMix-style so schedule
                    // i is reproducible in isolation.
                    let mut rng =
                        Rng::new(seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                    let mut change_at: Vec<usize> = (0..*preemptions)
                        .map(|_| rng.below(prev_steps.max(1) as u64) as usize)
                        .collect();
                    change_at.sort_unstable();
                    Strategy::Pct {
                        rng,
                        prio: Vec::new(),
                        change_at,
                        next_change: 0,
                    }
                }
                Mode::Exhaustive => Strategy::Replay {
                    choices: dfs.clone(),
                    pos: 0,
                },
            };
            let (violation, choices, steps) = run_one(strategy, self.max_steps, &model);
            prev_steps = steps.max(1);
            if let Some(mut v) = violation {
                v.schedule = i;
                return Report {
                    schedules: i + 1,
                    violation: Some(v),
                    complete: false,
                };
            }
            if let Mode::Exhaustive = self.mode {
                dfs = choices;
                // Advance DFS: increment the deepest incrementable choice,
                // truncating everything after it.
                loop {
                    match dfs.last_mut() {
                        None => {
                            return Report {
                                schedules: i + 1,
                                violation: None,
                                complete: true,
                            };
                        }
                        Some(last) if last.chosen + 1 < last.options => {
                            last.chosen += 1;
                            break;
                        }
                        Some(_) => {
                            dfs.pop();
                        }
                    }
                }
            }
        }
        Report {
            schedules: self.schedules,
            violation: None,
            complete: false,
        }
    }
}

/// Execute one schedule of `model` under `strategy`. Returns the
/// violation (if any), the recorded choices (exhaustive mode) and the
/// step count.
fn run_one(
    strategy: Strategy,
    max_steps: usize,
    model: &Arc<impl Fn() + Send + Sync + 'static>,
) -> (Option<Violation>, Vec<Choice>, usize) {
    let sched = Sched::new(strategy, max_steps);
    let t0 = sched.register();
    debug_assert_eq!(t0, 0);
    let body = Arc::clone(model);
    let sched2 = Arc::clone(&sched);
    let h = std::thread::Builder::new()
        .name("race-t0".into())
        .spawn(move || {
            CTX.with(|c| {
                *c.borrow_mut() = Some(Ctx {
                    sched: Arc::clone(&sched2),
                    tid: 0,
                });
            });
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body()));
            sched2.finish(0, panic_message(result));
        })
        .expect("spawn model thread");
    sched
        .os
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(h);

    // Host: wait until every logical thread has finished. Aborted runs
    // unwind their threads via the Abort payload, so Done is guaranteed.
    {
        let mut st = sched.lock_state();
        while !st.status.iter().all(|&s| s == Status::Done) {
            st = sched.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
    // Reap OS threads (spawned handles accumulate in sched.os).
    loop {
        let h = sched
            .os
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        match h {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    let st = sched.lock_state();
    let choices = match &st.strategy {
        Strategy::Replay { choices, .. } => choices.clone(),
        Strategy::Pct { .. } => Vec::new(),
    };
    (st.violation.clone(), choices, st.steps)
}

/// Extract a printable message from a thread result; `Abort` unwinds (run
/// teardown) are not failures.
fn panic_message(result: std::thread::Result<()>) -> Option<String> {
    match result {
        Ok(()) => None,
        Err(payload) => {
            if payload.downcast_ref::<Abort>().is_some() {
                None
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                Some((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                Some(s.clone())
            } else {
                Some("opaque panic payload".to_string())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shim: thread spawn / join
// ---------------------------------------------------------------------------

/// Join handle returned by [`spawn`]: logical join under an exploration,
/// plain `std::thread` join otherwise.
pub struct JoinHandle<T> {
    inner: HandleInner<T>,
}

enum HandleInner<T> {
    Scheduled {
        sched: Arc<Sched>,
        target: usize,
        result: Arc<StdMutex<Option<T>>>,
    },
    Std(std::thread::JoinHandle<T>),
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish; `Err` carries its panic message.
    pub fn join(self) -> Result<T, String> {
        match self.inner {
            HandleInner::Scheduled {
                sched,
                target,
                result,
            } => {
                // Handles can move between model threads (e.g. a healer
                // returns a worker handle to the submitter), so resolve
                // the *calling* thread's identity here, not at spawn.
                let tid = current_ctx()
                    .expect("joining a scheduled handle outside its exploration")
                    .tid;
                loop {
                    sched.point(tid, "join");
                    let done = {
                        let st = sched.lock_state();
                        st.status[target] == Status::Done
                    };
                    if done {
                        break;
                    }
                    sched.block_on(tid, Wait::Join(target), "join");
                }
                let msg = {
                    let st = sched.lock_state();
                    st.panic_msg[target].clone()
                };
                match msg {
                    Some(m) => Err(m),
                    None => result
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take()
                        .ok_or_else(|| "thread produced no result".to_string()),
                }
            }
            HandleInner::Std(h) => match h.join() {
                Ok(v) => Ok(v),
                Err(payload) => Err(panic_message(Err(payload)).unwrap_or_default()),
            },
        }
    }
}

/// Spawn a model thread. Under an exploration the thread is registered
/// with the scheduler and runs only when scheduled; otherwise this is
/// `std::thread::spawn`.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    match current_ctx() {
        Some(ctx) => {
            let tid = ctx.sched.register();
            let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
            let result2 = Arc::clone(&result);
            let sched = Arc::clone(&ctx.sched);
            let h = std::thread::Builder::new()
                .name(format!("race-t{tid}"))
                .spawn(move || {
                    CTX.with(|c| {
                        *c.borrow_mut() = Some(Ctx {
                            sched: Arc::clone(&sched),
                            tid,
                        });
                    });
                    // Wait for the first turn before touching the model.
                    {
                        let mut st = sched.lock_state();
                        while st.current != tid && !st.abort {
                            st = sched.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                        }
                        if st.abort {
                            drop(st);
                            sched.finish(tid, None);
                            return;
                        }
                    }
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    let msg = match out {
                        Ok(v) => {
                            *result2.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                            None
                        }
                        Err(payload) => panic_message(Err(payload)),
                    };
                    sched.finish(tid, msg);
                })
                .expect("spawn race thread");
            ctx.sched
                .os
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(h);
            // Give the scheduler the chance to run the child immediately.
            ctx.sched.point(ctx.tid, "spawn");
            JoinHandle {
                inner: HandleInner::Scheduled {
                    sched: ctx.sched,
                    target: tid,
                    result,
                },
            }
        }
        None => JoinHandle {
            inner: HandleInner::Std(std::thread::spawn(f)),
        },
    }
}

// ---------------------------------------------------------------------------
// Shim: Mutex + Condvar
// ---------------------------------------------------------------------------

/// Shim mutex: logical ownership goes through the scheduler during an
/// exploration; plain `std::sync::Mutex` otherwise.
pub struct Mutex<T> {
    name: &'static str,
    id: StdMutex<Option<usize>>,
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// New unnamed mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex::named("mutex", value)
    }

    /// New mutex with a `name` used in schedule traces.
    pub fn named(name: &'static str, value: T) -> Mutex<T> {
        Mutex {
            name,
            id: StdMutex::new(None),
            data: StdMutex::new(value),
        }
    }

    fn ensure_id(&self, sched: &Sched) -> usize {
        let mut id = self.id.lock().unwrap_or_else(PoisonError::into_inner);
        *id.get_or_insert_with(|| sched.resource_id())
    }

    /// Acquire the lock (a schedule point; blocks logically while owned).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match current_ctx() {
            Some(ctx) => {
                let id = self.ensure_id(&ctx.sched);
                loop {
                    ctx.sched.point(ctx.tid, self.name);
                    let acquired = {
                        let mut st = ctx.sched.lock_state();
                        if st.lock_owner.iter().any(|&(l, _)| l == id) {
                            false
                        } else {
                            st.lock_owner.push((id, ctx.tid));
                            let name = self.name;
                            let tid = ctx.tid;
                            st.trace.push(format!("t{tid}: acquired {name}"));
                            true
                        }
                    };
                    if acquired {
                        break;
                    }
                    ctx.sched.block_on(ctx.tid, Wait::Lock(id), self.name);
                }
                let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
                MutexGuard {
                    mutex: self,
                    inner: Some(inner),
                    ctx: Some(ctx),
                    id,
                }
            }
            None => MutexGuard {
                mutex: self,
                inner: Some(self.data.lock().unwrap_or_else(PoisonError::into_inner)),
                ctx: None,
                id: 0,
            },
        }
    }
}

/// Guard for [`Mutex`]; releasing it (drop) is a scheduler event.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    ctx: Option<Ctx>,
    id: usize,
}

impl<T> MutexGuard<'_, T> {
    /// Release logical ownership (scheduler bookkeeping only).
    fn release(&mut self) {
        self.inner = None;
        if let Some(ctx) = &self.ctx {
            let mut st = ctx.sched.lock_state();
            st.lock_owner.retain(|&(l, _)| l != self.id);
            let name = self.mutex.name;
            let tid = ctx.tid;
            st.trace.push(format!("t{tid}: released {name}"));
            Sched::unblock(&mut st, |w| w == Wait::Lock(self.id));
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard released")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            self.release();
            // Make the handoff visible as a schedule point — but never
            // unwind out of a drop that is itself part of an unwind.
            if let Some(ctx) = self.ctx.clone() {
                if !std::thread::panicking() {
                    ctx.sched.point(ctx.tid, "unlock");
                }
            }
        }
    }
}

/// Shim condvar paired with [`Mutex`].
pub struct Condvar {
    id: StdMutex<Option<usize>>,
    std: StdCondvar,
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    /// New condvar.
    pub fn new() -> Condvar {
        Condvar {
            id: StdMutex::new(None),
            std: StdCondvar::new(),
        }
    }

    fn ensure_id(&self, sched: &Sched) -> usize {
        let mut id = self.id.lock().unwrap_or_else(PoisonError::into_inner);
        *id.get_or_insert_with(|| sched.resource_id())
    }

    /// Release the guard's lock, wait for a notification, reacquire.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match guard.ctx.clone() {
            Some(ctx) => {
                let id = self.ensure_id(&ctx.sched);
                let mutex = guard.mutex;
                guard.release();
                drop(guard); // fully released; drop sees inner == None
                ctx.sched.block_on(ctx.tid, Wait::Cond(id), "condvar wait");
                mutex.lock()
            }
            None => {
                let mutex = guard.mutex;
                let inner = guard.inner.take().expect("guard released");
                // Forget the shim bookkeeping (no scheduler): plain wait.
                let inner = self.std.wait(inner).unwrap_or_else(PoisonError::into_inner);
                MutexGuard {
                    mutex,
                    inner: Some(inner),
                    ctx: None,
                    id: 0,
                }
            }
        }
    }

    /// Wake one waiter (deterministically the lowest thread id).
    pub fn notify_one(&self) {
        match current_ctx() {
            Some(ctx) => {
                let id = self.ensure_id(&ctx.sched);
                let mut st = ctx.sched.lock_state();
                Sched::unblock_one(&mut st, |w| w == Wait::Cond(id));
            }
            None => self.std.notify_one(),
        }
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        match current_ctx() {
            Some(ctx) => {
                let id = self.ensure_id(&ctx.sched);
                let mut st = ctx.sched.lock_state();
                Sched::unblock(&mut st, |w| w == Wait::Cond(id));
            }
            None => self.std.notify_all(),
        }
    }
}

// ---------------------------------------------------------------------------
// Shim: mpsc-style channel
// ---------------------------------------------------------------------------

struct ChanInner<T> {
    q: VecDeque<T>,
    senders: usize,
    rx_alive: bool,
}

struct Chan<T> {
    id: StdMutex<Option<usize>>,
    inner: StdMutex<ChanInner<T>>,
    cv: StdCondvar,
}

impl<T> Chan<T> {
    fn ensure_id(&self, sched: &Sched) -> usize {
        let mut id = self.id.lock().unwrap_or_else(PoisonError::into_inner);
        *id.get_or_insert_with(|| sched.resource_id())
    }
}

/// Sending half of [`channel`]. Cloneable, like `std::sync::mpsc`.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone; carries
/// the unsent value (mirrors `std::sync::mpsc::SendError`).
#[derive(Debug)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Receiving half of [`channel`].
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Unbounded FIFO channel shim in the `std::sync::mpsc` shape.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        id: StdMutex::new(None),
        inner: StdMutex::new(ChanInner {
            q: VecDeque::new(),
            senders: 1,
            rx_alive: true,
        }),
        cv: StdCondvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        let mut inner = self
            .chan
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        inner.senders += 1;
        drop(inner);
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Sender<T> {
    /// Send one value; fails when the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match current_ctx() {
            Some(ctx) => {
                let id = self.chan.ensure_id(&ctx.sched);
                ctx.sched.point(ctx.tid, "send");
                let mut inner = self
                    .chan
                    .inner
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if !inner.rx_alive {
                    return Err(SendError(value));
                }
                inner.q.push_back(value);
                drop(inner);
                let mut st = ctx.sched.lock_state();
                Sched::unblock(&mut st, |w| w == Wait::Recv(id));
                Ok(())
            }
            None => {
                let mut inner = self
                    .chan
                    .inner
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if !inner.rx_alive {
                    return Err(SendError(value));
                }
                inner.q.push_back(value);
                drop(inner);
                self.chan.cv.notify_all();
                Ok(())
            }
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self
            .chan
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        inner.senders -= 1;
        let disconnected = inner.senders == 0;
        drop(inner);
        if disconnected {
            // Blocked receivers must observe the disconnect.
            if let Some(ctx) = current_ctx() {
                let id = self.chan.ensure_id(&ctx.sched);
                let mut st = ctx.sched.lock_state();
                Sched::unblock(&mut st, |w| w == Wait::Recv(id));
            } else {
                self.chan.cv.notify_all();
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Receive one value, blocking until one arrives or every sender is
    /// dropped with the queue empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        match current_ctx() {
            Some(ctx) => {
                let id = self.chan.ensure_id(&ctx.sched);
                loop {
                    ctx.sched.point(ctx.tid, "recv");
                    let mut inner = self
                        .chan
                        .inner
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    if let Some(v) = inner.q.pop_front() {
                        return Ok(v);
                    }
                    if inner.senders == 0 {
                        return Err(RecvError);
                    }
                    drop(inner);
                    ctx.sched.block_on(ctx.tid, Wait::Recv(id), "recv");
                }
            }
            None => {
                let mut inner = self
                    .chan
                    .inner
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(v) = inner.q.pop_front() {
                        return Ok(v);
                    }
                    if inner.senders == 0 {
                        return Err(RecvError);
                    }
                    inner = self
                        .chan
                        .cv
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Non-blocking receive (`None` when empty — disconnects surface via
    /// [`Receiver::recv`]).
    pub fn try_recv(&self) -> Option<T> {
        if let Some(ctx) = current_ctx() {
            ctx.sched.point(ctx.tid, "try_recv");
        }
        self.chan
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .q
            .pop_front()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self
            .chan
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        inner.rx_alive = false;
        inner.q.clear();
    }
}

// ---------------------------------------------------------------------------
// Shim: atomics
// ---------------------------------------------------------------------------

macro_rules! shim_atomic {
    ($name:ident, $std:ty, $val:ty) => {
        /// Shim atomic: every op is a schedule point under an
        /// exploration. `Ordering` arguments are accepted for API
        /// fidelity but execute `SeqCst` — interleavings are explored
        /// under sequential consistency (see crate docs).
        pub struct $name {
            v: $std,
        }

        impl $name {
            /// New shim atomic with `value`.
            pub fn new(value: $val) -> $name {
                $name {
                    v: <$std>::new(value),
                }
            }

            fn pt(&self, label: &str) {
                if let Some(ctx) = current_ctx() {
                    ctx.sched.point(ctx.tid, label);
                }
            }

            /// Atomic load (schedule point).
            pub fn load(&self, _order: Ordering) -> $val {
                self.pt(concat!(stringify!($name), ".load"));
                self.v.load(Ordering::SeqCst)
            }

            /// Atomic store (schedule point).
            pub fn store(&self, value: $val, _order: Ordering) {
                self.pt(concat!(stringify!($name), ".store"));
                self.v.store(value, Ordering::SeqCst);
            }

            /// Atomic swap (schedule point).
            pub fn swap(&self, value: $val, _order: Ordering) -> $val {
                self.pt(concat!(stringify!($name), ".swap"));
                self.v.swap(value, Ordering::SeqCst)
            }
        }
    };
}

shim_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

macro_rules! shim_atomic_arith {
    ($name:ident, $val:ty) => {
        impl $name {
            /// Atomic add, returning the previous value (schedule point).
            pub fn fetch_add(&self, value: $val, _order: Ordering) -> $val {
                self.pt(concat!(stringify!($name), ".fetch_add"));
                self.v.fetch_add(value, Ordering::SeqCst)
            }

            /// Atomic subtract, returning the previous value (schedule
            /// point).
            pub fn fetch_sub(&self, value: $val, _order: Ordering) -> $val {
                self.pt(concat!(stringify!($name), ".fetch_sub"));
                self.v.fetch_sub(value, Ordering::SeqCst)
            }

            /// Atomic max ratchet, returning the previous value (schedule
            /// point).
            pub fn fetch_max(&self, value: $val, _order: Ordering) -> $val {
                self.pt(concat!(stringify!($name), ".fetch_max"));
                self.v.fetch_max(value, Ordering::SeqCst)
            }
        }
    };
}

shim_atomic_arith!(AtomicU64, u64);
shim_atomic_arith!(AtomicUsize, usize);

// ---------------------------------------------------------------------------
// Self-tests of the scheduler machinery
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each do a non-atomic read-modify-write (load, then
    /// store) on a shared counter. Exhaustive exploration must find the
    /// lost update; the final assert runs on the model's main thread.
    fn lost_update_model() {
        let n = Arc::new(AtomicU64::new(0));
        let mk = |n: Arc<AtomicU64>| {
            move || {
                let v = n.load(Ordering::Acquire);
                n.store(v + 1, Ordering::Release);
            }
        };
        let a = spawn(mk(Arc::clone(&n)));
        let b = spawn(mk(Arc::clone(&n)));
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(n.load(Ordering::Acquire), 2, "lost update");
    }

    #[test]
    fn exhaustive_finds_lost_update() {
        let report = Explorer::exhaustive(10_000).run(lost_update_model);
        let v = report.violation.expect("exhaustive must find the race");
        assert_eq!(v.kind, ViolationKind::Panic);
        assert!(v.message.contains("lost update"), "{}", v.message);
    }

    #[test]
    fn pct_finds_lost_update() {
        let report = Explorer::pct(0xD1A1, 500).run(lost_update_model);
        assert!(report.violation.is_some(), "PCT must find the race");
    }

    #[test]
    fn pct_is_deterministic() {
        let r1 = Explorer::pct(42, 200).run(lost_update_model);
        let r2 = Explorer::pct(42, 200).run(lost_update_model);
        let (v1, v2) = (r1.violation.unwrap(), r2.violation.unwrap());
        assert_eq!(v1.schedule, v2.schedule);
        assert_eq!(v1.trace, v2.trace);
    }

    #[test]
    fn fetch_add_model_is_clean() {
        // The same counter bumped with a real RMW has no race.
        let report = Explorer::exhaustive(10_000).run(|| {
            let n = Arc::new(AtomicU64::new(0));
            let mk = |n: Arc<AtomicU64>| move || n.fetch_add(1, Ordering::AcqRel);
            let a = spawn(mk(Arc::clone(&n)));
            let b = spawn(mk(Arc::clone(&n)));
            a.join().unwrap();
            b.join().unwrap();
            assert_eq!(n.load(Ordering::Acquire), 2);
        });
        report.assert_clean();
        assert!(report.complete, "2-thread RMW model must be exhaustible");
    }

    #[test]
    fn deadlock_is_detected() {
        // Classic AB/BA lock inversion across two threads.
        let report = Explorer::pct(7, 500).run(|| {
            let a = Arc::new(Mutex::named("A", ()));
            let b = Arc::new(Mutex::named("B", ()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            {
                let _gb = b.lock();
                let _ga = a.lock();
            }
            let _ = t.join();
        });
        let v = report.violation.expect("inversion must deadlock");
        assert_eq!(v.kind, ViolationKind::Deadlock);
    }

    #[test]
    fn channel_disconnect_surfaces() {
        let report = Explorer::pct(3, 100).run(|| {
            let (tx, rx) = channel::<u32>();
            let t = spawn(move || {
                tx.send(1).unwrap();
                // tx dropped here: receiver must see Ok(1) then Err.
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            t.join().unwrap();
        });
        report.assert_clean();
    }

    #[test]
    fn condvar_wakes_waiter() {
        let report = Explorer::pct(11, 200).run(|| {
            let state = Arc::new((Mutex::named("flag", false), Condvar::new()));
            let s2 = Arc::clone(&state);
            let t = spawn(move || {
                let (m, cv) = &*s2;
                let mut g = m.lock();
                *g = true;
                drop(g);
                cv.notify_all();
            });
            let (m, cv) = &*state;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
            drop(g);
            t.join().unwrap();
        });
        report.assert_clean();
    }

    #[test]
    fn passthrough_mode_works_without_explorer() {
        // Shims degrade to plain std behavior outside a run.
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let (tx, rx) = channel();
        tx.send(9u8).unwrap();
        assert_eq!(rx.recv(), Ok(9));
        let h = spawn(|| 123u64);
        assert_eq!(h.join().unwrap(), 123);
    }
}
