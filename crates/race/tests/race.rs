//! Interleaving-explored models of DIALGA's concurrency protocols.
//!
//! Each *real* model mirrors a protocol that ships in `crates/core` /
//! `crates/service` (the pool batch latch, `heal_workers` respawn, the
//! shard DRR admission queue, and the stats-vs-admit lock order) and must
//! stay clean across the full seeded sweep (`RACE_SCHEDULES`, default
//! 1000). Each *bug* model re-introduces one of the three PR 3 pool bugs
//! and must be caught by the explorer under a fixed seed within a bounded
//! schedule budget — these are the proof the harness has teeth.
//!
//! Run the full sweep with `just race`; `scripts/lint.sh` runs the same
//! tests with a small `RACE_SCHEDULES` budget as the `race --smoke`
//! stage.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use dialga_race::{
    channel, spawn, AtomicBool, AtomicU64, Condvar, Explorer, Mutex, Sender, ViolationKind,
};

/// Full-sweep schedule budget; `scripts/lint.sh --smoke` lowers it.
fn budget() -> usize {
    std::env::var("RACE_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000)
}

// ---------------------------------------------------------------------------
// Shared model vocabulary: the pool batch latch (pool.rs `BatchState` /
// `Chunk`), shrunk to its synchronization skeleton.
// ---------------------------------------------------------------------------

struct BatchInner {
    remaining: usize,
    failed: bool,
}

struct Batch {
    inner: Mutex<BatchInner>,
    cv: Condvar,
}

impl Batch {
    fn new(participants: usize) -> Arc<Batch> {
        Arc::new(Batch {
            inner: Mutex::named(
                "batch.inner",
                BatchInner {
                    remaining: participants,
                    failed: false,
                },
            ),
            cv: Condvar::new(),
        })
    }

    /// One participant completes (mirrors `BatchState::complete`).
    fn complete(&self, ok: bool) {
        let mut g = self.inner.lock();
        if !ok {
            g.failed = true;
        }
        g.remaining -= 1;
        let done = g.remaining == 0;
        drop(g);
        if done {
            self.cv.notify_all();
        }
    }

    /// Block until every participant completed; `true` iff all succeeded
    /// (mirrors `BatchState::wait_with_deadline`'s Clean/Failed split).
    fn wait(&self) -> bool {
        let mut g = self.inner.lock();
        while g.remaining > 0 {
            g = self.cv.wait(g);
        }
        !g.failed
    }

    /// The PR 3 panic-escalation bug: the old wait asserted the batch
    /// never fails instead of reporting `Failed` to the caller.
    fn wait_panicky(&self) {
        let mut g = self.inner.lock();
        while g.remaining > 0 {
            g = self.cv.wait(g);
        }
        assert!(!g.failed, "batch failed under panicky wait");
    }
}

/// One unit of latched work (mirrors pool.rs `Chunk`): completes exactly
/// once, via `finish` on the happy path or `Drop` on every other path —
/// the contract lint R10 enforces statically.
struct Chunk {
    batch: Arc<Batch>,
    finished: bool,
}

impl Chunk {
    fn new(batch: &Arc<Batch>) -> Chunk {
        Chunk {
            batch: Arc::clone(batch),
            finished: false,
        }
    }

    fn finish(mut self, ok: bool) {
        self.finished = true;
        self.batch.complete(ok);
    }
}

impl Drop for Chunk {
    fn drop(&mut self) {
        if !self.finished {
            self.batch.complete(false);
        }
    }
}

impl std::fmt::Debug for Chunk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chunk")
            .field("finished", &self.finished)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Real model 1: pool-latch quiesce.
//
// A submitter fans a 2-chunk batch out to two workers; one worker's
// channel is already dead (worker death), so that send fails and the
// returned chunk's Drop closes its latch slot. The submitter must wait
// for the latch before releasing the shared frame; the live worker
// asserts the frame is still alive when it touches it.
// ---------------------------------------------------------------------------

fn pool_latch_model(wait_before_free: bool) {
    let frame = Arc::new(AtomicBool::new(true));
    let batch = Batch::new(2);

    let (tx_a, rx_a) = channel::<Chunk>();
    let (tx_b, rx_b) = channel::<Chunk>();
    drop(rx_b); // worker B died before dispatch

    let frame_a = Arc::clone(&frame);
    let worker_a = spawn(move || {
        let chunk = rx_a.recv().expect("worker A receives its chunk");
        assert!(
            frame_a.load(Ordering::Acquire),
            "worker touched freed frame"
        );
        chunk.finish(true);
    });

    if let Err(dead) = tx_b.send(Chunk::new(&batch)) {
        drop(dead); // SendError carries the chunk back; Drop closes the latch
    }
    tx_a.send(Chunk::new(&batch)).expect("worker A is alive");

    if wait_before_free {
        let clean = batch.wait();
        assert!(!clean, "worker B's chunk must report failure");
    }
    // Quiesced (or not, in the bug variant): release the frame.
    frame.store(false, Ordering::Release);

    drop(tx_a);
    worker_a.join().expect("worker A exits cleanly");
}

#[test]
fn pool_latch_model_clean() {
    Explorer::pct(0xD1A7_0001, budget())
        .run(|| pool_latch_model(true))
        .assert_clean();
}

/// PR 3 bug model 1: the submitter frees the frame without waiting for
/// the latch after a failed send — the use-after-free class. Caught as a
/// panic on the live worker's frame assertion.
#[test]
fn bug_model_use_after_free_is_caught() {
    let report = Explorer::pct(0xBAD_0001, 500).run(|| pool_latch_model(false));
    let v = report
        .violation
        .expect("explorer must catch the use-after-free model");
    assert_eq!(v.kind, ViolationKind::Panic);
    assert!(v.message.contains("freed frame"), "{}", v.message);
}

/// PR 3 bug model 2: a chunk whose failure path never completes the
/// latch (the missing-`Drop` class). The submitter waits forever — the
/// explorer reports the hang as a deadlock.
#[test]
fn bug_model_lost_completion_deadlocks() {
    let report = Explorer::pct(0xBAD_0002, 500).run(|| {
        let batch = Batch::new(2);
        let (tx_a, rx_a) = channel::<Chunk>();
        let (tx_b, rx_b) = channel::<Chunk>();
        drop(rx_b);

        let worker_a = spawn(move || {
            rx_a.recv()
                .expect("worker A receives its chunk")
                .finish(true);
        });

        if let Err(dead) = tx_b.send(Chunk::new(&batch)) {
            // The bug: leak the chunk instead of letting Drop complete it.
            std::mem::forget(dead.0);
        }
        tx_a.send(Chunk::new(&batch)).expect("worker A is alive");

        batch.wait(); // hangs: remaining never reaches 0
        drop(tx_a);
        worker_a.join().unwrap();
    });
    let v = report
        .violation
        .expect("explorer must catch the lost-completion model");
    assert_eq!(v.kind, ViolationKind::Deadlock);
}

/// PR 3 bug model 3: the old wait escalated a failed batch to a panic in
/// the submitter instead of returning `Failed`.
#[test]
fn bug_model_panic_escalation_is_caught() {
    let report = Explorer::pct(0xBAD_0003, 500).run(|| {
        let batch = Batch::new(1);
        let (tx, rx) = channel::<Chunk>();
        let worker = spawn(move || {
            // Worker hits a decode error: completes with failure.
            rx.recv().expect("worker receives its chunk").finish(false);
        });
        tx.send(Chunk::new(&batch)).expect("worker is alive");
        batch.wait_panicky();
        drop(tx);
        worker.join().unwrap();
    });
    let v = report
        .violation
        .expect("explorer must catch the panic-escalation model");
    assert_eq!(v.kind, ViolationKind::Panic);
    assert!(v.message.contains("panicky"), "{}", v.message);
}

// ---------------------------------------------------------------------------
// Real model 2: heal_workers respawn.
//
// A single-slot pool whose worker is dead. A healer probes the slot
// (send under the slots lock — the pool.rs `lint:allow(lock-order)`
// site: probe + replace must be atomic per slot, and the shim channel,
// like std's, is unbounded so the send never blocks) and respawns the
// worker in place. The submitter's first batch may fail; after the heal
// completes, a bounded retry must succeed.
// ---------------------------------------------------------------------------

enum Msg {
    Ping,
    Work(Chunk),
}

fn try_batch(slot: &Arc<Mutex<Option<Sender<Msg>>>>) -> bool {
    let batch = Batch::new(1);
    let tx = {
        let g = slot.lock();
        g.as_ref().expect("slot populated").clone()
    };
    if let Err(dead) = tx.send(Msg::Work(Chunk::new(&batch))) {
        drop(dead); // chunk Drop closes the latch with failure
    }
    batch.wait()
}

#[test]
fn heal_respawn_model_clean() {
    let report = Explorer::pct(0xD1A7_0002, budget()).run(|| {
        let (dead_tx, dead_rx) = channel::<Msg>();
        drop(dead_rx); // the worker died some time ago
        let slot = Arc::new(Mutex::named("slots", Some(dead_tx)));

        let slot_h = Arc::clone(&slot);
        let healer = spawn(move || {
            let mut g = slot_h.lock();
            let probe_failed = match g.as_ref() {
                Some(tx) => tx.send(Msg::Ping).is_err(),
                None => true,
            };
            if probe_failed {
                let (tx, rx) = channel::<Msg>();
                let worker = spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            Msg::Ping => {}
                            Msg::Work(chunk) => chunk.finish(true),
                        }
                    }
                });
                *g = Some(tx); // respawn in place, still under the slot lock
                drop(g);
                Some(worker)
            } else {
                None
            }
        });

        let first = try_batch(&slot);
        // Bounded idempotent retry: once the healer has run, a single
        // retry must succeed.
        let worker = healer.join().expect("healer exits cleanly");
        let healed = if first { true } else { try_batch(&slot) };
        assert!(healed, "retry after heal must succeed");

        slot.lock().take(); // close the channel so the worker exits
        if let Some(w) = worker {
            w.join().expect("respawned worker exits cleanly");
        }
    });
    report.assert_clean();
}

// ---------------------------------------------------------------------------
// Real model 3: DRR admission accounting.
//
// Two producers admit jobs into a shard queue (occupancy bumped under
// the queue lock, like `Shard::admit`); a master drains it
// (`Shard::next_batch`). At quiesce, occupancy is zero and every
// admitted job was completed exactly once.
// ---------------------------------------------------------------------------

struct QueueState {
    q: VecDeque<u64>,
    closed: bool,
}

#[test]
fn drr_admission_model_clean() {
    let report = Explorer::pct(0xD1A7_0003, budget()).run(|| {
        let queue = Arc::new(Mutex::named(
            "queue",
            QueueState {
                q: VecDeque::new(),
                closed: false,
            },
        ));
        let cv = Arc::new(Condvar::new());
        let occupancy = Arc::new(AtomicU64::new(0));
        let completed = Arc::new(AtomicU64::new(0));

        let master = {
            let (queue, cv) = (Arc::clone(&queue), Arc::clone(&cv));
            let (occupancy, completed) = (Arc::clone(&occupancy), Arc::clone(&completed));
            spawn(move || loop {
                let mut g = queue.lock();
                loop {
                    if let Some(_job) = g.q.pop_front() {
                        // Occupancy mutates under the queue lock, as in
                        // Shard::next_batch.
                        occupancy.fetch_sub(1, Ordering::Relaxed);
                        drop(g);
                        completed.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    if g.closed {
                        return;
                    }
                    g = cv.wait(g);
                }
            })
        };

        let producers: Vec<_> = (0..2u64)
            .map(|p| {
                let (queue, cv) = (Arc::clone(&queue), Arc::clone(&cv));
                let occupancy = Arc::clone(&occupancy);
                spawn(move || {
                    for j in 0..2u64 {
                        let mut g = queue.lock();
                        g.q.push_back(p * 10 + j);
                        occupancy.fetch_add(1, Ordering::Relaxed);
                        drop(g);
                        cv.notify_one();
                    }
                })
            })
            .collect();

        for p in producers {
            p.join().expect("producer exits cleanly");
        }
        queue.lock().closed = true;
        cv.notify_all();
        master.join().expect("master exits cleanly");

        assert_eq!(occupancy.load(Ordering::Relaxed), 0, "occupancy leak");
        assert_eq!(completed.load(Ordering::Relaxed), 4, "lost or doubled job");
    });
    report.assert_clean();
}

// ---------------------------------------------------------------------------
// Real model 4 (lock-order pin, satellite of R8): StripeService::stats
// takes the pool's slots lock and each shard's queue lock sequentially —
// never nested — while admit takes queue then (after dropping it)
// slots. This model pins that protocol: no interleaving deadlocks.
// The inverted variant below shows what R8 prevents.
// ---------------------------------------------------------------------------

#[test]
fn stats_vs_admit_lock_order_clean() {
    let report = Explorer::pct(0xD1A7_0004, budget()).run(|| {
        let queue = Arc::new(Mutex::named("queue", 0u64));
        let slots = Arc::new(Mutex::named("slots", 0u64));

        let admit = {
            let (queue, slots) = (Arc::clone(&queue), Arc::clone(&slots));
            spawn(move || {
                for _ in 0..2 {
                    // Shard::admit: queue lock released before dispatch
                    // touches the pool.
                    *queue.lock() += 1;
                    *slots.lock() += 1;
                }
            })
        };
        // StripeService::stats: pool stats, then shard snapshot —
        // sequential acquisitions, never held together.
        for _ in 0..2 {
            let busy = *slots.lock();
            let depth = *queue.lock();
            // Reads are advisory snapshots: each is bounded by the
            // admit loop's total, but no joint invariant is implied.
            assert!(busy <= 2 && depth <= 2);
        }
        admit.join().expect("admit exits cleanly");
    });
    report.assert_clean();
}

/// The protocol violation R8 exists to prevent: stats holding `slots`
/// while taking `queue`, racing admit holding `queue` while taking
/// `slots`. The explorer finds the AB/BA deadlock.
#[test]
fn inverted_lock_order_deadlocks() {
    let report = Explorer::pct(0xBAD_0004, 500).run(|| {
        let queue = Arc::new(Mutex::named("queue", 0u64));
        let slots = Arc::new(Mutex::named("slots", 0u64));
        let admit = {
            let (queue, slots) = (Arc::clone(&queue), Arc::clone(&slots));
            spawn(move || {
                let _q = queue.lock();
                let _s = slots.lock();
            })
        };
        {
            let _s = slots.lock();
            let _q = queue.lock();
        }
        let _ = admit.join();
    });
    let v = report
        .violation
        .expect("explorer must find the AB/BA deadlock");
    assert_eq!(v.kind, ViolationKind::Deadlock);
}

// ---------------------------------------------------------------------------
// Real model 5 (PR 10 tentpole): the stripe store's shadow-slot
// commit-record protocol (store.rs `write_stripe` + `commit` vs
// `recover`). The writer seals a shadow slot — payload first, then the
// footer that binds it — and only then publishes the 8-byte commit
// word; anything that trusts a commit word must find the named slot
// fully sealed. In the shipped store the "reader" is post-crash
// recovery, so the ordering is enforced by persist boundaries rather
// than acquire/release — the model collapses both to the same
// publication skeleton and proves the order is the load-bearing part.
// The commit word carries the R9 `flag` role (single releasing writer,
// acquiring readers), same as the service's `recovering` gate.
// ---------------------------------------------------------------------------

struct CommitProto {
    /// Slot payloads (stand-ins for the shard bytes of each shadow slot).
    payload: [AtomicU64; 2],
    /// Slot footers: the seq whose hash seals the payload above.
    footer: [AtomicU64; 2],
    /// The 8-byte commit record: `(slot << 32) | seq`, zero = none.
    commit_word: AtomicU64,
}

fn pack_commit(slot: u64, seq: u64) -> u64 {
    (slot << 32) | seq
}

/// Two write cycles through alternating shadow slots, raced against a
/// recovery-shaped observer. `commit_first` re-introduces the bug the
/// protocol exists to exclude: publishing the commit word before the
/// slot is sealed.
fn commit_protocol_model(commit_first: bool) {
    let p = Arc::new(CommitProto {
        payload: [AtomicU64::new(0), AtomicU64::new(0)],
        footer: [AtomicU64::new(0), AtomicU64::new(0)],
        commit_word: AtomicU64::new(0),
    });

    let writer = {
        let p = Arc::clone(&p);
        spawn(move || {
            for seq in 1u64..=2 {
                // First write lands in slot 1's mirror image of the real
                // store's A/B alternation; each slot is written once, so
                // the observer's equality checks below are exact.
                let slot = (seq % 2) as usize;
                if commit_first {
                    p.commit_word
                        .store(pack_commit(slot as u64, seq), Ordering::Release);
                    p.payload[slot].store(seq * 1000, Ordering::Relaxed);
                    p.footer[slot].store(seq, Ordering::Relaxed);
                } else {
                    p.payload[slot].store(seq * 1000, Ordering::Relaxed);
                    p.footer[slot].store(seq, Ordering::Relaxed);
                    p.commit_word
                        .store(pack_commit(slot as u64, seq), Ordering::Release);
                }
            }
        })
    };

    // Recovery-shaped observer: every probe that trusts the commit word
    // must find the named slot sealed — footer seq in place and the
    // payload it binds intact.
    for _ in 0..2 {
        let word = p.commit_word.load(Ordering::Acquire);
        let (slot, seq) = ((word >> 32) as usize, word & 0xFFFF_FFFF);
        if seq == 0 {
            continue;
        }
        let footer = p.footer[slot].load(Ordering::Acquire);
        let payload = p.payload[slot].load(Ordering::Acquire);
        assert_eq!(footer, seq, "commit word names an unsealed slot");
        assert_eq!(payload, seq * 1000, "committed slot payload torn");
    }
    writer.join().expect("writer exits cleanly");
}

#[test]
fn commit_record_protocol_clean() {
    Explorer::pct(0xD1A7_0005, budget())
        .run(|| commit_protocol_model(false))
        .assert_clean();
}

/// The ordering bug the commit record excludes: commit word published
/// before the slot it names is sealed. Some interleaving has the
/// observer trust the word and read a stale slot — the explorer must
/// find it.
#[test]
fn bug_model_commit_before_seal_is_caught() {
    let report = Explorer::pct(0xBAD_0005, 500).run(|| commit_protocol_model(true));
    let v = report
        .violation
        .expect("explorer must catch the early commit");
    assert_eq!(v.kind, ViolationKind::Panic);
    assert!(
        v.message.contains("unsealed") || v.message.contains("torn"),
        "{}",
        v.message
    );
}

// ---------------------------------------------------------------------------
// Harness self-checks at the integration level.
// ---------------------------------------------------------------------------

/// Bounded exhaustive mode fully covers the single-worker latch model
/// (2 threads) and agrees with PCT that it is clean.
#[test]
fn exhaustive_covers_single_worker_latch() {
    let report = Explorer::exhaustive(50_000).run(|| {
        let batch = Batch::new(1);
        let (tx, rx) = channel::<Chunk>();
        let worker = spawn(move || {
            rx.recv().expect("worker receives its chunk").finish(true);
        });
        tx.send(Chunk::new(&batch)).expect("worker is alive");
        assert!(batch.wait(), "single clean chunk");
        drop(tx);
        worker.join().expect("worker exits cleanly");
    });
    report.assert_clean();
    assert!(report.complete, "2-thread latch model must be exhaustible");
    assert!(report.schedules > 1, "more than one interleaving explored");
}

/// A fixed seed reproduces the same failing schedule, trace and all —
/// the property that makes `Violation::schedule` a usable replay handle.
#[test]
fn bug_models_reproduce_deterministically() {
    let r1 = Explorer::pct(0xBAD_0001, 500).run(|| pool_latch_model(false));
    let r2 = Explorer::pct(0xBAD_0001, 500).run(|| pool_latch_model(false));
    let (v1, v2) = (
        r1.violation.expect("first run catches the bug"),
        r2.violation.expect("second run catches the bug"),
    );
    assert_eq!(v1.schedule, v2.schedule);
    assert_eq!(v1.trace, v2.trace);
}
