//! Property-based tests for the memory-system model: cache behaviour
//! against a reference model, queueing invariants, and traffic
//! conservation under arbitrary workloads.
//!
//! Randomized with the in-tree deterministic harness (`dialga-testkit`).

use dialga_memsim::cache::{Cache, Probe};
use dialga_memsim::config::CacheConfig;
use dialga_memsim::device::MemorySystem;
use dialga_memsim::{Counters, Engine, MachineConfig, RowTask, TaskSource};
use dialga_testkit::run_cases;
use std::collections::HashMap;

/// Reference model of a set-associative LRU cache.
struct RefCache {
    sets: usize,
    ways: usize,
    /// set -> Vec<line> in LRU order (front = LRU).
    sets_v: HashMap<usize, Vec<u64>>,
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> Self {
        RefCache {
            sets,
            ways,
            sets_v: HashMap::new(),
        }
    }
    fn probe(&mut self, line: u64) -> bool {
        let set = self.sets_v.entry((line as usize) % self.sets).or_default();
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.push(l);
            true
        } else {
            false
        }
    }
    fn insert(&mut self, line: u64) {
        let ways = self.ways;
        let set = self.sets_v.entry((line as usize) % self.sets).or_default();
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.push(l);
            return;
        }
        if set.len() >= ways {
            set.remove(0);
        }
        set.push(line);
    }
}

/// The cache must agree hit-for-hit with a reference LRU model under
/// arbitrary interleavings of demand probes and inserts.
#[test]
fn cache_matches_reference_lru() {
    run_cases(64, |rng| {
        let n_ops = rng.range(1, 400);
        let cfg = CacheConfig {
            bytes: 16 * 64,
            ways: 4,
            hit_ns: 1.0,
        }; // 4 sets x 4 ways
        let mut cache = Cache::new(&cfg);
        let mut reference = RefCache::new(cfg.sets(), cfg.ways);
        for _ in 0..n_ops {
            let is_insert = rng.bool();
            let line = rng.below(64);
            if is_insert {
                cache.insert(line, 0.0, false);
                reference.insert(line);
            } else {
                let got = matches!(cache.probe_demand(line), Probe::Hit { .. });
                let want = reference.probe(line);
                assert_eq!(got, want, "line {line}");
            }
        }
    });
}

/// Completion times never precede request times, and identical request
/// sequences produce identical timings (determinism).
#[test]
fn reads_complete_after_issue_and_deterministically() {
    run_cases(64, |rng| {
        let addrs: Vec<u64> = (0..rng.range(1, 200)).map(|_| rng.below(1 << 22)).collect();
        let cfg = if rng.bool() {
            MachineConfig::pm()
        } else {
            MachineConfig::dram()
        };
        let run = |cfg: &MachineConfig| {
            let mut m = MemorySystem::new(cfg);
            let mut c = Counters::default();
            let mut times = Vec::new();
            let mut now = 0.0;
            for &a in &addrs {
                let t = m.read_line(a / 64, now, &mut c);
                assert!(t >= now, "completion {t} before issue {now}");
                times.push(t);
                now += 10.0;
            }
            (times, c)
        };
        let (t1, c1) = run(&cfg);
        let (t2, c2) = run(&cfg);
        assert_eq!(t1, t2);
        assert_eq!(c1, c2);
    });
}

/// PM media traffic is unit-quantized, bounded below by distinct units
/// touched and above by one fetch per request.
#[test]
fn pm_media_traffic_bounds() {
    run_cases(64, |rng| {
        let addrs: Vec<u64> = (0..rng.range(1, 300)).map(|_| rng.below(1 << 20)).collect();
        let cfg = MachineConfig::pm();
        let mut m = MemorySystem::new(&cfg);
        let mut c = Counters::default();
        let mut now = 0.0;
        for &a in &addrs {
            m.read_line(a / 64, now, &mut c);
            now += 50.0;
        }
        let unit = cfg.pm.unit_bytes;
        assert_eq!(c.media_read_bytes % unit, 0);
        let distinct_units: std::collections::HashSet<u64> =
            addrs.iter().map(|a| a / unit).collect();
        assert!(c.xpline_fetches >= distinct_units.len() as u64);
        assert!(c.xpline_fetches <= addrs.len() as u64);
        assert_eq!(c.buffer_hits + c.xpline_fetches, addrs.len() as u64);
    });
}

/// Engine-level conservation for arbitrary strided row workloads.
#[test]
fn engine_traffic_conservation() {
    run_cases(48, |rng| {
        let k = rng.range(1, 16);
        let rows = rng.range_u64(1, 200);
        let stride = [64u64, 128, 4096][rng.range(0, 3)];
        let threads = rng.range(1, 4);
        let pf = rng.bool();
        struct Src {
            k: usize,
            rows: u64,
            stride: u64,
            pos: Vec<u64>,
            threads: usize,
        }
        impl TaskSource for Src {
            fn next_task(
                &mut self,
                tid: usize,
                _n: f64,
                _c: &Counters,
                task: &mut RowTask,
            ) -> bool {
                let r = self.pos[tid];
                if r >= self.rows {
                    return false;
                }
                for j in 0..self.k as u64 {
                    task.loads
                        .push(tid as u64 * (1 << 30) + j * (1 << 20) + r * self.stride);
                }
                task.compute_cycles = 10.0;
                self.pos[tid] = r + 1;
                true
            }
            fn data_bytes(&self) -> u64 {
                self.rows * self.k as u64 * 64 * self.threads as u64
            }
        }
        let mut cfg = MachineConfig::pm();
        cfg.prefetcher.enabled = pf;
        let mut eng = Engine::new(cfg, threads);
        let r = eng.run(&mut Src {
            k,
            rows,
            stride,
            pos: vec![0; threads],
            threads,
        });
        let c = r.counters;
        assert_eq!(c.loads, (k as u64) * rows * threads as u64);
        assert_eq!(c.loads, c.l2_hits + c.llc_hits + c.demand_misses);
        assert_eq!(
            c.imc_read_bytes,
            (c.demand_misses + c.hw_prefetches + c.sw_prefetches) * 64
        );
        assert_eq!(c.media_read_bytes, c.xpline_fetches * 256);
        assert!(r.elapsed_ns > 0.0);
    });
}
