//! Hardware configuration. All timing constants live here so every figure
//! binary can print the digest it ran with.

/// Geometry of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in nanoseconds.
    pub hit_ns: f64,
}

impl CacheConfig {
    /// Number of 64 B lines.
    pub fn lines(&self) -> usize {
        (self.bytes / crate::CACHELINE) as usize
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.lines() / self.ways
    }
}

/// Which memory device backs the encoded data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemKind {
    /// DDR4 DRAM (the paper's DRAM comparison arm).
    Dram,
    /// Optane-like persistent memory (the default).
    #[default]
    Pm,
}

/// PM device timing/geometry (Optane DCPMM 100-series-like).
///
/// Each channel (DIMM) has two resources: a pool of `media_slots`
/// concurrent media accesses (3D-XPoint internal banks — per-DIMM media
/// read bandwidth = 256 B * slots / occupancy) and a serial transfer bus
/// (DDR-T) that every 64 B delivery crosses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmConfig {
    /// Media access granularity in bytes (the "implicit load" unit):
    /// 256 B XPLines on Optane; larger DRAM-buffered flash units on
    /// CMM-H-class devices (§6). Must be a multiple of 64, at most 4096.
    pub unit_bytes: u64,
    /// Media read latency for a media-unit fetch, ns.
    pub media_latency_ns: f64,
    /// Latency of a read served by the on-DIMM read buffer, ns.
    pub buffer_hit_ns: f64,
    /// Concurrent media accesses a DIMM sustains.
    pub media_slots: usize,
    /// Time one media access occupies its slot, ns. Per-DIMM media read
    /// bandwidth = 256 B * media_slots / this (defaults ≈ 6.8 GB/s).
    pub media_occupancy_ns: f64,
    /// Bus time of one XPLine delivery from media, ns.
    pub media_bus_ns: f64,
    /// Bus time of a buffer-hit 64 B transfer, ns.
    pub buffer_bus_ns: f64,
    /// Total on-DIMM read buffer across all channels, bytes (the paper's
    /// system: 96 KiB over 6 channels).
    pub read_buffer_bytes: u64,
    /// Bus time of one 64 B non-temporal store, ns (sets per-channel write
    /// bandwidth; defaults ≈ 2.3 GB/s per DIMM, Optane's write ceiling).
    pub write_service_ns: f64,
}

/// DRAM device timing (serial-bus channel model; bank parallelism is folded
/// into the short service time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Load-to-use latency, ns.
    pub latency_ns: f64,
    /// Channel occupancy of one 64 B read, ns.
    pub service_ns: f64,
    /// Channel occupancy of one 64 B write, ns.
    pub write_service_ns: f64,
}

/// L2 stream hardware prefetcher model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetcherConfig {
    /// Globally enabled (the BIOS/MSR-style switch used by the ISA-L-noPF
    /// baselines; DIALGA itself never flips this — it uses shuffle).
    pub enabled: bool,
    /// Stream-table capacity. 32 unidirectional streams on the paper's
    /// Cascade Lake testbed; 64 from 3rd-gen Xeon Scalable on (§3.2).
    pub streams: usize,
    /// Confidence needed before prefetches are issued. High enough that
    /// ≤512 B blocks (≤8-line streams) never train — Obs. 4's "no effect,
    /// no amplification" regime.
    pub confidence_threshold: u8,
    /// Confidence ceiling.
    pub max_confidence: u8,
    /// Confidence lost on a non-(+1) delta. 3 keeps short +1 runs inside
    /// shuffled/expanded patterns from ever reaching the threshold.
    pub confidence_penalty: u8,
    /// Maximum prefetch degree (lines ahead per trigger) at full
    /// confidence.
    pub max_degree: u32,
    /// Hardware prefetches are low priority: one is *dropped* if serving it
    /// would queue behind more than this much channel busy time. This is
    /// the throttling real prefetchers apply under memory pressure, and it
    /// is why they help high-latency, queue-prone PM less than DRAM
    /// (Obs. 1).
    pub drop_queue_ns: f64,
}

impl Default for PrefetcherConfig {
    fn default() -> Self {
        PrefetcherConfig {
            enabled: true,
            streams: 32,
            confidence_threshold: 6,
            max_confidence: 8,
            confidence_penalty: 3,
            max_degree: 2,
            drop_queue_ns: 45.0,
        }
    }
}

/// Full machine description. `Default` is the paper's testbed (§5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Core frequency in GHz (Fig. 4 sweeps this).
    pub freq_ghz: f64,
    /// Per-core L2.
    pub l2: CacheConfig,
    /// Shared LLC.
    pub llc: CacheConfig,
    /// Memory channels (DIMMs).
    pub channels: usize,
    /// Address-interleave granularity across channels, bytes.
    pub interleave_bytes: u64,
    /// Which device backs the data.
    pub mem: MemKind,
    /// PM timing.
    pub pm: PmConfig,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Hardware prefetcher model.
    pub prefetcher: PrefetcherConfig,
    /// Outstanding demand misses a core can overlap.
    pub mshr: usize,
    /// Issue cost per load µop, cycles.
    pub load_issue_cycles: f64,
    /// Issue cost per software prefetch instruction, cycles.
    pub sw_prefetch_cycles: f64,
    /// Issue cost per 64 B non-temporal store, cycles.
    pub store_issue_cycles: f64,
    /// Max per-channel write backlog before stores stall the thread, ns.
    pub write_backlog_ns: f64,
    /// Cost of an MSR-style per-core prefetcher toggle (kernel mode switch),
    /// ns — used only by the ablation comparing DIALGA's shuffle against
    /// privileged toggling (§4.2 challenge (i)).
    pub msr_toggle_ns: f64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            freq_ghz: 3.3,
            l2: CacheConfig {
                bytes: 1 << 20,
                ways: 16,
                hit_ns: 4.2, // ~14 cycles @ 3.3 GHz
            },
            llc: CacheConfig {
                // 24.75 MiB, 11-way (Gold 6240).
                bytes: (24.75 * 1024.0 * 1024.0) as u64,
                ways: 11,
                hit_ns: 13.3, // ~44 cycles @ 3.3 GHz
            },
            channels: 6,
            interleave_bytes: 4096,
            mem: MemKind::Pm,
            pm: PmConfig {
                unit_bytes: crate::XPLINE,
                media_latency_ns: 380.0,
                buffer_hit_ns: 165.0,
                media_slots: 8,
                media_occupancy_ns: 300.0,
                media_bus_ns: 16.0,
                buffer_bus_ns: 7.0,
                read_buffer_bytes: 96 * 1024,
                write_service_ns: 24.0,
            },
            dram: DramConfig {
                latency_ns: 85.0,
                service_ns: 9.0,
                write_service_ns: 9.0,
            },
            prefetcher: PrefetcherConfig::default(),
            mshr: 10,
            load_issue_cycles: 0.5,
            sw_prefetch_cycles: 1.0,
            store_issue_cycles: 1.0,
            write_backlog_ns: 2000.0,
            msr_toggle_ns: 2500.0,
        }
    }
}

impl MachineConfig {
    /// The paper's testbed with data sourced from DRAM instead of PM.
    pub fn dram() -> Self {
        MachineConfig {
            mem: MemKind::Dram,
            ..Self::default()
        }
    }

    /// The paper's testbed (data on PM). Same as `Default`.
    pub fn pm() -> Self {
        Self::default()
    }

    /// 3rd-gen-Xeon-like variant: 64-stream prefetch table (§3.2).
    pub fn gen3() -> Self {
        let mut c = Self::default();
        c.prefetcher.streams = 64;
        c
    }

    /// CMM-H-like CXL memory-semantic SSD (§6 generality): a DRAM buffer
    /// fronting flash media. Larger implicit-load units (1 KiB here),
    /// higher media latency, a much larger (but still finite) active
    /// buffer window, and fewer, wider channels. The same DIALGA
    /// mechanisms apply because the hierarchy has the same shape: a
    /// buffered, high-latency, large-granularity tier below the CPU cache.
    #[allow(clippy::field_reassign_with_default)] // clearer as a delta off the testbed
    pub fn cmm_h() -> Self {
        let mut c = Self::default();
        c.channels = 4;
        c.pm = PmConfig {
            unit_bytes: 1024,
            media_latency_ns: 1800.0,
            buffer_hit_ns: 350.0,
            media_slots: 16,
            media_occupancy_ns: 1600.0, // ≈10 GB/s media per channel
            media_bus_ns: 32.0,
            buffer_bus_ns: 7.0,
            read_buffer_bytes: 1 << 20, // 1 MiB active DRAM-buffer window
            write_service_ns: 16.0,
        };
        c
    }

    /// Convert cycles to nanoseconds at the configured frequency.
    #[inline]
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles / self.freq_ghz
    }

    /// Convert nanoseconds to cycles at the configured frequency.
    #[inline]
    pub fn ns_to_cycles(&self, ns: f64) -> f64 {
        ns * self.freq_ghz
    }

    /// Media units the PM read buffer holds per channel.
    pub fn buffer_units_per_channel(&self) -> usize {
        (self.pm.read_buffer_bytes / self.pm.unit_bytes) as usize / self.channels
    }

    /// Alias for the Optane case (256 B units = XPLines).
    pub fn buffer_xplines_per_channel(&self) -> usize {
        self.buffer_units_per_channel()
    }

    /// Cachelines per media unit.
    pub fn lines_per_unit(&self) -> u64 {
        self.pm.unit_bytes / crate::CACHELINE
    }

    /// One-line config digest for figure outputs.
    pub fn digest(&self) -> String {
        format!(
            "{:?} {:.1}GHz L2={}KiB LLC={:.2}MiB ch={} pf={}({} streams) mshr={}",
            self.mem,
            self.freq_ghz,
            self.l2.bytes / 1024,
            self.llc.bytes as f64 / (1024.0 * 1024.0),
            self.channels,
            if self.prefetcher.enabled { "on" } else { "off" },
            self.prefetcher.streams,
            self.mshr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let c = MachineConfig::default();
        assert_eq!(c.channels, 6);
        assert_eq!(c.pm.read_buffer_bytes, 96 * 1024);
        assert_eq!(c.buffer_xplines_per_channel(), 64);
        assert_eq!(c.prefetcher.streams, 32);
        assert_eq!(c.l2.sets(), 1024);
        assert_eq!(c.l2.lines(), 16384);
    }

    #[test]
    fn cycle_conversion_roundtrip() {
        let c = MachineConfig::default();
        let ns = c.cycles_to_ns(330.0);
        assert!((ns - 100.0).abs() < 1e-9);
        assert!((c.ns_to_cycles(ns) - 330.0).abs() < 1e-9);
    }

    #[test]
    fn gen3_has_wider_table() {
        assert_eq!(MachineConfig::gen3().prefetcher.streams, 64);
    }

    #[test]
    fn dram_config_switches_device() {
        assert_eq!(MachineConfig::dram().mem, MemKind::Dram);
        assert_eq!(MachineConfig::pm().mem, MemKind::Pm);
    }

    #[test]
    fn cmm_h_is_a_buffered_flash_tier() {
        let c = MachineConfig::cmm_h();
        assert_eq!(c.mem, MemKind::Pm, "same load/store tier semantics");
        assert_eq!(c.pm.unit_bytes, 1024);
        assert_eq!(c.lines_per_unit(), 16);
        assert!(c.pm.media_latency_ns > MachineConfig::pm().pm.media_latency_ns * 3.0);
        assert!(c.pm.read_buffer_bytes > MachineConfig::pm().pm.read_buffer_bytes);
        assert_eq!(c.buffer_units_per_channel(), 256);
    }
}
