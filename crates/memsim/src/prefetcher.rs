//! L2 stream hardware prefetcher model.
//!
//! Captures the three properties the paper's observations depend on:
//!
//! 1. a finite LRU **stream table** (32 unidirectional streams on the
//!    testbed CPU; 64 on 3rd-gen Xeon) — exceeding it makes every access
//!    miss the table, confidence never builds, and prefetching stops
//!    (Obs. 3, the k > 32 collapse);
//! 2. **confidence-ramped degree** — short streams (small blocks) never
//!    reach useful aggressiveness (Obs. 4);
//! 3. **no prefetching across 4 KiB boundaries** — 4 KiB-aligned blocks
//!    incur no overshoot (Obs. 4), and DIALGA's shuffle mapping defeats
//!    detection entirely because shuffled deltas are never +1 (§4.2).

use crate::config::PrefetcherConfig;
use crate::PAGE;

#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Page number (line address / 64).
    page: u64,
    /// Last line accessed within the page.
    last: u64,
    /// Detector confidence.
    confidence: u8,
    /// Next line to prefetch (monotone within the page).
    head: u64,
    /// LRU tick.
    lru: u64,
}

/// Per-core stream prefetcher.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    cfg: PrefetcherConfig,
    streams: Vec<Stream>,
    tick: u64,
    /// Streams evicted due to capacity (Obs. 3 signal).
    pub evictions: u64,
}

impl StreamPrefetcher {
    /// Build from a config.
    pub fn new(cfg: PrefetcherConfig) -> Self {
        StreamPrefetcher {
            streams: Vec::with_capacity(cfg.streams),
            cfg,
            tick: 0,
            evictions: 0,
        }
    }

    /// Enable/disable at the core level (the MSR-style switch; DIALGA never
    /// uses this — it defeats detection with shuffle instead).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.cfg.enabled = enabled;
        if !enabled {
            self.streams.clear();
        }
    }

    /// Whether the core-level switch is on.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Observe one demand access (line address) and append the lines to
    /// prefetch into `out`. The caller filters lines already cached.
    pub fn on_demand_access(&mut self, line: u64, out: &mut Vec<u64>) {
        if !self.cfg.enabled {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let page = line / (PAGE / crate::CACHELINE);
        let page_last_line = (page + 1) * (PAGE / crate::CACHELINE) - 1;

        if let Some(s) = self.streams.iter_mut().find(|s| s.page == page) {
            s.lru = tick;
            if line == s.last + 1 {
                s.confidence = (s.confidence + 1).min(self.cfg.max_confidence);
            } else if line != s.last {
                s.confidence = s.confidence.saturating_sub(self.cfg.confidence_penalty);
            }
            s.last = line;
            if s.confidence >= self.cfg.confidence_threshold {
                // Degree ramps with confidence above the threshold.
                let over = (s.confidence - self.cfg.confidence_threshold) as u32;
                let degree = (2 + 2 * over).min(self.cfg.max_degree);
                let from = s.head.max(line + 1);
                let to = (line + degree as u64).min(page_last_line);
                for l in from..=to {
                    out.push(l);
                }
                if to + 1 > s.head {
                    s.head = to + 1;
                }
            }
            return;
        }

        // New stream: allocate, evicting LRU on capacity.
        if self.streams.len() >= self.cfg.streams {
            let (idx, _) = self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.lru)
                .expect("nonempty table");
            self.streams.swap_remove(idx);
            self.evictions += 1;
        }
        self.streams.push(Stream {
            page,
            last: line,
            confidence: 0,
            head: line + 1,
            lru: tick,
        });
    }

    /// Number of live streams (for tests/telemetry).
    pub fn live_streams(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf(streams: usize) -> StreamPrefetcher {
        StreamPrefetcher::new(PrefetcherConfig {
            streams,
            ..Default::default()
        })
    }

    /// Feed a pure sequential scan of one page; prefetches must start after
    /// the confidence threshold and stay within the page.
    #[test]
    fn sequential_stream_trains_and_prefetches() {
        let mut p = pf(32);
        let mut out = Vec::new();
        let base = 64 * 10; // page 10
        let mut total = 0;
        for i in 0..64u64 {
            out.clear();
            p.on_demand_access(base + i, &mut out);
            if i < 6 {
                assert!(out.is_empty(), "prefetch before confidence at i={i}");
            }
            for &l in &out {
                assert!(l > base + i, "prefetch behind demand");
                assert!(l <= base + 63, "prefetch crossed page boundary");
            }
            total += out.len();
        }
        assert!(total > 40, "too few prefetches: {total}");
    }

    #[test]
    fn no_duplicate_prefetches() {
        let mut p = pf(32);
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for i in 0..64u64 {
            out.clear();
            p.on_demand_access(i, &mut out);
            for &l in &out {
                assert!(seen.insert(l), "line {l} prefetched twice");
            }
        }
    }

    #[test]
    fn shuffled_access_never_trains() {
        let mut p = pf(32);
        let mut out = Vec::new();
        // A fixed non-sequential permutation pattern within one page.
        let order = [0u64, 17, 3, 41, 9, 55, 22, 36, 5, 48, 13, 60, 27, 38, 2, 50];
        for &l in order.iter().cycle().take(200) {
            p.on_demand_access(l, &mut out);
        }
        assert!(out.is_empty(), "shuffle produced prefetches: {out:?}");
    }

    #[test]
    fn table_overflow_stops_prefetching() {
        // 40 interleaved streams > 32 capacity: constant eviction, zero
        // prefetches (Obs. 3's k > 32 collapse).
        let mut p = pf(32);
        let mut out = Vec::new();
        let streams = 40u64;
        for row in 0..64u64 {
            for s in 0..streams {
                p.on_demand_access(s * 64 + row, &mut out);
            }
        }
        assert!(out.is_empty(), "prefetches despite table overflow");
        assert!(p.evictions > 0);
    }

    #[test]
    fn table_at_capacity_still_prefetches() {
        // 32 streams == capacity: every stream survives, all train.
        let mut p = pf(32);
        let mut out = Vec::new();
        for row in 0..64u64 {
            for s in 0..32u64 {
                p.on_demand_access(s * 64 + row, &mut out);
            }
        }
        assert!(out.len() > 32 * 40, "expected heavy prefetching");
        assert_eq!(p.evictions, 0);
    }

    #[test]
    fn gen3_capacity_64_handles_wide_stripes() {
        let mut p = pf(64);
        let mut out = Vec::new();
        for row in 0..64u64 {
            for s in 0..48u64 {
                p.on_demand_access(s * 64 + row, &mut out);
            }
        }
        assert!(!out.is_empty(), "64-stream table should track 48 streams");
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut p = pf(32);
        p.set_enabled(false);
        let mut out = Vec::new();
        for i in 0..128u64 {
            p.on_demand_access(i, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(p.live_streams(), 0);
    }

    #[test]
    fn backward_jump_drops_confidence() {
        let mut p = pf(32);
        let mut out = Vec::new();
        for i in 0..8u64 {
            out.clear();
            p.on_demand_access(i, &mut out);
        }
        assert!(!out.is_empty(), "trained by now");
        // Jump backwards repeatedly: confidence decays, prefetching stops.
        for _ in 0..6 {
            out.clear();
            p.on_demand_access(2, &mut out);
            p.on_demand_access(40, &mut out);
        }
        out.clear();
        p.on_demand_access(41, &mut out);
        assert!(out.is_empty(), "confidence should have collapsed");
    }
}
