//! L2 stream hardware prefetcher model.
//!
//! Captures the three properties the paper's observations depend on:
//!
//! 1. a finite LRU **stream table** (32 unidirectional streams on the
//!    testbed CPU; 64 on 3rd-gen Xeon) — exceeding it makes every access
//!    miss the table, confidence never builds, and prefetching stops
//!    (Obs. 3, the k > 32 collapse);
//! 2. **confidence-ramped degree** — short streams (small blocks) never
//!    reach useful aggressiveness (Obs. 4);
//! 3. **no prefetching across 4 KiB boundaries** — 4 KiB-aligned blocks
//!    incur no overshoot (Obs. 4), and DIALGA's shuffle mapping defeats
//!    detection entirely because shuffled deltas are never +1 (§4.2).

use crate::config::PrefetcherConfig;
use crate::PAGE;

#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Page number (line address / 64).
    page: u64,
    /// Last line accessed within the page.
    last: u64,
    /// Detector confidence.
    confidence: u8,
    /// Next line to prefetch (monotone within the page).
    head: u64,
    /// LRU tick.
    lru: u64,
}

/// Per-core stream prefetcher.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    cfg: PrefetcherConfig,
    streams: Vec<Stream>,
    tick: u64,
    /// Streams evicted due to capacity (Obs. 3 signal).
    pub evictions: u64,
}

impl StreamPrefetcher {
    /// Build from a config.
    pub fn new(cfg: PrefetcherConfig) -> Self {
        StreamPrefetcher {
            streams: Vec::with_capacity(cfg.streams),
            cfg,
            tick: 0,
            evictions: 0,
        }
    }

    /// Enable/disable at the core level (the MSR-style switch; DIALGA never
    /// uses this — it defeats detection with shuffle instead).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.cfg.enabled = enabled;
        if !enabled {
            self.streams.clear();
        }
    }

    /// Whether the core-level switch is on.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Observe one demand access (line address) and append the lines to
    /// prefetch into `out`. The caller filters lines already cached.
    pub fn on_demand_access(&mut self, line: u64, out: &mut Vec<u64>) {
        if !self.cfg.enabled {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let page = line / (PAGE / crate::CACHELINE);
        let page_last_line = (page + 1) * (PAGE / crate::CACHELINE) - 1;

        if let Some(s) = self.streams.iter_mut().find(|s| s.page == page) {
            s.lru = tick;
            if line == s.last + 1 {
                s.confidence = (s.confidence + 1).min(self.cfg.max_confidence);
            } else if line != s.last {
                s.confidence = s.confidence.saturating_sub(self.cfg.confidence_penalty);
            }
            s.last = line;
            if s.confidence >= self.cfg.confidence_threshold {
                // Degree ramps with confidence above the threshold.
                let over = (s.confidence - self.cfg.confidence_threshold) as u32;
                let degree = (2 + 2 * over).min(self.cfg.max_degree);
                let from = s.head.max(line + 1);
                let to = (line + degree as u64).min(page_last_line);
                for l in from..=to {
                    out.push(l);
                }
                if to + 1 > s.head {
                    s.head = to + 1;
                }
            }
            return;
        }

        // New stream: allocate, evicting LRU on capacity.
        if self.streams.len() >= self.cfg.streams {
            let (idx, _) = self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.lru)
                .expect("nonempty table");
            self.streams.swap_remove(idx);
            self.evictions += 1;
        }
        self.streams.push(Stream {
            page,
            last: line,
            confidence: 0,
            head: line + 1,
            lru: tick,
        });
    }

    /// Number of live streams (for tests/telemetry).
    pub fn live_streams(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf(streams: usize) -> StreamPrefetcher {
        StreamPrefetcher::new(PrefetcherConfig {
            streams,
            ..Default::default()
        })
    }

    /// Feed a pure sequential scan of one page; prefetches must start after
    /// the confidence threshold and stay within the page.
    #[test]
    fn sequential_stream_trains_and_prefetches() {
        let mut p = pf(32);
        let mut out = Vec::new();
        let base = 64 * 10; // page 10
        let mut total = 0;
        for i in 0..64u64 {
            out.clear();
            p.on_demand_access(base + i, &mut out);
            if i < 6 {
                assert!(out.is_empty(), "prefetch before confidence at i={i}");
            }
            for &l in &out {
                assert!(l > base + i, "prefetch behind demand");
                assert!(l <= base + 63, "prefetch crossed page boundary");
            }
            total += out.len();
        }
        assert!(total > 40, "too few prefetches: {total}");
    }

    #[test]
    fn no_duplicate_prefetches() {
        let mut p = pf(32);
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for i in 0..64u64 {
            out.clear();
            p.on_demand_access(i, &mut out);
            for &l in &out {
                assert!(seen.insert(l), "line {l} prefetched twice");
            }
        }
    }

    #[test]
    fn shuffled_access_never_trains() {
        let mut p = pf(32);
        let mut out = Vec::new();
        // A fixed non-sequential permutation pattern within one page.
        let order = [0u64, 17, 3, 41, 9, 55, 22, 36, 5, 48, 13, 60, 27, 38, 2, 50];
        for &l in order.iter().cycle().take(200) {
            p.on_demand_access(l, &mut out);
        }
        assert!(out.is_empty(), "shuffle produced prefetches: {out:?}");
    }

    #[test]
    fn table_overflow_stops_prefetching() {
        // 40 interleaved streams > 32 capacity: constant eviction, zero
        // prefetches (Obs. 3's k > 32 collapse).
        let mut p = pf(32);
        let mut out = Vec::new();
        let streams = 40u64;
        for row in 0..64u64 {
            for s in 0..streams {
                p.on_demand_access(s * 64 + row, &mut out);
            }
        }
        assert!(out.is_empty(), "prefetches despite table overflow");
        assert!(p.evictions > 0);
    }

    #[test]
    fn table_at_capacity_still_prefetches() {
        // 32 streams == capacity: every stream survives, all train.
        let mut p = pf(32);
        let mut out = Vec::new();
        for row in 0..64u64 {
            for s in 0..32u64 {
                p.on_demand_access(s * 64 + row, &mut out);
            }
        }
        assert!(out.len() > 32 * 40, "expected heavy prefetching");
        assert_eq!(p.evictions, 0);
    }

    #[test]
    fn gen3_capacity_64_handles_wide_stripes() {
        let mut p = pf(64);
        let mut out = Vec::new();
        for row in 0..64u64 {
            for s in 0..48u64 {
                p.on_demand_access(s * 64 + row, &mut out);
            }
        }
        assert!(!out.is_empty(), "64-stream table should track 48 streams");
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut p = pf(32);
        p.set_enabled(false);
        let mut out = Vec::new();
        for i in 0..128u64 {
            p.on_demand_access(i, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(p.live_streams(), 0);
    }

    /// Satellite audit (PR 7): once a stream's `head` has advanced past
    /// `page_last_line`, further demand accesses near the page end must
    /// issue nothing — the `from..=to` window is empty, never clamped
    /// into the next page.
    #[test]
    fn head_past_page_end_issues_no_out_of_page_lines() {
        let mut p = pf(32);
        let mut out = Vec::new();
        // Page 3: lines 192..=255. Scan the whole page.
        let base = 64 * 3;
        for i in 0..64u64 {
            p.on_demand_access(base + i, &mut out);
        }
        for &l in &out {
            assert!(
                (base..base + 64).contains(&l),
                "prefetch {l} escaped page 3 (lines {base}..{})",
                base + 63
            );
        }
        // Head is now saturated at/past the page's last line. Hammering
        // the final lines must stay silent — nothing left in-page, and
        // nothing may spill into page 4.
        out.clear();
        for _ in 0..10 {
            p.on_demand_access(base + 62, &mut out);
            p.on_demand_access(base + 63, &mut out);
        }
        assert!(
            out.is_empty(),
            "saturated stream emitted lines: {out:?} (out-of-page leak)"
        );
    }

    /// Satellite audit (PR 7): a repeated access to the same line
    /// (`line == s.last`) must neither ramp nor penalize confidence —
    /// it is not a new +1 delta and not a stride break.
    #[test]
    fn same_line_repeats_leave_confidence_unchanged() {
        let mut p = pf(32);
        let mut out = Vec::new();
        // Default confidence_threshold is 6: accesses 0..=5 leave the
        // stream exactly one sequential hit short of prefetching.
        for i in 0..6u64 {
            p.on_demand_access(i, &mut out);
        }
        assert!(out.is_empty(), "prefetched below threshold: {out:?}");
        // 50 repeats of the same line: no ramp (would cross the threshold
        // and emit) and no penalty (would need >1 further hit to recover).
        for _ in 0..50 {
            p.on_demand_access(5, &mut out);
        }
        assert!(out.is_empty(), "same-line repeats ramped confidence");
        // One genuine sequential hit now crosses the threshold — proving
        // the repeats did not silently penalize the stream either.
        p.on_demand_access(6, &mut out);
        assert!(
            !out.is_empty(),
            "confidence was penalized by same-line repeats"
        );
    }

    /// Property sweep: random demand walks within one page. Invariants:
    /// every emitted line is ahead of the demand line, stays in-page, and
    /// (because `head` is monotone) is never emitted twice.
    #[test]
    fn random_in_page_walks_hold_prefetch_invariants() {
        dialga_testkit::run_cases(64, |rng| {
            let mut p = pf(32);
            let page = rng.below(1024);
            let base = page * 64;
            let mut out = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..200 {
                let line = base + rng.below(64);
                out.clear();
                p.on_demand_access(line, &mut out);
                for &l in &out {
                    assert!(l > line, "prefetch {l} not ahead of demand {line}");
                    assert!(
                        (base..base + 64).contains(&l),
                        "prefetch {l} escaped page {page}"
                    );
                    assert!(seen.insert(l), "line {l} prefetched twice");
                }
            }
        });
    }

    #[test]
    fn backward_jump_drops_confidence() {
        let mut p = pf(32);
        let mut out = Vec::new();
        for i in 0..8u64 {
            out.clear();
            p.on_demand_access(i, &mut out);
        }
        assert!(!out.is_empty(), "trained by now");
        // Jump backwards repeatedly: confidence decays, prefetching stops.
        for _ in 0..6 {
            out.clear();
            p.on_demand_access(2, &mut out);
            p.on_demand_access(40, &mut out);
        }
        out.clear();
        p.on_demand_access(41, &mut out);
        assert!(out.is_empty(), "confidence should have collapsed");
    }
}
