//! The multi-core simulation engine.
//!
//! Logical threads execute *row tasks* (the unit of the paper's encoding
//! loop: k loads, one vector compute, m stores). The engine interleaves
//! threads by earliest local clock, so all cross-thread contention (shared
//! LLC, channel queues, PM read buffer) is deterministic.

use crate::cache::{Cache, Probe};
use crate::config::MachineConfig;
use crate::counters::Counters;
use crate::device::MemorySystem;
use crate::persist::PersistDomain;
use crate::prefetcher::StreamPrefetcher;
use crate::CACHELINE;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One loop-iteration's memory and compute work.
#[derive(Debug, Clone, Default)]
pub struct RowTask {
    /// Software prefetch target addresses (issued before the loads).
    pub sw_prefetches: Vec<u64>,
    /// Demand load addresses (byte addresses; one per 64 B line touched).
    pub loads: Vec<u64>,
    /// Compute cycles after the loads complete.
    pub compute_cycles: f64,
    /// Non-temporal 64 B store addresses.
    pub stores: Vec<u64>,
    /// Write-allocate (cached) 64 B store addresses — the read-modify-write
    /// parity updates of XOR-based codes. They allocate into L2/LLC so later
    /// loads hit; their write traffic is carried by the explicit NT flush
    /// the patterns emit at stripe end (writeback is not modelled).
    pub cached_stores: Vec<u64>,
    /// MSR-style per-core prefetcher toggle (ablation only; costs
    /// `msr_toggle_ns`).
    pub toggle_hw_prefetch: Option<bool>,
    /// Issue a store fence after the stores (drains channel queues).
    pub fence: bool,
}

impl RowTask {
    /// Reset for reuse without freeing buffers.
    pub fn clear(&mut self) {
        self.sw_prefetches.clear();
        self.loads.clear();
        self.compute_cycles = 0.0;
        self.stores.clear();
        self.cached_stores.clear();
        self.toggle_hw_prefetch = None;
        self.fence = false;
    }
}

/// Produces the task stream for every logical thread.
pub trait TaskSource {
    /// Fill `task` with thread `tid`'s next row. Return `false` when the
    /// thread has no more work. `task` arrives cleared.
    ///
    /// `now_ns` is the thread's local clock and `counters` the live global
    /// counter block — together they are the sampling interface DIALGA's
    /// adaptive coordinator uses (1 kHz PMU sampling, §4.1).
    fn next_task(
        &mut self,
        tid: usize,
        now_ns: f64,
        counters: &Counters,
        task: &mut RowTask,
    ) -> bool;

    /// Total payload (data) bytes processed across all threads, for
    /// throughput accounting.
    fn data_bytes(&self) -> u64;
}

/// Outcome of a run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock of the slowest thread, ns.
    pub elapsed_ns: f64,
    /// Payload bytes processed.
    pub data_bytes: u64,
    /// Aggregated counters.
    pub counters: Counters,
    /// Number of logical threads.
    pub threads: usize,
}

impl RunReport {
    /// Payload throughput in GB/s (the paper's headline metric).
    pub fn throughput_gbs(&self) -> f64 {
        if self.elapsed_ns == 0.0 {
            return 0.0;
        }
        self.data_bytes as f64 / self.elapsed_ns
    }

    /// Demand-stall cycles per load (Fig. 17's metric), at the given
    /// frequency.
    pub fn stall_cycles_per_load(&self, freq_ghz: f64) -> f64 {
        if self.counters.loads == 0 {
            return 0.0;
        }
        self.counters.demand_stall_ns * freq_ghz / self.counters.loads as f64
    }
}

/// Heap key: earliest time first, ties by thread id for determinism.
struct Sched(f64, usize);

impl PartialEq for Sched {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for Sched {}
impl PartialOrd for Sched {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sched {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .0
            .total_cmp(&self.0)
            .then_with(|| other.1.cmp(&self.1))
    }
}

/// The simulator.
pub struct Engine {
    cfg: MachineConfig,
    mem: MemorySystem,
    llc: Cache,
    l2: Vec<Cache>,
    pf: Vec<StreamPrefetcher>,
    counters: Counters,
    /// Scratch for prefetcher output.
    pf_lines: Vec<u64>,
    /// Optional persistence-domain tracker (see [`PersistDomain`]).
    persist: Option<PersistDomain>,
}

impl Engine {
    /// Build an engine with `threads` logical cores.
    pub fn new(cfg: MachineConfig, threads: usize) -> Self {
        assert!(threads > 0, "at least one thread");
        Engine {
            mem: MemorySystem::new(&cfg),
            llc: Cache::new(&cfg.llc),
            l2: (0..threads).map(|_| Cache::new(&cfg.l2)).collect(),
            pf: (0..threads)
                .map(|_| StreamPrefetcher::new(cfg.prefetcher))
                .collect(),
            cfg,
            counters: Counters::default(),
            pf_lines: Vec::with_capacity(16),
            persist: None,
        }
    }

    /// The machine config.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Start tracking the persistence domain: NT-stored lines are pending
    /// until a `fence` task completes, after which they are durable.
    /// Costs nothing in simulated time — it observes, never prices.
    pub fn enable_persist_tracking(&mut self) {
        self.persist = Some(PersistDomain::new());
    }

    /// The persistence-domain tracker, if enabled.
    pub fn persist_domain(&self) -> Option<&PersistDomain> {
        self.persist.as_ref()
    }

    /// Live counters (read-only).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Run a task source to completion on all threads.
    pub fn run<S: TaskSource>(&mut self, source: &mut S) -> RunReport {
        let threads = self.l2.len();
        let mut heap: BinaryHeap<Sched> = (0..threads).map(|tid| Sched(0.0, tid)).collect();
        let mut finish = vec![0.0f64; threads];
        let mut task = RowTask::default();

        while let Some(Sched(now, tid)) = heap.pop() {
            task.clear();
            if !source.next_task(tid, now, &self.counters, &mut task) {
                finish[tid] = now;
                continue;
            }
            let t = self.execute(tid, now, &task);
            heap.push(Sched(t, tid));
        }

        // Fold stream-eviction counts collected inside the prefetchers.
        self.counters.stream_evictions = self.pf.iter().map(|p| p.evictions).sum();

        let elapsed = finish.iter().copied().fold(0.0, f64::max);
        RunReport {
            elapsed_ns: elapsed,
            data_bytes: source.data_bytes(),
            counters: self.counters,
            threads,
        }
    }

    /// Execute one row task for a thread; returns the new local time.
    fn execute(&mut self, tid: usize, mut t: f64, task: &RowTask) -> f64 {
        if let Some(enable) = task.toggle_hw_prefetch {
            if self.pf[tid].enabled() != enable {
                self.pf[tid].set_enabled(enable);
                t += self.cfg.msr_toggle_ns;
            }
        }

        // Software prefetches: issue cost each, fills tagged as prefetch.
        let sw_cost = self.cfg.cycles_to_ns(self.cfg.sw_prefetch_cycles);
        for &addr in &task.sw_prefetches {
            t += sw_cost;
            self.issue_prefetch(tid, addr / CACHELINE, t, false);
        }

        // Demand loads, overlapped up to the MSHR count.
        let issue = self.cfg.cycles_to_ns(self.cfg.load_issue_cycles);
        for chunk in task.loads.chunks(self.cfg.mshr.max(1)) {
            let mut done = t;
            for (i, &addr) in chunk.iter().enumerate() {
                let at = t + i as f64 * issue;
                let c = self.demand_load(tid, addr, at);
                if c > done {
                    done = c;
                }
            }
            t = done.max(t + chunk.len() as f64 * issue);
        }

        // Compute.
        t += self.cfg.cycles_to_ns(task.compute_cycles);

        // Cached (write-allocate) stores: allocate in L2/LLC, no immediate
        // memory traffic.
        let st_issue = self.cfg.cycles_to_ns(self.cfg.store_issue_cycles);
        for &addr in &task.cached_stores {
            t += st_issue;
            let line = addr / CACHELINE;
            self.fill_llc(line, t, false);
            self.fill_l2(tid, line, t, false);
        }

        // Posted NT stores.
        for &addr in &task.stores {
            t += st_issue;
            if let Some(dom) = self.persist.as_mut() {
                dom.nt_store(addr / CACHELINE);
            }
            let stall_until = self.mem.write_line(addr / CACHELINE, t, &mut self.counters);
            if stall_until > t {
                self.counters.store_stall_ns += stall_until - t;
                t = stall_until;
            }
        }

        if task.fence {
            t = t.max(self.mem.drain_time());
            if let Some(dom) = self.persist.as_mut() {
                dom.fence();
            }
        }
        t
    }

    fn demand_load(&mut self, tid: usize, addr: u64, t: f64) -> f64 {
        let line = addr / CACHELINE;
        self.counters.loads += 1;
        self.counters.encode_read_bytes += CACHELINE;

        // Train the stream prefetcher on every demand access, then issue
        // whatever it asks for (at this access's time).
        self.pf_lines.clear();
        let mut pf_lines = std::mem::take(&mut self.pf_lines);
        self.pf[tid].on_demand_access(line, &mut pf_lines);
        for &pl in &pf_lines {
            self.issue_prefetch(tid, pl, t, true);
        }
        self.pf_lines = pf_lines;

        let l2_hit = self.cfg.l2.hit_ns;
        let completion = match self.l2[tid].probe_demand(line) {
            Probe::Hit {
                ready_ns,
                was_prefetch,
            } => {
                if was_prefetch {
                    self.counters.useful_prefetches += 1;
                    if ready_ns > t + l2_hit {
                        self.counters.late_prefetches += 1;
                    }
                }
                self.counters.l2_hits += 1;
                ready_ns.max(t + l2_hit)
            }
            Probe::Miss => match self.llc.probe_demand(line) {
                Probe::Hit { ready_ns, .. } => {
                    self.counters.llc_hits += 1;
                    let done = ready_ns.max(t + self.cfg.llc.hit_ns);
                    self.fill_l2(tid, line, done, false);
                    done
                }
                Probe::Miss => {
                    self.counters.demand_misses += 1;
                    let done = self.mem.read_line(line, t, &mut self.counters);
                    self.fill_llc(line, done, false);
                    self.fill_l2(tid, line, done, false);
                    done
                }
            },
        };
        let stall = completion - t - l2_hit;
        if stall > 0.0 {
            self.counters.demand_stall_ns += stall;
        }
        completion
    }

    fn issue_prefetch(&mut self, tid: usize, line: u64, t: f64, hw: bool) {
        // Drop prefetches to already-cached lines.
        if self.l2[tid].contains(line) || self.llc.contains(line) {
            return;
        }
        if hw {
            // Hardware prefetches are low priority: under queue pressure
            // the throttle sheds roughly half of them (alternate lines —
            // deterministic), so prefetching degrades rather than stops.
            // Software prefetches are demand-class and never shed.
            if line.is_multiple_of(2)
                && self.mem.read_queue_delay(line, t) > self.cfg.prefetcher.drop_queue_ns
            {
                self.counters.hw_prefetch_drops += 1;
                return;
            }
            self.counters.hw_prefetches += 1;
        } else {
            self.counters.sw_prefetches += 1;
        }
        let done = self.mem.read_line(line, t, &mut self.counters);
        self.fill_llc(line, done, true);
        self.fill_l2(tid, line, done, true);
    }

    fn fill_l2(&mut self, tid: usize, line: u64, ready: f64, prefetched: bool) {
        if let Some(ev) = self.l2[tid].insert(line, ready, prefetched) {
            if ev.useless_prefetch {
                self.counters.useless_prefetches += 1;
            }
        }
    }

    fn fill_llc(&mut self, line: u64, ready: f64, prefetched: bool) {
        // LLC evictions of prefetched lines are already counted at L2.
        let _ = self.llc.insert(line, ready, prefetched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineConfig, MemKind};

    /// A source that streams `bytes` sequentially per thread, `lines_per
    /// row` loads per task, each thread in its own address region.
    struct SeqScan {
        bytes_per_thread: u64,
        row_lines: usize,
        pos: Vec<u64>,
        region_stride: u64,
        threads: usize,
    }

    impl SeqScan {
        fn new(threads: usize, bytes_per_thread: u64, row_lines: usize) -> Self {
            SeqScan {
                bytes_per_thread,
                row_lines,
                pos: vec![0; threads],
                region_stride: 1 << 30,
                threads,
            }
        }
    }

    impl TaskSource for SeqScan {
        fn next_task(&mut self, tid: usize, _now: f64, _c: &Counters, task: &mut RowTask) -> bool {
            if self.pos[tid] >= self.bytes_per_thread {
                return false;
            }
            let base = tid as u64 * self.region_stride + self.pos[tid];
            for i in 0..self.row_lines as u64 {
                task.loads.push(base + i * 64);
            }
            task.compute_cycles = 8.0;
            self.pos[tid] += self.row_lines as u64 * 64;
            true
        }

        fn data_bytes(&self) -> u64 {
            self.bytes_per_thread * self.threads as u64
        }
    }

    fn run_seq(cfg: MachineConfig, threads: usize, bytes: u64) -> RunReport {
        let mut eng = Engine::new(cfg, threads);
        let mut src = SeqScan::new(threads, bytes, 4);
        eng.run(&mut src)
    }

    #[test]
    fn dram_faster_than_pm() {
        let d = run_seq(MachineConfig::dram(), 1, 1 << 20);
        let p = run_seq(MachineConfig::pm(), 1, 1 << 20);
        assert!(
            d.throughput_gbs() > p.throughput_gbs() * 1.5,
            "DRAM {:.2} GB/s vs PM {:.2} GB/s",
            d.throughput_gbs(),
            p.throughput_gbs()
        );
    }

    #[test]
    fn prefetcher_speeds_up_sequential_scan() {
        let on = run_seq(MachineConfig::pm(), 1, 1 << 20);
        let mut off_cfg = MachineConfig::pm();
        off_cfg.prefetcher.enabled = false;
        let off = run_seq(off_cfg, 1, 1 << 20);
        assert!(
            on.throughput_gbs() > off.throughput_gbs() * 1.15,
            "pf-on {:.2} vs pf-off {:.2}",
            on.throughput_gbs(),
            off.throughput_gbs()
        );
        assert!(on.counters.hw_prefetches > 0);
        assert_eq!(off.counters.hw_prefetches, 0);
    }

    #[test]
    fn pm_implicit_amplification_bounded_for_sequential() {
        // A full sequential scan uses every line of every XPLine: media
        // traffic must equal demand traffic (no amplification).
        let r = run_seq(MachineConfig::pm(), 1, 1 << 20);
        let amp = r.counters.media_read_amplification();
        assert!(
            (amp - 1.0).abs() < 0.05,
            "sequential scan amplification {amp}"
        );
    }

    #[test]
    fn multithread_scales_then_contends() {
        let t1 = run_seq(MachineConfig::pm(), 1, 4 << 20);
        let t4 = run_seq(MachineConfig::pm(), 4, 4 << 20);
        let s4 = t4.throughput_gbs() / t1.throughput_gbs();
        assert!(s4 > 2.0, "4-thread speedup only {s4:.2}x");
        let t18 = run_seq(MachineConfig::pm(), 18, 4 << 20);
        let s18 = t18.throughput_gbs() / t1.throughput_gbs();
        assert!(
            s18 < 18.0,
            "18-thread speedup implausibly linear: {s18:.2}x"
        );
    }

    #[test]
    fn counters_conserve_traffic() {
        let r = run_seq(MachineConfig::pm(), 2, 1 << 20);
        let c = &r.counters;
        assert_eq!(c.loads, (2 << 20) / 64);
        assert_eq!(c.encode_read_bytes, 2 << 20);
        // Every load is a hit somewhere or a miss.
        assert_eq!(c.loads, c.l2_hits + c.llc_hits + c.demand_misses);
        // Controller traffic == fills requested.
        assert_eq!(
            c.imc_read_bytes,
            (c.demand_misses + c.hw_prefetches + c.sw_prefetches) * 64
        );
        // Media traffic is XPLine-quantized.
        assert_eq!(c.media_read_bytes % 256, 0);
        assert_eq!(c.media_read_bytes, c.xpline_fetches * 256);
    }

    #[test]
    fn stores_account_write_traffic() {
        struct StoreSrc {
            rows: u64,
        }
        impl TaskSource for StoreSrc {
            fn next_task(
                &mut self,
                _tid: usize,
                _now: f64,
                _c: &Counters,
                task: &mut RowTask,
            ) -> bool {
                if self.rows == 0 {
                    return false;
                }
                task.stores.push(self.rows * 64);
                self.rows -= 1;
                true
            }
            fn data_bytes(&self) -> u64 {
                0
            }
        }
        let mut eng = Engine::new(MachineConfig::pm(), 1);
        let r = eng.run(&mut StoreSrc { rows: 100 });
        assert_eq!(r.counters.nt_stores, 100);
        assert_eq!(r.counters.imc_write_bytes, 6400);
    }

    #[test]
    fn msr_toggle_costs_time() {
        struct ToggleSrc {
            left: u32,
        }
        impl TaskSource for ToggleSrc {
            fn next_task(
                &mut self,
                _tid: usize,
                _now: f64,
                _c: &Counters,
                task: &mut RowTask,
            ) -> bool {
                if self.left == 0 {
                    return false;
                }
                task.toggle_hw_prefetch = Some(self.left.is_multiple_of(2));
                task.compute_cycles = 1.0;
                self.left -= 1;
                true
            }
            fn data_bytes(&self) -> u64 {
                0
            }
        }
        let mut eng = Engine::new(MachineConfig::pm(), 1);
        let r = eng.run(&mut ToggleSrc { left: 10 });
        // 10 toggles (alternating, always a change... first sets false
        // when enabled==true etc.) — at least several toggles' cost.
        assert!(
            r.elapsed_ns >= 5.0 * MachineConfig::pm().msr_toggle_ns,
            "elapsed {} too small",
            r.elapsed_ns
        );
    }

    #[test]
    fn shared_llc_serves_cross_thread_reuse() {
        // Two threads scanning the SAME region: the second visitor of each
        // line must hit the shared LLC (its L2 is private).
        struct SharedScan {
            pos: Vec<u64>,
            lines: u64,
        }
        impl TaskSource for SharedScan {
            fn next_task(
                &mut self,
                tid: usize,
                _n: f64,
                _c: &Counters,
                task: &mut RowTask,
            ) -> bool {
                let p = self.pos[tid];
                if p >= self.lines {
                    return false;
                }
                task.loads.push(p * 64);
                task.compute_cycles = 50.0;
                self.pos[tid] = p + 1;
                true
            }
            fn data_bytes(&self) -> u64 {
                self.lines * 64 * 2
            }
        }
        let mut cfg = MachineConfig::pm();
        cfg.prefetcher.enabled = false;
        let mut eng = Engine::new(cfg, 2);
        let r = eng.run(&mut SharedScan {
            pos: vec![0; 2],
            lines: 2000,
        });
        assert!(
            r.counters.llc_hits > 1000,
            "expected cross-thread LLC hits, got {}",
            r.counters.llc_hits
        );
        assert!(r.counters.demand_misses < 3000);
    }

    #[test]
    fn fence_waits_for_store_drain() {
        struct FenceSrc {
            done: bool,
        }
        impl TaskSource for FenceSrc {
            fn next_task(&mut self, _t: usize, _n: f64, _c: &Counters, task: &mut RowTask) -> bool {
                if self.done {
                    return false;
                }
                for i in 0..32u64 {
                    task.stores.push(i * 64);
                }
                task.fence = true;
                self.done = true;
                true
            }
            fn data_bytes(&self) -> u64 {
                0
            }
        }
        let mut eng = Engine::new(MachineConfig::pm(), 1);
        let r = eng.run(&mut FenceSrc { done: false });
        // 32 stores on one channel at 24ns write service must take at
        // least ~their serialized drain time.
        assert!(
            r.elapsed_ns >= 32.0 * 20.0,
            "fence returned too early: {}",
            r.elapsed_ns
        );
    }

    #[test]
    fn persist_tracking_splits_durable_from_pending() {
        // Two rows of 8 NT stores; only the first fences. After the run,
        // the first row's lines are durable, the second row's pending.
        struct TwoRows {
            row: u64,
        }
        impl TaskSource for TwoRows {
            fn next_task(&mut self, _t: usize, _n: f64, _c: &Counters, task: &mut RowTask) -> bool {
                if self.row >= 2 {
                    return false;
                }
                for i in 0..8u64 {
                    task.stores.push((self.row * 8 + i) * 64);
                }
                task.fence = self.row == 0;
                self.row += 1;
                true
            }
            fn data_bytes(&self) -> u64 {
                0
            }
        }
        let mut eng = Engine::new(MachineConfig::pm(), 1);
        assert!(eng.persist_domain().is_none());
        eng.enable_persist_tracking();
        eng.run(&mut TwoRows { row: 0 });
        let dom = eng.persist_domain().unwrap();
        assert_eq!(dom.durable_lines(), 8);
        assert_eq!(dom.pending_lines(), 8);
        assert_eq!(dom.boundaries(), 1);
        assert!(dom.is_durable(0) && !dom.is_durable(8 * 64));
        let image = dom.crash_image(3);
        assert!(image.len() >= 8 && image.len() <= 16);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_seq(MachineConfig::pm(), 4, 1 << 20);
        let b = run_seq(MachineConfig::pm(), 4, 1 << 20);
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn dram_vs_pm_kind_exposed() {
        let eng = Engine::new(MachineConfig::dram(), 1);
        assert_eq!(eng.config().mem, MemKind::Dram);
    }
}
