#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Trace-driven simulator of a PM-equipped server memory system.
//!
//! This crate is the substitute (per DESIGN.md) for the paper's hardware
//! testbed: an Intel Xeon Gold 6240 with 6 channels of Optane DCPMM 100.
//! It models, at cacheline granularity:
//!
//! * per-core **L2** and shared **LLC** set-associative caches with
//!   prefetch-tagged lines (for useless-prefetch accounting, the analogue
//!   of PMU event 0xf2);
//! * the **L2 stream hardware prefetcher**: a page-keyed LRU stream table
//!   (32 unidirectional streams by default, 64 in the "3rd-gen Xeon"
//!   config), confidence-ramped prefetch degree, and no prefetching across
//!   4 KiB boundaries — the three properties the paper's Observations 3–5
//!   rest on;
//! * the **PM device**: 256 B XPLine media granularity, a 16 KiB-per-channel
//!   on-DIMM read buffer with LRU replacement and *implicit loads* (any 64 B
//!   access fetches its whole XPLine), per-channel queueing, and separate
//!   media/controller traffic counters;
//! * a **DRAM device** for the paper's DRAM-vs-PM comparisons;
//! * a deterministic multi-core **engine** with per-thread clocks,
//!   MSHR-limited load overlap, posted non-temporal stores and a
//!   PMU-analogue counter block.
//!
//! Simulated threads are *logical*: the engine is single-threaded and
//! deterministic, interleaving logical threads by earliest local clock.

pub mod cache;
pub mod config;
pub mod counters;
pub mod device;
pub mod engine;
pub mod persist;
pub mod prefetcher;

pub use config::{CacheConfig, MachineConfig, MemKind, PmConfig, PrefetcherConfig};
pub use counters::Counters;
pub use engine::{Engine, RowTask, RunReport, TaskSource};
pub use persist::{PersistDomain, PersistMem, PmError};

/// Bytes per cacheline (CPU cache and memory-interface granularity).
pub const CACHELINE: u64 = 64;
/// Bytes per XPLine (PM media access granularity).
pub const XPLINE: u64 = 256;
/// Bytes per page (hardware prefetchers do not cross this boundary).
pub const PAGE: u64 = 4096;
