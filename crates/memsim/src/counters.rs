//! PMU-analogue counters. These are what the paper samples with perf/PEBS
//! (cache events, useless-prefetch event 0xf2) and ipmctl (per-layer read
//! traffic), and what DIALGA's adaptive coordinator consumes.

/// Aggregated event counts for one simulated core (or the whole machine,
/// when summed).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    /// Demand loads issued.
    pub loads: u64,
    /// Demand loads that hit L2.
    pub l2_hits: u64,
    /// Demand loads that hit LLC.
    pub llc_hits: u64,
    /// Demand loads that went to memory.
    pub demand_misses: u64,
    /// Nanoseconds demand loads spent stalled past the L2 hit cost
    /// (the "L3 cache miss cycles" series of Figs. 3 and 17, in ns).
    pub demand_stall_ns: f64,
    /// Hardware prefetches issued to memory.
    pub hw_prefetches: u64,
    /// Hardware prefetches dropped because the channel queue was busy.
    pub hw_prefetch_drops: u64,
    /// Software prefetches issued to memory.
    pub sw_prefetches: u64,
    /// Prefetched L2 lines evicted before any demand hit
    /// (analogue of PMU 0xf2, L2_LINES_OUT.USELESS_HWPF).
    pub useless_prefetches: u64,
    /// Prefetched lines that a demand load consumed.
    pub useful_prefetches: u64,
    /// Prefetched lines whose demand arrived before the fill completed
    /// (late prefetch: traffic spent, little latency hidden).
    pub late_prefetches: u64,
    /// Demand-requested bytes (encode-layer traffic, Fig. 19).
    pub encode_read_bytes: u64,
    /// Cachelines read through the memory controller x 64
    /// (iMC-layer traffic: demand misses + all prefetch fills).
    pub imc_read_bytes: u64,
    /// Bytes fetched from PM media (media-layer traffic; 256 B per XPLine).
    /// For DRAM this equals `imc_read_bytes`.
    pub media_read_bytes: u64,
    /// Bytes written through the controller (NT stores).
    pub imc_write_bytes: u64,
    /// Bytes written to media (XPLine write-combining assumed).
    pub media_write_bytes: u64,
    /// Reads served by the PM on-DIMM read buffer.
    pub buffer_hits: u64,
    /// XPLine fetches from PM media.
    pub xpline_fetches: u64,
    /// XPLines evicted from the read buffer with at least one never-read
    /// line (the thrashing signal of Obs. 5).
    pub buffer_evicted_unused: u64,
    /// Lines never read in evicted XPLines.
    pub buffer_unused_lines: u64,
    /// Streams evicted from the prefetcher stream table (capacity signal
    /// of Obs. 3).
    pub stream_evictions: u64,
    /// Non-temporal stores issued.
    pub nt_stores: u64,
    /// Nanoseconds threads spent stalled on store backlog.
    pub store_stall_ns: f64,
}

impl Counters {
    /// Element-wise accumulate (for cross-core aggregation).
    pub fn add(&mut self, o: &Counters) {
        self.loads += o.loads;
        self.l2_hits += o.l2_hits;
        self.llc_hits += o.llc_hits;
        self.demand_misses += o.demand_misses;
        self.demand_stall_ns += o.demand_stall_ns;
        self.hw_prefetches += o.hw_prefetches;
        self.hw_prefetch_drops += o.hw_prefetch_drops;
        self.sw_prefetches += o.sw_prefetches;
        self.useless_prefetches += o.useless_prefetches;
        self.useful_prefetches += o.useful_prefetches;
        self.late_prefetches += o.late_prefetches;
        self.encode_read_bytes += o.encode_read_bytes;
        self.imc_read_bytes += o.imc_read_bytes;
        self.media_read_bytes += o.media_read_bytes;
        self.imc_write_bytes += o.imc_write_bytes;
        self.media_write_bytes += o.media_write_bytes;
        self.buffer_hits += o.buffer_hits;
        self.xpline_fetches += o.xpline_fetches;
        self.buffer_evicted_unused += o.buffer_evicted_unused;
        self.buffer_unused_lines += o.buffer_unused_lines;
        self.stream_evictions += o.stream_evictions;
        self.nt_stores += o.nt_stores;
        self.store_stall_ns += o.store_stall_ns;
    }

    /// Element-wise difference (for interval sampling by the coordinator).
    pub fn delta(&self, earlier: &Counters) -> Counters {
        Counters {
            loads: self.loads - earlier.loads,
            l2_hits: self.l2_hits - earlier.l2_hits,
            llc_hits: self.llc_hits - earlier.llc_hits,
            demand_misses: self.demand_misses - earlier.demand_misses,
            demand_stall_ns: self.demand_stall_ns - earlier.demand_stall_ns,
            hw_prefetches: self.hw_prefetches - earlier.hw_prefetches,
            hw_prefetch_drops: self.hw_prefetch_drops - earlier.hw_prefetch_drops,
            sw_prefetches: self.sw_prefetches - earlier.sw_prefetches,
            useless_prefetches: self.useless_prefetches - earlier.useless_prefetches,
            useful_prefetches: self.useful_prefetches - earlier.useful_prefetches,
            late_prefetches: self.late_prefetches - earlier.late_prefetches,
            encode_read_bytes: self.encode_read_bytes - earlier.encode_read_bytes,
            imc_read_bytes: self.imc_read_bytes - earlier.imc_read_bytes,
            media_read_bytes: self.media_read_bytes - earlier.media_read_bytes,
            imc_write_bytes: self.imc_write_bytes - earlier.imc_write_bytes,
            media_write_bytes: self.media_write_bytes - earlier.media_write_bytes,
            buffer_hits: self.buffer_hits - earlier.buffer_hits,
            xpline_fetches: self.xpline_fetches - earlier.xpline_fetches,
            buffer_evicted_unused: self.buffer_evicted_unused - earlier.buffer_evicted_unused,
            buffer_unused_lines: self.buffer_unused_lines - earlier.buffer_unused_lines,
            stream_evictions: self.stream_evictions - earlier.stream_evictions,
            nt_stores: self.nt_stores - earlier.nt_stores,
            store_stall_ns: self.store_stall_ns - earlier.store_stall_ns,
        }
    }

    /// Average demand load latency over an interval, ns (the coordinator's
    /// 110 %-threshold input). Falls back to 0 when no loads happened.
    pub fn avg_load_latency_ns(&self, l2_hit_ns: f64) -> f64 {
        if self.loads == 0 {
            return 0.0;
        }
        l2_hit_ns + self.demand_stall_ns / self.loads as f64
    }

    /// Useless fraction of hardware prefetches (late + evicted-unused over
    /// issued), the coordinator's 150 %-threshold input.
    pub fn useless_prefetch_ratio(&self) -> f64 {
        if self.hw_prefetches == 0 {
            return 0.0;
        }
        (self.useless_prefetches + self.late_prefetches) as f64 / self.hw_prefetches as f64
    }

    /// Prefetch share of controller read traffic (Fig. 5's "L2 prefetch
    /// ratio").
    pub fn prefetch_ratio(&self) -> f64 {
        let fills = self.demand_misses + self.hw_prefetches + self.sw_prefetches;
        if fills == 0 {
            return 0.0;
        }
        (self.hw_prefetches + self.sw_prefetches) as f64 / fills as f64
    }

    /// Media read amplification relative to demand bytes (Fig. 6/19).
    pub fn media_read_amplification(&self) -> f64 {
        if self.encode_read_bytes == 0 {
            return 0.0;
        }
        self.media_read_bytes as f64 / self.encode_read_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_delta_are_inverse() {
        let a = Counters {
            loads: 10,
            demand_stall_ns: 5.0,
            media_read_bytes: 256,
            ..Default::default()
        };
        let mut b = a;
        let inc = Counters {
            loads: 7,
            hw_prefetches: 3,
            ..Default::default()
        };
        b.add(&inc);
        let d = b.delta(&a);
        assert_eq!(d.loads, 7);
        assert_eq!(d.hw_prefetches, 3);
        assert_eq!(d.media_read_bytes, 0);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let c = Counters::default();
        assert_eq!(c.useless_prefetch_ratio(), 0.0);
        assert_eq!(c.prefetch_ratio(), 0.0);
        assert_eq!(c.media_read_amplification(), 0.0);
        assert_eq!(c.avg_load_latency_ns(4.2), 0.0);
    }

    #[test]
    fn amplification_math() {
        let c = Counters {
            encode_read_bytes: 1024,
            media_read_bytes: 1536,
            ..Default::default()
        };
        assert!((c.media_read_amplification() - 1.5).abs() < 1e-12);
    }
}
