//! The persistence domain: what is actually *durable* when power fails.
//!
//! The rest of this crate prices persistence (`RowTask::fence` drains the
//! channel queues; NT stores pay write bandwidth) but never models it:
//! nothing says which bytes survive a power failure. This module adds the
//! missing semantics in two layers:
//!
//! * [`PersistMem`] — a contents-bearing persistent image with the ADR
//!   store/flush/fence state machine. A store is *visible* immediately
//!   (program order) but becomes *durable* only once its cacheline has
//!   been flushed **and** a subsequent fence completed. `crash()` — or a
//!   scripted [`CrashPoint`](dialga_faultkit::Fault::CrashPoint) fault
//!   delivered at a fence — freezes the domain to its crash image:
//!   everything fenced, plus an arbitrary seeded subset of the lines that
//!   were flushed but not yet fenced. Tearing is at [`CACHELINE`] (64 B)
//!   granularity inside the [`XPLINE`] (256 B) media granularity, so an
//!   8-byte aligned word always persists atomically — the property the
//!   stripe store's commit record is built on.
//! * [`PersistDomain`] — the address-set analogue wired into
//!   [`Engine`](crate::Engine): it tracks which *line addresses* of a
//!   simulated run are durable versus pending, and counts persist
//!   boundaries, without carrying byte contents.
//!
//! # Epoch invariant
//!
//! Flushing a line snapshots its bytes *at flush time*. A later store to
//! the same line before the next fence dirties the line again and a later
//! flush replaces the snapshot, so the crash image can only ever expose
//! one pre-fence version of a line — never a blend of two epochs of the
//! same cacheline. The property tests below pin this.

use crate::{CACHELINE, XPLINE};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

#[cfg(feature = "fault-injection")]
use std::sync::Arc;

/// Errors from persistence-domain operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmError {
    /// Access beyond the end of the image.
    OutOfRange {
        /// Requested byte offset.
        offset: u64,
        /// Requested length.
        len: usize,
        /// Image length.
        image_len: usize,
    },
    /// Power has failed: only [`PersistMem::durable_image`] remains.
    Crashed,
}

impl fmt::Display for PmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmError::OutOfRange {
                offset,
                len,
                image_len,
            } => write!(
                f,
                "access [{offset}, {offset}+{len}) outside image of {image_len} bytes"
            ),
            PmError::Crashed => write!(f, "persistence domain has crashed (power failed)"),
        }
    }
}

impl std::error::Error for PmError {}

/// SplitMix64 step, used to draw the torn-line subset deterministically.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A contents-bearing persistent image with ADR crash semantics.
///
/// See the module docs for the model. All offsets are byte offsets; the
/// image length is rounded up to a whole number of XPLines.
#[derive(Debug)]
pub struct PersistMem {
    /// Program-visible contents (every store lands here immediately).
    volatile: Vec<u8>,
    /// Crash-survivable contents (updated only at completed fences).
    durable: Vec<u8>,
    /// Lines stored since their last flush — always lost on crash.
    dirty: BTreeSet<u64>,
    /// Flushed-but-not-fenced lines, with the bytes snapshotted at flush
    /// time. On crash an arbitrary subset of these snapshots persists.
    flushed: BTreeMap<u64, Vec<u8>>,
    /// Completed persist boundaries (fences).
    persists: u64,
    /// Total stores issued.
    stores: u64,
    crashed: bool,
    /// Deterministic source for the torn-subset draw.
    rng_state: u64,
    /// Crash scripted without faultkit: power fails at this 0-based
    /// persist boundary.
    armed_crash: Option<u64>,
    #[cfg(feature = "fault-injection")]
    fault: Option<Arc<dialga_faultkit::FaultCell>>,
}

impl PersistMem {
    /// A zero-filled image of at least `len` bytes (rounded up to a whole
    /// number of XPLines), with tearing seed 0.
    pub fn new(len: usize) -> Self {
        PersistMem::with_seed(len, 0)
    }

    /// A zero-filled image with an explicit tearing seed: equal seeds
    /// draw equal torn-line subsets at equal crash points.
    pub fn with_seed(len: usize, seed: u64) -> Self {
        let len = (len as u64).next_multiple_of(XPLINE) as usize;
        PersistMem {
            volatile: vec![0; len],
            durable: vec![0; len],
            dirty: BTreeSet::new(),
            flushed: BTreeMap::new(),
            persists: 0,
            stores: 0,
            crashed: false,
            rng_state: seed,
            armed_crash: None,
            #[cfg(feature = "fault-injection")]
            fault: None,
        }
    }

    /// Rebuild a domain from a previously captured durable image (e.g.
    /// the crash image of another domain): volatile and durable start
    /// equal, nothing pending.
    pub fn from_bytes(bytes: Vec<u8>, seed: u64) -> Self {
        let mut mem = PersistMem::with_seed(bytes.len(), seed);
        let len = bytes.len();
        mem.volatile[..len].copy_from_slice(&bytes);
        mem.durable[..len].copy_from_slice(&bytes);
        mem
    }

    /// Image length in bytes.
    pub fn len(&self) -> usize {
        self.volatile.len()
    }

    /// True for a zero-length image.
    pub fn is_empty(&self) -> bool {
        self.volatile.is_empty()
    }

    /// Completed persist boundaries (fences) so far.
    pub fn persist_boundaries(&self) -> u64 {
        self.persists
    }

    /// Total stores issued.
    pub fn stores_issued(&self) -> u64 {
        self.stores
    }

    /// Has power failed?
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Script a power failure at the `nth` (0-based) future persist
    /// boundary, counted from now. Replaces any earlier arming.
    pub fn arm_crash(&mut self, nth: u64) {
        self.armed_crash = Some(self.persists + nth);
    }

    /// Cancel a scripted [`arm_crash`](Self::arm_crash).
    pub fn disarm_crash(&mut self) {
        self.armed_crash = None;
    }

    /// Attach a [`FaultCell`](dialga_faultkit::FaultCell): every fence
    /// consults [`on_persist`](dialga_faultkit::FaultCell::on_persist),
    /// so a scripted `CrashPoint` power-fails the domain at exactly the
    /// scripted boundary.
    #[cfg(feature = "fault-injection")]
    pub fn set_fault_cell(&mut self, cell: Arc<dialga_faultkit::FaultCell>) {
        self.fault = Some(cell);
    }

    fn check_range(&self, offset: u64, len: usize) -> Result<usize, PmError> {
        let image_len = self.volatile.len();
        let end = offset.checked_add(len as u64);
        match end {
            Some(end) if end <= image_len as u64 => Ok(offset as usize),
            _ => Err(PmError::OutOfRange {
                offset,
                len,
                image_len,
            }),
        }
    }

    /// Read `out.len()` bytes at `offset` from the program-visible image.
    pub fn read(&self, offset: u64, out: &mut [u8]) -> Result<(), PmError> {
        if self.crashed {
            return Err(PmError::Crashed);
        }
        let start = self.check_range(offset, out.len())?;
        out.copy_from_slice(&self.volatile[start..start + out.len()]);
        Ok(())
    }

    /// Store `bytes` at `offset`: visible immediately, durable only after
    /// flush + fence. Marks every touched cacheline dirty.
    pub fn store(&mut self, offset: u64, bytes: &[u8]) -> Result<(), PmError> {
        if self.crashed {
            return Err(PmError::Crashed);
        }
        if bytes.is_empty() {
            return Ok(());
        }
        let start = self.check_range(offset, bytes.len())?;
        self.volatile[start..start + bytes.len()].copy_from_slice(bytes);
        self.stores += 1;
        let first = offset / CACHELINE;
        let last = (offset + bytes.len() as u64 - 1) / CACHELINE;
        for line in first..=last {
            self.dirty.insert(line);
        }
        Ok(())
    }

    /// Flush (`clwb`-like) every dirty cacheline intersecting
    /// `[offset, offset+len)`: their current bytes are snapshotted and
    /// *may* survive a crash, but only a fence makes them durable.
    pub fn flush(&mut self, offset: u64, len: usize) -> Result<(), PmError> {
        if self.crashed {
            return Err(PmError::Crashed);
        }
        if len == 0 {
            return Ok(());
        }
        self.check_range(offset, len)?;
        let first = offset / CACHELINE;
        let last = (offset + len as u64 - 1) / CACHELINE;
        for line in first..=last {
            if self.dirty.remove(&line) {
                let start = (line * CACHELINE) as usize;
                let snapshot = self.volatile[start..start + CACHELINE as usize].to_vec();
                // A re-flush of a line replaces the earlier snapshot: only
                // the latest pre-fence version of a line can ever persist.
                self.flushed.insert(line, snapshot);
            }
        }
        Ok(())
    }

    /// Fence (`sfence`-like): one persist boundary. Every flushed
    /// snapshot becomes durable — unless a crash is scripted for this
    /// boundary, in which case the domain power-fails *instead* and the
    /// flushed set tears.
    pub fn fence(&mut self) -> Result<(), PmError> {
        if self.crashed {
            return Err(PmError::Crashed);
        }
        let nth = self.persists;
        let crash = self.armed_crash == Some(nth);
        // Consult the fault cell unconditionally so its per-arm boundary
        // counter advances on every fence, hit or not.
        #[cfg(feature = "fault-injection")]
        let crash = self.fault.as_ref().is_some_and(|c| c.on_persist()) | crash;
        if crash {
            self.crash_now();
            return Err(PmError::Crashed);
        }
        let flushed = std::mem::take(&mut self.flushed);
        for (line, snapshot) in flushed {
            let start = (line * CACHELINE) as usize;
            self.durable[start..start + CACHELINE as usize].copy_from_slice(&snapshot);
        }
        self.persists = nth + 1;
        Ok(())
    }

    /// Flush + fence the range in one call: exactly one persist boundary.
    pub fn persist(&mut self, offset: u64, len: usize) -> Result<(), PmError> {
        self.flush(offset, len)?;
        self.fence()
    }

    /// Power-fail immediately. Dirty (unflushed) lines are lost outright;
    /// each flushed-but-unfenced snapshot persists or tears away per an
    /// independent seeded draw. Idempotent.
    pub fn crash_now(&mut self) {
        if self.crashed {
            return;
        }
        let flushed = std::mem::take(&mut self.flushed);
        for (line, snapshot) in flushed {
            if splitmix(&mut self.rng_state) & 1 == 0 {
                let start = (line * CACHELINE) as usize;
                self.durable[start..start + CACHELINE as usize].copy_from_slice(&snapshot);
            }
        }
        self.dirty.clear();
        self.crashed = true;
    }

    /// The crash-survivable image: exactly what a reboot would read.
    pub fn durable_image(&self) -> &[u8] {
        &self.durable
    }

    /// The program-visible image (pre-crash view).
    pub fn volatile_image(&self) -> Result<&[u8], PmError> {
        if self.crashed {
            return Err(PmError::Crashed);
        }
        Ok(&self.volatile)
    }

    /// Lines currently flushed but not yet fenced.
    pub fn pending_lines(&self) -> usize {
        self.flushed.len()
    }

    /// Lines stored but not yet flushed.
    pub fn dirty_lines(&self) -> usize {
        self.dirty.len()
    }
}

/// Address-set persistence tracker for the simulation [`Engine`]: which
/// NT-stored line addresses are durable versus pending, and how many
/// persist boundaries the run issued. Carries no byte contents — the
/// engine is timing-only; [`PersistMem`] is the contents-bearing twin.
///
/// [`Engine`]: crate::Engine
#[derive(Debug, Default, Clone)]
pub struct PersistDomain {
    /// Lines NT-stored since the last completed fence.
    pending: BTreeSet<u64>,
    /// Lines covered by a completed fence.
    durable: BTreeSet<u64>,
    /// Completed persist boundaries.
    boundaries: u64,
}

impl PersistDomain {
    /// A fresh, empty domain.
    pub fn new() -> Self {
        PersistDomain::default()
    }

    /// Record an NT store to `line` (a cacheline index, not a byte
    /// address).
    pub fn nt_store(&mut self, line: u64) {
        self.pending.insert(line);
    }

    /// Record a completed fence: everything pending becomes durable.
    pub fn fence(&mut self) {
        self.durable.append(&mut self.pending);
        self.boundaries += 1;
    }

    /// Lines stored but not yet covered by a fence.
    pub fn pending_lines(&self) -> usize {
        self.pending.len()
    }

    /// Lines covered by a completed fence.
    pub fn durable_lines(&self) -> usize {
        self.durable.len()
    }

    /// Completed persist boundaries.
    pub fn boundaries(&self) -> u64 {
        self.boundaries
    }

    /// Is the line holding byte address `addr` durable?
    pub fn is_durable(&self, addr: u64) -> bool {
        self.durable.contains(&(addr / CACHELINE))
    }

    /// The crash image as a line-address set: all durable lines plus a
    /// seeded arbitrary subset of the pending ones (the torn tail of an
    /// interrupted stripe write).
    pub fn crash_image(&self, seed: u64) -> BTreeSet<u64> {
        let mut state = seed;
        let mut image = self.durable.clone();
        for &line in &self.pending {
            if splitmix(&mut state) & 1 == 0 {
                image.insert(line);
            }
        }
        image
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialga_testkit::Rng;

    const LINE: usize = CACHELINE as usize;

    fn filled(len: usize, tag: u8) -> Vec<u8> {
        (0..len).map(|i| tag.wrapping_add(i as u8)).collect()
    }

    #[test]
    fn stores_are_visible_but_not_durable_until_fenced() {
        let mut mem = PersistMem::new(1024);
        let payload = filled(3 * LINE, 7);
        mem.store(0, &payload).unwrap();
        let mut back = vec![0u8; payload.len()];
        mem.read(0, &mut back).unwrap();
        assert_eq!(back, payload, "stores are program-visible immediately");
        assert_eq!(mem.durable_image()[..payload.len()], vec![0; payload.len()]);
        mem.flush(0, payload.len()).unwrap();
        assert_eq!(
            mem.durable_image()[..payload.len()],
            vec![0; payload.len()],
            "flush alone is not durability"
        );
        mem.fence().unwrap();
        assert_eq!(mem.durable_image()[..payload.len()], payload);
        assert_eq!(mem.persist_boundaries(), 1);
    }

    #[test]
    fn crash_drops_dirty_lines_and_tears_flushed_ones() {
        // Property: the durable image is always composed of, per line,
        // either the pre-crash durable bytes or the latest flushed
        // snapshot — never unflushed (dirty) bytes.
        let mut cases = 0;
        let mut torn = 0;
        for seed in 0..32u64 {
            let mut mem = PersistMem::with_seed(4096, seed);
            let base = filled(4096, 1);
            mem.store(0, &base).unwrap();
            mem.persist(0, 4096).unwrap();
            // New epoch: flush 8 lines, leave 2 dirty, then crash.
            let flushed_new = filled(8 * LINE, 101);
            let dirty_new = filled(2 * LINE, 201);
            mem.store(0, &flushed_new).unwrap();
            mem.flush(0, flushed_new.len()).unwrap();
            mem.store(8 * LINE as u64, &dirty_new).unwrap();
            mem.crash_now();
            assert!(mem.crashed());
            assert!(mem.read(0, &mut [0u8; 1]).is_err());
            let image = mem.durable_image();
            for line in 0..8 {
                let got = &image[line * LINE..(line + 1) * LINE];
                let old = &base[line * LINE..(line + 1) * LINE];
                let new = &flushed_new[line * LINE..(line + 1) * LINE];
                assert!(
                    got == old || got == new,
                    "seed {seed} line {line} torn blend"
                );
                cases += 1;
                if got == old {
                    torn += 1;
                }
            }
            for line in 8..10 {
                let got = &image[line * LINE..(line + 1) * LINE];
                let old = &base[line * LINE..(line + 1) * LINE];
                assert_eq!(got, old, "dirty lines must never persist");
            }
        }
        assert!(torn > 0 && torn < cases, "tearing draw is non-degenerate");
    }

    #[test]
    fn torn_lines_never_blend_two_epochs_of_the_same_cacheline() {
        // v1 fenced; v2 flushed (unfenced); v3 stored (dirty). The crash
        // image must show v1 or v2 per line — v3 and any blend are bugs.
        for seed in 0..32u64 {
            let mut mem = PersistMem::with_seed(1024, seed);
            let v1 = filled(4 * LINE, 10);
            let v2 = filled(4 * LINE, 90);
            let v3 = filled(4 * LINE, 170);
            mem.store(0, &v1).unwrap();
            mem.persist(0, v1.len()).unwrap();
            mem.store(0, &v2).unwrap();
            mem.flush(0, v2.len()).unwrap();
            mem.store(0, &v3).unwrap(); // dirties the lines again, post-flush
            mem.crash_now();
            let image = mem.durable_image();
            for line in 0..4 {
                let got = &image[line * LINE..(line + 1) * LINE];
                assert!(
                    got == &v1[line * LINE..(line + 1) * LINE]
                        || got == &v2[line * LINE..(line + 1) * LINE],
                    "seed {seed} line {line}: crash image leaked a post-flush store"
                );
            }
        }
    }

    #[test]
    fn durable_image_is_always_a_subset_of_issued_stores() {
        // Randomized: every durable byte matches what the program wrote
        // (volatile view at the last fence or flush), never invented data.
        let mut rng = Rng::new(0xD1A7_5EED);
        for case in 0..24 {
            let mut mem = PersistMem::with_seed(2048, rng.u64());
            let mut shadow = vec![0u8; mem.len()]; // mirror of volatile
            for _ in 0..rng.range(2, 20) {
                let off = rng.below((mem.len() - LINE) as u64);
                let len = rng.range(1, 2 * LINE);
                let len = len.min(mem.len() - off as usize);
                let bytes: Vec<u8> = (0..len).map(|_| rng.u8()).collect();
                mem.store(off, &bytes).unwrap();
                shadow[off as usize..off as usize + len].copy_from_slice(&bytes);
                if rng.bool() {
                    mem.flush(off, len).unwrap();
                }
                if rng.bool_with(0.3) {
                    mem.fence().unwrap();
                }
            }
            // Fence makes the flushed subset total…
            mem.flush(0, mem.len()).unwrap();
            mem.fence().unwrap();
            assert_eq!(
                mem.durable_image(),
                &shadow[..],
                "case {case}: after flush-all + fence, durable == volatile"
            );
        }
    }

    #[test]
    fn armed_crash_fires_at_the_scripted_boundary() {
        let mut mem = PersistMem::new(512);
        mem.arm_crash(1); // second future fence
        mem.store(0, &filled(LINE, 1)).unwrap();
        mem.persist(0, LINE).unwrap(); // boundary 0: survives
        mem.store(0, &filled(LINE, 2)).unwrap();
        assert_eq!(mem.persist(0, LINE), Err(PmError::Crashed));
        assert!(mem.crashed());
        assert_eq!(
            mem.persist_boundaries(),
            1,
            "crashed boundary never completes"
        );
        // Disarmed domains never crash.
        let mut mem = PersistMem::new(512);
        mem.arm_crash(0);
        mem.disarm_crash();
        mem.store(0, &filled(LINE, 3)).unwrap();
        mem.persist(0, LINE).unwrap();
        assert!(!mem.crashed());
    }

    #[test]
    fn out_of_range_accesses_are_rejected() {
        let mut mem = PersistMem::new(XPLINE as usize);
        assert_eq!(mem.len() as u64, XPLINE, "length rounds to XPLines");
        assert!(matches!(
            mem.store(XPLINE - 1, &[0, 0]),
            Err(PmError::OutOfRange { .. })
        ));
        assert!(mem.read(XPLINE, &mut [0u8; 1]).is_err());
        assert!(mem.flush(0, mem.len() + 1).is_err());
        assert!(mem.store(0, &[]).is_ok(), "empty store is a no-op");
    }

    #[test]
    fn from_bytes_round_trips_a_crash_image() {
        let mut mem = PersistMem::with_seed(1024, 9);
        let payload = filled(1024, 42);
        mem.store(0, &payload).unwrap();
        mem.persist(0, 1024).unwrap();
        mem.crash_now();
        let reborn = PersistMem::from_bytes(mem.durable_image().to_vec(), 10);
        let mut back = vec![0u8; 1024];
        reborn.read(0, &mut back).unwrap();
        assert_eq!(back, payload);
        assert!(!reborn.crashed());
        assert_eq!(reborn.persist_boundaries(), 0);
    }

    #[test]
    fn domain_tracker_counts_boundaries_and_draws_seeded_crash_images() {
        let mut dom = PersistDomain::new();
        for line in 0..8 {
            dom.nt_store(line);
        }
        assert_eq!(dom.pending_lines(), 8);
        assert_eq!(dom.durable_lines(), 0);
        dom.fence();
        assert_eq!(dom.pending_lines(), 0);
        assert_eq!(dom.durable_lines(), 8);
        assert_eq!(dom.boundaries(), 1);
        assert!(dom.is_durable(3 * CACHELINE));
        for line in 8..24 {
            dom.nt_store(line);
        }
        let a = dom.crash_image(7);
        let b = dom.crash_image(7);
        assert_eq!(a, b, "equal seeds draw equal torn subsets");
        assert!(a.len() >= 8 && a.len() <= 24, "durable ⊆ image ⊆ stored");
        assert!(
            (0..8).all(|l| a.contains(&l)),
            "durable lines always survive"
        );
        let c = dom.crash_image(8);
        assert!(a != c || dom.pending_lines() == 0, "seeds vary the tear");
    }
}
