//! Memory devices: Optane-like PM (with on-DIMM XPLine read buffer) and
//! DRAM, both with per-channel queueing.
//!
//! The PM model is the core of the substitution: a 64 B read that misses
//! the read buffer fetches the whole 256 B XPLine from media (*implicit
//! load*, §2.1/Fig. 1), so media traffic is counted in XPLines. The buffer
//! is per-channel LRU; evicting an XPLine whose lines were never all read
//! is the read-buffer-thrashing signal of Obs. 5.

use crate::config::MachineConfig;
use crate::counters::Counters;
use crate::CACHELINE;
use std::collections::HashMap;

/// One media-unit slot in the on-DIMM read buffer.
#[derive(Debug, Clone, Copy)]
struct BufSlot {
    xp: u64,
    lru: u64,
    /// Which cachelines of the unit have been read since the fetch
    /// (units hold at most 64 lines).
    used_mask: u64,
}

#[derive(Debug, Clone, Default)]
struct Channel {
    /// Serial transfer bus (DDR-T / DDR4), modelled as a leaky-bucket
    /// backlog: `bus_backlog_ns` of queued transfer time as of
    /// `bus_last_ns`. The backlog drains in simulated time, so a request
    /// from a thread whose local clock lags another thread's is delayed by
    /// the *standing queue*, never by absolute reservations made in its
    /// future (which would serialize logical threads artificially).
    bus_backlog_ns: f64,
    bus_last_ns: f64,
    /// Media access slots (PM only): each entry is the time its current
    /// access finishes occupying the slot.
    media_slots: Vec<f64>,
    /// Read-buffer slots (PM only).
    buffer: Vec<BufSlot>,
    /// XPLine fetches currently in flight: completion time per XPLine.
    /// Merges concurrent reads of one XPLine into one media fetch.
    inflight: HashMap<u64, f64>,
    tick: u64,
}

impl Channel {
    /// Queue a bus transfer of `svc` ns at time `now`; returns the queueing
    /// delay before it starts.
    fn bus_access(&mut self, now_ns: f64, svc_ns: f64) -> f64 {
        if now_ns > self.bus_last_ns {
            self.bus_backlog_ns = (self.bus_backlog_ns - (now_ns - self.bus_last_ns)).max(0.0);
            self.bus_last_ns = now_ns;
        }
        let delay = self.bus_backlog_ns;
        self.bus_backlog_ns += svc_ns;
        delay
    }

    /// Current standing queue at `now` without enqueueing.
    fn bus_peek(&self, now_ns: f64) -> f64 {
        if now_ns > self.bus_last_ns {
            (self.bus_backlog_ns - (now_ns - self.bus_last_ns)).max(0.0)
        } else {
            self.bus_backlog_ns
        }
    }
}

/// The shared memory system (device + channels). All reads/writes from
/// every simulated core funnel through here, which is what produces the
/// multi-thread contention and thrashing of Obs. 5.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MachineConfig,
    channels: Vec<Channel>,
    buffer_slots_per_channel: usize,
    /// Deterministic fault cell: scripted media-latency spikes (an Optane
    /// DIMM stalling on internal maintenance) land on the XPLine fetch
    /// path. Disarmed cost is one atomic load per media fetch.
    #[cfg(feature = "fault-injection")]
    fault: Option<std::sync::Arc<dialga_faultkit::FaultCell>>,
}

impl MemorySystem {
    /// Build from the machine config.
    pub fn new(cfg: &MachineConfig) -> Self {
        let slots = cfg.buffer_xplines_per_channel();
        MemorySystem {
            cfg: cfg.clone(),
            channels: (0..cfg.channels)
                .map(|_| Channel {
                    media_slots: vec![0.0; cfg.pm.media_slots],
                    ..Channel::default()
                })
                .collect(),
            buffer_slots_per_channel: slots,
            #[cfg(feature = "fault-injection")]
            fault: None,
        }
    }

    /// Attach a fault cell so scripted PM media spikes reach this memory
    /// system (see `dialga-faultkit`).
    #[cfg(feature = "fault-injection")]
    pub fn set_fault_cell(&mut self, cell: std::sync::Arc<dialga_faultkit::FaultCell>) {
        self.fault = Some(cell);
    }

    #[inline]
    fn channel_of(&self, byte_addr: u64) -> usize {
        ((byte_addr / self.cfg.interleave_bytes) % self.cfg.channels as u64) as usize
    }

    /// Standing queue a read issued now would see at the memory controller
    /// (the queue-pressure signal used to drop low-priority prefetches).
    /// Deliberately excludes DIMM-internal media-slot occupancy: the
    /// controller — like a real prefetch throttle — cannot see inside the
    /// DIMM, which is precisely why hardware prefetching keeps hammering an
    /// already-thrashing PM read buffer (Obs. 5).
    pub fn read_queue_delay(&self, line: u64, now_ns: f64) -> f64 {
        let addr = line * CACHELINE;
        let c = &self.channels[self.channel_of(addr)];
        c.bus_peek(now_ns)
    }

    /// Read one cacheline (by line address). Returns the completion time.
    /// Counter attribution (imc/media/buffer) goes to `ctr`.
    pub fn read_line(&mut self, line: u64, now_ns: f64, ctr: &mut Counters) -> f64 {
        let addr = line * CACHELINE;
        ctr.imc_read_bytes += CACHELINE;
        match self.cfg.mem {
            crate::MemKind::Dram => {
                let (lat, svc) = (self.cfg.dram.latency_ns, self.cfg.dram.service_ns);
                let ch = self.channel_of(addr);
                let c = &mut self.channels[ch];
                let delay = c.bus_access(now_ns, svc);
                ctr.media_read_bytes += CACHELINE; // media == DIMM for DRAM
                now_ns + delay + lat
            }
            crate::MemKind::Pm => self.pm_read(addr, now_ns, ctr),
        }
    }

    fn pm_read(&mut self, addr: u64, now_ns: f64, ctr: &mut Counters) -> f64 {
        let pm = self.cfg.pm;
        let ch_idx = self.channel_of(addr);
        let slots = self.buffer_slots_per_channel;
        let lines_per_unit = pm.unit_bytes / CACHELINE;
        let c = &mut self.channels[ch_idx];
        let xp = addr / pm.unit_bytes;
        let line_in_xp = (addr / CACHELINE) % lines_per_unit;
        c.tick += 1;
        let tick = c.tick;

        // Merge with an in-flight fetch of the same XPLine.
        c.inflight.retain(|_, &mut done| done > now_ns);
        if let Some(&done) = c.inflight.get(&xp) {
            if let Some(slot) = c.buffer.iter_mut().find(|s| s.xp == xp) {
                slot.used_mask |= 1 << line_in_xp;
                slot.lru = tick;
            }
            ctr.buffer_hits += 1;
            return done.max(now_ns) + pm.buffer_bus_ns;
        }

        // Read-buffer hit: a 64 B transfer over the bus at buffer latency.
        if let Some(slot) = c.buffer.iter_mut().find(|s| s.xp == xp) {
            slot.used_mask |= 1 << line_in_xp;
            slot.lru = tick;
            let delay = c.bus_access(now_ns, pm.buffer_bus_ns);
            ctr.buffer_hits += 1;
            return now_ns + delay + pm.buffer_hit_ns;
        }

        // Media fetch: implicit load of the whole XPLine. Takes the
        // earliest media slot plus a bus delivery.
        let bus_delay = c.bus_access(now_ns, pm.media_bus_ns);
        let (slot_idx, slot_free) = c
            .media_slots
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("media slots configured");
        let start = (now_ns + bus_delay).max(slot_free);
        // Scripted fault: this media fetch stalls for extra nanoseconds
        // (an Optane DIMM on internal maintenance); the occupied slot and
        // completion time both slip, so the spike also queues behind it.
        #[cfg(not(feature = "fault-injection"))]
        let spike_ns = 0.0;
        #[cfg(feature = "fault-injection")]
        let spike_ns = self
            .fault
            .as_ref()
            .and_then(|f| f.on_media_read())
            .unwrap_or(0.0);
        c.media_slots[slot_idx] = start + pm.media_occupancy_ns + spike_ns;
        let done = start + pm.media_latency_ns + spike_ns;
        ctr.media_read_bytes += pm.unit_bytes;
        ctr.xpline_fetches += 1;
        c.inflight.insert(xp, done);

        // Install into the buffer. Replacement is pseudo-random (xorshift
        // on the access tick): round-robin scans over a working set just
        // past capacity then degrade gracefully instead of falling off the
        // LRU cliff — matching the progressive thrashing the paper
        // measures (Fig. 19's +66 % media amplification, not a collapse).
        if c.buffer.len() >= slots {
            let mut x = c.tick ^ (xp << 1) ^ 0x9E37_79B9;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let idx = (x % c.buffer.len() as u64) as usize;
            let victim = c.buffer.swap_remove(idx);
            let unused = lines_per_unit - victim.used_mask.count_ones() as u64;
            if unused > 0 {
                ctr.buffer_evicted_unused += 1;
                ctr.buffer_unused_lines += unused;
            }
        }
        c.buffer.push(BufSlot {
            xp,
            lru: tick,
            used_mask: 1 << line_in_xp,
        });
        done
    }

    /// Posted non-temporal store of one cacheline. Returns the time until
    /// which the *thread* must stall (normally `now_ns`; later only when
    /// the channel write backlog is full).
    pub fn write_line(&mut self, line: u64, now_ns: f64, ctr: &mut Counters) -> f64 {
        let addr = line * CACHELINE;
        ctr.imc_write_bytes += CACHELINE;
        ctr.nt_stores += 1;
        let ch = self.channel_of(addr);
        let svc = match self.cfg.mem {
            crate::MemKind::Dram => self.cfg.dram.write_service_ns,
            crate::MemKind::Pm => self.cfg.pm.write_service_ns,
        };
        ctr.media_write_bytes += CACHELINE;
        let c = &mut self.channels[ch];
        let delay = c.bus_access(now_ns, svc);
        // Backlog control: if the queue runs too far ahead, the thread
        // stalls until it drains to the threshold.
        let backlog = delay + svc;
        if backlog > self.cfg.write_backlog_ns {
            now_ns + (backlog - self.cfg.write_backlog_ns)
        } else {
            now_ns
        }
    }

    /// Drain point for fences: time at which all channel queues are empty.
    pub fn drain_time(&self) -> f64 {
        self.channels
            .iter()
            .map(|c| c.bus_last_ns + c.bus_backlog_ns)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn pm_sys() -> (MemorySystem, Counters) {
        (MemorySystem::new(&MachineConfig::pm()), Counters::default())
    }

    #[test]
    fn first_read_hits_media_next_lines_hit_buffer() {
        let (mut m, mut c) = pm_sys();
        let t0 = m.read_line(0, 0.0, &mut c); // line 0 -> XPLine 0
        assert!((t0 - 380.0).abs() < 1e-9, "media latency, got {t0}");
        assert_eq!(c.xpline_fetches, 1);
        assert_eq!(c.media_read_bytes, 256);
        // Lines 1..3 of the same XPLine after the fetch completes.
        let t1 = m.read_line(1, 400.0, &mut c);
        assert!(
            t1 - 400.0 <= 166.0,
            "buffer hit latency, got {}",
            t1 - 400.0
        );
        assert_eq!(c.xpline_fetches, 1, "no second media fetch");
        assert_eq!(c.buffer_hits, 1);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn scripted_media_spike_is_deterministic_and_slot_scoped() {
        use dialga_faultkit::{Fault, FaultCell, FaultPlan};
        let cell = std::sync::Arc::new(FaultCell::new());
        // Spike the second media fetch by 10 µs; buffer hits must neither
        // trigger nor consume it.
        cell.arm(
            &FaultPlan::new().with(Fault::MediaSpike {
                nth_read: 1,
                extra_ns: 10_000.0,
            }),
            1,
        );
        let run = |fault: Option<std::sync::Arc<FaultCell>>| {
            let (mut m, mut c) = pm_sys();
            if let Some(f) = fault {
                m.set_fault_cell(f);
            }
            let t0 = m.read_line(0, 0.0, &mut c); // media fetch 0
            let tb = m.read_line(1, 500.0, &mut c); // buffer hit
            let t1 = m.read_line(64, 1000.0, &mut c); // media fetch 1 (new XPLine, ch 1)
            let t2 = m.read_line(128, 2000.0, &mut c); // media fetch 2
            (t0, tb, t1, t2)
        };
        let clean = run(None);
        let faulty = run(Some(std::sync::Arc::clone(&cell)));
        assert_eq!(cell.injected(), 1, "exactly one spike fired");
        assert!((faulty.0 - clean.0).abs() < 1e-9, "fetch 0 unaffected");
        assert!((faulty.1 - clean.1).abs() < 1e-9, "buffer hit unaffected");
        assert!(
            (faulty.2 - (clean.2 + 10_000.0)).abs() < 1e-9,
            "fetch 1 absorbs the spike: {} vs {}",
            faulty.2,
            clean.2
        );
        assert!((faulty.3 - clean.3).abs() < 1e-9, "fetch 2 unaffected");
        // Re-running with the plan exhausted is clean again.
        let replay = run(Some(cell));
        assert!((replay.2 - clean.2).abs() < 1e-9, "plan fires once");
    }

    #[test]
    fn concurrent_reads_of_one_xpline_merge() {
        let (mut m, mut c) = pm_sys();
        let t0 = m.read_line(0, 0.0, &mut c);
        // Second line requested while the fetch is in flight: completes with
        // (not after twice) the media fetch.
        let t1 = m.read_line(1, 10.0, &mut c);
        assert_eq!(c.xpline_fetches, 1);
        assert!(
            t1 >= t0 && t1 < t0 + 50.0,
            "merged completion, got {t1} vs {t0}"
        );
    }

    #[test]
    fn implicit_load_amplification_counted() {
        let (mut m, mut c) = pm_sys();
        // Touch one line each from 10 distinct XPLines on one channel.
        for i in 0..10u64 {
            m.read_line(i * 4, (i as f64) * 1000.0, &mut c);
        }
        assert_eq!(c.imc_read_bytes, 10 * 64);
        assert_eq!(c.media_read_bytes, 10 * 256, "4x implicit amplification");
    }

    #[test]
    fn buffer_eviction_tracks_unused_lines() {
        let cfg = MachineConfig::pm();
        let slots = cfg.buffer_xplines_per_channel() as u64;
        let mut m = MemorySystem::new(&cfg);
        let mut c = Counters::default();
        // Fill one channel's buffer past capacity with single-line touches;
        // every evicted XPLine has 3 unused lines. Stay inside one 4KiB
        // interleave unit per XPLine? XPLines 0..slots+8 on channel 0:
        // use addresses within channel 0 (first 4KiB of every 24KiB).
        let mut n = 0u64;
        let mut t = 0.0;
        let mut xp_count = 0u64;
        'outer: for region in 0.. {
            let base = region * cfg.interleave_bytes * cfg.channels as u64; // channel 0
            for xp_in_region in 0..(cfg.interleave_bytes / crate::XPLINE) {
                let addr = base + xp_in_region * crate::XPLINE;
                m.read_line(addr / 64, t, &mut c);
                t += 1000.0;
                n += 1;
                xp_count += 1;
                if xp_count > slots + 8 {
                    break 'outer;
                }
            }
        }
        assert!(n > slots);
        assert!(c.buffer_evicted_unused >= 8);
        assert_eq!(c.buffer_unused_lines, c.buffer_evicted_unused * 3);
    }

    #[test]
    fn bus_spaces_back_to_back_media_reads() {
        let (mut m, mut c) = pm_sys();
        // Two different XPLines, same channel, both at t=0: second queues
        // only behind the 16 ns bus delivery (slots are plentiful).
        let t0 = m.read_line(0, 0.0, &mut c);
        let t1 = m.read_line(4, 0.0, &mut c); // XPLine 1, channel 0
        assert!((t0 - 380.0).abs() < 1e-9);
        assert!((t1 - 396.0).abs() < 1e-9, "bus-spaced start, got {t1}");
    }

    #[test]
    fn media_slots_limit_channel_concurrency() {
        let cfg = MachineConfig::pm();
        let slots = cfg.pm.media_slots;
        let (mut m, mut c) = pm_sys();
        // slots+1 distinct XPLines on channel 0 at t=0: the last one waits
        // for a slot to free (~media_occupancy).
        let mut last = 0.0;
        for i in 0..=(slots as u64) {
            last = m.read_line(i * 4, 0.0, &mut c);
        }
        assert!(
            last >= cfg.pm.media_occupancy_ns + cfg.pm.media_latency_ns - 1.0,
            "slot exhaustion should delay: {last}"
        );
        // The controller-visible queue probe only reports bus backlog
        // (slots are DIMM-internal and invisible to prefetch throttling).
        let d = m.read_queue_delay((slots as u64 + 1) * 4, 0.0);
        let bus_expected = (slots + 1) as f64 * cfg.pm.media_bus_ns;
        assert!(
            (d - bus_expected).abs() < 1e-6,
            "bus queue {d} vs {bus_expected}"
        );
    }

    #[test]
    fn different_channels_do_not_queue() {
        let (mut m, mut c) = pm_sys();
        let t0 = m.read_line(0, 0.0, &mut c);
        // 4096 bytes later -> channel 1.
        let t1 = m.read_line(4096 / 64, 0.0, &mut c);
        assert!((t0 - 380.0).abs() < 1e-9);
        assert!((t1 - 380.0).abs() < 1e-9);
    }

    #[test]
    fn cmm_h_units_are_1kib() {
        let cfg = MachineConfig::cmm_h();
        let mut m = MemorySystem::new(&cfg);
        let mut c = Counters::default();
        let t0 = m.read_line(0, 0.0, &mut c);
        assert!((t0 - cfg.pm.media_latency_ns).abs() < 1e-9);
        assert_eq!(c.media_read_bytes, 1024, "one flash unit");
        // All 15 remaining lines of the unit hit the DRAM buffer.
        for l in 1..16u64 {
            let at = 3000.0 + 100.0 * l as f64; // spaced past bus backlog
            let t = m.read_line(l, at, &mut c);
            assert!(t - at <= cfg.pm.buffer_hit_ns + 1.0, "line {l}");
        }
        assert_eq!(c.xpline_fetches, 1);
        assert_eq!(c.buffer_hits, 15);
    }

    #[test]
    fn dram_reads_have_no_implicit_amplification() {
        let mut m = MemorySystem::new(&MachineConfig::dram());
        let mut c = Counters::default();
        for i in 0..8u64 {
            m.read_line(i, (i as f64) * 100.0, &mut c);
        }
        assert_eq!(c.media_read_bytes, c.imc_read_bytes);
        assert_eq!(c.xpline_fetches, 0);
    }

    #[test]
    fn write_backlog_stalls_thread() {
        let (mut m, mut c) = pm_sys();
        let mut stall_until = 0.0f64;
        // Hammer one channel (lines within the first 4 KiB interleave unit)
        // with NT stores at t=0 until the backlog threshold trips.
        for i in 0..300u64 {
            stall_until = m.write_line(i % 64, 0.0, &mut c);
        }
        assert!(stall_until > 0.0, "backlog should eventually stall");
        assert_eq!(c.nt_stores, 300);
    }
}
