//! Set-associative LRU cache with prefetch tagging.
//!
//! Entries carry a `ready_ns` fill-completion time so an in-flight fill
//! (demand or prefetch) can be modelled without a global event queue: a
//! later demand to the line simply waits until `ready_ns`. Prefetch-tagged
//! entries that get evicted unused feed the useless-prefetch counter
//! (PMU 0xf2 analogue).

use crate::config::CacheConfig;

/// Invalid tag sentinel.
const INVALID: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Line address (byte address / 64), or `INVALID`.
    tag: u64,
    /// LRU timestamp (monotone tick).
    lru: u64,
    /// Fill completion time.
    ready_ns: f64,
    /// Filled by a prefetch and not yet consumed by demand.
    prefetched: bool,
}

/// Result of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Probe {
    /// Line present; `ready_ns` is when the fill completes (may be past),
    /// `was_prefetch` reports whether this is the first demand touch of a
    /// prefetched line.
    Hit {
        /// Fill completion time of the resident line.
        ready_ns: f64,
        /// First demand touch of a prefetched line.
        was_prefetch: bool,
    },
    /// Line absent.
    Miss,
}

/// What an insert evicted, if anything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evicted {
    /// The evicted line address.
    pub line: u64,
    /// It was prefetched and never consumed — a useless prefetch.
    pub useless_prefetch: bool,
}

/// A set-associative LRU cache over 64 B lines.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    entries: Vec<Entry>,
    tick: u64,
}

impl Cache {
    /// Build from a config.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets > 0 && cfg.ways > 0, "degenerate cache geometry");
        Cache {
            sets,
            ways: cfg.ways,
            entries: vec![
                Entry {
                    tag: INVALID,
                    lru: 0,
                    ready_ns: 0.0,
                    prefetched: false,
                };
                sets * cfg.ways
            ],
            tick: 0,
        }
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line as usize) % self.sets;
        set * self.ways..(set + 1) * self.ways
    }

    /// Demand probe: on hit, touches LRU and clears the prefetch tag.
    pub fn probe_demand(&mut self, line: u64) -> Probe {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        for e in &mut self.entries[range] {
            if e.tag == line {
                e.lru = tick;
                let was_prefetch = e.prefetched;
                e.prefetched = false;
                return Probe::Hit {
                    ready_ns: e.ready_ns,
                    was_prefetch,
                };
            }
        }
        Probe::Miss
    }

    /// Prefetch probe: reports presence without clearing the tag (a
    /// prefetch to a resident line is dropped by the issuer).
    pub fn contains(&self, line: u64) -> bool {
        let range = self.set_range(line);
        self.entries[range].iter().any(|e| e.tag == line)
    }

    /// Insert a line filled at `ready_ns`. Returns eviction info.
    pub fn insert(&mut self, line: u64, ready_ns: f64, prefetched: bool) -> Option<Evicted> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        // Already present (e.g. race between prefetch and demand): refresh.
        if let Some(e) = self.entries[range.clone()]
            .iter_mut()
            .find(|e| e.tag == line)
        {
            e.lru = tick;
            e.ready_ns = e.ready_ns.min(ready_ns);
            return None;
        }
        let victim = self.entries[range]
            .iter_mut()
            .min_by_key(|e| if e.tag == INVALID { 0 } else { e.lru + 1 })
            .expect("nonzero ways");
        let evicted = if victim.tag != INVALID {
            Some(Evicted {
                line: victim.tag,
                useless_prefetch: victim.prefetched,
            })
        } else {
            None
        };
        *victim = Entry {
            tag: line,
            lru: tick,
            ready_ns,
            prefetched,
        };
        evicted
    }

    /// Drop a line if present (used by tests and invalidation paths).
    pub fn invalidate(&mut self, line: u64) {
        let range = self.set_range(line);
        for e in &mut self.entries[range] {
            if e.tag == line {
                e.tag = INVALID;
                e.prefetched = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn tiny() -> Cache {
        // 4 sets x 2 ways = 8 lines.
        Cache::new(&CacheConfig {
            bytes: 8 * 64,
            ways: 2,
            hit_ns: 1.0,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.probe_demand(5), Probe::Miss);
        assert!(c.insert(5, 10.0, false).is_none());
        match c.probe_demand(5) {
            Probe::Hit {
                ready_ns,
                was_prefetch,
            } => {
                assert_eq!(ready_ns, 10.0);
                assert!(!was_prefetch);
            }
            Probe::Miss => panic!("expected hit"),
        }
    }

    #[test]
    fn lru_evicts_oldest_in_set() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.insert(0, 0.0, false);
        c.insert(4, 0.0, false);
        // Touch 0 so 4 becomes LRU.
        c.probe_demand(0);
        let ev = c.insert(8, 0.0, false).expect("eviction");
        assert_eq!(ev.line, 4);
        assert!(c.contains(0));
        assert!(!c.contains(4));
    }

    #[test]
    fn useless_prefetch_detected_on_eviction() {
        let mut c = tiny();
        c.insert(0, 0.0, true); // prefetched, never touched
        c.insert(4, 0.0, false);
        let ev = c.insert(8, 0.0, false).expect("eviction");
        assert_eq!(ev.line, 0);
        assert!(ev.useless_prefetch);
    }

    #[test]
    fn demand_touch_clears_prefetch_tag() {
        let mut c = tiny();
        c.insert(0, 0.0, true);
        match c.probe_demand(0) {
            Probe::Hit { was_prefetch, .. } => assert!(was_prefetch),
            _ => panic!(),
        }
        // Second touch no longer reports prefetch; eviction not useless.
        match c.probe_demand(0) {
            Probe::Hit { was_prefetch, .. } => assert!(!was_prefetch),
            _ => panic!(),
        }
        c.insert(4, 0.0, false);
        let ev = c.insert(8, 0.0, false).unwrap();
        assert!(!ev.useless_prefetch);
    }

    #[test]
    fn reinsert_keeps_earlier_ready_time() {
        let mut c = tiny();
        c.insert(3, 50.0, true);
        assert!(c.insert(3, 20.0, false).is_none());
        match c.probe_demand(3) {
            Probe::Hit { ready_ns, .. } => assert_eq!(ready_ns, 20.0),
            _ => panic!(),
        }
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.insert(7, 0.0, false);
        assert!(c.contains(7));
        c.invalidate(7);
        assert!(!c.contains(7));
    }

    #[test]
    fn fills_all_ways_before_evicting() {
        let mut c = tiny();
        assert!(c.insert(1, 0.0, false).is_none());
        assert!(c.insert(5, 0.0, false).is_none()); // same set, second way
        assert!(c.insert(9, 0.0, false).is_some()); // now evicts
    }
}
