//! Property-based tests: every code in the crate must survive arbitrary
//! erasure patterns within its fault tolerance, on arbitrary data.
//!
//! Randomized with the in-tree deterministic harness (`dialga-testkit`).

use dialga_ec::decompose::DecomposedRs;
use dialga_ec::xor::XorFlavor;
use dialga_ec::{Lrc, ReedSolomon, XorCode};
use dialga_testkit::run_cases;

#[test]
fn rs_roundtrip_any_erasure() {
    run_cases(64, |rng| {
        let k = rng.range(2, 21);
        let m = rng.range(1, 7);
        let len = rng.range(1, 6) * 16;
        let seed = rng.u64();
        let rs = ReedSolomon::new(k, m).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((seed as usize + i * 31 + j * 7) % 256) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode_vec(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        // Erase up to m blocks chosen at random.
        let n = k + m;
        let lost = rng.range(0, m + 2).min(m);
        let mut idx: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut idx);
        for &e in idx.iter().take(lost) {
            shards[e] = None;
        }
        rs.decode(&mut shards).unwrap();
        for (i, d) in data.iter().enumerate() {
            assert_eq!(shards[i].as_ref().unwrap(), d);
        }
    });
}

#[test]
fn decompose_equals_full() {
    run_cases(64, |rng| {
        let k = rng.range(4, 40);
        let m = rng.range(1, 5);
        let sub_k = rng.range(2, 12);
        let seed = rng.u64();
        let rs = ReedSolomon::new(k, m).unwrap();
        let dec = DecomposedRs::new(rs.clone(), sub_k).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                (0..32)
                    .map(|j| ((seed as usize + i * 13 + j) % 256) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert_eq!(
            dec.encode_vec(&refs).unwrap(),
            rs.encode_vec(&refs).unwrap()
        );
    });
}

#[test]
fn xor_roundtrip_data_erasures() {
    run_cases(64, |rng| {
        let k = rng.range(3, 10);
        let m = rng.range(1, 4);
        let seed = rng.u64();
        let xc = XorCode::new(k, m, XorFlavor::Cerasure).unwrap();
        let len = 64usize;
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((seed as usize ^ (i * 97 + j * 3)) % 256) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = xc.encode_vec(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        let lost = 1 + (seed as usize % m);
        for e in 0..lost.min(k) {
            shards[(seed as usize + e * 5) % k] = None; // data-block erasures
        }
        xc.decode(&mut shards).unwrap();
        for (i, d) in data.iter().enumerate() {
            assert_eq!(shards[i].as_ref().unwrap(), d, "block {i}");
        }
    });
}

#[test]
fn lrc_local_repair_any_block() {
    run_cases(64, |rng| {
        let gs = rng.range(2, 6);
        let l = rng.range(1, 4);
        let m = rng.range(1, 4);
        let seed = rng.u64();
        let k = gs * l;
        let lost = rng.range(0, k);
        let lrc = Lrc::new(k, m, l).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                (0..32)
                    .map(|j| ((seed as usize + i * 11 + j * 5) % 256) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = lrc.encode_vec(&refs).unwrap();
        let g = lrc.group_of(lost);
        let peers: Vec<&[u8]> = (g * gs..(g + 1) * gs)
            .filter(|&i| i != lost)
            .map(|i| refs[i])
            .collect();
        let repaired = lrc.repair_local(lost, &peers, &parity[m + g]).unwrap();
        assert_eq!(repaired, data[lost].clone());
    });
}

#[test]
fn smart_schedule_equals_naive_schedule() {
    run_cases(64, |rng| {
        let k = rng.range(2, 9);
        let m = rng.range(1, 4);
        let seed = rng.u64();
        // The CSE-optimized schedule must compute exactly the same parity
        // as the naive one, for arbitrary Cauchy matrices and data.
        use dialga_ec::GfMatrix;
        use dialga_ec::Schedule;
        use dialga_gf::bitmatrix::BitMatrix;

        let p = GfMatrix::cauchy_parity(k, m);
        let bm = BitMatrix::from_gf_matrix(&p.to_rows());
        let naive = Schedule::from_bitmatrix(&bm, k, m);
        let smart = Schedule::smart_from_bitmatrix(&bm, k, m);

        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                (0..64)
                    .map(|j| ((seed as usize ^ (i * 131 + j * 7)) % 256) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();

        // Run both schedules with a minimal interpreter.
        fn run(schedule: &Schedule, refs: &[&[u8]], m: usize, len: usize) -> Vec<Vec<u8>> {
            use dialga_ec::schedule::{Dst, Src};
            let psize = len / 8;
            let mut parity = vec![vec![0u8; len]; m];
            let mut temps = vec![vec![0u8; psize]; schedule.n_temps];
            for op in &schedule.ops {
                let src: Vec<u8> = match op.src {
                    Src::Data(c) => refs[c / 8][(c % 8) * psize..(c % 8 + 1) * psize].to_vec(),
                    Src::Parity(r) => parity[r / 8][(r % 8) * psize..(r % 8 + 1) * psize].to_vec(),
                    Src::Temp(t) => temps[t].clone(),
                };
                let dst: &mut [u8] = match op.dst {
                    Dst::Parity(r) => &mut parity[r / 8][(r % 8) * psize..(r % 8 + 1) * psize],
                    Dst::Temp(t) => &mut temps[t],
                };
                if op.init {
                    dst.copy_from_slice(&src);
                } else {
                    for (d, s) in dst.iter_mut().zip(&src) {
                        *d ^= s;
                    }
                }
            }
            parity
        }
        let a = run(&naive, &refs, m, 64);
        let b = run(&smart, &refs, m, 64);
        assert_eq!(a, b, "schedules diverge for k={k} m={m}");
    });
}

#[test]
fn update_parity_equals_reencode() {
    run_cases(64, |rng| {
        let k = rng.range(2, 10);
        let m = rng.range(1, 5);
        let seed = rng.u64();
        let idx = rng.range(0, k);
        let rs = ReedSolomon::new(k, m).unwrap();
        let mut data: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                (0..48)
                    .map(|j| ((seed as usize + i + j * 3) % 256) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut parity = rs.encode_vec(&refs).unwrap();
        let old = data[idx].clone();
        let new: Vec<u8> = old
            .iter()
            .map(|b| b.wrapping_mul(3).wrapping_add(seed as u8))
            .collect();
        {
            let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
            rs.update_parity(idx, &old, &new, &mut prefs).unwrap();
        }
        data[idx] = new;
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert_eq!(parity, rs.encode_vec(&refs).unwrap());
    });
}

#[test]
fn lrc_local_repair_plan_recovers_any_data_block() {
    run_cases(64, |rng| {
        let l = rng.range(1, 5);
        let k = l * rng.range(1, 6);
        let m = rng.range(1, 4);
        let len = rng.range(1, 6) * 16;
        let lost = rng.range(0, k);
        let lrc = Lrc::new(k, m, l).unwrap();
        let data: Vec<Vec<u8>> = (0..k).map(|_| rng.bytes(len)).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = lrc.encode_vec(&refs).unwrap();

        let plan = lrc.local_repair_plan(lost).unwrap();
        assert_eq!(plan.peers.len(), k / l - 1, "k={k} l={l} lost={lost}");
        assert!(!plan.peers.contains(&lost));
        assert!(plan.peers.iter().all(|&p| p / (k / l) == plan.group));
        assert_eq!(plan.parity_index, m + plan.group);

        // Reading exactly the planned set reconstructs the block, both via
        // the allocating and the in-place entry points.
        let peers: Vec<&[u8]> = plan.peers.iter().map(|&i| refs[i]).collect();
        let local = &parity[plan.parity_index];
        let rebuilt = lrc.repair_local(lost, &peers, local).unwrap();
        assert_eq!(rebuilt, data[lost]);
        let mut out = vec![0u8; len];
        lrc.repair_local_into(lost, &peers, local, &mut out)
            .unwrap();
        assert_eq!(out, data[lost]);
    });
}
