//! Property-based tests: every code in the crate must survive arbitrary
//! erasure patterns within its fault tolerance, on arbitrary data.

use dialga_ec::decompose::DecomposedRs;
use dialga_ec::xor::XorFlavor;
use dialga_ec::{Lrc, ReedSolomon, XorCode};
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = (usize, usize)> {
    (2usize..=20, 1usize..=6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rs_roundtrip_any_erasure(
        (k, m) in arb_geometry(),
        len in (1usize..6).prop_map(|x| x * 16),
        seed: u64,
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| ((seed as usize + i * 31 + j * 7) % 256) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode_vec(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter().cloned().map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        // Erase up to m blocks chosen by the seed.
        let n = k + m;
        let lost = (seed as usize % (m + 1)).min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        // Deterministic shuffle from seed.
        for i in 0..n {
            let j = (seed as usize).wrapping_mul(6364136223846793005).wrapping_add(i * 104729) % n;
            idx.swap(i, j);
        }
        for &e in idx.iter().take(lost) {
            shards[e] = None;
        }
        rs.decode(&mut shards).unwrap();
        for (i, d) in data.iter().enumerate() {
            prop_assert_eq!(shards[i].as_ref().unwrap(), d);
        }
    }

    #[test]
    fn decompose_equals_full(
        k in 4usize..40,
        m in 1usize..5,
        sub_k in 2usize..12,
        seed: u64,
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let dec = DecomposedRs::new(rs.clone(), sub_k).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..32).map(|j| ((seed as usize + i * 13 + j) % 256) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        prop_assert_eq!(dec.encode_vec(&refs).unwrap(), rs.encode_vec(&refs).unwrap());
    }

    #[test]
    fn xor_roundtrip_data_erasures(
        k in 3usize..10,
        m in 1usize..4,
        seed: u64,
    ) {
        let xc = XorCode::new(k, m, XorFlavor::Cerasure).unwrap();
        let len = 64usize;
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| ((seed as usize ^ (i * 97 + j * 3)) % 256) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = xc.encode_vec(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter().cloned().map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        let lost = 1 + (seed as usize % m);
        for e in 0..lost.min(k) {
            shards[(seed as usize + e * 5) % k] = None; // data-block erasures
        }
        xc.decode(&mut shards).unwrap();
        for (i, d) in data.iter().enumerate() {
            prop_assert_eq!(shards[i].as_ref().unwrap(), d, "block {}", i);
        }
    }

    #[test]
    fn lrc_local_repair_any_block(
        gs in 2usize..6,
        l in 1usize..4,
        m in 1usize..4,
        lost_block in 0usize..24,
        seed: u64,
    ) {
        let k = gs * l;
        let lost = lost_block % k;
        let lrc = Lrc::new(k, m, l).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..32).map(|j| ((seed as usize + i * 11 + j * 5) % 256) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = lrc.encode_vec(&refs).unwrap();
        let g = lrc.group_of(lost);
        let peers: Vec<&[u8]> = (g * gs..(g + 1) * gs)
            .filter(|&i| i != lost)
            .map(|i| refs[i])
            .collect();
        let repaired = lrc.repair_local(lost, &peers, &parity[m + g]).unwrap();
        prop_assert_eq!(repaired, data[lost].clone());
    }

    #[test]
    fn smart_schedule_equals_naive_schedule(
        k in 2usize..9,
        m in 1usize..4,
        seed: u64,
    ) {
        // The CSE-optimized schedule must compute exactly the same parity
        // as the naive one, for arbitrary Cauchy matrices and data.
        use dialga_ec::Schedule;
        use dialga_gf::bitmatrix::BitMatrix;
        use dialga_ec::GfMatrix;

        let p = GfMatrix::cauchy_parity(k, m);
        let bm = BitMatrix::from_gf_matrix(&p.to_rows());
        let naive = Schedule::from_bitmatrix(&bm, k, m);
        let smart = Schedule::smart_from_bitmatrix(&bm, k, m);

        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..64).map(|j| ((seed as usize ^ (i * 131 + j * 7)) % 256) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();

        // Execute both schedules through the XorCode machinery by building
        // codes that share the matrix but differ in schedule: use the
        // public execute path via encode on hand-built codes is private, so
        // run both schedules with a minimal interpreter here.
        fn run(schedule: &Schedule, refs: &[&[u8]], k: usize, m: usize, len: usize) -> Vec<Vec<u8>> {
            use dialga_ec::schedule::{Dst, Src};
            let psize = len / 8;
            let mut parity = vec![vec![0u8; len]; m];
            let mut temps = vec![vec![0u8; psize]; schedule.n_temps];
            let _ = k;
            for op in &schedule.ops {
                let src: Vec<u8> = match op.src {
                    Src::Data(c) => refs[c / 8][(c % 8) * psize..(c % 8 + 1) * psize].to_vec(),
                    Src::Parity(r) => parity[r / 8][(r % 8) * psize..(r % 8 + 1) * psize].to_vec(),
                    Src::Temp(t) => temps[t].clone(),
                };
                let dst: &mut [u8] = match op.dst {
                    Dst::Parity(r) => &mut parity[r / 8][(r % 8) * psize..(r % 8 + 1) * psize],
                    Dst::Temp(t) => &mut temps[t],
                };
                if op.init {
                    dst.copy_from_slice(&src);
                } else {
                    for (d, s) in dst.iter_mut().zip(&src) {
                        *d ^= s;
                    }
                }
            }
            parity
        }
        let a = run(&naive, &refs, k, m, 64);
        let b = run(&smart, &refs, k, m, 64);
        prop_assert_eq!(a, b, "schedules diverge for k={} m={}", k, m);
    }

    #[test]
    fn update_parity_equals_reencode(
        k in 2usize..10,
        m in 1usize..5,
        idx_raw in 0usize..10,
        seed: u64,
    ) {
        let idx = idx_raw % k;
        let rs = ReedSolomon::new(k, m).unwrap();
        let mut data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..48).map(|j| ((seed as usize + i + j * 3) % 256) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut parity = rs.encode_vec(&refs).unwrap();
        let old = data[idx].clone();
        let new: Vec<u8> = old.iter().map(|b| b.wrapping_mul(3).wrapping_add(seed as u8)).collect();
        {
            let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
            rs.update_parity(idx, &old, &new, &mut prefs).unwrap();
        }
        data[idx] = new;
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        prop_assert_eq!(parity, rs.encode_vec(&refs).unwrap());
    }
}
