//! Property tests for the schedule-optimizer pipeline (PR 9): every pass
//! must preserve the encoded bytes bit-for-bit across the whole code zoo,
//! ragged lengths and random data, and must never make the static cost
//! worse.

use dialga_ec::schedule::{opt, Dst, Src, XorOp};
use dialga_ec::zoo::{code_zoo, ZooEntry};
use dialga_ec::{execute_schedule, ReedSolomon, Schedule, XorCode, XorScratch};
use dialga_gf::bitmatrix::W;
use dialga_gf::sched::FusedSched;
use dialga_gf::xorexec::{execute_packets, TempArena};
use dialga_testkit::run_cases;

/// The zoo plus each family's (naive, optimized) schedule pair, built once
/// per process: Cerasure's annealing and the wide-k CSE are too expensive
/// to re-run per property case in debug builds.
fn zoo() -> &'static [(ZooEntry, Schedule, Schedule)] {
    static ZOO: std::sync::OnceLock<Vec<(ZooEntry, Schedule, Schedule)>> =
        std::sync::OnceLock::new();
    ZOO.get_or_init(|| {
        code_zoo()
            .expect("code zoo builds")
            .into_iter()
            .map(|entry| {
                let naive = entry.code.naive_schedule();
                let optimized = opt::optimize(&naive).expect("optimize");
                (entry, naive, optimized)
            })
            .collect()
    })
}

fn random_data(rng: &mut dialga_testkit::Rng, k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|_| (0..len).map(|_| rng.u8()).collect())
        .collect()
}

/// Run `schedule` through the serial staging executor.
fn run_serial(schedule: &Schedule, data: &[Vec<u8>], len: usize) -> Vec<Vec<u8>> {
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let mut out = vec![vec![0u8; len]; schedule.m];
    let mut scratch = XorScratch::new();
    execute_schedule(schedule, &refs, &mut out, len, &mut scratch).expect("serial execute");
    out
}

/// Run `schedule` lowered to a program through the tiled gf executor.
fn run_tiled(schedule: &Schedule, data: &[Vec<u8>], len: usize) -> Vec<Vec<u8>> {
    let prog = schedule.to_program().expect("lower schedule");
    let psize = len / W;
    let srcs: Vec<&[u8]> = data.iter().flat_map(|b| b.chunks(psize)).collect();
    let mut out = vec![vec![0u8; len]; schedule.m];
    let mut outs: Vec<&mut [u8]> = out.iter_mut().flat_map(|b| b.chunks_mut(psize)).collect();
    let mut arena = TempArena::new();
    execute_packets(
        &prog,
        &srcs,
        &mut outs,
        &mut arena,
        FusedSched::distance(schedule.k as u32),
    );
    out
}

#[test]
fn optimizer_is_bit_exact_across_the_zoo() {
    run_cases(12, |rng| {
        for (entry, naive, optimized) in zoo() {
            // Ragged: a multiple of W that is not cacheline- or
            // tile-aligned most of the time.
            let len = rng.range(1, 80) * W;
            let data = random_data(rng, entry.code.params().k, len);
            let want = run_serial(naive, &data, len);
            assert_eq!(
                want,
                run_serial(optimized, &data, len),
                "{} serial len={len}",
                entry.name
            );
            assert_eq!(
                want,
                run_tiled(optimized, &data, len),
                "{} tiled len={len}",
                entry.name
            );
        }
    });
}

#[test]
fn passes_never_worsen_cost() {
    for (entry, naive, optimized) in zoo() {
        let cse = opt::eliminate_common_subexpressions(naive).expect("cse");
        let reordered = opt::reorder_for_reuse(&cse).expect("reorder");

        // CSE only hoists pairs appearing at least twice: each hoist
        // spends 2 ops to save >= 2, so the total never grows.
        assert!(
            cse.cost().xors <= naive.cost().xors,
            "{}: cse grew xors",
            entry.name
        );
        // Reorder permutes and re-slots; it must not change the op count
        // and recycling must not grow the arena.
        assert_eq!(
            reordered.cost().xors,
            cse.cost().xors,
            "{}: reorder changed xors",
            entry.name
        );
        assert!(
            reordered.cost().n_temps <= cse.cost().n_temps,
            "{}: reorder grew temps",
            entry.name
        );
        // The pipeline picks the best candidate including the input, so
        // the final key is monotone.
        assert!(
            optimized.cost().key() <= naive.cost().key(),
            "{}: optimize worsened the cost key",
            entry.name
        );
    }
}

#[test]
fn optimizer_reduces_xors_on_most_families() {
    // The PR 9 acceptance bar, as a test: >= 3 zoo families must strictly
    // shrink. (BENCH_PR9.json records the same fact for the trajectory
    // gate.)
    let improved = zoo()
        .iter()
        .filter(|(_, naive, optimized)| optimized.cost().xors < naive.cost().xors)
        .count();
    assert!(improved >= 3, "only {improved} families improved");
}

#[test]
fn decomposed_xor_passes_match_single_pass_program() {
    run_cases(16, |rng| {
        let k = rng.range(8, 30);
        let m = rng.range(1, 5);
        let sub_k = rng.range(2, 10);
        let rs = ReedSolomon::new(k, m).expect("rs");
        let dec = dialga_ec::decompose::DecomposedRs::new(rs.clone(), sub_k).expect("decomposed");
        let single =
            XorCode::from_parity_matrix(rs.parity_matrix().clone()).expect("single-pass code");
        let len = rng.range(1, 20) * W;
        let data = random_data(rng, k, len);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert_eq!(
            dec.encode_xor_vec(&refs).expect("decomposed xor encode"),
            single.encode_vec(&refs).expect("single-pass encode"),
            "k={k} m={m} sub_k={sub_k} len={len}"
        );
    });
}

#[test]
fn validate_rejects_malformed_schedules() {
    // Read-before-init temp.
    let s = Schedule {
        k: 1,
        m: 1,
        n_temps: 1,
        ops: (0..W)
            .map(|r| XorOp {
                dst: Dst::Parity(r),
                src: Src::Temp(0),
                init: true,
            })
            .collect(),
    };
    assert!(s.validate().is_err(), "uninitialized temp read accepted");

    // Out-of-range data column.
    let s = Schedule {
        k: 1,
        m: 1,
        n_temps: 0,
        ops: (0..W)
            .map(|r| XorOp {
                dst: Dst::Parity(r),
                src: Src::Data(W + r),
                init: true,
            })
            .collect(),
    };
    assert!(s.validate().is_err(), "out-of-range column accepted");

    // Accumulate into a parity packet that was never initialized.
    let s = Schedule {
        k: 1,
        m: 1,
        n_temps: 0,
        ops: (0..W)
            .map(|r| XorOp {
                dst: Dst::Parity(r),
                src: Src::Data(0),
                init: false,
            })
            .collect(),
    };
    assert!(s.validate().is_err(), "accumulate-before-init accepted");

    // A parity packet left unwritten.
    let mut ops: Vec<XorOp> = (0..W - 1)
        .map(|r| XorOp {
            dst: Dst::Parity(r),
            src: Src::Data(0),
            init: true,
        })
        .collect();
    ops.push(XorOp {
        dst: Dst::Temp(0),
        src: Src::Data(0),
        init: true,
    });
    let s = Schedule {
        k: 1,
        m: 1,
        n_temps: 1,
        ops,
    };
    assert!(s.validate().is_err(), "unwritten parity accepted");
}
