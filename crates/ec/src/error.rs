//! Error type shared across the erasure-coding crate.

use std::fmt;

/// Errors produced by code construction, encoding and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcError {
    /// Invalid code geometry.
    InvalidParams {
        /// Requested data-block count.
        k: usize,
        /// Requested parity-block count.
        m: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Block buffers have inconsistent or unusable lengths.
    BlockLength {
        /// What was expected.
        expected: usize,
        /// What was supplied.
        got: usize,
    },
    /// Wrong number of blocks supplied to an operation.
    BlockCount {
        /// What was expected.
        expected: usize,
        /// What was supplied.
        got: usize,
    },
    /// More erasures than the code can repair.
    TooManyErasures {
        /// Number of lost blocks.
        lost: usize,
        /// Fault tolerance of the code.
        tolerance: usize,
    },
    /// The decode matrix was singular (should not happen for MDS
    /// constructions; surfaced rather than panicking).
    SingularMatrix,
    /// LRC group geometry error.
    InvalidGroups {
        /// Requested group count.
        l: usize,
        /// Data-block count it must divide.
        k: usize,
    },
    /// An internal invariant was violated (a shard the decode plan proved
    /// present was absent, a worker died mid-batch, …). Surfaced instead of
    /// panicking so a library bug cannot take down the embedding process.
    Internal {
        /// Which invariant broke, for diagnostics.
        what: &'static str,
    },
    /// Shard contents failed parity verification: the stripe is
    /// *corrupt*, not merely erased. `shards` names the corrupt shard
    /// indices when verification could localize them; when it could not
    /// (more simultaneous corruptions than the parity budget can pin
    /// down), it names the mismatching parity shards as evidence.
    Corrupt {
        /// Corrupt shard indices (data shards are `0..k`, parity shards
        /// `k..k+m`), sorted ascending.
        shards: Vec<usize>,
    },
}

impl fmt::Display for EcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcError::InvalidParams { k, m, reason } => {
                write!(f, "invalid code params k={k} m={m}: {reason}")
            }
            EcError::BlockLength { expected, got } => {
                write!(f, "block length mismatch: expected {expected}, got {got}")
            }
            EcError::BlockCount { expected, got } => {
                write!(f, "block count mismatch: expected {expected}, got {got}")
            }
            EcError::TooManyErasures { lost, tolerance } => {
                write!(f, "{lost} erasures exceed fault tolerance {tolerance}")
            }
            EcError::SingularMatrix => write!(f, "singular decode matrix"),
            EcError::InvalidGroups { l, k } => {
                write!(
                    f,
                    "invalid LRC groups: l={l} must divide k={k} and be positive"
                )
            }
            EcError::Internal { what } => {
                write!(f, "internal invariant violated: {what}")
            }
            EcError::Corrupt { shards } => {
                write!(f, "shard contents failed parity verification: {shards:?}")
            }
        }
    }
}

impl std::error::Error for EcError {}

/// Borrow a shard the caller has already proven present (e.g. by a decode
/// plan or an erasure check), turning an absent shard into
/// [`EcError::Internal`] instead of a panic.
pub fn present_shard<'a, T: AsRef<[u8]>>(
    shards: &'a [Option<T>],
    idx: usize,
    what: &'static str,
) -> Result<&'a T, EcError> {
    shards
        .get(idx)
        .and_then(Option::as_ref)
        .ok_or(EcError::Internal { what })
}

/// Mutable variant of [`present_shard`].
pub fn present_shard_mut<'a, T: AsRef<[u8]>>(
    shards: &'a mut [Option<T>],
    idx: usize,
    what: &'static str,
) -> Result<&'a mut T, EcError> {
    shards
        .get_mut(idx)
        .and_then(Option::as_mut)
        .ok_or(EcError::Internal { what })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One Display assertion per variant: the rendered message must carry
    /// every payload field, so a boxed error is diagnosable on its own.
    #[test]
    fn display_renders_every_variant_with_its_payload() {
        let cases: Vec<(EcError, &[&str])> = vec![
            (
                EcError::InvalidParams {
                    k: 10,
                    m: 4,
                    reason: "k+m exceeds field size",
                },
                &["k=10", "m=4", "k+m exceeds field size"],
            ),
            (
                EcError::BlockLength {
                    expected: 4096,
                    got: 4095,
                },
                &["length", "4096", "4095"],
            ),
            (
                EcError::BlockCount {
                    expected: 14,
                    got: 13,
                },
                &["count", "14", "13"],
            ),
            (
                EcError::TooManyErasures {
                    lost: 5,
                    tolerance: 4,
                },
                &["5", "tolerance 4"],
            ),
            (EcError::SingularMatrix, &["singular"]),
            (EcError::InvalidGroups { l: 3, k: 10 }, &["l=3", "k=10"]),
            (
                EcError::Internal {
                    what: "latch under-completed",
                },
                &["internal", "latch under-completed"],
            ),
            (
                EcError::Corrupt { shards: vec![2, 7] },
                &["parity verification", "[2, 7]"],
            ),
        ];
        for (err, needles) in cases {
            let rendered = err.to_string();
            for needle in needles {
                assert!(
                    rendered.contains(needle),
                    "{err:?} rendered as {rendered:?}, missing {needle:?}"
                );
            }
        }
    }

    /// `EcError` is the crate's public error type; it must box into
    /// `dyn Error` callers (the `anyhow` shape) and round-trip Display.
    #[test]
    fn ec_error_boxes_as_std_error() {
        let err = EcError::Corrupt { shards: vec![0] };
        let rendered = err.to_string();
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert_eq!(boxed.to_string(), rendered);
        assert!(boxed.source().is_none(), "leaf error, no source");
    }

    #[test]
    fn present_shard_rejects_missing_and_out_of_range_shards() {
        let shards: Vec<Option<Vec<u8>>> = vec![Some(vec![1, 2]), None];
        assert_eq!(
            present_shard(&shards, 1, "shard absent").unwrap_err(),
            EcError::Internal {
                what: "shard absent"
            }
        );
        assert_eq!(
            present_shard(&shards, 2, "index past stripe").unwrap_err(),
            EcError::Internal {
                what: "index past stripe"
            }
        );
    }

    #[test]
    fn present_shard_mut_rejects_missing_and_out_of_range_shards() {
        let mut shards: Vec<Option<Vec<u8>>> = vec![Some(vec![1, 2]), None];
        assert_eq!(
            present_shard_mut(&mut shards, 1, "shard absent").unwrap_err(),
            EcError::Internal {
                what: "shard absent"
            }
        );
        assert_eq!(
            present_shard_mut(&mut shards, 2, "index past stripe").unwrap_err(),
            EcError::Internal {
                what: "index past stripe"
            }
        );
        // The happy path still hands out a usable mutable borrow.
        present_shard_mut(&mut shards, 0, "present")
            .unwrap()
            .push(9);
        assert_eq!(shards[0].as_deref(), Some(&[1, 2, 9][..]));
    }

    #[test]
    fn present_shard_surfaces_internal_error() {
        let mut shards: Vec<Option<Vec<u8>>> = vec![Some(vec![1, 2]), None];
        assert_eq!(present_shard(&shards, 0, "x").unwrap(), &vec![1, 2]);
        let err = present_shard(&shards, 1, "survivor absent").unwrap_err();
        assert_eq!(
            err,
            EcError::Internal {
                what: "survivor absent"
            }
        );
        assert!(err.to_string().contains("survivor absent"), "{err}");
        // Out of bounds is the same invariant violation, not a panic.
        assert!(present_shard(&shards, 9, "oob").is_err());
        assert!(present_shard_mut(&mut shards, 1, "absent").is_err());
        present_shard_mut(&mut shards, 0, "present")
            .unwrap()
            .push(3);
        assert_eq!(shards[0].as_deref(), Some(&[1, 2, 3][..]));
    }
}
