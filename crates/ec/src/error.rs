//! Error type shared across the erasure-coding crate.

use std::fmt;

/// Errors produced by code construction, encoding and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcError {
    /// Invalid code geometry.
    InvalidParams {
        /// Requested data-block count.
        k: usize,
        /// Requested parity-block count.
        m: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Block buffers have inconsistent or unusable lengths.
    BlockLength {
        /// What was expected.
        expected: usize,
        /// What was supplied.
        got: usize,
    },
    /// Wrong number of blocks supplied to an operation.
    BlockCount {
        /// What was expected.
        expected: usize,
        /// What was supplied.
        got: usize,
    },
    /// More erasures than the code can repair.
    TooManyErasures {
        /// Number of lost blocks.
        lost: usize,
        /// Fault tolerance of the code.
        tolerance: usize,
    },
    /// The decode matrix was singular (should not happen for MDS
    /// constructions; surfaced rather than panicking).
    SingularMatrix,
    /// LRC group geometry error.
    InvalidGroups {
        /// Requested group count.
        l: usize,
        /// Data-block count it must divide.
        k: usize,
    },
}

impl fmt::Display for EcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcError::InvalidParams { k, m, reason } => {
                write!(f, "invalid code params k={k} m={m}: {reason}")
            }
            EcError::BlockLength { expected, got } => {
                write!(f, "block length mismatch: expected {expected}, got {got}")
            }
            EcError::BlockCount { expected, got } => {
                write!(f, "block count mismatch: expected {expected}, got {got}")
            }
            EcError::TooManyErasures { lost, tolerance } => {
                write!(f, "{lost} erasures exceed fault tolerance {tolerance}")
            }
            EcError::SingularMatrix => write!(f, "singular decode matrix"),
            EcError::InvalidGroups { l, k } => {
                write!(
                    f,
                    "invalid LRC groups: l={l} must divide k={k} and be positive"
                )
            }
        }
    }
}

impl std::error::Error for EcError {}
