//! Dense GF(2^8) matrices: generator construction and inversion.

use crate::EcError;
use dialga_gf::Gf8;

/// A dense matrix over GF(2^8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GfMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf8>,
}

impl GfMatrix {
    /// All-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        GfMatrix {
            rows,
            cols,
            data: vec![Gf8::ZERO; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Gf8::ONE;
        }
        m
    }

    /// Build from nested vectors (rows of equal length).
    pub fn from_rows(rows: Vec<Vec<Gf8>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in &rows {
            assert_eq!(row.len(), c, "ragged matrix rows");
            data.extend_from_slice(row);
        }
        GfMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[Gf8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Clone into nested vectors (for bitmatrix expansion).
    pub fn to_rows(&self) -> Vec<Vec<Gf8>> {
        (0..self.rows).map(|r| self.row(r).to_vec()).collect()
    }

    /// Cauchy parity matrix: `P[i][j] = 1 / (x_i + y_j)` with
    /// `x_i = i + k`, `y_j = j`. Every square submatrix of a Cauchy matrix
    /// is invertible, so `[I; P]` is MDS for any (k, m) with k+m <= 255.
    /// This mirrors ISA-L's `gf_gen_cauchy1_matrix`.
    pub fn cauchy_parity(k: usize, m: usize) -> Self {
        let mut p = Self::zero(m, k);
        for i in 0..m {
            for j in 0..k {
                let x = Gf8((i + k) as u8);
                let y = Gf8(j as u8);
                p[(i, j)] = (x + y).inv();
            }
        }
        p
    }

    /// Cauchy parity matrix with caller-chosen X/Y elements (used by the
    /// Zerasure/Cerasure-style matrix searches, which anneal / greedily pick
    /// these sets to minimize bitmatrix ones).
    ///
    /// # Panics
    /// Panics if any `x` equals any `y` (the Cauchy condition) or if the
    /// element counts don't match (m x-elements, k y-elements).
    pub fn cauchy_parity_xy(xs: &[u8], ys: &[u8]) -> Self {
        let (m, k) = (xs.len(), ys.len());
        let mut p = Self::zero(m, k);
        for (i, &x) in xs.iter().enumerate() {
            for (j, &y) in ys.iter().enumerate() {
                assert_ne!(x, y, "Cauchy requires disjoint X and Y sets");
                p[(i, j)] = (Gf8(x) + Gf8(y)).inv();
            }
        }
        p
    }

    /// RAID-6 P+Q parity matrix: P is the plain XOR of all data blocks
    /// (all-ones row) and Q uses powers of the generator `g = 2`
    /// (`Q = sum g^j * d_j`) — the classic Anvin construction. MDS for any
    /// `k <= 253`: the 1x1 minors are nonzero and every 2x2 minor
    /// `g^j - g^i` is nonzero because the generator's powers are distinct
    /// within one period of GF(2^8)*.
    pub fn raid6_parity(k: usize) -> Result<Self, EcError> {
        if k == 0 || k + 2 > 255 {
            return Err(EcError::InvalidParams {
                k,
                m: 2,
                reason: "RAID-6 needs 1 <= k <= 253",
            });
        }
        let g = Gf8(2);
        let mut p = Self::zero(2, k);
        for j in 0..k {
            p[(0, j)] = Gf8::ONE;
            p[(1, j)] = g.pow(j as u32);
        }
        Ok(p)
    }

    /// Vandermonde-derived systematic parity matrix, mirroring ISA-L's
    /// `gf_gen_rs_matrix`: build the (k+m) x k Vandermonde matrix
    /// `V[i][j] = i^j`, reduce the top k x k block to identity by column
    /// operations, and return the bottom m rows.
    ///
    /// Note (as in ISA-L): this construction is only guaranteed MDS for
    /// m <= 2 plus select geometries; [`GfMatrix::cauchy_parity`] is the
    /// default for general (k, m).
    pub fn vandermonde_parity(k: usize, m: usize) -> Result<Self, EcError> {
        let n = k + m;
        let mut v = Self::zero(n, k);
        for i in 0..n {
            for j in 0..k {
                v[(i, j)] = Gf8(i as u8).pow(j as u32);
            }
        }
        // Column-reduce so the top k x k block becomes identity.
        for col in 0..k {
            // Find a row >= col with nonzero pivot in this column among the
            // top-k rows; Vandermonde guarantees one exists.
            let pivot = (col..k)
                .find(|&r| v[(r, col)] != Gf8::ZERO)
                .ok_or(EcError::SingularMatrix)?;
            if pivot != col {
                for j in 0..k {
                    let tmp = v[(pivot, j)];
                    v[(pivot, j)] = v[(col, j)];
                    v[(col, j)] = tmp;
                }
            }
            let inv = v[(col, col)].inv();
            // Scale column so diagonal is 1: multiply column entries of all
            // rows by inv of pivot... column ops act on all n rows.
            if inv != Gf8::ONE {
                for r in 0..n {
                    v[(r, col)] *= inv;
                }
            }
            for j in 0..k {
                if j != col {
                    let f = v[(col, j)];
                    if f != Gf8::ZERO {
                        for r in 0..n {
                            let sub = v[(r, col)] * f;
                            v[(r, j)] += sub;
                        }
                    }
                }
            }
        }
        let mut p = Self::zero(m, k);
        for i in 0..m {
            for j in 0..k {
                p[(i, j)] = v[(k + i, j)];
            }
        }
        Ok(p)
    }

    /// Gauss–Jordan inversion. Returns [`EcError::SingularMatrix`] if not
    /// invertible.
    pub fn inverse(&self) -> Result<GfMatrix, EcError> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Self::identity(n);
        for col in 0..n {
            let pivot = (col..n)
                .find(|&r| a[(r, col)] != Gf8::ZERO)
                .ok_or(EcError::SingularMatrix)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let f = a[(col, col)].inv();
            if f != Gf8::ONE {
                a.scale_row(col, f);
                inv.scale_row(col, f);
            }
            for r in 0..n {
                if r != col && a[(r, col)] != Gf8::ZERO {
                    let factor = a[(r, col)];
                    a.sub_scaled_row(col, r, factor);
                    inv.sub_scaled_row(col, r, factor);
                }
            }
        }
        Ok(inv)
    }

    /// Matrix product.
    pub fn matmul(&self, rhs: &GfMatrix) -> GfMatrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Self::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self[(r, i)];
                if a == Gf8::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    let add = a * rhs[(i, c)];
                    out[(r, c)] += add;
                }
            }
        }
        out
    }

    /// Extract the rows listed in `indices` (in order).
    pub fn select_rows(&self, indices: &[usize]) -> GfMatrix {
        let mut out = Self::zero(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            for c in 0..self.cols {
                out[(i, c)] = self[(r, c)];
            }
        }
        out
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(r1 * self.cols + c, r2 * self.cols + c);
        }
    }

    fn scale_row(&mut self, r: usize, f: Gf8) {
        for c in 0..self.cols {
            self[(r, c)] *= f;
        }
    }

    /// `rows[dst] -= f * rows[src]` (== `+=` in characteristic 2).
    fn sub_scaled_row(&mut self, src: usize, dst: usize, f: Gf8) {
        for c in 0..self.cols {
            let v = self[(src, c)] * f;
            self[(dst, c)] += v;
        }
    }
}

impl std::ops::Index<(usize, usize)> for GfMatrix {
    type Output = Gf8;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Gf8 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for GfMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Gf8 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stack [I_k ; P] into the full generator matrix.
    fn generator(k: usize, p: &GfMatrix) -> GfMatrix {
        let mut g = GfMatrix::zero(k + p.rows(), k);
        for i in 0..k {
            g[(i, i)] = Gf8::ONE;
        }
        for r in 0..p.rows() {
            for c in 0..k {
                g[(k + r, c)] = p[(r, c)];
            }
        }
        g
    }

    /// Every k-subset of rows of the generator must be invertible (MDS).
    fn assert_mds(k: usize, m: usize, p: &GfMatrix) {
        let g = generator(k, p);
        let n = k + m;
        // Exhaustively test all k-subsets for small n, else a sample.
        let mut subsets: Vec<Vec<usize>> = Vec::new();
        let mut cur = Vec::new();
        fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if cur.len() == k {
                out.push(cur.clone());
                return;
            }
            if out.len() > 300 {
                return; // cap work for larger geometries
            }
            for i in start..n {
                cur.push(i);
                rec(i + 1, n, k, cur, out);
                cur.pop();
            }
        }
        rec(0, n, k, &mut cur, &mut subsets);
        for s in subsets {
            let sub = g.select_rows(&s);
            assert!(sub.inverse().is_ok(), "k={k} m={m} subset {s:?} singular");
        }
    }

    #[test]
    fn cauchy_is_mds_small() {
        for (k, m) in [(2, 2), (3, 2), (4, 3), (5, 4)] {
            let p = GfMatrix::cauchy_parity(k, m);
            assert_mds(k, m, &p);
        }
    }

    #[test]
    fn cauchy_large_geometry_valid() {
        // The paper's widest stripe: RS(52, 48) -> k=48, m=4.
        let p = GfMatrix::cauchy_parity(48, 4);
        assert_eq!(p.rows(), 4);
        assert_eq!(p.cols(), 48);
        // Parity matrix must have no zero entries (Cauchy property).
        for i in 0..4 {
            for j in 0..48 {
                assert_ne!(p[(i, j)], Gf8::ZERO);
            }
        }
    }

    #[test]
    fn vandermonde_m2_is_mds() {
        for k in [2usize, 4, 8, 12] {
            let p = GfMatrix::vandermonde_parity(k, 2).unwrap();
            assert_mds(k, 2, &p);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let p = GfMatrix::cauchy_parity(4, 4);
        let inv = p.inverse().unwrap();
        assert_eq!(p.matmul(&inv), GfMatrix::identity(4));
        assert_eq!(inv.matmul(&p), GfMatrix::identity(4));
    }

    #[test]
    fn singular_detected() {
        let m = GfMatrix::zero(3, 3);
        assert_eq!(m.inverse(), Err(EcError::SingularMatrix));
    }

    #[test]
    fn cauchy_xy_matches_default() {
        let k = 5;
        let m = 3;
        let xs: Vec<u8> = (0..m).map(|i| (i + k) as u8).collect();
        let ys: Vec<u8> = (0..k).map(|j| j as u8).collect();
        assert_eq!(
            GfMatrix::cauchy_parity_xy(&xs, &ys),
            GfMatrix::cauchy_parity(k, m)
        );
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn cauchy_xy_rejects_overlap() {
        GfMatrix::cauchy_parity_xy(&[1, 2], &[2, 3]);
    }

    #[test]
    fn select_rows_orders() {
        let p = GfMatrix::cauchy_parity(3, 2);
        let sel = p.select_rows(&[1, 0]);
        assert_eq!(sel[(0, 0)], p[(1, 0)]);
        assert_eq!(sel[(1, 2)], p[(0, 2)]);
    }
}
