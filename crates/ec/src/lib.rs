#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Erasure codes for the DIALGA reproduction.
//!
//! This crate implements every coding system the paper evaluates:
//!
//! * [`rs`] — table-driven Reed–Solomon à la Intel ISA-L (the "lookup table
//!   approach" of Fig. 2): `m x k` Cauchy/Vandermonde parity matrices, each
//!   data block read exactly once per encode.
//! * [`xor`] + [`schedule`] — XOR/bitmatrix codes à la Jerasure, with the
//!   two optimizing baselines the paper compares against:
//!   a Zerasure-style simulated-annealing matrix search and a
//!   Cerasure-style greedy search, both with common-subexpression
//!   ("smart") scheduling.
//! * [`decompose`] — wide-stripe decomposition (the ISA-L-D / Cerasure
//!   decompose strategy of §5.1): split k into sub-stripes, accumulate
//!   partial parities with extra parity reloads.
//! * [`lrc`] — Azure-style Locally Repairable Codes LRC(k, m, l) (§4.1
//!   "Other Coding Tasks" and Fig. 16).
//! * [`zoo`] — the widened code zoo (Cauchy-RS bitmatrix, RAID-6 P+Q, LRC
//!   bitmatrix, wide stripes) exercising the [`schedule::opt`] optimizer
//!   across genuinely different matrix densities.
//!
//! All encoders/decoders operate on real bytes and are verified by unit,
//! integration and property tests; the timing behaviour on persistent
//! memory is modelled separately by `dialga-pipeline` + `dialga-memsim`.

pub mod decompose;
pub mod error;
pub mod lrc;
pub mod matrix;
pub mod rs;
pub mod schedule;
pub mod xor;
pub mod zoo;

pub use error::{present_shard, present_shard_mut, EcError};
pub use lrc::{LocalRepairPlan, Lrc};
pub use matrix::GfMatrix;
pub use rs::ReedSolomon;
pub use schedule::{Schedule, ScheduleCost};
pub use xor::{execute_schedule, XorCode, XorScratch};

/// Stripe geometry shared by every code in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeParams {
    /// Number of data blocks per stripe.
    pub k: usize,
    /// Number of parity blocks per stripe.
    pub m: usize,
}

impl CodeParams {
    /// Construct and validate RS(k+m, k) geometry for GF(2^8).
    pub fn new(k: usize, m: usize) -> Result<Self, EcError> {
        if k == 0 || m == 0 {
            return Err(EcError::InvalidParams {
                k,
                m,
                reason: "k and m must be positive",
            });
        }
        if k + m > 255 {
            return Err(EcError::InvalidParams {
                k,
                m,
                reason: "k + m must not exceed 255 in GF(2^8)",
            });
        }
        Ok(CodeParams { k, m })
    }

    /// Total blocks per stripe.
    pub fn n(&self) -> usize {
        self.k + self.m
    }
}
