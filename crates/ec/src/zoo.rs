//! The widened code zoo: one constructor per code family, plus a canonical
//! registry of geometries the schedule optimizer ([`crate::schedule::opt`])
//! is exercised and benchmarked on.
//!
//! The point of the zoo is matrix *diversity*: the optimizer's CSE and
//! reordering passes behave very differently on a dense Cauchy bitmatrix
//! (many shared pairs), RAID-6's two-row P+Q shape (one all-ones row, one
//! generator-power row), an LRC's mixed dense-global/sparse-local rows, and
//! a wide k ≥ 20 stripe (long rows, huge pair space).

use crate::xor::XorCode;
use crate::{EcError, GfMatrix, Lrc, ReedSolomon};

/// Cauchy-RS bitmatrix construction: the table-driven RS code's Cauchy
/// parity matrix, expanded to a bitmatrix schedule (see
/// [`ReedSolomon::bitmatrix_code`]).
pub fn cauchy_rs(k: usize, m: usize) -> Result<XorCode, EcError> {
    ReedSolomon::new(k, m)?.bitmatrix_code()
}

/// RAID-6 P+Q as a bitmatrix code: P is the plain XOR row, Q the
/// generator-power row ([`GfMatrix::raid6_parity`]). MDS with m = 2.
pub fn raid6(k: usize) -> Result<XorCode, EcError> {
    XorCode::from_parity_matrix(GfMatrix::raid6_parity(k)?)
}

/// Azure-style LRC(k, m, l) as one bitmatrix code producing the `m` global
/// and `l` local parities together ([`Lrc::bitmatrix_code`]). Not MDS over
/// its `m + l` parities (decode stays with [`Lrc::decode`]).
pub fn lrc_bitmatrix(k: usize, m: usize, l: usize) -> Result<XorCode, EcError> {
    Lrc::new(k, m, l)?.bitmatrix_code()
}

/// One code family in the zoo.
#[derive(Debug, Clone)]
pub struct ZooEntry {
    /// Short family name (stable; used by benches and reports).
    pub name: &'static str,
    /// The code with its baseline (smart) schedule.
    pub code: XorCode,
    /// Whether the code is MDS over its parities (i.e. comparable
    /// head-to-head with the fused RS path at the same geometry).
    pub mds: bool,
}

/// The canonical zoo: one entry per family at a representative geometry,
/// ordered from narrow to wide. Covers the matrix-density spectrum the
/// optimizer must win across: dense Cauchy (narrow + wide ≥ 20),
/// annealed/greedy XOR baselines, two-row RAID-6, and mixed-density LRC.
pub fn code_zoo() -> Result<Vec<ZooEntry>, EcError> {
    use crate::xor::XorFlavor;
    Ok(vec![
        ZooEntry {
            name: "cauchy-rs(8,4)",
            code: cauchy_rs(8, 4)?,
            mds: true,
        },
        ZooEntry {
            name: "cerasure(8,4)",
            code: XorCode::new(8, 4, XorFlavor::Cerasure)?,
            mds: true,
        },
        ZooEntry {
            name: "raid6(10)",
            code: raid6(10)?,
            mds: true,
        },
        ZooEntry {
            name: "lrc(12,2,2)",
            code: lrc_bitmatrix(12, 2, 2)?,
            mds: false,
        },
        ZooEntry {
            name: "wide-cauchy(20,4)",
            code: cauchy_rs(20, 4)?,
            mds: true,
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 41 + j * 17 + 9) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn raid6_p_is_plain_xor_and_code_is_mds() {
        let code = raid6(5).unwrap();
        let data = make_data(5, 64);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode_vec(&refs).unwrap();
        // P = XOR of the data blocks.
        let mut p = vec![0u8; 64];
        for d in &data {
            for (x, y) in p.iter_mut().zip(d) {
                *x ^= y;
            }
        }
        assert_eq!(parity[0], p);
        // Any two erasures repair (MDS).
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        shards[1] = None;
        shards[5] = None; // P
        code.decode(&mut shards).unwrap();
        assert_eq!(shards[1].as_ref().unwrap(), &data[1]);
    }

    #[test]
    fn lrc_bitmatrix_matches_lrc_structure() {
        let (k, m, l) = (6, 2, 2);
        let lrc = Lrc::new(k, m, l).unwrap();
        let code = lrc_bitmatrix(k, m, l).unwrap();
        // Combined matrix = global RS rows then one all-ones row per group.
        let combined = lrc.combined_parity_matrix();
        assert_eq!(code.parity_matrix(), &combined);
        for (i, row) in lrc
            .global_code()
            .parity_matrix()
            .to_rows()
            .iter()
            .enumerate()
        {
            assert_eq!(combined.row(i), row.as_slice());
        }
        let data = make_data(k, 96);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let xor_parity = code.encode_vec(&refs).unwrap();
        let lrc_parity = lrc.encode_vec(&refs).unwrap();
        // Local parities are pure XOR rows — layout-independent, so the
        // bitmatrix code produces the exact same local parity bytes. (The
        // global GF rows agree as a *code* but in bit-sliced layout; see
        // `xor::tests::assert_bitmatrix_semantics`.)
        for g in 0..l {
            assert_eq!(xor_parity[m + g], lrc_parity[m + g], "group {g}");
        }
    }

    #[test]
    fn cauchy_rs_bitmatrix_is_the_rs_code() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let code = rs.bitmatrix_code().unwrap();
        assert_eq!(code.parity_matrix(), rs.parity_matrix());
        let data = make_data(4, 64);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        // Same code, different layout: decode after erasure round-trips.
        let parity = code.encode_vec(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        shards[0] = None;
        shards[2] = None;
        code.decode(&mut shards).unwrap();
        assert_eq!(shards[0].as_ref().unwrap(), &data[0]);
        assert_eq!(shards[2].as_ref().unwrap(), &data[2]);
    }

    #[test]
    fn zoo_builds_and_names_are_unique() {
        let zoo = code_zoo().unwrap();
        assert!(zoo.len() >= 5);
        let mut names: Vec<&str> = zoo.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), zoo.len());
        // The wide entry really is wide.
        assert!(zoo.iter().any(|e| e.code.params().k >= 20));
    }
}
