//! Wide-stripe decomposition (the "decompose" strategy of Cerasure and
//! ISA-L-D in §5.1).
//!
//! A wide stripe RS(k+m, k) with k beyond the hardware prefetcher's stream
//! budget is split into `ceil(k / sub_k)` sub-stripes of at most `sub_k`
//! data blocks. Each sub-stripe is encoded with its slice of the parity
//! matrix and the partial parities are XOR-accumulated. This re-activates
//! the hardware prefetcher (few streams per pass) but *re-reads and
//! re-writes the parity blocks once per sub-stripe* — the extra write
//! traffic and parity reloading the paper charges against this strategy
//! (§5.2.1, §5.7).

use crate::xor::{execute_schedule, XorScratch};
use crate::{CodeParams, EcError, GfMatrix, ReedSolomon, Schedule};
use dialga_gf::bitmatrix::BitMatrix;
use dialga_gf::slice::{mul_add_slice, xor_slice};

/// A decomposed wide-stripe encoder built on a full-width RS code.
#[derive(Debug, Clone)]
pub struct DecomposedRs {
    inner: ReedSolomon,
    sub_k: usize,
}

impl DecomposedRs {
    /// Wrap an RS code, splitting encodes into sub-stripes of at most
    /// `sub_k` data blocks. `sub_k` defaults in the paper's comparison to
    /// the same size Cerasure uses (we default to 24 at call sites).
    pub fn new(inner: ReedSolomon, sub_k: usize) -> Result<Self, EcError> {
        if sub_k == 0 {
            return Err(EcError::InvalidParams {
                k: inner.params().k,
                m: inner.params().m,
                reason: "sub_k must be positive",
            });
        }
        Ok(DecomposedRs { inner, sub_k })
    }

    /// Geometry of the full code.
    pub fn params(&self) -> CodeParams {
        self.inner.params()
    }

    /// Sub-stripe width.
    pub fn sub_k(&self) -> usize {
        self.sub_k
    }

    /// The wrapped full-width code.
    pub fn inner(&self) -> &ReedSolomon {
        &self.inner
    }

    /// Number of encode passes (`ceil(k / sub_k)`); pass count - 1 is the
    /// number of parity reload rounds the timing model charges.
    pub fn passes(&self) -> usize {
        self.inner.params().k.div_ceil(self.sub_k)
    }

    /// Ranges of data-block indices per pass.
    pub fn pass_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let k = self.inner.params().k;
        (0..self.passes())
            .map(|p| p * self.sub_k..((p + 1) * self.sub_k).min(k))
            .collect()
    }

    /// Encode by sub-stripe accumulation. Produces parity identical to the
    /// full-width encode (verified by tests) while touching only `sub_k`
    /// data streams per pass.
    pub fn encode_vec(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
        let params = self.inner.params();
        if data.len() != params.k {
            return Err(EcError::BlockCount {
                expected: params.k,
                got: data.len(),
            });
        }
        let len = data[0].len();
        for d in data {
            if d.len() != len {
                return Err(EcError::BlockLength {
                    expected: len,
                    got: d.len(),
                });
            }
        }
        let pm = self.inner.parity_matrix();
        let mut parity = vec![vec![0u8; len]; params.m];
        for range in self.pass_ranges() {
            // One pass: accumulate this sub-stripe's contribution into every
            // parity block (the parity "reload").
            for (i, p) in parity.iter_mut().enumerate() {
                for j in range.clone() {
                    mul_add_slice(pm[(i, j)].0, data[j], p);
                }
            }
        }
        Ok(parity)
    }

    /// One XOR schedule per sub-stripe pass: pass `p` encodes the
    /// `m x |range_p|` column slice of the parity matrix as a bitmatrix
    /// schedule over that pass's data blocks. This composes the wide-stripe
    /// decomposition with the schedule optimizer — each (narrow) pass
    /// schedule can be optimized independently, and execution XOR-
    /// accumulates the partial parities exactly like the table-driven path.
    pub fn xor_pass_schedules(&self) -> Result<Vec<Schedule>, EcError> {
        let params = self.inner.params();
        let pm = self.inner.parity_matrix();
        self.pass_ranges()
            .into_iter()
            .map(|range| {
                let rows: Vec<Vec<dialga_gf::Gf8>> = (0..params.m)
                    .map(|i| range.clone().map(|j| pm[(i, j)]).collect())
                    .collect();
                let sub = GfMatrix::from_rows(rows);
                let bm = BitMatrix::from_gf_matrix(&sub.to_rows());
                let s = Schedule::smart_from_bitmatrix(&bm, range.len(), params.m);
                s.validate()?;
                Ok(s)
            })
            .collect()
    }

    /// Encode through the per-pass XOR schedules (bit-identical to the
    /// single-pass XOR encode of the full parity matrix, i.e.
    /// `XorCode::from_parity_matrix(inner.parity_matrix())` — the XOR path
    /// emits the same code in bit-sliced symbol layout, so it is compared
    /// against the XOR path, not the table-driven bytes): each pass executes
    /// its schedule into a scratch stripe which is then XOR-folded into the
    /// accumulated parity — the same parity-reload traffic shape the
    /// decomposition charges on the table-driven path.
    pub fn encode_xor_vec(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
        let params = self.inner.params();
        if data.len() != params.k {
            return Err(EcError::BlockCount {
                expected: params.k,
                got: data.len(),
            });
        }
        let len = data[0].len();
        let mut parity = vec![vec![0u8; len]; params.m];
        let mut partial = vec![vec![0u8; len]; params.m];
        let mut scratch = XorScratch::new();
        let schedules = self.xor_pass_schedules()?;
        for (range, schedule) in self.pass_ranges().into_iter().zip(&schedules) {
            let srcs: Vec<&[u8]> = data[range].to_vec();
            execute_schedule(schedule, &srcs, &mut partial, len, &mut scratch)?;
            for (acc, part) in parity.iter_mut().zip(&partial) {
                xor_slice(part, acc);
            }
        }
        Ok(parity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 37 + j * 11 + 1) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn decomposed_matches_full_encode() {
        for (k, m, sub_k) in [(48, 4, 24), (52 - 4, 4, 16), (12, 4, 5)] {
            let rs = ReedSolomon::new(k, m).unwrap();
            let dec = DecomposedRs::new(rs.clone(), sub_k).unwrap();
            let data = make_data(k, 64);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            assert_eq!(
                dec.encode_vec(&refs).unwrap(),
                rs.encode_vec(&refs).unwrap()
            );
        }
    }

    #[test]
    fn pass_ranges_cover_exactly() {
        let rs = ReedSolomon::new(50, 4).unwrap();
        let dec = DecomposedRs::new(rs, 24).unwrap();
        assert_eq!(dec.passes(), 3);
        let ranges = dec.pass_ranges();
        assert_eq!(ranges.len(), 3);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 50);
        assert_eq!(ranges[0], 0..24);
        assert_eq!(ranges[2], 48..50);
    }

    #[test]
    fn sub_k_of_k_is_single_pass() {
        let rs = ReedSolomon::new(12, 4).unwrap();
        let dec = DecomposedRs::new(rs, 12).unwrap();
        assert_eq!(dec.passes(), 1);
    }

    #[test]
    fn zero_sub_k_rejected() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        assert!(DecomposedRs::new(rs, 0).is_err());
    }

    #[test]
    fn decomposed_parity_decodable() {
        let k = 40;
        let rs = ReedSolomon::new(k, 4).unwrap();
        let dec = DecomposedRs::new(rs.clone(), 16).unwrap();
        let data = make_data(k, 32);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = dec.encode_vec(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        shards[3] = None;
        shards[17] = None;
        rs.decode(&mut shards).unwrap();
        assert_eq!(shards[3].as_ref().unwrap(), &data[3]);
        assert_eq!(shards[17].as_ref().unwrap(), &data[17]);
    }
}
