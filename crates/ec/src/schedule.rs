//! XOR schedules for bitmatrix codes, plus the matrix-search optimizers of
//! the two XOR baselines the paper compares against.
//!
//! A *schedule* is the explicit list of packet-XOR operations that encodes a
//! stripe under a bitmatrix code. The schedule's length (and its repeated
//! source reads) is exactly what distinguishes the XOR baselines from ISA-L
//! in the paper: Zerasure/Cerasure minimize XOR count at the price of a
//! scattered, re-reading memory access pattern.

use crate::{EcError, GfMatrix};
use dialga_gf::bitmatrix::{BitMatrix, W};
use dialga_gf::xorexec::{Operand, ProgOp, XorProgram};
use dialga_gf::Gf8;
use dialga_testkit::Rng;
use std::collections::{HashMap, HashSet};

/// Source operand of a XOR op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Src {
    /// Data packet, addressed by bit-column index (`block*8 + packet`).
    Data(usize),
    /// Already-finished parity packet, addressed by bit-row index.
    Parity(usize),
    /// Intermediate (common-subexpression) buffer.
    Temp(usize),
}

/// Destination operand of a XOR op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dst {
    /// Parity packet, addressed by bit-row index.
    Parity(usize),
    /// Intermediate buffer.
    Temp(usize),
}

/// One packet-granularity operation: `dst = src` (when `init`) or
/// `dst ^= src`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorOp {
    /// Where the result goes.
    pub dst: Dst,
    /// What is read.
    pub src: Src,
    /// `true` for the first write to `dst` (a copy, not an accumulate).
    pub init: bool,
}

/// Static cost of a [`Schedule`]: the quantities the optimizer passes in
/// [`opt`] trade against each other. Compute cost is `xors`; memory-traffic
/// quality is `distinct_reads` (how many different packets are touched at
/// all) and `src_switches` (how often consecutive ops change source — each
/// switch is a potential cache-line re-fetch); footprint is
/// `peak_live_temps`/`n_temps`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleCost {
    /// Total packet operations (copies + XORs).
    pub xors: usize,
    /// Distinct source operands read at least once.
    pub distinct_reads: usize,
    /// Adjacent op pairs reading *different* sources (0 for a perfectly
    /// source-grouped schedule).
    pub src_switches: usize,
    /// Maximum number of temps simultaneously live (first write → last use).
    pub peak_live_temps: usize,
    /// Temp buffers the schedule declares.
    pub n_temps: usize,
}

impl ScheduleCost {
    /// Lexicographic comparison key: XOR count dominates, then locality
    /// (source switches), then scratch footprint.
    pub fn key(&self) -> (usize, usize, usize, usize) {
        (
            self.xors,
            self.src_switches,
            self.peak_live_temps,
            self.n_temps,
        )
    }
}

/// An executable XOR schedule for a (k, m) bitmatrix code.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Data blocks.
    pub k: usize,
    /// Parity blocks.
    pub m: usize,
    /// Number of intermediate buffers the ops reference.
    pub n_temps: usize,
    /// Operations in execution order.
    pub ops: Vec<XorOp>,
}

impl Schedule {
    /// Naive schedule straight off a bitmatrix: each parity bit-row is the
    /// XOR of its set columns, no reuse. This is what plain Jerasure does.
    pub fn from_bitmatrix(bm: &BitMatrix, k: usize, m: usize) -> Self {
        assert_eq!(bm.rows(), m * W, "bitmatrix row count");
        assert_eq!(bm.cols(), k * W, "bitmatrix col count");
        let mut ops = Vec::new();
        for r in 0..m * W {
            let mut first = true;
            for c in bm.row_indices(r) {
                ops.push(XorOp {
                    dst: Dst::Parity(r),
                    src: Src::Data(c),
                    init: first,
                });
                first = false;
            }
            // A bitmatrix row can be empty only for a degenerate (non-MDS)
            // matrix; keep the parity packet defined anyway.
            if first {
                ops.push(XorOp {
                    dst: Dst::Parity(r),
                    src: Src::Data(0),
                    init: true,
                });
                ops.push(XorOp {
                    dst: Dst::Parity(r),
                    src: Src::Data(0),
                    init: false,
                });
            }
        }
        let s = Schedule {
            k,
            m,
            n_temps: 0,
            ops,
        };
        assert!(
            s.validate().is_ok(),
            "from_bitmatrix built invalid schedule"
        );
        s
    }

    /// Smart schedule: greedy common-subexpression elimination. Repeatedly
    /// finds the pair of operands that co-occurs in the most outputs,
    /// hoists it into a temp, and rewrites. This is the scheduling family
    /// used by Zerasure ("scheduling optimization") and the SLP approach of
    /// Uezato [SC'21], in its classic pairwise greedy form.
    pub fn smart_from_bitmatrix(bm: &BitMatrix, k: usize, m: usize) -> Self {
        assert_eq!(bm.rows(), m * W);
        assert_eq!(bm.cols(), k * W);
        // Working form: each output row is a set of operands.
        let mut rows: Vec<Vec<Src>> = (0..m * W)
            .map(|r| bm.row_indices(r).into_iter().map(Src::Data).collect())
            .collect();
        let temp_defs = cse_rows(&mut rows);
        let s = emit_schedule(k, m, &rows, &temp_defs);
        assert!(
            s.validate().is_ok(),
            "smart_from_bitmatrix built invalid schedule"
        );
        s
    }

    /// Number of XOR/copy packet operations (the XOR baselines' compute
    /// cost).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of *data-packet* reads, counting repeats — the memory-traffic
    /// disadvantage of XOR codes on PM (§2.2: "requires repeatedly reading
    /// data blocks from different locations").
    pub fn data_reads(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op.src, Src::Data(_)))
            .count()
    }

    /// Static cost report (see [`ScheduleCost`]); used by [`opt::optimize`]
    /// to pick the best schedule variant per code.
    pub fn cost(&self) -> ScheduleCost {
        let distinct_reads = self
            .ops
            .iter()
            .map(|op| op.src)
            .collect::<HashSet<Src>>()
            .len();
        let src_switches = self.ops.windows(2).filter(|w| w[0].src != w[1].src).count();
        // Live range of each temp: first write → last touch (read or write).
        let mut first = vec![usize::MAX; self.n_temps];
        let mut last = vec![0usize; self.n_temps];
        for (i, op) in self.ops.iter().enumerate() {
            let mut touch = |t: usize| {
                if first[t] == usize::MAX {
                    first[t] = i;
                }
                last[t] = i;
            };
            if let Dst::Temp(t) = op.dst {
                touch(t);
            }
            if let Src::Temp(t) = op.src {
                touch(t);
            }
        }
        let mut delta = vec![0i64; self.ops.len() + 1];
        for t in 0..self.n_temps {
            if first[t] != usize::MAX {
                delta[first[t]] += 1;
                delta[last[t] + 1] -= 1;
            }
        }
        let mut live = 0i64;
        let mut peak = 0i64;
        for d in delta {
            live += d;
            peak = peak.max(live);
        }
        ScheduleCost {
            xors: self.ops.len(),
            distinct_reads,
            src_switches,
            peak_live_temps: peak as usize,
            n_temps: self.n_temps,
        }
    }

    /// Check the schedule is well-formed: every operand in range, every
    /// `Temp`/`Parity` read strictly after its `init` write, every
    /// accumulate (`init == false`) preceded by an `init` to the same
    /// destination, and every parity packet written by the end. A malformed
    /// schedule would otherwise silently produce garbage at execution time.
    pub fn validate(&self) -> Result<(), EcError> {
        let nd = self.k * W;
        let np = self.m * W;
        let mut temp_init = vec![false; self.n_temps];
        let mut par_init = vec![false; np];
        for op in &self.ops {
            match op.src {
                Src::Data(c) => {
                    if c >= nd {
                        return Err(EcError::Internal {
                            what: "schedule reads out-of-range data column",
                        });
                    }
                }
                Src::Parity(r) => {
                    if r >= np {
                        return Err(EcError::Internal {
                            what: "schedule reads out-of-range parity row",
                        });
                    }
                    if !par_init[r] {
                        return Err(EcError::Internal {
                            what: "schedule reads parity before its init write",
                        });
                    }
                }
                Src::Temp(t) => {
                    if t >= self.n_temps {
                        return Err(EcError::Internal {
                            what: "schedule reads temp beyond n_temps",
                        });
                    }
                    if !temp_init[t] {
                        return Err(EcError::Internal {
                            what: "schedule reads temp before its init write",
                        });
                    }
                }
            }
            match op.dst {
                Dst::Parity(r) => {
                    if r >= np {
                        return Err(EcError::Internal {
                            what: "schedule writes out-of-range parity row",
                        });
                    }
                    if op.init {
                        par_init[r] = true;
                    } else if !par_init[r] {
                        return Err(EcError::Internal {
                            what: "schedule accumulates into uninitialized parity",
                        });
                    }
                }
                Dst::Temp(t) => {
                    if t >= self.n_temps {
                        return Err(EcError::Internal {
                            what: "schedule writes temp beyond n_temps",
                        });
                    }
                    if op.init {
                        temp_init[t] = true;
                    } else if !temp_init[t] {
                        return Err(EcError::Internal {
                            what: "schedule accumulates into uninitialized temp",
                        });
                    }
                }
            }
        }
        if !par_init.iter().all(|&i| i) {
            return Err(EcError::Internal {
                what: "schedule leaves a parity packet unwritten",
            });
        }
        Ok(())
    }

    /// Lower to the flat packet-index program the batched executor
    /// ([`dialga_gf::xorexec`]) and the encode pool run. Validates first —
    /// only well-formed schedules reach execution.
    pub fn to_program(&self) -> Result<XorProgram, EcError> {
        self.validate()?;
        let ops = self
            .ops
            .iter()
            .map(|op| ProgOp {
                dst: match op.dst {
                    Dst::Parity(r) => Operand::Parity(r as u32),
                    Dst::Temp(t) => Operand::Temp(t as u32),
                },
                src: match op.src {
                    Src::Data(c) => Operand::Data(c as u32),
                    Src::Parity(r) => Operand::Parity(r as u32),
                    Src::Temp(t) => Operand::Temp(t as u32),
                },
                init: op.init,
            })
            .collect();
        Ok(XorProgram {
            n_data: self.k * W,
            n_parity: self.m * W,
            n_temps: self.n_temps,
            ops,
        })
    }
}

/// Greedy pairwise common-subexpression elimination over operand rows (the
/// scheduling family of Zerasure and Uezato [SC'21] in its classic form):
/// repeatedly hoist the operand pair that co-occurs in the most rows into a
/// fresh temp and rewrite. Rows are mutated in place; returns the hoisted
/// pair definitions (temp `i` = `defs[i].0 ^ defs[i].1`).
fn cse_rows(rows: &mut [Vec<Src>]) -> Vec<(Src, Src)> {
    let mut temp_defs: Vec<(Src, Src)> = Vec::new();
    loop {
        // Count co-occurring operand pairs across rows.
        let mut pair_count: HashMap<(Src, Src), usize> = HashMap::new();
        for row in rows.iter() {
            for i in 0..row.len() {
                for j in (i + 1)..row.len() {
                    let key = if row[i] <= row[j] {
                        (row[i], row[j])
                    } else {
                        (row[j], row[i])
                    };
                    *pair_count.entry(key).or_insert(0) += 1;
                }
            }
        }
        let best = pair_count
            .into_iter()
            .max_by_key(|&(p, c)| (c, std::cmp::Reverse(p)));
        let Some(((a, b), count)) = best else { break };
        if count < 2 {
            break;
        }
        // Hoist (a, b) into a new temp and rewrite the rows using it.
        let t = Src::Temp(temp_defs.len());
        temp_defs.push((a, b));
        for row in rows.iter_mut() {
            let has_a = row.contains(&a);
            let has_b = row.contains(&b);
            if has_a && has_b {
                row.retain(|&s| s != a && s != b);
                row.push(t);
            }
        }
    }
    temp_defs
}

/// Emit a schedule from CSE'd rows: temp definitions first (in definition
/// order — later temps may reference earlier ones), then each parity row.
fn emit_schedule(k: usize, m: usize, rows: &[Vec<Src>], temp_defs: &[(Src, Src)]) -> Schedule {
    let mut ops = Vec::new();
    for (i, &(a, b)) in temp_defs.iter().enumerate() {
        ops.push(XorOp {
            dst: Dst::Temp(i),
            src: a,
            init: true,
        });
        ops.push(XorOp {
            dst: Dst::Temp(i),
            src: b,
            init: false,
        });
    }
    for (r, row) in rows.iter().enumerate() {
        let mut first = true;
        for &s in row {
            ops.push(XorOp {
                dst: Dst::Parity(r),
                src: s,
                init: first,
            });
            first = false;
        }
        if first {
            // Degenerate empty row (see from_bitmatrix).
            ops.push(XorOp {
                dst: Dst::Parity(r),
                src: Src::Data(0),
                init: true,
            });
            ops.push(XorOp {
                dst: Dst::Parity(r),
                src: Src::Data(0),
                init: false,
            });
        }
    }
    Schedule {
        k,
        m,
        n_temps: temp_defs.len(),
        ops,
    }
}

/// Schedule-optimization pass pipeline (Uezato [SC'21]: a schedule is a
/// *program*, so optimize it like one).
///
/// Three pieces compose:
///
/// 1. [`eliminate_common_subexpressions`] — flatten the schedule back to
///    per-parity operand sets (exact GF(2) semantics, so it works on *any*
///    well-formed schedule, not just fresh bitmatrix ones) and re-run
///    greedy pair-frequency CSE across rows, hoisting repeated `Src`
///    subsets into temps.
/// 2. [`reorder_for_reuse`] — re-emit ops grouped by source packet: each
///    data packet is streamed once while every consumer folds it in, and a
///    temp's consumers run the moment it completes. Short temp live-ranges
///    let physical temp slots be recycled, shrinking `n_temps`.
/// 3. [`optimize`] — runs both passes, scores every variant with
///    [`Schedule::cost`](super::Schedule::cost), validates, and returns the
///    cheapest.
pub mod opt {
    use super::{cse_rows, emit_schedule, Dst, EcError, HashSet, Schedule, Src, XorOp, W};

    /// Flatten a schedule to the set of data columns each parity row XORs,
    /// by symbolic execution over GF(2) (symmetric difference of column
    /// sets). This is exact: any interleaving of temps, parity re-reads and
    /// re-inits reduces to one set per parity.
    fn flatten(s: &Schedule) -> Result<Vec<Vec<usize>>, EcError> {
        s.validate()?;
        let np = s.m * W;
        let mut temps: Vec<HashSet<usize>> = vec![HashSet::new(); s.n_temps];
        let mut pars: Vec<HashSet<usize>> = vec![HashSet::new(); np];
        for op in &s.ops {
            let src_set: HashSet<usize> = match op.src {
                Src::Data(c) => [c].into_iter().collect(),
                Src::Parity(r) => pars[r].clone(),
                Src::Temp(t) => temps[t].clone(),
            };
            let dst = match op.dst {
                Dst::Parity(r) => &mut pars[r],
                Dst::Temp(t) => &mut temps[t],
            };
            if op.init {
                *dst = src_set;
            } else {
                for c in src_set {
                    // XOR toggles membership.
                    if !dst.remove(&c) {
                        dst.insert(c);
                    }
                }
            }
        }
        Ok(pars
            .into_iter()
            .map(|set| {
                let mut cols: Vec<usize> = set.into_iter().collect();
                cols.sort_unstable();
                cols
            })
            .collect())
    }

    /// Pass 1 — cross-row CSE: flatten, then greedily hoist the most
    /// frequent co-occurring operand pairs into temps (see
    /// [`Schedule::smart_from_bitmatrix`](super::Schedule::smart_from_bitmatrix);
    /// this is the same greedy applied to an arbitrary schedule's semantics
    /// rather than a bitmatrix). Never increases XOR count beyond the
    /// flattened baseline.
    pub fn eliminate_common_subexpressions(s: &Schedule) -> Result<Schedule, EcError> {
        let mut rows: Vec<Vec<Src>> = flatten(s)?
            .into_iter()
            .map(|cols| cols.into_iter().map(Src::Data).collect())
            .collect();
        let temp_defs = cse_rows(&mut rows);
        let out = emit_schedule(s.k, s.m, &rows, &temp_defs);
        out.validate()?;
        Ok(out)
    }

    /// Pass 2 — cache-reuse reordering with temp recycling. Ops are
    /// re-emitted *source-major*: data packets are processed in ascending
    /// order, and all ops reading a packet are emitted back-to-back, so each
    /// data line is read once per group while hot. A temp whose inputs are
    /// all emitted completes, and its consumers are emitted immediately
    /// (depth-first), keeping live ranges short; physical temp slots are
    /// assigned on first write and recycled after last read, which shrinks
    /// `n_temps` to the peak concurrency.
    ///
    /// The pass preserves the op multiset (same XOR count, same semantics —
    /// XOR accumulation is commutative). Schedules it cannot safely reorder
    /// (parity-reading ops or mid-stream re-inits, which impose ordering
    /// beyond the temp dependency graph) are returned unchanged.
    pub fn reorder_for_reuse(s: &Schedule) -> Result<Schedule, EcError> {
        s.validate()?;
        let nd = s.k * W;
        let np = s.m * W;
        let n_dst = s.n_temps + np;
        let key = |d: Dst| match d {
            Dst::Temp(t) => t,
            Dst::Parity(r) => s.n_temps + r,
        };
        // Bail (semantics-preserving no-op) on shapes the dependency model
        // below doesn't cover.
        let mut seen_init = vec![false; n_dst];
        for op in &s.ops {
            if matches!(op.src, Src::Parity(_)) {
                return Ok(s.clone());
            }
            let dk = key(op.dst);
            if op.init {
                if seen_init[dk] {
                    return Ok(s.clone()); // re-init: order-sensitive
                }
                seen_init[dk] = true;
            }
        }

        // Edge lists: which destinations consume each source.
        let mut data_consumers: Vec<Vec<usize>> = vec![Vec::new(); nd];
        let mut temp_consumers: Vec<Vec<usize>> = vec![Vec::new(); s.n_temps];
        let mut pending = vec![0usize; s.n_temps]; // unemitted input edges
        for op in &s.ops {
            let dk = key(op.dst);
            match op.src {
                Src::Data(c) => data_consumers[c].push(dk),
                Src::Temp(t) => temp_consumers[t].push(dk),
                // Already bailed above; keep the pass total anyway.
                Src::Parity(_) => return Ok(s.clone()),
            }
            if let Dst::Temp(t) = op.dst {
                pending[t] += 1;
            }
        }

        let mut ops_out: Vec<XorOp> = Vec::with_capacity(s.ops.len());
        let mut initialized = vec![false; n_dst];
        let mut slot_of: Vec<Option<usize>> = vec![None; s.n_temps];
        let mut free_slots: Vec<usize> = Vec::new();
        let mut next_slot = 0usize;
        // Temps whose inputs are complete, ready to stream to consumers.
        let mut ready: Vec<usize> = Vec::new();

        // Emit every consumer edge of one source, completing temps as their
        // input counts drain.
        let mut emit_source = |src: Src,
                               consumers: &[usize],
                               slot_of: &mut Vec<Option<usize>>,
                               free_slots: &mut Vec<usize>,
                               ready: &mut Vec<usize>,
                               ops_out: &mut Vec<XorOp>| {
            for &dk in consumers {
                let dst = if dk < s.n_temps {
                    let slot = *slot_of[dk].get_or_insert_with(|| {
                        free_slots.pop().unwrap_or_else(|| {
                            next_slot += 1;
                            next_slot - 1
                        })
                    });
                    Dst::Temp(slot)
                } else {
                    Dst::Parity(dk - s.n_temps)
                };
                let init = !initialized[dk];
                initialized[dk] = true;
                ops_out.push(XorOp { dst, src, init });
                if dk < s.n_temps {
                    pending[dk] -= 1;
                    if pending[dk] == 0 {
                        ready.push(dk);
                    }
                }
            }
        };

        for (c, consumers) in data_consumers.iter().enumerate().take(nd) {
            emit_source(
                Src::Data(c),
                consumers,
                &mut slot_of,
                &mut free_slots,
                &mut ready,
                &mut ops_out,
            );
            // Drain completed temps depth-first: their consumers run while
            // the temp is still hot, then the slot frees.
            while let Some(t) = ready.pop() {
                let Some(slot) = slot_of[t] else {
                    // A temp with no writes: nothing to stream.
                    continue;
                };
                emit_source(
                    Src::Temp(slot),
                    &temp_consumers[t],
                    &mut slot_of,
                    &mut free_slots,
                    &mut ready,
                    &mut ops_out,
                );
                // Every consumer has folded the temp in; recycle its slot.
                free_slots.push(slot);
            }
        }

        if ops_out.len() != s.ops.len() {
            // Unreachable for schedules grounded in data (no cycles), but
            // stay semantics-preserving if one slips through.
            return Ok(s.clone());
        }
        let out = Schedule {
            k: s.k,
            m: s.m,
            n_temps: next_slot,
            ops: ops_out,
        };
        out.validate()?;
        Ok(out)
    }

    /// The full pipeline: CSE, then reordering, scored by
    /// [`Schedule::cost`](super::Schedule::cost). Every candidate (including
    /// the input itself) is validated and the cheapest by
    /// [`ScheduleCost::key`](super::ScheduleCost::key) wins, so the result
    /// is never worse than the input on any key metric.
    pub fn optimize(s: &Schedule) -> Result<Schedule, EcError> {
        s.validate()?;
        let cse = eliminate_common_subexpressions(s)?;
        let reordered = reorder_for_reuse(&cse)?;
        let mut best = s.clone();
        for cand in [cse, reordered] {
            if cand.cost().key() < best.cost().key() {
                best = cand;
            }
        }
        Ok(best)
    }
}

/// Ones count of each GF(2^8) element's 8x8 companion bitmatrix —
/// the per-element XOR cost table both matrix searches optimize over.
#[allow(clippy::needless_range_loop)] // e is the element value, not just an index
fn element_ones_table() -> [u32; 256] {
    let mut t = [0u32; 256];
    for e in 0..256usize {
        let bm = BitMatrix::from_gf_matrix(&[vec![Gf8(e as u8)]]);
        t[e] = bm.ones() as u32;
    }
    t
}

fn cauchy_ones(xs: &[u8], ys: &[u8], ones: &[u32; 256]) -> u64 {
    let mut total = 0u64;
    for &x in xs {
        for &y in ys {
            let e = (Gf8(x) + Gf8(y)).inv().0;
            total += ones[e as usize] as u64;
        }
    }
    total
}

/// Result of a matrix search: the chosen Cauchy X/Y sets and the parity
/// matrix they induce.
#[derive(Debug, Clone)]
pub struct MatrixSearchResult {
    /// Chosen X elements (one per parity row).
    pub xs: Vec<u8>,
    /// Chosen Y elements (one per data column).
    pub ys: Vec<u8>,
    /// Resulting m x k parity matrix (row-normalized).
    pub parity: GfMatrix,
    /// Bitmatrix ones before normalization, for reporting.
    pub ones: u64,
}

/// Row-normalize a Cauchy parity matrix: scale each row so its first entry
/// is 1 (scaling a parity output by a nonzero constant preserves the MDS
/// property). This is Zerasure's "bitmatrix normalization".
pub fn normalize_rows(p: &GfMatrix) -> GfMatrix {
    let mut rows = p.to_rows();
    for row in &mut rows {
        if let Some(&first) = row.iter().find(|&&e| e != Gf8::ZERO) {
            let inv = first.inv();
            for e in row.iter_mut() {
                *e *= inv;
            }
        }
    }
    GfMatrix::from_rows(rows)
}

/// Zerasure-style matrix search: simulated annealing over the Cauchy X/Y
/// element choice, minimizing total companion-bitmatrix ones, followed by
/// row normalization. Deterministic for a given seed.
pub fn anneal_xy(
    k: usize,
    m: usize,
    iterations: usize,
    seed: u64,
) -> Result<MatrixSearchResult, EcError> {
    search_xy(k, m, SearchKind::Anneal { iterations }, seed)
}

/// Cerasure-style matrix search: greedy element-by-element selection of the
/// Y set (then X set) minimizing incremental ones.
pub fn greedy_xy(k: usize, m: usize) -> Result<MatrixSearchResult, EcError> {
    search_xy(k, m, SearchKind::Greedy, 0)
}

enum SearchKind {
    Anneal { iterations: usize },
    Greedy,
}

fn search_xy(
    k: usize,
    m: usize,
    kind: SearchKind,
    seed: u64,
) -> Result<MatrixSearchResult, EcError> {
    if k == 0 || m == 0 || k + m > 255 {
        return Err(EcError::InvalidParams {
            k,
            m,
            reason: "Cauchy X/Y sets need k+m <= 255 distinct elements",
        });
    }
    let ones = element_ones_table();

    let (xs, ys) = match kind {
        SearchKind::Greedy => {
            // Greedily grow Y, then X, from all 256 candidates.
            let mut ys: Vec<u8> = Vec::with_capacity(k);
            let mut xs: Vec<u8> = Vec::with_capacity(m);
            // Seed with the canonical sets' first elements to anchor search.
            let mut used = [false; 256];
            // Pick X first (small), pairing cost against a provisional Y
            // probe set keeps the greedy stable.
            for _ in 0..m {
                let mut best = None;
                for cand in 0u16..=255 {
                    let c = cand as u8;
                    if used[c as usize] {
                        continue;
                    }
                    // Cost of candidate x against currently chosen ys, or
                    // against y=0 probe when none chosen yet.
                    let probe: &[u8] = if ys.is_empty() { &[0] } else { ys.as_slice() };
                    if probe.contains(&c) {
                        continue;
                    }
                    let cost = cauchy_ones(&[c], probe, &ones);
                    if best.is_none_or(|(bc, _)| cost < bc) {
                        best = Some((cost, c));
                    }
                }
                let (_, c) = best.ok_or(EcError::SingularMatrix)?;
                used[c as usize] = true;
                xs.push(c);
            }
            for _ in 0..k {
                let mut best = None;
                for cand in 0u16..=255 {
                    let c = cand as u8;
                    if used[c as usize] || xs.contains(&c) {
                        continue;
                    }
                    let cost = cauchy_ones(&xs, &[c], &ones);
                    if best.is_none_or(|(bc, _)| cost < bc) {
                        best = Some((cost, c));
                    }
                }
                let (_, c) = best.ok_or(EcError::SingularMatrix)?;
                used[c as usize] = true;
                ys.push(c);
            }
            (xs, ys)
        }
        SearchKind::Anneal { iterations } => {
            let mut rng = Rng::new(seed);
            let mut xs: Vec<u8> = (0..m).map(|i| (i + k) as u8).collect();
            let mut ys: Vec<u8> = (0..k).map(|j| j as u8).collect();
            let mut cost = cauchy_ones(&xs, &ys, &ones);
            let mut best = (xs.clone(), ys.clone(), cost);
            let mut temp = cost as f64 * 0.05 + 1.0;
            for it in 0..iterations {
                // Propose: replace one element of X or Y with an unused one.
                let replace_x = rng.bool_with(m as f64 / (k + m) as f64);
                let mut nxs = xs.clone();
                let mut nys = ys.clone();
                let cand = loop {
                    let c: u8 = rng.u8();
                    if !nxs.contains(&c) && !nys.contains(&c) {
                        break c;
                    }
                };
                if replace_x {
                    let i = rng.range(0, m);
                    nxs[i] = cand;
                } else {
                    let j = rng.range(0, k);
                    nys[j] = cand;
                }
                let ncost = cauchy_ones(&nxs, &nys, &ones);
                let accept = ncost <= cost || {
                    let d = (ncost - cost) as f64;
                    rng.bool_with((-d / temp).exp().clamp(0.0, 1.0))
                };
                if accept {
                    xs = nxs;
                    ys = nys;
                    cost = ncost;
                    if cost < best.2 {
                        best = (xs.clone(), ys.clone(), cost);
                    }
                }
                // Geometric cooling.
                if it % 64 == 63 {
                    temp *= 0.95;
                }
            }
            (best.0, best.1)
        }
    };

    let raw = GfMatrix::cauchy_parity_xy(&xs, &ys);
    let ones_total = cauchy_ones(&xs, &ys, &ones);
    let parity = normalize_rows(&raw);
    Ok(MatrixSearchResult {
        xs,
        ys,
        parity,
        ones: ones_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialga_gf::bitmatrix::BitMatrix;

    fn bm_for(k: usize, m: usize) -> BitMatrix {
        let p = GfMatrix::cauchy_parity(k, m);
        BitMatrix::from_gf_matrix(&p.to_rows())
    }

    #[test]
    fn naive_schedule_op_count_matches_ones() {
        let bm = bm_for(4, 2);
        let s = Schedule::from_bitmatrix(&bm, 4, 2);
        assert_eq!(s.op_count(), bm.ones());
        assert_eq!(s.data_reads(), bm.ones());
        assert_eq!(s.n_temps, 0);
    }

    #[test]
    fn smart_schedule_is_never_worse() {
        for (k, m) in [(4, 2), (6, 3), (8, 4)] {
            let bm = bm_for(k, m);
            let naive = Schedule::from_bitmatrix(&bm, k, m);
            let smart = Schedule::smart_from_bitmatrix(&bm, k, m);
            assert!(
                smart.op_count() <= naive.op_count(),
                "k={k} m={m}: smart {} > naive {}",
                smart.op_count(),
                naive.op_count()
            );
        }
    }

    #[test]
    fn smart_schedule_reduces_ops_for_dense_matrix() {
        // Dense Cauchy bitmatrices have many shared pairs; CSE must fire.
        let bm = bm_for(8, 4);
        let naive = Schedule::from_bitmatrix(&bm, 8, 4);
        let smart = Schedule::smart_from_bitmatrix(&bm, 8, 4);
        assert!(smart.n_temps > 0, "no temps hoisted");
        assert!(smart.op_count() < naive.op_count());
    }

    #[test]
    fn anneal_improves_over_canonical() {
        let ones = element_ones_table();
        let k = 6;
        let m = 3;
        let base_xs: Vec<u8> = (0..m).map(|i| (i + k) as u8).collect();
        let base_ys: Vec<u8> = (0..k).map(|j| j as u8).collect();
        let base = cauchy_ones(&base_xs, &base_ys, &ones);
        let r = anneal_xy(k, m, 2000, 42).unwrap();
        assert!(r.ones <= base, "anneal {} > canonical {}", r.ones, base);
        // Sets stay disjoint and the matrix valid.
        for x in &r.xs {
            assert!(!r.ys.contains(x));
        }
    }

    #[test]
    fn greedy_produces_valid_disjoint_sets() {
        let r = greedy_xy(8, 4).unwrap();
        assert_eq!(r.xs.len(), 4);
        assert_eq!(r.ys.len(), 8);
        for x in &r.xs {
            assert!(!r.ys.contains(x));
        }
        // All distinct.
        let mut all: Vec<u8> = r.xs.iter().chain(r.ys.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn normalize_rows_sets_leading_one() {
        let p = GfMatrix::cauchy_parity(5, 3);
        let n = normalize_rows(&p);
        for r in 0..3 {
            assert_eq!(n[(r, 0)], Gf8::ONE);
        }
    }

    #[test]
    fn anneal_is_deterministic_per_seed() {
        let a = anneal_xy(5, 3, 500, 7).unwrap();
        let b = anneal_xy(5, 3, 500, 7).unwrap();
        assert_eq!(a.xs, b.xs);
        assert_eq!(a.ys, b.ys);
    }
}
