//! XOR schedules for bitmatrix codes, plus the matrix-search optimizers of
//! the two XOR baselines the paper compares against.
//!
//! A *schedule* is the explicit list of packet-XOR operations that encodes a
//! stripe under a bitmatrix code. The schedule's length (and its repeated
//! source reads) is exactly what distinguishes the XOR baselines from ISA-L
//! in the paper: Zerasure/Cerasure minimize XOR count at the price of a
//! scattered, re-reading memory access pattern.

use crate::{EcError, GfMatrix};
use dialga_gf::bitmatrix::{BitMatrix, W};
use dialga_gf::Gf8;
use dialga_testkit::Rng;
use std::collections::HashMap;

/// Source operand of a XOR op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Src {
    /// Data packet, addressed by bit-column index (`block*8 + packet`).
    Data(usize),
    /// Already-finished parity packet, addressed by bit-row index.
    Parity(usize),
    /// Intermediate (common-subexpression) buffer.
    Temp(usize),
}

/// Destination operand of a XOR op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dst {
    /// Parity packet, addressed by bit-row index.
    Parity(usize),
    /// Intermediate buffer.
    Temp(usize),
}

/// One packet-granularity operation: `dst = src` (when `init`) or
/// `dst ^= src`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorOp {
    /// Where the result goes.
    pub dst: Dst,
    /// What is read.
    pub src: Src,
    /// `true` for the first write to `dst` (a copy, not an accumulate).
    pub init: bool,
}

/// An executable XOR schedule for a (k, m) bitmatrix code.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Data blocks.
    pub k: usize,
    /// Parity blocks.
    pub m: usize,
    /// Number of intermediate buffers the ops reference.
    pub n_temps: usize,
    /// Operations in execution order.
    pub ops: Vec<XorOp>,
}

impl Schedule {
    /// Naive schedule straight off a bitmatrix: each parity bit-row is the
    /// XOR of its set columns, no reuse. This is what plain Jerasure does.
    pub fn from_bitmatrix(bm: &BitMatrix, k: usize, m: usize) -> Self {
        assert_eq!(bm.rows(), m * W, "bitmatrix row count");
        assert_eq!(bm.cols(), k * W, "bitmatrix col count");
        let mut ops = Vec::new();
        for r in 0..m * W {
            let mut first = true;
            for c in bm.row_indices(r) {
                ops.push(XorOp {
                    dst: Dst::Parity(r),
                    src: Src::Data(c),
                    init: first,
                });
                first = false;
            }
            // A bitmatrix row can be empty only for a degenerate (non-MDS)
            // matrix; keep the parity packet defined anyway.
            if first {
                ops.push(XorOp {
                    dst: Dst::Parity(r),
                    src: Src::Data(0),
                    init: true,
                });
                ops.push(XorOp {
                    dst: Dst::Parity(r),
                    src: Src::Data(0),
                    init: false,
                });
            }
        }
        Schedule {
            k,
            m,
            n_temps: 0,
            ops,
        }
    }

    /// Smart schedule: greedy common-subexpression elimination. Repeatedly
    /// finds the pair of operands that co-occurs in the most outputs,
    /// hoists it into a temp, and rewrites. This is the scheduling family
    /// used by Zerasure ("scheduling optimization") and the SLP approach of
    /// Uezato [SC'21], in its classic pairwise greedy form.
    pub fn smart_from_bitmatrix(bm: &BitMatrix, k: usize, m: usize) -> Self {
        assert_eq!(bm.rows(), m * W);
        assert_eq!(bm.cols(), k * W);
        // Working form: each output row is a set of operands.
        let mut rows: Vec<Vec<Src>> = (0..m * W)
            .map(|r| bm.row_indices(r).into_iter().map(Src::Data).collect())
            .collect();
        let mut n_temps = 0usize;
        let mut temp_defs: Vec<(Src, Src)> = Vec::new();

        loop {
            // Count co-occurring operand pairs across rows.
            let mut pair_count: HashMap<(Src, Src), usize> = HashMap::new();
            for row in &rows {
                for i in 0..row.len() {
                    for j in (i + 1)..row.len() {
                        let key = if row[i] <= row[j] {
                            (row[i], row[j])
                        } else {
                            (row[j], row[i])
                        };
                        *pair_count.entry(key).or_insert(0) += 1;
                    }
                }
            }
            let best = pair_count
                .into_iter()
                .max_by_key(|&(p, c)| (c, std::cmp::Reverse(p)));
            let Some(((a, b), count)) = best else { break };
            if count < 2 {
                break;
            }
            // Hoist (a, b) into a new temp and rewrite the rows using it.
            let t = Src::Temp(n_temps);
            temp_defs.push((a, b));
            n_temps += 1;
            for row in &mut rows {
                let has_a = row.contains(&a);
                let has_b = row.contains(&b);
                if has_a && has_b {
                    row.retain(|&s| s != a && s != b);
                    row.push(t);
                }
            }
        }

        // Emit temps in definition order (later temps may reference earlier
        // ones via rewritten rows, but a temp's own definition is always in
        // terms of operands that existed when it was created).
        let mut ops = Vec::new();
        for (i, &(a, b)) in temp_defs.iter().enumerate() {
            ops.push(XorOp {
                dst: Dst::Temp(i),
                src: a,
                init: true,
            });
            ops.push(XorOp {
                dst: Dst::Temp(i),
                src: b,
                init: false,
            });
        }
        for (r, row) in rows.iter().enumerate() {
            let mut first = true;
            for &s in row {
                ops.push(XorOp {
                    dst: Dst::Parity(r),
                    src: s,
                    init: first,
                });
                first = false;
            }
            if first {
                // Degenerate empty row (see from_bitmatrix).
                ops.push(XorOp {
                    dst: Dst::Parity(r),
                    src: Src::Data(0),
                    init: true,
                });
                ops.push(XorOp {
                    dst: Dst::Parity(r),
                    src: Src::Data(0),
                    init: false,
                });
            }
        }
        Schedule { k, m, n_temps, ops }
    }

    /// Number of XOR/copy packet operations (the XOR baselines' compute
    /// cost).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of *data-packet* reads, counting repeats — the memory-traffic
    /// disadvantage of XOR codes on PM (§2.2: "requires repeatedly reading
    /// data blocks from different locations").
    pub fn data_reads(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op.src, Src::Data(_)))
            .count()
    }
}

/// Ones count of each GF(2^8) element's 8x8 companion bitmatrix —
/// the per-element XOR cost table both matrix searches optimize over.
#[allow(clippy::needless_range_loop)] // e is the element value, not just an index
fn element_ones_table() -> [u32; 256] {
    let mut t = [0u32; 256];
    for e in 0..256usize {
        let bm = BitMatrix::from_gf_matrix(&[vec![Gf8(e as u8)]]);
        t[e] = bm.ones() as u32;
    }
    t
}

fn cauchy_ones(xs: &[u8], ys: &[u8], ones: &[u32; 256]) -> u64 {
    let mut total = 0u64;
    for &x in xs {
        for &y in ys {
            let e = (Gf8(x) + Gf8(y)).inv().0;
            total += ones[e as usize] as u64;
        }
    }
    total
}

/// Result of a matrix search: the chosen Cauchy X/Y sets and the parity
/// matrix they induce.
#[derive(Debug, Clone)]
pub struct MatrixSearchResult {
    /// Chosen X elements (one per parity row).
    pub xs: Vec<u8>,
    /// Chosen Y elements (one per data column).
    pub ys: Vec<u8>,
    /// Resulting m x k parity matrix (row-normalized).
    pub parity: GfMatrix,
    /// Bitmatrix ones before normalization, for reporting.
    pub ones: u64,
}

/// Row-normalize a Cauchy parity matrix: scale each row so its first entry
/// is 1 (scaling a parity output by a nonzero constant preserves the MDS
/// property). This is Zerasure's "bitmatrix normalization".
pub fn normalize_rows(p: &GfMatrix) -> GfMatrix {
    let mut rows = p.to_rows();
    for row in &mut rows {
        if let Some(&first) = row.iter().find(|&&e| e != Gf8::ZERO) {
            let inv = first.inv();
            for e in row.iter_mut() {
                *e *= inv;
            }
        }
    }
    GfMatrix::from_rows(rows)
}

/// Zerasure-style matrix search: simulated annealing over the Cauchy X/Y
/// element choice, minimizing total companion-bitmatrix ones, followed by
/// row normalization. Deterministic for a given seed.
pub fn anneal_xy(
    k: usize,
    m: usize,
    iterations: usize,
    seed: u64,
) -> Result<MatrixSearchResult, EcError> {
    search_xy(k, m, SearchKind::Anneal { iterations }, seed)
}

/// Cerasure-style matrix search: greedy element-by-element selection of the
/// Y set (then X set) minimizing incremental ones.
pub fn greedy_xy(k: usize, m: usize) -> Result<MatrixSearchResult, EcError> {
    search_xy(k, m, SearchKind::Greedy, 0)
}

enum SearchKind {
    Anneal { iterations: usize },
    Greedy,
}

fn search_xy(
    k: usize,
    m: usize,
    kind: SearchKind,
    seed: u64,
) -> Result<MatrixSearchResult, EcError> {
    if k == 0 || m == 0 || k + m > 255 {
        return Err(EcError::InvalidParams {
            k,
            m,
            reason: "Cauchy X/Y sets need k+m <= 255 distinct elements",
        });
    }
    let ones = element_ones_table();

    let (xs, ys) = match kind {
        SearchKind::Greedy => {
            // Greedily grow Y, then X, from all 256 candidates.
            let mut ys: Vec<u8> = Vec::with_capacity(k);
            let mut xs: Vec<u8> = Vec::with_capacity(m);
            // Seed with the canonical sets' first elements to anchor search.
            let mut used = [false; 256];
            // Pick X first (small), pairing cost against a provisional Y
            // probe set keeps the greedy stable.
            for _ in 0..m {
                let mut best = None;
                for cand in 0u16..=255 {
                    let c = cand as u8;
                    if used[c as usize] {
                        continue;
                    }
                    // Cost of candidate x against currently chosen ys, or
                    // against y=0 probe when none chosen yet.
                    let probe: &[u8] = if ys.is_empty() { &[0] } else { ys.as_slice() };
                    if probe.contains(&c) {
                        continue;
                    }
                    let cost = cauchy_ones(&[c], probe, &ones);
                    if best.is_none_or(|(bc, _)| cost < bc) {
                        best = Some((cost, c));
                    }
                }
                let (_, c) = best.ok_or(EcError::SingularMatrix)?;
                used[c as usize] = true;
                xs.push(c);
            }
            for _ in 0..k {
                let mut best = None;
                for cand in 0u16..=255 {
                    let c = cand as u8;
                    if used[c as usize] || xs.contains(&c) {
                        continue;
                    }
                    let cost = cauchy_ones(&xs, &[c], &ones);
                    if best.is_none_or(|(bc, _)| cost < bc) {
                        best = Some((cost, c));
                    }
                }
                let (_, c) = best.ok_or(EcError::SingularMatrix)?;
                used[c as usize] = true;
                ys.push(c);
            }
            (xs, ys)
        }
        SearchKind::Anneal { iterations } => {
            let mut rng = Rng::new(seed);
            let mut xs: Vec<u8> = (0..m).map(|i| (i + k) as u8).collect();
            let mut ys: Vec<u8> = (0..k).map(|j| j as u8).collect();
            let mut cost = cauchy_ones(&xs, &ys, &ones);
            let mut best = (xs.clone(), ys.clone(), cost);
            let mut temp = cost as f64 * 0.05 + 1.0;
            for it in 0..iterations {
                // Propose: replace one element of X or Y with an unused one.
                let replace_x = rng.bool_with(m as f64 / (k + m) as f64);
                let mut nxs = xs.clone();
                let mut nys = ys.clone();
                let cand = loop {
                    let c: u8 = rng.u8();
                    if !nxs.contains(&c) && !nys.contains(&c) {
                        break c;
                    }
                };
                if replace_x {
                    let i = rng.range(0, m);
                    nxs[i] = cand;
                } else {
                    let j = rng.range(0, k);
                    nys[j] = cand;
                }
                let ncost = cauchy_ones(&nxs, &nys, &ones);
                let accept = ncost <= cost || {
                    let d = (ncost - cost) as f64;
                    rng.bool_with((-d / temp).exp().clamp(0.0, 1.0))
                };
                if accept {
                    xs = nxs;
                    ys = nys;
                    cost = ncost;
                    if cost < best.2 {
                        best = (xs.clone(), ys.clone(), cost);
                    }
                }
                // Geometric cooling.
                if it % 64 == 63 {
                    temp *= 0.95;
                }
            }
            (best.0, best.1)
        }
    };

    let raw = GfMatrix::cauchy_parity_xy(&xs, &ys);
    let ones_total = cauchy_ones(&xs, &ys, &ones);
    let parity = normalize_rows(&raw);
    Ok(MatrixSearchResult {
        xs,
        ys,
        parity,
        ones: ones_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialga_gf::bitmatrix::BitMatrix;

    fn bm_for(k: usize, m: usize) -> BitMatrix {
        let p = GfMatrix::cauchy_parity(k, m);
        BitMatrix::from_gf_matrix(&p.to_rows())
    }

    #[test]
    fn naive_schedule_op_count_matches_ones() {
        let bm = bm_for(4, 2);
        let s = Schedule::from_bitmatrix(&bm, 4, 2);
        assert_eq!(s.op_count(), bm.ones());
        assert_eq!(s.data_reads(), bm.ones());
        assert_eq!(s.n_temps, 0);
    }

    #[test]
    fn smart_schedule_is_never_worse() {
        for (k, m) in [(4, 2), (6, 3), (8, 4)] {
            let bm = bm_for(k, m);
            let naive = Schedule::from_bitmatrix(&bm, k, m);
            let smart = Schedule::smart_from_bitmatrix(&bm, k, m);
            assert!(
                smart.op_count() <= naive.op_count(),
                "k={k} m={m}: smart {} > naive {}",
                smart.op_count(),
                naive.op_count()
            );
        }
    }

    #[test]
    fn smart_schedule_reduces_ops_for_dense_matrix() {
        // Dense Cauchy bitmatrices have many shared pairs; CSE must fire.
        let bm = bm_for(8, 4);
        let naive = Schedule::from_bitmatrix(&bm, 8, 4);
        let smart = Schedule::smart_from_bitmatrix(&bm, 8, 4);
        assert!(smart.n_temps > 0, "no temps hoisted");
        assert!(smart.op_count() < naive.op_count());
    }

    #[test]
    fn anneal_improves_over_canonical() {
        let ones = element_ones_table();
        let k = 6;
        let m = 3;
        let base_xs: Vec<u8> = (0..m).map(|i| (i + k) as u8).collect();
        let base_ys: Vec<u8> = (0..k).map(|j| j as u8).collect();
        let base = cauchy_ones(&base_xs, &base_ys, &ones);
        let r = anneal_xy(k, m, 2000, 42).unwrap();
        assert!(r.ones <= base, "anneal {} > canonical {}", r.ones, base);
        // Sets stay disjoint and the matrix valid.
        for x in &r.xs {
            assert!(!r.ys.contains(x));
        }
    }

    #[test]
    fn greedy_produces_valid_disjoint_sets() {
        let r = greedy_xy(8, 4).unwrap();
        assert_eq!(r.xs.len(), 4);
        assert_eq!(r.ys.len(), 8);
        for x in &r.xs {
            assert!(!r.ys.contains(x));
        }
        // All distinct.
        let mut all: Vec<u8> = r.xs.iter().chain(r.ys.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn normalize_rows_sets_leading_one() {
        let p = GfMatrix::cauchy_parity(5, 3);
        let n = normalize_rows(&p);
        for r in 0..3 {
            assert_eq!(n[(r, 0)], Gf8::ONE);
        }
    }

    #[test]
    fn anneal_is_deterministic_per_seed() {
        let a = anneal_xy(5, 3, 500, 7).unwrap();
        let b = anneal_xy(5, 3, 500, 7).unwrap();
        assert_eq!(a.xs, b.xs);
        assert_eq!(a.ys, b.ys);
    }
}
