//! XOR/bitmatrix erasure coding (the Jerasure / Zerasure / Cerasure family).
//!
//! Blocks are split into [`W`](dialga_gf::bitmatrix::W) = 8 packets; every
//! GF(2^8) coefficient becomes an 8x8 binary block, and encoding executes a
//! [`Schedule`] of packet XORs. Compared with the table-driven RS path this
//! trades fewer "multiplications" for many more packet reads — the memory
//! behaviour the paper shows is a liability on PM.

use crate::schedule::{Dst, Src};
use crate::{CodeParams, EcError, GfMatrix, ReedSolomon, Schedule};
use dialga_gf::bitmatrix::{BitMatrix, W};
use dialga_gf::slice::xor_slice;

/// Which schedule/matrix optimization pipeline built this code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XorFlavor {
    /// Canonical Cauchy matrix, naive schedule (plain Jerasure).
    Plain,
    /// Annealed X/Y matrix search + normalization + smart schedule
    /// (Zerasure-like).
    Zerasure,
    /// Greedy X/Y matrix search + smart schedule (Cerasure-like).
    Cerasure,
    /// Externally supplied parity matrix (Cauchy-RS, RAID-6, LRC, ...) +
    /// smart schedule — the code-zoo constructor
    /// [`XorCode::from_parity_matrix`].
    Matrix,
}

/// Reusable scratch for schedule execution: temp packets plus the staging
/// packet the naive executor copies sources through. Keep one per thread
/// and repeated encodes allocate nothing.
#[derive(Debug, Default)]
pub struct XorScratch {
    temps: Vec<Vec<u8>>,
    packet: Vec<u8>,
}

impl XorScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Execute a schedule over packetized blocks: `sources` are the schedule's
/// `k` source blocks, `outputs` its `m` destination blocks, all of `len`
/// bytes (`len` must be a multiple of 8 so packets are equal-sized).
/// `scratch` is reused across calls — repeated executions allocate nothing
/// once the buffers have grown to size.
///
/// The schedule is validated first ([`Schedule::validate`]); a malformed
/// schedule is rejected instead of silently producing garbage (it would
/// otherwise read stale scratch bytes).
pub fn execute_schedule(
    schedule: &Schedule,
    sources: &[&[u8]],
    outputs: &mut [Vec<u8>],
    len: usize,
    scratch: &mut XorScratch,
) -> Result<(), EcError> {
    schedule.validate()?;
    if !len.is_multiple_of(W) {
        return Err(EcError::BlockLength {
            expected: len.next_multiple_of(W),
            got: len,
        });
    }
    if sources.len() != schedule.k {
        return Err(EcError::BlockCount {
            expected: schedule.k,
            got: sources.len(),
        });
    }
    if outputs.len() != schedule.m {
        return Err(EcError::BlockCount {
            expected: schedule.m,
            got: outputs.len(),
        });
    }
    for s in sources {
        if s.len() != len {
            return Err(EcError::BlockLength {
                expected: len,
                got: s.len(),
            });
        }
    }
    for o in outputs.iter() {
        if o.len() != len {
            return Err(EcError::BlockLength {
                expected: len,
                got: o.len(),
            });
        }
    }
    let psize = len / W;
    let XorScratch { temps, packet } = scratch;
    if temps.len() < schedule.n_temps {
        temps.resize_with(schedule.n_temps, Vec::new);
    }
    for t in &mut temps[..schedule.n_temps] {
        if t.len() < psize {
            t.resize(psize, 0);
        }
    }
    packet.resize(psize, 0);
    for op in &schedule.ops {
        // Stage the source packet (borrow-safety: source and dest can alias
        // only between parity packets; the staging copy keeps this simple
        // and matches the packet-movement cost anyway). The staging buffer
        // lives in `scratch`, so this allocates nothing per op.
        match op.src {
            Src::Data(c) => {
                let (b, p) = (c / W, c % W);
                packet.copy_from_slice(&sources[b][p * psize..(p + 1) * psize]);
            }
            Src::Parity(r) => {
                let (b, p) = (r / W, r % W);
                packet.copy_from_slice(&outputs[b][p * psize..(p + 1) * psize]);
            }
            Src::Temp(t) => packet.copy_from_slice(&temps[t][..psize]),
        }
        match op.dst {
            Dst::Parity(r) => {
                let (b, p) = (r / W, r % W);
                let dst = &mut outputs[b][p * psize..(p + 1) * psize];
                if op.init {
                    dst.copy_from_slice(packet);
                } else {
                    xor_slice(packet, dst);
                }
            }
            Dst::Temp(t) => {
                let dst = &mut temps[t][..psize];
                if op.init {
                    dst.copy_from_slice(packet);
                } else {
                    xor_slice(packet, dst);
                }
            }
        }
    }
    Ok(())
}

/// A bitmatrix XOR code with a pre-built encode schedule.
///
/// # Examples
///
/// ```
/// use dialga_ec::xor::{XorCode, XorFlavor};
///
/// let code = XorCode::new(4, 2, XorFlavor::Cerasure).unwrap();
/// let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; 64]).collect();
/// let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
/// let parity = code.encode_vec(&refs).unwrap();
///
/// let mut shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some)
///     .chain(parity.into_iter().map(Some)).collect();
/// shards[0] = None;
/// code.decode(&mut shards).unwrap();
/// assert_eq!(shards[0].as_deref(), Some(&data[0][..]));
/// ```
#[derive(Debug, Clone)]
pub struct XorCode {
    params: CodeParams,
    /// The m x k GF parity matrix this code realizes.
    parity_matrix: GfMatrix,
    /// Its bitmatrix expansion.
    bitmatrix: BitMatrix,
    /// The encode schedule.
    schedule: Schedule,
    flavor: XorFlavor,
}

impl XorCode {
    /// Build a code with the requested optimization flavor.
    ///
    /// `Zerasure` runs a seeded simulated-annealing matrix search (a few
    /// thousand proposals), `Cerasure` a greedy search; both then apply
    /// smart (common-subexpression) scheduling.
    pub fn new(k: usize, m: usize, flavor: XorFlavor) -> Result<Self, EcError> {
        let params = CodeParams::new(k, m)?;
        let parity_matrix = match flavor {
            XorFlavor::Plain | XorFlavor::Matrix => GfMatrix::cauchy_parity(k, m),
            XorFlavor::Zerasure => crate::schedule::anneal_xy(k, m, 4000, 0x5EED)?.parity,
            XorFlavor::Cerasure => crate::schedule::greedy_xy(k, m)?.parity,
        };
        let bitmatrix = BitMatrix::from_gf_matrix(&parity_matrix.to_rows());
        let schedule = match flavor {
            XorFlavor::Plain => Schedule::from_bitmatrix(&bitmatrix, k, m),
            _ => Schedule::smart_from_bitmatrix(&bitmatrix, k, m),
        };
        schedule.validate()?;
        Ok(XorCode {
            params,
            parity_matrix,
            bitmatrix,
            schedule,
            flavor,
        })
    }

    /// Build a code from an arbitrary `m x k` parity matrix — the code-zoo
    /// entry point (Cauchy-RS via [`ReedSolomon::bitmatrix_code`], RAID-6
    /// P+Q, LRC bitmatrix variants, ...). Applies smart (CSE) scheduling;
    /// callers wanting the fully optimized form run
    /// [`XorCode::optimized_schedule`].
    pub fn from_parity_matrix(parity_matrix: GfMatrix) -> Result<Self, EcError> {
        let (m, k) = (parity_matrix.rows(), parity_matrix.cols());
        let params = CodeParams::new(k, m)?;
        let bitmatrix = BitMatrix::from_gf_matrix(&parity_matrix.to_rows());
        let schedule = Schedule::smart_from_bitmatrix(&bitmatrix, k, m);
        schedule.validate()?;
        Ok(XorCode {
            params,
            parity_matrix,
            bitmatrix,
            schedule,
            flavor: XorFlavor::Matrix,
        })
    }

    /// The naive (per-row, no-reuse) schedule for this code's bitmatrix —
    /// the greedy baseline the optimizer is measured against.
    pub fn naive_schedule(&self) -> Schedule {
        Schedule::from_bitmatrix(&self.bitmatrix, self.params.k, self.params.m)
    }

    /// Run the [`crate::schedule::opt`] pass pipeline on this code's
    /// schedule and return the best (validated) variant. Computed on
    /// demand — construction stays cheap for callers that never execute.
    pub fn optimized_schedule(&self) -> Result<Schedule, EcError> {
        crate::schedule::opt::optimize(&self.schedule)
    }

    /// Code geometry.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// The optimization flavor.
    pub fn flavor(&self) -> XorFlavor {
        self.flavor
    }

    /// The encode schedule (consumed by the timing model).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The underlying GF parity matrix.
    pub fn parity_matrix(&self) -> &GfMatrix {
        &self.parity_matrix
    }

    /// The bitmatrix expansion.
    pub fn bitmatrix(&self) -> &BitMatrix {
        &self.bitmatrix
    }

    /// Encode the k data blocks into m freshly allocated parity blocks.
    ///
    /// Allocates a fresh [`XorScratch`] per call; hot paths should keep one
    /// and use [`XorCode::encode_vec_with`].
    pub fn encode_vec(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
        self.encode_vec_with(data, &mut XorScratch::new())
    }

    /// Encode with caller-provided scratch: repeated encodes reuse the temp
    /// arena instead of allocating per stripe.
    pub fn encode_vec_with(
        &self,
        data: &[&[u8]],
        scratch: &mut XorScratch,
    ) -> Result<Vec<Vec<u8>>, EcError> {
        if data.len() != self.params.k {
            return Err(EcError::BlockCount {
                expected: self.params.k,
                got: data.len(),
            });
        }
        let len = data[0].len();
        let mut parity = vec![vec![0u8; len]; self.params.m];
        execute_schedule(&self.schedule, data, &mut parity, len, scratch)?;
        Ok(parity)
    }

    /// Build the decode schedule for a survivor set. As the paper's §5.4
    /// explains, the decode bitmatrix is *derived* (inverse of the survivor
    /// generator rows) and cannot be optimized like the encode matrix — it
    /// is dense, so the schedule is long. We still apply smart scheduling,
    /// mirroring what the libraries do, but the density dominates.
    pub fn decode_schedule(
        &self,
        survivors: &[usize],
        lost: &[usize],
    ) -> Result<Schedule, EcError> {
        let rs = ReedSolomon::from_parity_matrix(self.parity_matrix.clone())?;
        let dec = rs.decode_matrix(survivors)?;
        // Rows of `dec` reconstruct data blocks from survivors; select the
        // lost data rows.
        let rows: Vec<Vec<dialga_gf::Gf8>> = lost
            .iter()
            .map(|&l| {
                assert!(l < self.params.k, "decode_schedule repairs data blocks");
                dec.row(l).to_vec()
            })
            .collect();
        let sub = GfMatrix::from_rows(rows);
        let bm = BitMatrix::from_gf_matrix(&sub.to_rows());
        Ok(Schedule::smart_from_bitmatrix(
            &bm,
            self.params.k,
            lost.len(),
        ))
    }

    /// Reconstruct missing blocks in place (same contract as
    /// [`ReedSolomon::decode`]).
    pub fn decode(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        self.decode_with(shards, &mut XorScratch::new())
    }

    /// [`XorCode::decode`] with caller-provided scratch.
    pub fn decode_with(
        &self,
        shards: &mut [Option<Vec<u8>>],
        scratch: &mut XorScratch,
    ) -> Result<(), EcError> {
        let (k, m) = (self.params.k, self.params.m);
        if shards.len() != k + m {
            return Err(EcError::BlockCount {
                expected: k + m,
                got: shards.len(),
            });
        }
        let lost: Vec<usize> = (0..k + m).filter(|&i| shards[i].is_none()).collect();
        if lost.is_empty() {
            return Ok(());
        }
        if lost.len() > m {
            return Err(EcError::TooManyErasures {
                lost: lost.len(),
                tolerance: m,
            });
        }
        let survivors: Vec<usize> = (0..k + m).filter(|&i| shards[i].is_some()).collect();
        let survivors = &survivors[..k];
        let len = crate::present_shard(shards, survivors[0], "XOR survivor shard absent")?.len();

        let lost_data: Vec<usize> = lost.iter().copied().filter(|&i| i < k).collect();
        if !lost_data.is_empty() {
            let schedule = self.decode_schedule(survivors, &lost_data)?;
            let srcs: Vec<&[u8]> = survivors
                .iter()
                .map(|&s| {
                    crate::present_shard(shards, s, "XOR survivor shard absent")
                        .map(|v| v.as_slice())
                })
                .collect::<Result<_, _>>()?;
            let mut outs = vec![vec![0u8; len]; lost_data.len()];
            execute_schedule(&schedule, &srcs, &mut outs, len, scratch)?;
            for (&ld, out) in lost_data.iter().zip(outs) {
                shards[ld] = Some(out);
            }
        }
        let lost_parity: Vec<usize> = lost.iter().copied().filter(|&i| i >= k).collect();
        if !lost_parity.is_empty() {
            let data_refs: Vec<&[u8]> = (0..k)
                .map(|i| {
                    crate::present_shard(shards, i, "XOR data shard absent after rebuild")
                        .map(|v| v.as_slice())
                })
                .collect::<Result<_, _>>()?;
            let parity = self.encode_vec(&data_refs)?;
            for &lp in &lost_parity {
                shards[lp] = Some(parity[lp - k].clone());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 7 + j * 13 + 3) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    /// Extract the GF(2^8) symbol at bit-sliced coordinate (`byte`, `bit`)
    /// from a packetized block: bit `c` of the symbol is bit `bit` of byte
    /// `byte` inside packet `c`.
    fn symbol_at(block: &[u8], psize: usize, byte: usize, bit: usize) -> u8 {
        let mut s = 0u8;
        for c in 0..dialga_gf::bitmatrix::W {
            let b = (block[c * psize + byte] >> bit) & 1;
            s |= b << c;
        }
        s
    }

    /// Bitmatrix XOR encoding uses a bit-sliced symbol layout; verify that
    /// under that layout the parity symbols are exactly the GF linear
    /// combination given by the parity matrix — i.e. the XOR path computes
    /// the same *code* as table-driven RS (the two implementations of
    /// Fig. 2), just in transposed layout.
    fn assert_bitmatrix_semantics(flavor: XorFlavor, k: usize, m: usize, len: usize) {
        let xc = XorCode::new(k, m, flavor).unwrap();
        let pmat = xc.parity_matrix().clone();
        let data = make_data(k, len);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = xc.encode_vec(&refs).unwrap();
        let psize = len / dialga_gf::bitmatrix::W;
        for byte in (0..psize).step_by((psize / 4).max(1)) {
            for bit in 0..8 {
                for i in 0..m {
                    let mut expect = dialga_gf::Gf8::ZERO;
                    for j in 0..k {
                        let s = symbol_at(&data[j], psize, byte, bit);
                        expect += pmat[(i, j)] * dialga_gf::Gf8(s);
                    }
                    let got = symbol_at(&parity[i], psize, byte, bit);
                    assert_eq!(
                        got, expect.0,
                        "flavor {flavor:?} k={k} m={m} i={i} byte={byte} bit={bit}"
                    );
                }
            }
        }
    }

    #[test]
    fn plain_implements_gf_code() {
        assert_bitmatrix_semantics(XorFlavor::Plain, 4, 2, 64);
        assert_bitmatrix_semantics(XorFlavor::Plain, 6, 3, 128);
    }

    #[test]
    fn zerasure_implements_gf_code() {
        assert_bitmatrix_semantics(XorFlavor::Zerasure, 4, 2, 64);
        assert_bitmatrix_semantics(XorFlavor::Zerasure, 6, 4, 64);
    }

    #[test]
    fn cerasure_implements_gf_code() {
        assert_bitmatrix_semantics(XorFlavor::Cerasure, 4, 2, 64);
        assert_bitmatrix_semantics(XorFlavor::Cerasure, 8, 4, 64);
    }

    #[test]
    fn decode_repairs_data() {
        let xc = XorCode::new(6, 3, XorFlavor::Cerasure).unwrap();
        let data = make_data(6, 96);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = xc.encode_vec(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        shards[1] = None;
        shards[4] = None;
        shards[7] = None;
        xc.decode(&mut shards).unwrap();
        assert_eq!(shards[1].as_ref().unwrap(), &data[1]);
        assert_eq!(shards[4].as_ref().unwrap(), &data[4]);
        assert_eq!(shards[7].as_ref().unwrap(), &parity[1]);
    }

    #[test]
    fn optimized_flavors_have_fewer_ops() {
        let k = 8;
        let m = 4;
        let plain = XorCode::new(k, m, XorFlavor::Plain).unwrap();
        let zer = XorCode::new(k, m, XorFlavor::Zerasure).unwrap();
        let cer = XorCode::new(k, m, XorFlavor::Cerasure).unwrap();
        assert!(zer.schedule().op_count() < plain.schedule().op_count());
        assert!(cer.schedule().op_count() < plain.schedule().op_count());
    }

    #[test]
    fn decode_schedule_denser_than_encode() {
        // The §5.4 effect: decode bitmatrices are dense, schedules long.
        let xc = XorCode::new(6, 3, XorFlavor::Cerasure).unwrap();
        let enc_ops_per_out = xc.schedule().op_count() as f64 / 3.0;
        let dec = xc.decode_schedule(&[2, 3, 4, 5, 6, 7], &[0, 1]).unwrap();
        let dec_ops_per_out = dec.op_count() as f64 / 2.0;
        assert!(
            dec_ops_per_out > enc_ops_per_out,
            "decode {dec_ops_per_out} <= encode {enc_ops_per_out}"
        );
    }

    #[test]
    fn unaligned_length_rejected() {
        let xc = XorCode::new(3, 2, XorFlavor::Plain).unwrap();
        let data = make_data(3, 13); // not a multiple of 8
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert!(matches!(
            xc.encode_vec(&refs),
            Err(EcError::BlockLength { .. })
        ));
    }
}
