//! Table-driven Reed–Solomon coding (the ISA-L style of the paper).
//!
//! Encoding reads each data block exactly once and accumulates into the m
//! parity blocks with `mul_add_slice` — the memory access pattern the
//! paper's §3 analysis is built on ("ISA-L only needs to load each data
//! block once during encoding"). Decoding selects k surviving blocks,
//! inverts the corresponding generator rows, and runs the same kernel.

use crate::{CodeParams, EcError, GfMatrix};
use dialga_gf::simd::mul_add_slice_simd;
use dialga_gf::slice::mul_add_slice;
use dialga_gf::tables::NibbleTables;
use dialga_gf::Gf8;

/// Which parity-matrix construction to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatrixKind {
    /// Cauchy construction — MDS for every (k, m) with k+m <= 255 (default).
    #[default]
    Cauchy,
    /// ISA-L-style Vandermonde-derived systematic construction.
    Vandermonde,
}

/// A systematic Reed–Solomon code over GF(2^8).
///
/// # Examples
///
/// ```
/// use dialga_ec::ReedSolomon;
///
/// let rs = ReedSolomon::new(4, 2).unwrap(); // RS(6,4)
/// let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 64]).collect();
/// let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
/// let parity = rs.encode_vec(&refs).unwrap();
///
/// // Lose two blocks, repair them.
/// let mut shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some)
///     .chain(parity.into_iter().map(Some)).collect();
/// shards[1] = None;
/// shards[4] = None;
/// rs.decode(&mut shards).unwrap();
/// assert_eq!(shards[1].as_deref(), Some(&data[1][..]));
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    params: CodeParams,
    /// m x k parity coefficients.
    parity: GfMatrix,
    /// Precomputed split-nibble tables, m x k (ISA-L's `ec_init_tables`);
    /// the encode hot path dispatches them to the fastest SIMD kernel.
    tables: Vec<NibbleTables>,
}

impl ReedSolomon {
    /// Build RS(k+m, k) with the default (Cauchy) matrix.
    pub fn new(k: usize, m: usize) -> Result<Self, EcError> {
        Self::with_matrix(k, m, MatrixKind::Cauchy)
    }

    /// Build RS(k+m, k) with an explicit matrix construction.
    pub fn with_matrix(k: usize, m: usize, kind: MatrixKind) -> Result<Self, EcError> {
        let params = CodeParams::new(k, m)?;
        let _ = params;
        let parity = match kind {
            MatrixKind::Cauchy => GfMatrix::cauchy_parity(k, m),
            MatrixKind::Vandermonde => GfMatrix::vandermonde_parity(k, m)?,
        };
        Self::from_parity_matrix(parity)
    }

    /// Build from a caller-supplied m x k parity matrix (used by the
    /// XOR-baseline searches, which choose Cauchy X/Y sets themselves).
    pub fn from_parity_matrix(parity: GfMatrix) -> Result<Self, EcError> {
        let params = CodeParams::new(parity.cols(), parity.rows())?;
        let mut tables = Vec::with_capacity(params.m * params.k);
        for i in 0..params.m {
            for j in 0..params.k {
                tables.push(NibbleTables::new(parity[(i, j)].0));
            }
        }
        Ok(ReedSolomon {
            params,
            parity,
            tables,
        })
    }

    /// Code geometry.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// The m x k parity coefficient matrix.
    pub fn parity_matrix(&self) -> &GfMatrix {
        &self.parity
    }

    /// Number of GF multiply-accumulate slice passes an encode performs
    /// (k * m — the compute-cost input for the timing model).
    pub fn encode_mul_ops(&self) -> usize {
        self.params.k * self.params.m
    }

    /// The same code as an XOR/bitmatrix schedule (Cauchy-RS bitmatrix
    /// construction): expand this RS code's parity matrix into its binary
    /// companion form and smart-schedule it. Output is bit-identical to the
    /// table-driven path modulo the bit-sliced packet layout, which lets
    /// the schedule optimizer compete head-to-head with the fused kernels
    /// on the exact same code.
    pub fn bitmatrix_code(&self) -> Result<crate::XorCode, EcError> {
        crate::XorCode::from_parity_matrix(self.parity.clone())
    }

    fn check_blocks(&self, count_expected: usize, blocks: &[&[u8]]) -> Result<usize, EcError> {
        if blocks.len() != count_expected {
            return Err(EcError::BlockCount {
                expected: count_expected,
                got: blocks.len(),
            });
        }
        let len = blocks.first().map_or(0, |b| b.len());
        for b in blocks {
            if b.len() != len {
                return Err(EcError::BlockLength {
                    expected: len,
                    got: b.len(),
                });
            }
        }
        Ok(len)
    }

    /// Encode: compute all m parity blocks from the k data blocks.
    ///
    /// `parity` buffers are overwritten and must all match the data block
    /// length.
    pub fn encode(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<(), EcError> {
        let len = self.check_blocks(self.params.k, data)?;
        if parity.len() != self.params.m {
            return Err(EcError::BlockCount {
                expected: self.params.m,
                got: parity.len(),
            });
        }
        for p in parity.iter() {
            if p.len() != len {
                return Err(EcError::BlockLength {
                    expected: len,
                    got: p.len(),
                });
            }
        }
        for (i, p) in parity.iter_mut().enumerate() {
            p.fill(0);
            for (j, d) in data.iter().enumerate() {
                // Precomputed tables through the SIMD dispatcher — the
                // ec_init_tables + vect_mad structure of ISA-L.
                mul_add_slice_simd(&self.tables[i * self.params.k + j], d, p);
            }
        }
        Ok(())
    }

    /// Convenience encode returning freshly allocated parity blocks.
    pub fn encode_vec(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
        let len = self.check_blocks(self.params.k, data)?;
        let mut parity = vec![vec![0u8; len]; self.params.m];
        let mut refs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
        self.encode(data, &mut refs)?;
        Ok(parity)
    }

    /// Build the k x k decode matrix for a set of surviving block indices
    /// (0..k are data blocks, k..k+m parity). Exposed for the timing model
    /// and for the XOR baseline (which expands it to a dense bitmatrix).
    pub fn decode_matrix(&self, survivors: &[usize]) -> Result<GfMatrix, EcError> {
        if survivors.len() != self.params.k {
            return Err(EcError::BlockCount {
                expected: self.params.k,
                got: survivors.len(),
            });
        }
        let mut rows = Vec::with_capacity(self.params.k);
        for &s in survivors {
            if s < self.params.k {
                let mut row = vec![Gf8::ZERO; self.params.k];
                row[s] = Gf8::ONE;
                rows.push(row);
            } else {
                rows.push(self.parity.row(s - self.params.k).to_vec());
            }
        }
        GfMatrix::from_rows(rows).inverse()
    }

    /// Reconstruct all missing blocks in place.
    ///
    /// `shards` must have k+m entries; `None` marks an erasure. On success
    /// every entry is `Some` and data entries contain the original bytes.
    #[allow(clippy::needless_range_loop)] // shards are addressed by block id
    pub fn decode(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        let (k, m) = (self.params.k, self.params.m);
        if shards.len() != k + m {
            return Err(EcError::BlockCount {
                expected: k + m,
                got: shards.len(),
            });
        }
        let lost: Vec<usize> = (0..k + m).filter(|&i| shards[i].is_none()).collect();
        if lost.is_empty() {
            return Ok(());
        }
        if lost.len() > m {
            return Err(EcError::TooManyErasures {
                lost: lost.len(),
                tolerance: m,
            });
        }
        let survivors: Vec<usize> = (0..k + m).filter(|&i| shards[i].is_some()).collect();
        let survivors = &survivors[..k];
        let len = crate::present_shard(shards, survivors[0], "RS survivor shard absent")?.len();
        for &s in survivors {
            let l = crate::present_shard(shards, s, "RS survivor shard absent")?.len();
            if l != len {
                return Err(EcError::BlockLength {
                    expected: len,
                    got: l,
                });
            }
        }
        let dec = self.decode_matrix(survivors)?;

        // Reconstruct lost *data* blocks first.
        let lost_data: Vec<usize> = lost.iter().copied().filter(|&i| i < k).collect();
        for &ld in &lost_data {
            let mut out = vec![0u8; len];
            for (col, &s) in survivors.iter().enumerate() {
                let src = crate::present_shard(shards, s, "RS survivor shard absent")?;
                mul_add_slice(dec[(ld, col)].0, src, &mut out);
            }
            shards[ld] = Some(out);
        }
        // Then re-encode any lost parity from the (now complete) data.
        let lost_parity: Vec<usize> = lost.iter().copied().filter(|&i| i >= k).collect();
        for &lp in &lost_parity {
            let row = lp - k;
            let mut out = vec![0u8; len];
            for j in 0..k {
                let src = crate::present_shard(shards, j, "RS data shard absent after rebuild")?;
                mul_add_slice(self.parity[(row, j)].0, src, &mut out);
            }
            shards[lp] = Some(out);
        }
        Ok(())
    }

    /// Incremental parity update: when data block `idx` changes from `old`
    /// to `new`, fold the delta into every parity block without touching
    /// the other k-1 data blocks. (The update path studied by the CodePM /
    /// TVARAK line of work referenced in §7.)
    pub fn update_parity(
        &self,
        idx: usize,
        old: &[u8],
        new: &[u8],
        parity: &mut [&mut [u8]],
    ) -> Result<(), EcError> {
        if idx >= self.params.k {
            return Err(EcError::BlockCount {
                expected: self.params.k,
                got: idx,
            });
        }
        if old.len() != new.len() {
            return Err(EcError::BlockLength {
                expected: old.len(),
                got: new.len(),
            });
        }
        if parity.len() != self.params.m {
            return Err(EcError::BlockCount {
                expected: self.params.m,
                got: parity.len(),
            });
        }
        // delta = old ^ new; parity_i ^= c_i * delta
        let mut delta = old.to_vec();
        dialga_gf::slice::xor_slice(new, &mut delta);
        for (i, p) in parity.iter_mut().enumerate() {
            if p.len() != old.len() {
                return Err(EcError::BlockLength {
                    expected: old.len(),
                    got: p.len(),
                });
            }
            mul_add_slice(self.parity[(i, idx)].0, &delta, p);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 131 + j * 17 + 5) % 251) as u8)
                    .collect()
            })
            .collect()
    }

    fn roundtrip(k: usize, m: usize, len: usize, erase: &[usize]) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let data = make_data(k, len);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode_vec(&refs).unwrap();

        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        for &e in erase {
            shards[e] = None;
        }
        rs.decode(&mut shards).unwrap();
        for (i, d) in data.iter().enumerate() {
            assert_eq!(shards[i].as_ref().unwrap(), d, "data block {i}");
        }
        for (i, p) in parity.iter().enumerate() {
            assert_eq!(shards[k + i].as_ref().unwrap(), p, "parity block {i}");
        }
    }

    #[test]
    fn encode_decode_no_erasure() {
        roundtrip(4, 2, 64, &[]);
    }

    #[test]
    fn repair_single_data_block() {
        roundtrip(4, 2, 64, &[1]);
    }

    #[test]
    fn repair_max_erasures() {
        roundtrip(6, 3, 128, &[0, 3, 7]); // two data + one parity
        roundtrip(6, 3, 128, &[6, 7, 8]); // all parity
        roundtrip(6, 3, 128, &[0, 1, 2]); // all data
    }

    #[test]
    fn paper_geometries() {
        roundtrip(12, 8, 96, &[0, 5, 13]);
        roundtrip(28, 24, 32, &[27, 30, 51]);
        roundtrip(48, 4, 32, &[10, 20, 30, 40]);
    }

    #[test]
    fn too_many_erasures_rejected() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = make_data(4, 16);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode_vec(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .into_iter()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert!(matches!(
            rs.decode(&mut shards),
            Err(EcError::TooManyErasures {
                lost: 3,
                tolerance: 2
            })
        ));
    }

    #[test]
    fn vandermonde_m2_roundtrip() {
        let rs = ReedSolomon::with_matrix(8, 2, MatrixKind::Vandermonde).unwrap();
        let data = make_data(8, 64);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode_vec(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        shards[2] = None;
        shards[9] = None;
        rs.decode(&mut shards).unwrap();
        assert_eq!(shards[2].as_ref().unwrap(), &data[2]);
    }

    #[test]
    fn update_parity_matches_reencode() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let mut data = make_data(5, 64);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut parity = rs.encode_vec(&refs).unwrap();

        let old = data[2].clone();
        let new: Vec<u8> = old.iter().map(|b| b.wrapping_add(77)).collect();
        {
            let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
            rs.update_parity(2, &old, &new, &mut prefs).unwrap();
        }
        data[2] = new;
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let expect = rs.encode_vec(&refs).unwrap();
        assert_eq!(parity, expect);
    }

    #[test]
    fn zero_length_blocks_ok() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data: Vec<Vec<u8>> = vec![vec![]; 3];
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode_vec(&refs).unwrap();
        assert!(parity.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let a = vec![0u8; 8];
        let b = vec![0u8; 9];
        let refs: Vec<&[u8]> = vec![&a, &b];
        assert!(matches!(
            rs.encode_vec(&refs),
            Err(EcError::BlockLength { .. })
        ));
    }

    #[test]
    fn invalid_geometry_rejected() {
        assert!(ReedSolomon::new(0, 2).is_err());
        assert!(ReedSolomon::new(2, 0).is_err());
        assert!(ReedSolomon::new(200, 60).is_err());
    }
}
