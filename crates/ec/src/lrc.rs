//! Locally Repairable Codes, Azure-style LRC(k, m, l) (§4.1 "Other Coding
//! Tasks", Fig. 16).
//!
//! The k data blocks are split into `l` equal groups; each group gets one
//! local XOR parity, and the whole stripe gets `m` global RS parities.
//! Single failures inside a group repair by reading only `k/l` blocks;
//! bigger failures fall back to global decoding. Encoding still reads all k
//! data blocks (the paper's point: the load bottleneck is the same as RS),
//! but stores `m + l` parity blocks.

use crate::{CodeParams, EcError, ReedSolomon};
use dialga_gf::slice::xor_slice;

/// The read set for repairing one lost data block from its local group:
/// which peers and which parity to fetch. Built by
/// [`Lrc::local_repair_plan`]; the persistent pool and the repair-path
/// bench schedule their reads from this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalRepairPlan {
    /// The lost block's group.
    pub group: usize,
    /// Surviving peer data-block indices to read (`k/l − 1` of them).
    pub peers: Vec<usize>,
    /// Index of the group's local parity within the encoded parity array
    /// (after the `m` global parities — i.e. `m + group`).
    pub parity_index: usize,
}

/// An LRC(k, m, l) code: `l` local XOR parities over equal groups plus `m`
/// global Reed–Solomon parities.
///
/// # Examples
///
/// ```
/// use dialga_ec::Lrc;
///
/// let lrc = Lrc::new(6, 2, 2).unwrap(); // two groups of 3
/// let data: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 32]).collect();
/// let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
/// let parity = lrc.encode_vec(&refs).unwrap();
///
/// // Single failure in group 0: local repair reads only 2 peers + 1 parity.
/// let peers: Vec<&[u8]> = vec![refs[0], refs[2]];
/// let repaired = lrc.repair_local(1, &peers, &parity[2]).unwrap();
/// assert_eq!(repaired, data[1]);
/// ```
#[derive(Debug, Clone)]
pub struct Lrc {
    global: ReedSolomon,
    l: usize,
}

impl Lrc {
    /// Build LRC(k, m, l). `l` must divide `k` evenly.
    pub fn new(k: usize, m: usize, l: usize) -> Result<Self, EcError> {
        if l == 0 || !k.is_multiple_of(l) {
            return Err(EcError::InvalidGroups { l, k });
        }
        Ok(Lrc {
            global: ReedSolomon::new(k, m)?,
            l,
        })
    }

    /// Global-code geometry (k data, m global parities).
    pub fn params(&self) -> CodeParams {
        self.global.params()
    }

    /// Number of local groups.
    pub fn groups(&self) -> usize {
        self.l
    }

    /// Blocks per local group.
    pub fn group_size(&self) -> usize {
        self.global.params().k / self.l
    }

    /// Total parity blocks produced per stripe (m global + l local).
    pub fn parity_count(&self) -> usize {
        self.global.params().m + self.l
    }

    /// The inner global RS code.
    pub fn global_code(&self) -> &ReedSolomon {
        &self.global
    }

    /// The full `(m + l) x k` parity matrix this LRC realizes: `m` global
    /// RS rows followed by `l` local rows with ones on each group's
    /// columns. This is the Azure-style *bitmatrix* view of the code —
    /// [`Lrc::bitmatrix_code`] turns it into one XOR schedule producing
    /// global and local parities together.
    pub fn combined_parity_matrix(&self) -> crate::GfMatrix {
        let k = self.global.params().k;
        let m = self.global.params().m;
        let gs = self.group_size();
        let mut rows = self.global.parity_matrix().to_rows();
        for g in 0..self.l {
            let mut row = vec![dialga_gf::Gf8::ZERO; k];
            for cell in &mut row[g * gs..(g + 1) * gs] {
                *cell = dialga_gf::Gf8::ONE;
            }
            rows.push(row);
        }
        debug_assert_eq!(rows.len(), m + self.l);
        crate::GfMatrix::from_rows(rows)
    }

    /// The whole LRC encode (global + local parities) as a single XOR
    /// schedule over the combined parity matrix. Local rows are sparse
    /// (pure XOR), global rows dense — exactly the mixed-density shape the
    /// schedule optimizer's CSE and reordering passes are built for. Note
    /// the resulting code is *not* MDS over `m + l` parities, so decode via
    /// the XOR code's MDS machinery does not apply; use [`Lrc::decode`].
    pub fn bitmatrix_code(&self) -> Result<crate::XorCode, EcError> {
        crate::XorCode::from_parity_matrix(self.combined_parity_matrix())
    }

    /// Encode: returns `m` global parities followed by `l` local parities.
    pub fn encode_vec(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
        let k = self.global.params().k;
        if data.len() != k {
            return Err(EcError::BlockCount {
                expected: k,
                got: data.len(),
            });
        }
        let mut out = self.global.encode_vec(data)?;
        let len = data[0].len();
        let gs = self.group_size();
        for g in 0..self.l {
            let mut local = vec![0u8; len];
            for d in &data[g * gs..(g + 1) * gs] {
                xor_slice(d, &mut local);
            }
            out.push(local);
        }
        Ok(out)
    }

    /// Plan a single-block local repair: the peers and parity to read for
    /// rebuilding data block `lost` from its group alone.
    pub fn local_repair_plan(&self, lost: usize) -> Result<LocalRepairPlan, EcError> {
        let k = self.global.params().k;
        if lost >= k {
            return Err(EcError::BlockCount {
                expected: k,
                got: lost,
            });
        }
        let group = self.group_of(lost);
        let gs = self.group_size();
        Ok(LocalRepairPlan {
            group,
            peers: (group * gs..(group + 1) * gs)
                .filter(|&i| i != lost)
                .collect(),
            parity_index: self.global.params().m + group,
        })
    }

    /// Repair a single lost *data* block using only its local group
    /// (reads `k/l - 1` data blocks + 1 local parity).
    pub fn repair_local(
        &self,
        lost: usize,
        group_data: &[&[u8]],
        local_parity: &[u8],
    ) -> Result<Vec<u8>, EcError> {
        let mut out = vec![0u8; local_parity.len()];
        self.repair_local_into(lost, group_data, local_parity, &mut out)?;
        Ok(out)
    }

    /// In-place variant of [`Self::repair_local`]: writes the rebuilt
    /// block into `out` (which must match the parity length) instead of
    /// allocating.
    pub fn repair_local_into(
        &self,
        lost: usize,
        group_data: &[&[u8]],
        local_parity: &[u8],
        out: &mut [u8],
    ) -> Result<(), EcError> {
        let gs = self.group_size();
        if lost >= self.global.params().k {
            return Err(EcError::BlockCount {
                expected: self.global.params().k,
                got: lost,
            });
        }
        if group_data.len() != gs - 1 {
            return Err(EcError::BlockCount {
                expected: gs - 1,
                got: group_data.len(),
            });
        }
        if out.len() != local_parity.len() {
            return Err(EcError::BlockLength {
                expected: local_parity.len(),
                got: out.len(),
            });
        }
        for d in group_data {
            if d.len() != local_parity.len() {
                return Err(EcError::BlockLength {
                    expected: local_parity.len(),
                    got: d.len(),
                });
            }
        }
        out.copy_from_slice(local_parity);
        for d in group_data {
            xor_slice(d, out);
        }
        Ok(())
    }

    /// Group index of a data block.
    pub fn group_of(&self, block: usize) -> usize {
        block / self.group_size()
    }

    /// Full-stripe decode. `shards` holds k data, then m global parities,
    /// then l local parities (`k + m + l` entries). Uses local repair when
    /// a group has exactly one loss and its local parity survives,
    /// otherwise global RS decode; finally recomputes lost parities.
    #[allow(clippy::needless_range_loop)] // shards are addressed by block id
    pub fn decode(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        let (k, m) = (self.global.params().k, self.global.params().m);
        let expected = k + m + self.l;
        if shards.len() != expected {
            return Err(EcError::BlockCount {
                expected,
                got: shards.len(),
            });
        }
        let gs = self.group_size();

        // Pass 1: local repairs.
        for g in 0..self.l {
            let lp_idx = k + m + g;
            if shards[lp_idx].is_none() {
                continue;
            }
            let lost_in_group: Vec<usize> = (g * gs..(g + 1) * gs)
                .filter(|&i| shards[i].is_none())
                .collect();
            if lost_in_group.len() == 1 {
                let lost = lost_in_group[0];
                let mut out =
                    crate::present_shard(shards, lp_idx, "LRC local parity absent")?.clone();
                for i in g * gs..(g + 1) * gs {
                    if i != lost {
                        let s = crate::present_shard(shards, i, "LRC group survivor absent")?;
                        xor_slice(s, &mut out);
                    }
                }
                shards[lost] = Some(out);
            }
        }

        // Pass 2: global decode for whatever data/global-parity is missing.
        {
            let mut global_shards: Vec<Option<Vec<u8>>> = shards[..k + m].to_vec();
            let still_lost = global_shards.iter().filter(|s| s.is_none()).count();
            if still_lost > 0 {
                self.global.decode(&mut global_shards)?;
                shards[..k + m].clone_from_slice(&global_shards);
            }
        }

        // Pass 3: recompute missing local parities from repaired data.
        for g in 0..self.l {
            let lp_idx = k + m + g;
            if shards[lp_idx].is_some() {
                continue;
            }
            let len = crate::present_shard(shards, 0, "LRC data shard absent after decode")?.len();
            let mut local = vec![0u8; len];
            for i in g * gs..(g + 1) * gs {
                let s = crate::present_shard(shards, i, "LRC data shard absent after decode")?;
                xor_slice(s, &mut local);
            }
            shards[lp_idx] = Some(local);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 53 + j * 29 + 7) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn encode_all(lrc: &Lrc, data: &[Vec<u8>]) -> Vec<Option<Vec<u8>>> {
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = lrc.encode_vec(&refs).unwrap();
        data.iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect()
    }

    #[test]
    fn geometry() {
        let lrc = Lrc::new(12, 4, 2).unwrap();
        assert_eq!(lrc.group_size(), 6);
        assert_eq!(lrc.parity_count(), 6);
        assert_eq!(lrc.group_of(0), 0);
        assert_eq!(lrc.group_of(6), 1);
    }

    #[test]
    fn invalid_groups_rejected() {
        assert!(Lrc::new(12, 4, 5).is_err()); // 5 does not divide 12
        assert!(Lrc::new(12, 4, 0).is_err());
    }

    #[test]
    fn local_repair_single_failure() {
        let lrc = Lrc::new(12, 4, 2).unwrap();
        let data = make_data(12, 64);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = lrc.encode_vec(&refs).unwrap();
        // Lose block 3 (group 0); repair from the 5 peers + local parity 0.
        let peers: Vec<&[u8]> = (0..6).filter(|&i| i != 3).map(|i| refs[i]).collect();
        let repaired = lrc.repair_local(3, &peers, &parity[4]).unwrap();
        assert_eq!(repaired, data[3]);
    }

    #[test]
    fn local_repair_plan_names_the_read_set() {
        let lrc = Lrc::new(12, 4, 2).unwrap();
        let plan = lrc.local_repair_plan(8).unwrap();
        assert_eq!(plan.group, 1);
        assert_eq!(plan.peers, vec![6, 7, 9, 10, 11]);
        assert_eq!(plan.parity_index, 5); // m + group
        assert!(lrc.local_repair_plan(12).is_err());

        // The planned read set actually repairs the block.
        let data = make_data(12, 96);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = lrc.encode_vec(&refs).unwrap();
        let peers: Vec<&[u8]> = plan.peers.iter().map(|&i| refs[i]).collect();
        let repaired = lrc
            .repair_local(8, &peers, &parity[plan.parity_index])
            .unwrap();
        assert_eq!(repaired, data[8]);
    }

    #[test]
    fn repair_local_into_matches_alloc_variant() {
        let lrc = Lrc::new(6, 2, 2).unwrap();
        let data = make_data(6, 64);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = lrc.encode_vec(&refs).unwrap();
        let peers: Vec<&[u8]> = vec![refs[0], refs[2]];
        let alloc = lrc.repair_local(1, &peers, &parity[2]).unwrap();
        let mut out = vec![0u8; 64];
        lrc.repair_local_into(1, &peers, &parity[2], &mut out)
            .unwrap();
        assert_eq!(out, alloc);
        assert_eq!(out, data[1]);
        // Wrong output length is rejected, not truncated.
        let mut short = vec![0u8; 32];
        assert!(matches!(
            lrc.repair_local_into(1, &peers, &parity[2], &mut short),
            Err(EcError::BlockLength { .. })
        ));
    }

    #[test]
    fn full_decode_mixed_failures() {
        let lrc = Lrc::new(12, 4, 2).unwrap();
        let data = make_data(12, 64);
        let mut shards = encode_all(&lrc, &data);
        let originals = shards.clone();
        // One local-repairable loss, two global losses, one local parity.
        shards[2] = None; // group 0, single loss -> local repair
        shards[6] = None; // group 1
        shards[8] = None; // group 1 (two losses -> global decode)
        shards[17] = None; // local parity of group 1
        lrc.decode(&mut shards).unwrap();
        assert_eq!(shards, originals);
    }

    #[test]
    fn decode_with_all_global_parity_lost() {
        let lrc = Lrc::new(8, 2, 2).unwrap();
        let data = make_data(8, 32);
        let mut shards = encode_all(&lrc, &data);
        let originals = shards.clone();
        shards[8] = None;
        shards[9] = None;
        lrc.decode(&mut shards).unwrap();
        assert_eq!(shards, originals);
    }

    #[test]
    fn too_many_global_losses_error() {
        let lrc = Lrc::new(8, 2, 2).unwrap();
        let data = make_data(8, 32);
        let mut shards = encode_all(&lrc, &data);
        // Three data losses in one group: local parity can't help, global
        // tolerance (2) exceeded.
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert!(matches!(
            lrc.decode(&mut shards),
            Err(EcError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn paper_lrc_geometries_roundtrip() {
        for (k, m, l) in [(12, 4, 2), (24, 4, 4), (48, 4, 4)] {
            let lrc = Lrc::new(k, m, l).unwrap();
            let data = make_data(k, 32);
            let mut shards = encode_all(&lrc, &data);
            let originals = shards.clone();
            shards[k - 1] = None;
            shards[k + 1] = None;
            lrc.decode(&mut shards).unwrap();
            assert_eq!(shards, originals, "LRC({k},{m},{l})");
        }
    }
}
