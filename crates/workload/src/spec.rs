//! Declarative workload descriptions: op mixes, phases, arrival shapes.
//!
//! A [`WorkloadSpec`] is plain data — the replayer in [`crate::replay`]
//! turns it into traffic. Phases run back to back against one long-lived
//! service, so a phase boundary that changes block size or mix is a
//! genuine mid-run workload *shift*: the coordinator keeps its state and
//! must re-converge, and the replayer measures how long that takes.

use dialga_service::OpKind;
use dialga_testkit::Rng;

/// Operation mix as integer weights over the four op classes. Weights
/// are relative; `Mix::new(8, 3, 1, 1)` offers 8 encodes per 3 degraded
/// reads per 1 repair per 1 scrub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Stripe-encode weight.
    pub encode: u32,
    /// Degraded-read (decode) weight.
    pub decode: u32,
    /// Single-shard repair weight.
    pub repair: u32,
    /// Integrity-scrub weight.
    pub scrub: u32,
}

impl Mix {
    /// Build a mix from the four class weights.
    pub const fn new(encode: u32, decode: u32, repair: u32, scrub: u32) -> Mix {
        Mix {
            encode,
            decode,
            repair,
            scrub,
        }
    }

    /// Draw one op class according to the weights (all-zero mixes
    /// degrade to pure encode).
    pub fn sample(&self, rng: &mut Rng) -> OpKind {
        let total = self.encode + self.decode + self.repair + self.scrub;
        if total == 0 {
            return OpKind::Encode;
        }
        let mut x = rng.below(total as u64) as u32;
        for (kind, weight) in [
            (OpKind::Encode, self.encode),
            (OpKind::Decode, self.decode),
            (OpKind::Repair, self.repair),
            (OpKind::Scrub, self.scrub),
        ] {
            if x < weight {
                return kind;
            }
            x -= weight;
        }
        OpKind::Encode
    }
}

/// How requests arrive within a phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Closed loop: at most `in_flight` outstanding requests; a new one
    /// is issued as soon as the window has room (throughput-seeking).
    Closed {
        /// Window of outstanding requests (≥ 1).
        in_flight: usize,
    },
    /// Open loop: requests are paced at `ops_per_s` regardless of
    /// completions (latency-under-load; queues absorb the excess).
    Open {
        /// Offered rate, operations per second (> 0).
        ops_per_s: f64,
    },
}

/// On/off burst shaping layered over the arrival process: after every
/// `on_ops` submissions the generator goes silent for `off_us`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// Submissions per on-period.
    pub on_ops: u64,
    /// Silent gap between on-periods, microseconds.
    pub off_us: u64,
}

/// One contiguous segment of a workload: a fixed mix, skew, block size
/// and arrival shape for `ops` operations.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase name — keys [`dialga_faultkit::FaultSchedule`] plans and
    /// labels report rows.
    pub name: String,
    /// Operations to issue in this phase.
    pub ops: u64,
    /// Op-class mix.
    pub mix: Mix,
    /// Zipf skew for hot-tenant and hot-stripe selection (0 = uniform,
    /// ≈ 0.99 = YCSB-style).
    pub zipf_theta: f64,
    /// Data-block size in bytes for stripes issued by this phase.
    pub block_bytes: usize,
    /// Arrival process.
    pub arrival: Arrival,
    /// Optional on/off burst shaping.
    pub burst: Option<Burst>,
    /// Probability that a scrub's stripe is corrupted (one byte flipped)
    /// before submission — drives the integrity-outcome accounting.
    pub corrupt_prob: f64,
}

impl Phase {
    /// A closed-loop phase with uniform skew, 16 KiB blocks, window 32,
    /// no bursts and no corruption; adjust with the builder methods.
    pub fn new(name: &str, ops: u64, mix: Mix) -> Phase {
        Phase {
            name: name.to_string(),
            ops,
            mix,
            zipf_theta: 0.0,
            block_bytes: 16 * 1024,
            arrival: Arrival::Closed { in_flight: 32 },
            burst: None,
            corrupt_prob: 0.0,
        }
    }

    /// Set the Zipf skew.
    pub fn zipf(mut self, theta: f64) -> Phase {
        self.zipf_theta = theta;
        self
    }

    /// Set the block size.
    pub fn block(mut self, bytes: usize) -> Phase {
        self.block_bytes = bytes;
        self
    }

    /// Use open-loop arrivals at `ops_per_s`.
    pub fn open(mut self, ops_per_s: f64) -> Phase {
        self.arrival = Arrival::Open { ops_per_s };
        self
    }

    /// Use closed-loop arrivals with the given window.
    pub fn closed(mut self, in_flight: usize) -> Phase {
        self.arrival = Arrival::Closed {
            in_flight: in_flight.max(1),
        };
        self
    }

    /// Add on/off burst shaping.
    pub fn bursty(mut self, on_ops: u64, off_us: u64) -> Phase {
        self.burst = Some(Burst { on_ops, off_us });
        self
    }

    /// Corrupt scrub stripes with probability `p`.
    pub fn corrupt(mut self, p: f64) -> Phase {
        self.corrupt_prob = p.clamp(0.0, 1.0);
        self
    }
}

/// A complete deterministic workload: service geometry plus phases.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Master seed; every random draw in the replay derives from it.
    pub seed: u64,
    /// Data blocks per stripe.
    pub k: usize,
    /// Parity blocks per stripe.
    pub m: usize,
    /// Distinct tenants offering load.
    pub tenants: u32,
    /// Service shards.
    pub shards: usize,
    /// Encode-pool workers per shard.
    pub threads_per_shard: usize,
    /// Per-shard admission-queue depth.
    pub queue_depth: usize,
    /// Distinct stripes in the working set (hot-stripe Zipf domain).
    pub working_set: usize,
    /// The phases, replayed in order against one service.
    pub phases: Vec<Phase>,
}

impl WorkloadSpec {
    /// An empty spec with the repo's default geometry (k=6, m=3, two
    /// shards × two workers, 8 tenants); add phases with
    /// [`WorkloadSpec::phase`].
    pub fn new(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            k: 6,
            m: 3,
            tenants: 8,
            shards: 2,
            threads_per_shard: 2,
            queue_depth: 256,
            working_set: 24,
            phases: Vec::new(),
        }
    }

    /// Builder-style phase append.
    pub fn phase(mut self, phase: Phase) -> WorkloadSpec {
        self.phases.push(phase);
        self
    }

    /// Total operations across all phases.
    pub fn total_ops(&self) -> u64 {
        self.phases.iter().map(|p| p.ops).sum()
    }

    /// Shrink every phase for CI smoke runs: op counts divided by
    /// `factor` (floor 24 per phase), burst gaps untouched.
    pub fn smoke(mut self, factor: u64) -> WorkloadSpec {
        let factor = factor.max(1);
        for phase in &mut self.phases {
            phase.ops = (phase.ops / factor).max(24);
        }
        self
    }

    /// Profile `steady`: one uniform closed-loop phase, encode-heavy
    /// with all four classes represented — the baseline row of the
    /// trajectory.
    pub fn steady(seed: u64) -> WorkloadSpec {
        WorkloadSpec::new(seed).phase(
            Phase::new("steady", 960, Mix::new(8, 3, 1, 2))
                .block(16 * 1024)
                .closed(32),
        )
    }

    /// Profile `skewed_bursty`: a Zipf-hot bursty small-block phase, then
    /// a mid-run shift to large blocks and a read-heavy mix — the phase
    /// boundary forces the per-shard coordinators to re-converge, which
    /// the replayer times.
    pub fn skewed_bursty(seed: u64) -> WorkloadSpec {
        WorkloadSpec::new(seed)
            .phase(
                Phase::new("hot_burst", 600, Mix::new(10, 2, 1, 1))
                    .block(4 * 1024)
                    .zipf(0.99)
                    .closed(24)
                    .bursty(48, 1_500),
            )
            .phase(
                Phase::new("shift_large", 360, Mix::new(3, 8, 2, 1))
                    .block(64 * 1024)
                    .zipf(0.99)
                    .closed(16),
            )
    }

    /// Profile `chaos`: scrub-heavy traffic with stripe corruption, plus
    /// (when the `fault-injection` feature is on) a phase-scoped fault
    /// plan armed inside the shard pools — the integrity-accounting row.
    pub fn chaos(seed: u64) -> WorkloadSpec {
        WorkloadSpec::new(seed)
            .phase(
                Phase::new("chaos_warm", 240, Mix::new(6, 2, 1, 3))
                    .block(8 * 1024)
                    .closed(16),
            )
            .phase(
                Phase::new("chaos_storm", 480, Mix::new(4, 2, 2, 6))
                    .block(8 * 1024)
                    .closed(16)
                    .corrupt(0.3),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sampling_tracks_weights() {
        let mix = Mix::new(6, 3, 1, 0);
        let mut rng = Rng::new(11);
        let mut counts = [0u32; 4];
        for _ in 0..10_000 {
            counts[mix.sample(&mut rng).index()] += 1;
        }
        assert_eq!(counts[3], 0, "zero-weight class must never fire");
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
        // Rough proportions: encode ≈ 60 %, decode ≈ 30 %, repair ≈ 10 %.
        assert!((5000..7000).contains(&counts[0]), "{counts:?}");
        assert!((2200..3800).contains(&counts[1]), "{counts:?}");
    }

    #[test]
    fn zero_mix_degrades_to_encode() {
        let mix = Mix::new(0, 0, 0, 0);
        let mut rng = Rng::new(1);
        assert_eq!(mix.sample(&mut rng), OpKind::Encode);
    }

    #[test]
    fn smoke_shrinks_but_keeps_phases() {
        let spec = WorkloadSpec::skewed_bursty(1).smoke(8);
        assert_eq!(spec.phases.len(), 2);
        assert!(spec.total_ops() < WorkloadSpec::skewed_bursty(1).total_ops());
        assert!(spec.phases.iter().all(|p| p.ops >= 24));
    }

    #[test]
    fn canonical_profiles_cover_required_shapes() {
        let steady = WorkloadSpec::steady(7);
        assert_eq!(steady.phases.len(), 1);
        let sb = WorkloadSpec::skewed_bursty(7);
        assert!(sb.phases[0].burst.is_some());
        assert_ne!(
            sb.phases[0].block_bytes, sb.phases[1].block_bytes,
            "the shift phase must change the access pattern"
        );
        let chaos = WorkloadSpec::chaos(7);
        assert!(chaos.phases.iter().any(|p| p.corrupt_prob > 0.0));
    }
}
