//! The replayer: turn a [`WorkloadSpec`] into live traffic.
//!
//! [`replay_service`] drives a freshly built [`StripeService`] phase by
//! phase from one seeded RNG. Every phase:
//!
//! 1. arms its [`FaultSchedule`] plan on every shard (only with the
//!    `fault-injection` feature; plain builds replay clean),
//! 2. snapshots each shard's coordinator (policy-change count + clock)
//!    so the phase can report convergence-after-shift,
//! 3. issues `ops` operations — tenant and stripe drawn Zipf-hot, class
//!    drawn from the mix, arrivals closed- or open-loop with optional
//!    on/off bursts — measuring **client-observed** latency per class,
//! 4. drains, disarms, and closes the books: throughput, scrub
//!    outcomes, rejections, worker deaths, convergence.
//!
//! [`replay_pool`] is the service-free baseline: fused encode batches
//! submitted closed-loop straight into an [`EncodePool`].

use crate::report::{
    ClassReport, PhaseReport, PoolReport, RunReport, ScrubOutcomes, ServiceSummary,
};
use crate::spec::{Arrival, Phase, WorkloadSpec};
use crate::zipf::Zipf;
use dialga::encoder::Dialga;
use dialga::pool::{EncodePool, StripeJob};
use dialga_ec::EcError;
use dialga_faultkit::{flip_byte, FaultSchedule};
use dialga_service::{OpKind, ServiceConfig, ServiceError, StripeService, Ticket};
use dialga_testkit::Rng;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// One stripe of the working set: its data blocks and the full verified
/// `k + m` shard vector (data ++ parity).
struct Stripe {
    data: Vec<Vec<u8>>,
    full: Vec<Vec<u8>>,
}

fn build_working_set(
    coder: &Dialga,
    rng: &mut Rng,
    count: usize,
    block_bytes: usize,
) -> Result<Vec<Stripe>, EcError> {
    let k = coder.params().k;
    let mut set = Vec::with_capacity(count);
    for _ in 0..count.max(1) {
        let data: Vec<Vec<u8>> = (0..k).map(|_| rng.bytes(block_bytes)).collect();
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let parity = coder.encode_vec(&refs)?;
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();
        set.push(Stripe { data, full });
    }
    Ok(set)
}

/// One outstanding request and what we expect back.
struct InFlight {
    ticket: Ticket,
    kind: OpKind,
    expect_corrupt: bool,
    bytes: usize,
    issued: Instant,
}

/// Tallies accumulated while a phase runs.
#[derive(Default)]
struct PhaseAccum {
    class_ns: [Vec<u64>; 4],
    ops_done: u64,
    bytes_done: u64,
    expired: u64,
    scrubs: ScrubOutcomes,
}

impl PhaseAccum {
    fn settle(&mut self, flight: &InFlight, result: Result<Vec<Vec<u8>>, ServiceError>) {
        match result {
            Ok(_) => {
                self.record_done(flight);
                if flight.kind == OpKind::Scrub {
                    if flight.expect_corrupt {
                        // A corrupted stripe sailed through verification:
                        // the report surfaces this as a hard red flag.
                        self.scrubs.missed += 1;
                    } else {
                        self.scrubs.clean += 1;
                    }
                }
            }
            Err(ServiceError::Coding(EcError::Corrupt { .. })) => {
                self.record_done(flight);
                if flight.kind == OpKind::Scrub {
                    self.scrubs.corrupt_detected += 1;
                }
            }
            Err(ServiceError::Expired { .. }) => self.expired += 1,
            // Chaos can surface other coding errors (a batch that lost
            // its workers mid-flight); the response still completes the
            // request, so it still counts toward throughput.
            Err(_) => self.record_done(flight),
        }
    }

    fn record_done(&mut self, flight: &InFlight) {
        self.ops_done += 1;
        self.bytes_done += flight.bytes as u64;
        self.class_ns[flight.kind.index()].push(flight.issued.elapsed().as_nanos() as u64);
    }
}

/// Poll-drain every already-completed request at the front of the
/// window (non-blocking), keeping client-observed latency honest for
/// pipelined completions.
fn drain_ready(window: &mut VecDeque<InFlight>, accum: &mut PhaseAccum) {
    while let Some(front) = window.front() {
        match front.ticket.wait_timeout(Duration::ZERO) {
            Some(result) => {
                let flight = window.pop_front().expect("front exists");
                accum.settle(&flight, result);
            }
            None => break,
        }
    }
}

/// Block on the oldest outstanding request.
fn drain_one(window: &mut VecDeque<InFlight>, accum: &mut PhaseAccum) {
    if let Some(flight) = window.pop_front() {
        let result = flight.ticket.wait_timeout(Duration::from_secs(30));
        match result {
            Some(r) => accum.settle(&flight, r),
            // A request stuck past 30 s means the harness itself is
            // wedged; count it as expired rather than hanging the bench.
            None => accum.expired += 1,
        }
    }
}

fn build_op(
    rng: &mut Rng,
    stripes: &[Stripe],
    hot_stripe: &Zipf,
    phase: &Phase,
    k: usize,
    m: usize,
) -> (OpKind, OpBody, bool) {
    let kind = phase.mix.sample(rng);
    let stripe = &stripes[hot_stripe.sample(rng)];
    let total = k + m;
    match kind {
        OpKind::Encode => (kind, OpBody::Encode(stripe.data.clone()), false),
        OpKind::Decode => {
            let mut shards: Vec<Option<Vec<u8>>> = stripe.full.iter().cloned().map(Some).collect();
            let holes = 1 + rng.below(m as u64) as usize;
            let mut punched = 0;
            while punched < holes {
                let at = rng.below(total as u64) as usize;
                if shards[at].is_some() {
                    shards[at] = None;
                    punched += 1;
                }
            }
            (kind, OpBody::Decode(shards), false)
        }
        OpKind::Repair => {
            let target = rng.below(total as u64) as usize;
            let mut shards: Vec<Option<Vec<u8>>> = stripe.full.iter().cloned().map(Some).collect();
            shards[target] = None;
            (kind, OpBody::Repair(shards, target), false)
        }
        OpKind::Scrub => {
            let mut shards = stripe.full.clone();
            let corrupt = phase.corrupt_prob > 0.0 && rng.bool_with(phase.corrupt_prob);
            if corrupt {
                let victim = rng.below(total as u64) as usize;
                let len = shards[victim].len().max(1);
                let offset = rng.below(len as u64) as usize;
                flip_byte(&mut shards[victim], offset, rng.u8());
            }
            (kind, OpBody::Scrub(shards), corrupt)
        }
    }
}

enum OpBody {
    Encode(Vec<Vec<u8>>),
    Decode(Vec<Option<Vec<u8>>>),
    Repair(Vec<Option<Vec<u8>>>, usize),
    Scrub(Vec<Vec<u8>>),
}

impl OpBody {
    fn bytes(&self) -> usize {
        match self {
            OpBody::Encode(data) => data.iter().map(Vec::len).sum(),
            OpBody::Decode(shards) | OpBody::Repair(shards, _) => {
                shards.iter().flatten().map(Vec::len).sum()
            }
            OpBody::Scrub(shards) => shards.iter().map(Vec::len).sum(),
        }
    }

    fn submit(self, svc: &StripeService, tenant: u32) -> Result<Ticket, ServiceError> {
        match self {
            OpBody::Encode(data) => svc.submit_encode(tenant, data, None),
            OpBody::Decode(shards) => svc.submit_decode(tenant, shards, None),
            OpBody::Repair(shards, target) => svc.submit_repair(tenant, shards, target, None),
            OpBody::Scrub(shards) => svc.submit_scrub(tenant, shards, None),
        }
    }
}

/// Sum of worker deaths across all shard pools.
fn total_worker_deaths(svc: &StripeService) -> u64 {
    (0..svc.shards())
        .filter_map(|s| svc.shard_pool_stats(s))
        .map(|stats| stats.worker_deaths)
        .sum()
}

/// Per-shard coordinator baseline: (policy changes so far, clock now).
fn coordinator_baselines(svc: &StripeService) -> Vec<Option<(u64, f64)>> {
    (0..svc.shards())
        .map(|s| {
            svc.shard_coordinator(s)
                .and_then(|snap| svc.shard_clock_ns(s).map(|t0| (snap.policy_changes, t0)))
        })
        .collect()
}

/// Convergence after the phase started: the latest policy-change
/// timestamp (relative to the phase start) over shards whose coordinator
/// changed policy during the phase.
fn convergence_since(svc: &StripeService, baselines: &[Option<(u64, f64)>]) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for (s, baseline) in baselines.iter().enumerate() {
        let Some((changes0, t0)) = baseline else {
            continue;
        };
        let Some(snap) = svc.shard_coordinator(s) else {
            continue;
        };
        if snap.policy_changes <= *changes0 {
            continue;
        }
        if let Some(t) = snap.last_change_ns {
            if t >= *t0 {
                let ms = (t - t0) / 1e6;
                worst = Some(worst.map_or(ms, |w| w.max(ms)));
            }
        }
    }
    worst
}

/// Replay `spec` against a freshly built [`StripeService`], arming
/// `chaos` phase by phase (a no-op without the `fault-injection`
/// feature), and return the full profile report.
pub fn replay_service(
    profile: &str,
    spec: &WorkloadSpec,
    chaos: &FaultSchedule,
) -> Result<RunReport, EcError> {
    let coder = Dialga::new(spec.k, spec.m)?;
    let first_block = spec.phases.first().map_or(16 * 1024, |p| p.block_bytes);
    let svc = StripeService::new(ServiceConfig {
        shards: spec.shards,
        threads_per_shard: spec.threads_per_shard,
        k: spec.k,
        m: spec.m,
        block_bytes: first_block as u64,
        queue_depth: spec.queue_depth,
        ..ServiceConfig::default()
    })?;
    #[cfg(not(feature = "fault-injection"))]
    let _ = chaos;

    let mut rng = Rng::new(spec.seed);
    let mut overall_ns: [Vec<u64>; 4] = Default::default();
    let mut phase_reports = Vec::with_capacity(spec.phases.len());
    let run_start = Instant::now();
    let mut total_bytes = 0u64;

    for phase in &spec.phases {
        let stripes = build_working_set(&coder, &mut rng, spec.working_set, phase.block_bytes)?;
        let hot_stripe = Zipf::new(stripes.len(), phase.zipf_theta);
        let hot_tenant = Zipf::new(spec.tenants.max(1) as usize, phase.zipf_theta);

        #[cfg(feature = "fault-injection")]
        if let Some(plan) = chaos.plan_for(&phase.name) {
            for s in 0..svc.shards() {
                svc.arm_shard_faults(s, plan);
            }
        }

        let stats_before = svc.stats();
        let deaths_before = total_worker_deaths(&svc);
        let baselines = coordinator_baselines(&svc);
        let mut accum = PhaseAccum::default();
        let mut window: VecDeque<InFlight> = VecDeque::new();
        let mut rejected = 0u64;
        let phase_start = Instant::now();

        let (closed_window, pace) = match phase.arrival {
            Arrival::Closed { in_flight } => (in_flight.max(1), None),
            Arrival::Open { ops_per_s } => (
                usize::MAX,
                Some(Duration::from_secs_f64(1.0 / ops_per_s.max(1.0))),
            ),
        };
        let mut next_at = Instant::now();

        for op_idx in 0..phase.ops {
            if let Some(gap) = pace {
                let now = Instant::now();
                if now < next_at {
                    std::thread::sleep(next_at - now);
                }
                next_at += gap;
            }
            let (kind, body, expect_corrupt) =
                build_op(&mut rng, &stripes, &hot_stripe, phase, spec.k, spec.m);
            let tenant = hot_tenant.sample(&mut rng) as u32;
            let bytes = body.bytes();
            // Stamp BEFORE submitting: the service may caller-run
            // dispatch, completing the op inside `submit`, and that
            // time is part of the client-observed latency.
            let issued = Instant::now();
            match body.submit(&svc, tenant) {
                Ok(ticket) => window.push_back(InFlight {
                    ticket,
                    kind,
                    expect_corrupt,
                    bytes,
                    issued,
                }),
                Err(ServiceError::Rejected { .. }) => {
                    rejected += 1;
                    // Open loop: rejected work is lost, by design.
                    // Closed loop: free a slot and retry once; if the
                    // retry also bounces, drop the op.
                    if pace.is_none() {
                        drain_one(&mut window, &mut accum);
                        let (_, retry_body, _) =
                            build_op(&mut rng, &stripes, &hot_stripe, phase, spec.k, spec.m);
                        let issued = Instant::now();
                        match retry_body.submit(&svc, tenant) {
                            Ok(ticket) => window.push_back(InFlight {
                                ticket,
                                kind,
                                expect_corrupt,
                                bytes,
                                issued,
                            }),
                            Err(_) => rejected += 1,
                        }
                    }
                }
                // Geometry errors cannot happen for generated ops; treat
                // any other submit error as a dropped op.
                Err(_) => {}
            }
            drain_ready(&mut window, &mut accum);
            while window.len() >= closed_window {
                drain_one(&mut window, &mut accum);
            }
            if let Some(burst) = phase.burst {
                if burst.on_ops > 0 && (op_idx + 1) % burst.on_ops == 0 {
                    std::thread::sleep(Duration::from_micros(burst.off_us));
                    next_at = Instant::now();
                }
            }
        }
        while !window.is_empty() {
            drain_one(&mut window, &mut accum);
        }

        let wall = phase_start.elapsed().as_secs_f64().max(1e-9);
        let convergence_ms = convergence_since(&svc, &baselines);
        #[cfg(feature = "fault-injection")]
        if chaos.plan_for(&phase.name).is_some() {
            for s in 0..svc.shards() {
                svc.disarm_shard_faults(s);
            }
        }
        let stats_after = svc.stats();

        let mut classes = Vec::with_capacity(4);
        for kind in OpKind::ALL {
            let samples = &mut accum.class_ns[kind.index()];
            overall_ns[kind.index()].extend_from_slice(samples);
            classes.push(ClassReport::from_samples(kind.name(), samples));
        }
        total_bytes += accum.bytes_done;
        phase_reports.push(PhaseReport {
            name: phase.name.clone(),
            ops_done: accum.ops_done,
            rejected,
            expired: accum.expired + stats_after.expired.saturating_sub(stats_before.expired),
            wall_s: wall,
            ops_per_s: accum.ops_done as f64 / wall,
            mib_s: accum.bytes_done as f64 / wall / (1024.0 * 1024.0),
            convergence_ms,
            worker_deaths: total_worker_deaths(&svc).saturating_sub(deaths_before),
            scrubs: accum.scrubs,
            classes,
        });
    }

    let wall_s = run_start.elapsed().as_secs_f64().max(1e-9);
    let stats = svc.stats();
    // Per-class reports plus an "all" aggregate over every completed op,
    // so consumers that want one combined p50/p99 (service_bench's PR 6
    // schema) don't have to merge quantiles approximately.
    let mut all_ns: Vec<u64> = overall_ns.iter().flatten().copied().collect();
    let mut classes: Vec<ClassReport> = OpKind::ALL
        .iter()
        .map(|kind| ClassReport::from_samples(kind.name(), &mut overall_ns[kind.index()]))
        .collect();
    classes.push(ClassReport::from_samples("all", &mut all_ns));
    let mut report = RunReport {
        profile: profile.to_string(),
        seed: spec.seed,
        k: spec.k,
        m: spec.m,
        shards: spec.shards,
        threads_per_shard: spec.threads_per_shard,
        tenants: spec.tenants,
        wall_s,
        mib_s: total_bytes as f64 / wall_s / (1024.0 * 1024.0),
        classes,
        phases: phase_reports,
        service: ServiceSummary {
            submitted: stats.submitted,
            completed: stats.completed,
            rejected: stats.rejected,
            expired: stats.expired,
            spilled: stats.spilled,
            batches: stats.batches,
            coalesced: stats.coalesced,
            fallbacks: stats.fallbacks,
            queue_peak: stats.shard_queue_peak,
        },
        ..RunReport::default()
    };
    report.fold_phases();
    Ok(report)
}

/// Closed-loop fused-batch encode replay against a raw [`EncodePool`] —
/// the service-free baseline row of the artifact.
pub fn replay_pool(
    seed: u64,
    k: usize,
    m: usize,
    threads: usize,
    block_bytes: usize,
    ops: u64,
    batch: usize,
) -> Result<PoolReport, EcError> {
    let coder = Dialga::new(k, m)?;
    let pool = EncodePool::new(threads.max(1));
    let mut rng = Rng::new(seed);
    let stripes = build_working_set(&coder, &mut rng, 8, block_bytes)?;
    let batch = batch.max(1);
    let mut batch_ns: Vec<u64> = Vec::new();
    let mut done = 0u64;
    let start = Instant::now();
    while done < ops {
        let n = batch.min((ops - done) as usize);
        let mut parities: Vec<Vec<Vec<u8>>> = vec![vec![vec![0u8; block_bytes]; m]; n];
        let data_refs: Vec<Vec<&[u8]>> = (0..n)
            .map(|i| {
                stripes[(done as usize + i) % stripes.len()]
                    .data
                    .iter()
                    .map(Vec::as_slice)
                    .collect()
            })
            .collect();
        let mut parity_refs: Vec<Vec<&mut [u8]>> = parities
            .iter_mut()
            .map(|p| p.iter_mut().map(Vec::as_mut_slice).collect())
            .collect();
        let mut jobs: Vec<StripeJob<'_, '_>> = data_refs
            .iter()
            .zip(parity_refs.iter_mut())
            .map(|(d, p)| StripeJob {
                data: d.as_slice(),
                parity: p.as_mut_slice(),
            })
            .collect();
        let t0 = Instant::now();
        pool.encode_batch(&coder, &mut jobs)?;
        batch_ns.push(t0.elapsed().as_nanos() as u64);
        done += n as u64;
    }
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    let lat = ClassReport::from_samples("batch", &mut batch_ns);
    Ok(PoolReport {
        ops: done,
        batch,
        wall_s,
        ops_per_s: done as f64 / wall_s,
        mib_s: (done as f64 * k as f64 * block_bytes as f64) / wall_s / (1024.0 * 1024.0),
        p50_batch_us: lat.p50_us,
        p99_batch_us: lat.p99_us,
        worker_deaths: pool.stats().worker_deaths,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Mix;

    fn tiny_spec(seed: u64) -> WorkloadSpec {
        let mut spec = WorkloadSpec::new(seed);
        spec.k = 4;
        spec.m = 2;
        spec.shards = 1;
        spec.threads_per_shard = 1;
        spec.working_set = 4;
        spec.phase(
            Phase::new("tiny", 48, Mix::new(4, 2, 1, 2))
                .block(2048)
                .closed(8),
        )
    }

    #[test]
    fn tiny_replay_completes_and_accounts_every_op() {
        let report = replay_service("tiny", &tiny_spec(5), &FaultSchedule::new()).expect("replay");
        assert_eq!(report.phases.len(), 1);
        let phase = &report.phases[0];
        assert_eq!(
            phase.ops_done + phase.expired,
            48 - phase.rejected.min(48),
            "every issued op must be accounted: {phase:?}"
        );
        assert!(report.ops > 0);
        assert!(report.ops_per_s > 0.0);
        assert_eq!(report.scrubs.missed, 0);
        assert_eq!(report.scrubs.corrupt_detected, 0, "no corruption scripted");
        let encode = report.classes.iter().find(|c| c.op == "encode").unwrap();
        assert!(encode.count > 0);
        assert!(encode.p50_us <= encode.p99_us && encode.p99_us <= encode.p999_us);
    }

    #[test]
    fn corrupting_phase_reports_detected_scrubs() {
        let mut spec = tiny_spec(6);
        spec.phases[0].corrupt_prob = 0.5;
        spec.phases[0].mix = Mix::new(1, 0, 0, 6);
        let report = replay_service("corrupt", &spec, &FaultSchedule::new()).expect("replay");
        assert!(
            report.scrubs.corrupt_detected > 0,
            "50% corruption over a scrub-heavy mix must be caught: {:?}",
            report.scrubs
        );
        assert_eq!(report.scrubs.missed, 0, "verify must never miss");
    }

    #[test]
    fn replay_is_trace_deterministic() {
        // Same seed → identical op counts and scrub outcomes (timings of
        // course differ; the trace must not).
        let a = replay_service("a", &tiny_spec(9), &FaultSchedule::new()).expect("a");
        let b = replay_service("b", &tiny_spec(9), &FaultSchedule::new()).expect("b");
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.scrubs, b.scrubs);
        let counts = |r: &RunReport| -> Vec<u64> { r.classes.iter().map(|c| c.count).collect() };
        assert_eq!(counts(&a), counts(&b));
    }

    #[test]
    fn pool_replay_reports_throughput() {
        let report = replay_pool(3, 4, 2, 2, 4096, 64, 8).expect("pool replay");
        assert_eq!(report.ops, 64);
        assert!(report.ops_per_s > 0.0);
        assert!(report.mib_s > 0.0);
        assert!(report.p50_batch_us <= report.p99_batch_us);
        assert_eq!(report.worker_deaths, 0);
    }
}
