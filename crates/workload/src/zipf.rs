//! Zipf-distributed index sampling via a precomputed CDF.
//!
//! The workload generator uses this for both hot-tenant and hot-stripe
//! selection: rank-`i` weight is `1 / i^theta`, so `theta = 0` degrades
//! to uniform and `theta ≈ 0.99` gives the YCSB-style skew where a
//! handful of tenants dominate the offered load.

use dialga_testkit::Rng;

/// A Zipf(`n`, `theta`) sampler over `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler; `n` is clamped to at least 1, negative `theta`
    /// to 0 (uniform).
    pub fn new(n: usize, theta: f64) -> Zipf {
        let n = n.max(1);
        let theta = theta.max(0.0);
        let mut cdf: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-theta)).collect();
        let total: f64 = cdf.iter().sum();
        let mut acc = 0.0;
        for w in &mut cdf {
            acc += *w / total;
            *w = acc;
        }
        Zipf { cdf }
    }

    /// Draw one index in `0..n`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(8, 0.0);
        let mut rng = Rng::new(1);
        let mut hits = [0u32; 8];
        for _ in 0..8000 {
            hits[z.sample(&mut rng)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!((700..1300).contains(&h), "bucket {i} off uniform: {hits:?}");
        }
    }

    #[test]
    fn high_theta_concentrates_on_low_ranks() {
        let z = Zipf::new(64, 0.99);
        let mut rng = Rng::new(2);
        let mut head = 0u32;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 8 {
                head += 1;
            }
        }
        // With theta 0.99 over 64 ranks, the top 8 carry well over half
        // the mass; uniform would give 12.5 %.
        assert!(head > n / 2, "top-8 share too small: {head}/{n}");
    }

    #[test]
    fn samples_stay_in_range_and_are_deterministic() {
        let z = Zipf::new(5, 1.2);
        let a: Vec<usize> = {
            let mut rng = Rng::new(3);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = Rng::new(3);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 5));
    }
}
