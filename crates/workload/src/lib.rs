#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! `dialga-workload` — the trace-driven production-workload harness.
//!
//! The adaptive scheduling this repository reproduces (DIALGA, ICPP'25)
//! only pays off under realistic, *shifting* load: Pythia argues tuning
//! must be driven by live system feedback, and DSPatch shows a policy
//! needs both bandwidth-bound and latency-bound regimes exercised before
//! its variant choice means anything. This crate supplies those regimes
//! deterministically:
//!
//! * [`spec`] — a declarative workload description: phases with op mixes
//!   (encode / degraded-read / repair / scrub), Zipf-skewed hot tenants
//!   and stripes, open- or closed-loop arrivals, on/off burst shaping,
//!   and per-phase block sizes so a mid-run phase boundary is a genuine
//!   workload *shift* that forces coordinator re-convergence;
//! * [`replay`] — the replayer: drives a [`StripeService`] (or the raw
//!   [`EncodePool`]) from a testkit-seeded RNG, phase by phase, arming
//!   phase-scoped [`FaultSchedule`] chaos when the `fault-injection`
//!   feature is on, and measuring client-observed latency per op class;
//! * [`report`] — the run report: throughput plus p50/p99/p999 per op
//!   class, integrity-scrub outcomes, coordinator convergence time after
//!   each shift, and the `BENCH_PRn.json` emission/validation used by
//!   `workload_bench` and `just trajectory`;
//! * [`json`] — the std-only JSON value/parser backing schema validation
//!   (the container pins no serde; artifacts must stay checkable).
//!
//! Determinism: every random choice (tenant, op, stripe, hole positions,
//! corruption, burst jitter) flows from one `dialga_testkit::Rng` seeded
//! by [`spec::WorkloadSpec::seed`], so a replay is reproducible
//! trace-for-trace; wall-clock timings of course vary with the host.
//!
//! [`StripeService`]: dialga_service::StripeService
//! [`EncodePool`]: dialga::pool::EncodePool
//! [`FaultSchedule`]: dialga_faultkit::FaultSchedule

pub mod json;
pub mod replay;
pub mod report;
pub mod spec;
mod zipf;

pub use replay::{replay_pool, replay_service};
pub use report::{ClassReport, PhaseReport, PoolReport, RunReport, ScrubOutcomes, ServiceSummary};
pub use spec::{Arrival, Burst, Mix, Phase, WorkloadSpec};
pub use zipf::Zipf;
