//! Minimal std-only JSON value, parser and string escaping.
//!
//! Exists so `BENCH_PRn.json` artifacts can be *validated* — by the
//! `workload_bench` self-check, the `trajectory` binary and the repo
//! lint stage — without pulling serde into a container that pins its
//! dependency set. Covers exactly the JSON this workspace emits: objects
//! with string keys, arrays, finite numbers, strings without exotic
//! escapes, booleans and null.

use std::fmt;

/// A parsed JSON value. Object keys keep their source order (artifact
/// diffs stay stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64` — artifact magnitudes are all safe).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(src: &str) -> Result<Json, ParseError> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(value)
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err(at: usize, msg: &str) -> ParseError {
    ParseError {
        at,
        msg: msg.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{lit}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    _ => return Err(err(*pos, "unsupported escape")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 passes through byte-wise; artifacts
                // are ASCII in practice, but don't mangle anything.
                let start = *pos;
                let width = utf8_width(c);
                *pos += width;
                match std::str::from_utf8(&bytes[start..(start + width).min(bytes.len())]) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return Err(err(start, "invalid UTF-8 in string")),
                }
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    match text.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(Json::Num(n)),
        _ => Err(err(start, "bad number")),
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // {
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected `:`"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

/// Escape a string for embedding in emitted JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_artifact_shapes() {
        let doc = parse(
            r#"{"bench": "workload", "pr": 7, "ok": true, "none": null,
                "xs": [1, -2.5, 3e2], "nested": {"p99_us": 12.75}}"#,
        )
        .expect("parse");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("workload"));
        assert_eq!(doc.get("pr").and_then(Json::as_f64), Some(7.0));
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert!(doc.get("none").is_some_and(Json::is_null));
        let xs = doc.get("xs").and_then(Json::as_arr).expect("xs");
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].as_f64(), Some(300.0));
        assert_eq!(
            doc.get("nested")
                .and_then(|n| n.get("p99_us"))
                .and_then(Json::as_f64),
            Some(12.75)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "nul",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line\n\"quoted\"\tand \\ slash";
        let doc = format!("{{\"s\": \"{}\"}}", escape(original));
        let parsed = parse(&doc).expect("parse escaped");
        assert_eq!(parsed.get("s").and_then(Json::as_str), Some(original));
    }

    #[test]
    fn parses_real_bench_artifacts_from_this_repo() {
        // The exact shapes trajectory must consume.
        let pr6 = r#"{
          "bench": "service_bench",
          "k": 6, "m": 3, "block_bytes": 16384, "tenants": 8,
          "unit": "ops/s, GiB/s, us",
          "results": [
            {"shards": 1, "ops": 320, "ops_per_s": 19394.8, "p99_us": 3827.8}
          ]
        }"#;
        let doc = parse(pr6).expect("pr6 shape");
        assert_eq!(
            doc.get("bench").and_then(Json::as_str),
            Some("service_bench")
        );
        assert_eq!(
            doc.get("results")
                .and_then(Json::as_arr)
                .and_then(|r| r[0].get("ops_per_s"))
                .and_then(Json::as_f64),
            Some(19394.8)
        );
    }
}
