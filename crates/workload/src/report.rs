//! Run reports and the `BENCH_PRn.json` artifact schema.
//!
//! One [`RunReport`] per replayed profile; [`bench_json`] assembles the
//! full artifact (`"bench": "workload"`). [`validate_workload`] is the
//! schema gate: `workload_bench` self-checks its own emission through
//! it, and `just trajectory` / `scripts/lint.sh` refuse artifacts that
//! drift. [`validate_artifact`] additionally understands the two legacy
//! artifact kinds already in the repo root (`kernel_fusion` from PR 4,
//! `service_bench` from PR 6) so the trajectory spans every PR that
//! ever emitted numbers.

use crate::json::{escape, Json};

/// Client-observed latency summary for one op class (exact quantiles
/// over the recorded samples, unlike the service's bucketed histogram).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassReport {
    /// Class name (`"encode"`, `"decode"`, `"repair"`, `"scrub"`).
    pub op: String,
    /// Completed operations of this class.
    pub count: u64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile latency, µs.
    pub p999_us: f64,
    /// Worst sample, µs.
    pub max_us: f64,
}

impl ClassReport {
    /// Summarise raw nanosecond samples (sorted in place). Empty sample
    /// sets yield an all-zero report with just the name set.
    pub fn from_samples(op: &str, samples: &mut [u64]) -> ClassReport {
        samples.sort_unstable();
        let n = samples.len();
        if n == 0 {
            return ClassReport {
                op: op.to_string(),
                ..ClassReport::default()
            };
        }
        let q = |frac: f64| -> f64 {
            let rank = ((frac * n as f64).ceil() as usize).clamp(1, n);
            samples[rank - 1] as f64 / 1_000.0
        };
        let total: u64 = samples.iter().sum();
        ClassReport {
            op: op.to_string(),
            count: n as u64,
            mean_us: total as f64 / n as f64 / 1_000.0,
            p50_us: q(0.50),
            p99_us: q(0.99),
            p999_us: q(0.999),
            max_us: samples[n - 1] as f64 / 1_000.0,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"op\": \"{}\", \"count\": {}, \"mean_us\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"max_us\": {:.1}}}",
            escape(&self.op),
            self.count,
            self.mean_us,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.max_us
        )
    }
}

/// Integrity-scrub outcome tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubOutcomes {
    /// Scrubs of untouched stripes that verified clean.
    pub clean: u64,
    /// Scrubs of corrupted stripes that the syndrome check caught.
    pub corrupt_detected: u64,
    /// Corrupted stripes reported clean — must be zero; a non-zero value
    /// is a correctness bug in the verify path.
    pub missed: u64,
}

impl ScrubOutcomes {
    fn add(&mut self, other: &ScrubOutcomes) {
        self.clean += other.clean;
        self.corrupt_detected += other.corrupt_detected;
        self.missed += other.missed;
    }

    fn to_json(self) -> String {
        format!(
            "{{\"clean\": {}, \"corrupt_detected\": {}, \"missed\": {}}}",
            self.clean, self.corrupt_detected, self.missed
        )
    }
}

/// Per-phase results within one profile run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseReport {
    /// Phase name from the spec.
    pub name: String,
    /// Operations completed (excludes rejected submissions).
    pub ops_done: u64,
    /// Submissions rejected by admission control during this phase.
    pub rejected: u64,
    /// Requests that expired in queue during this phase.
    pub expired: u64,
    /// Phase wall-clock, seconds.
    pub wall_s: f64,
    /// Completed operations per second.
    pub ops_per_s: f64,
    /// Payload throughput, MiB/s (data bytes of completed ops).
    pub mib_s: f64,
    /// Milliseconds from phase start until the last coordinator policy
    /// change triggered by this phase's load (`None` when no shard's
    /// coordinator changed policy — e.g. the load didn't shift regimes).
    pub convergence_ms: Option<f64>,
    /// Worker deaths observed during the phase (chaos evidence).
    pub worker_deaths: u64,
    /// Scrub outcomes within the phase.
    pub scrubs: ScrubOutcomes,
    /// Client-observed per-class latency within the phase.
    pub classes: Vec<ClassReport>,
}

impl PhaseReport {
    fn to_json(&self) -> String {
        let classes: Vec<String> = self.classes.iter().map(ClassReport::to_json).collect();
        format!(
            "{{\"name\": \"{}\", \"ops_done\": {}, \"rejected\": {}, \"expired\": {}, \"wall_s\": {:.4}, \"ops_per_s\": {:.1}, \"mib_s\": {:.2}, \"convergence_ms\": {}, \"worker_deaths\": {}, \"scrubs\": {}, \"classes\": [{}]}}",
            escape(&self.name),
            self.ops_done,
            self.rejected,
            self.expired,
            self.wall_s,
            self.ops_per_s,
            self.mib_s,
            fmt_opt(self.convergence_ms),
            self.worker_deaths,
            self.scrubs.to_json(),
            classes.join(", ")
        )
    }
}

/// Final service-side counter snapshot for one profile run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceSummary {
    /// Requests admitted.
    pub submitted: u64,
    /// Responses delivered.
    pub completed: u64,
    /// Admission rejections.
    pub rejected: u64,
    /// Deadline expiries.
    pub expired: u64,
    /// Load-aware spills to the neighbour shard.
    pub spilled: u64,
    /// Fused batches dispatched.
    pub batches: u64,
    /// Requests carried by those batches.
    pub coalesced: u64,
    /// Batch-level failures retried request-by-request.
    pub fallbacks: u64,
    /// Queue-depth high-water mark per shard.
    pub queue_peak: Vec<usize>,
}

impl ServiceSummary {
    fn to_json(&self) -> String {
        let peaks: Vec<String> = self.queue_peak.iter().map(usize::to_string).collect();
        format!(
            "{{\"submitted\": {}, \"completed\": {}, \"rejected\": {}, \"expired\": {}, \"spilled\": {}, \"batches\": {}, \"coalesced\": {}, \"fallbacks\": {}, \"queue_peak\": [{}]}}",
            self.submitted,
            self.completed,
            self.rejected,
            self.expired,
            self.spilled,
            self.batches,
            self.coalesced,
            self.fallbacks,
            peaks.join(", ")
        )
    }
}

/// The complete result of replaying one profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Profile name (`steady`, `skewed_bursty`, `chaos`, …).
    pub profile: String,
    /// Spec seed (reproduces the trace).
    pub seed: u64,
    /// Data blocks per stripe.
    pub k: usize,
    /// Parity blocks per stripe.
    pub m: usize,
    /// Service shards.
    pub shards: usize,
    /// Workers per shard.
    pub threads_per_shard: usize,
    /// Tenants offering load.
    pub tenants: u32,
    /// Operations completed across all phases.
    pub ops: u64,
    /// Total wall-clock, seconds.
    pub wall_s: f64,
    /// Overall completed operations per second.
    pub ops_per_s: f64,
    /// Overall payload throughput, MiB/s.
    pub mib_s: f64,
    /// Convergence time of the *last* phase that both shifted the load
    /// and produced a coordinator policy change (`None` when no shift
    /// re-converged — single-phase profiles usually report `None`).
    pub convergence_after_shift_ms: Option<f64>,
    /// Scrub outcomes across all phases.
    pub scrubs: ScrubOutcomes,
    /// Client-observed per-class latency across all phases.
    pub classes: Vec<ClassReport>,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseReport>,
    /// Final service counter snapshot.
    pub service: ServiceSummary,
}

impl RunReport {
    /// Fold phase tallies into the profile-level totals (ops, scrubs,
    /// rejected/expired come from phases; rates need `wall_s` set).
    pub fn fold_phases(&mut self) {
        self.ops = self.phases.iter().map(|p| p.ops_done).sum();
        let mut scrubs = ScrubOutcomes::default();
        for phase in &self.phases {
            scrubs.add(&phase.scrubs);
        }
        self.scrubs = scrubs;
        self.convergence_after_shift_ms = self
            .phases
            .iter()
            .skip(1)
            .rev()
            .find_map(|p| p.convergence_ms);
        if self.wall_s > 0.0 {
            self.ops_per_s = self.ops as f64 / self.wall_s;
        }
    }

    /// This profile's JSON object (one element of the artifact's
    /// `profiles` array).
    pub fn to_json(&self) -> String {
        let classes: Vec<String> = self.classes.iter().map(ClassReport::to_json).collect();
        let phases: Vec<String> = self.phases.iter().map(PhaseReport::to_json).collect();
        format!(
            "    {{\n      \"profile\": \"{}\", \"seed\": {}, \"k\": {}, \"m\": {}, \"shards\": {}, \"threads_per_shard\": {}, \"tenants\": {},\n      \"ops\": {}, \"wall_s\": {:.4}, \"ops_per_s\": {:.1}, \"mib_s\": {:.2},\n      \"convergence_after_shift_ms\": {},\n      \"scrubs\": {},\n      \"classes\": [\n        {}\n      ],\n      \"phases\": [\n        {}\n      ],\n      \"service\": {}\n    }}",
            escape(&self.profile),
            self.seed,
            self.k,
            self.m,
            self.shards,
            self.threads_per_shard,
            self.tenants,
            self.ops,
            self.wall_s,
            self.ops_per_s,
            self.mib_s,
            fmt_opt(self.convergence_after_shift_ms),
            self.scrubs.to_json(),
            classes.join(",\n        "),
            phases.join(",\n        "),
            self.service.to_json()
        )
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "null".to_string(),
    }
}

/// Results of the raw-pool replay (no service layer): fused encode
/// batches driven closed-loop straight into an [`EncodePool`].
///
/// [`EncodePool`]: dialga::pool::EncodePool
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolReport {
    /// Stripes encoded.
    pub ops: u64,
    /// Stripes per fused batch.
    pub batch: usize,
    /// Wall-clock, seconds.
    pub wall_s: f64,
    /// Stripes per second.
    pub ops_per_s: f64,
    /// Data throughput, MiB/s.
    pub mib_s: f64,
    /// Median fused-batch latency, µs.
    pub p50_batch_us: f64,
    /// 99th-percentile fused-batch latency, µs.
    pub p99_batch_us: f64,
    /// Worker deaths over the run (non-zero only under chaos).
    pub worker_deaths: u64,
}

impl PoolReport {
    fn to_json(&self) -> String {
        format!(
            "{{\"ops\": {}, \"batch\": {}, \"wall_s\": {:.4}, \"ops_per_s\": {:.1}, \"mib_s\": {:.2}, \"p50_batch_us\": {:.1}, \"p99_batch_us\": {:.1}, \"worker_deaths\": {}}}",
            self.ops,
            self.batch,
            self.wall_s,
            self.ops_per_s,
            self.mib_s,
            self.p50_batch_us,
            self.p99_batch_us,
            self.worker_deaths
        )
    }
}

/// Assemble the full `BENCH_PRn.json` artifact for a set of profile
/// runs, plus the optional raw-pool baseline row.
pub fn bench_json(
    pr: u32,
    smoke: bool,
    profiles: &[RunReport],
    pool: Option<&PoolReport>,
) -> String {
    let rows: Vec<String> = profiles.iter().map(RunReport::to_json).collect();
    let pool_row = match pool {
        Some(p) => format!(",\n  \"pool\": {}", p.to_json()),
        None => String::new(),
    };
    format!(
        "{{\n  \"bench\": \"workload\",\n  \"pr\": {},\n  \"smoke\": {},\n  \"unit\": \"ops/s, MiB/s, us\",\n  \"profiles\": [\n{}\n  ]{}\n}}\n",
        pr,
        smoke,
        rows.join(",\n"),
        pool_row
    )
}

/// One crash-recovery sweep row: a single geometry driven through many
/// seeded crash points, each followed by a timed `StripeStore::open`
/// (recovery + boot scrub). Emitted under `"bench": "recovery"`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryRow {
    /// Data shards per stripe.
    pub k: usize,
    /// Parity shards per stripe.
    pub m: usize,
    /// Stripes in the store image.
    pub stripes: usize,
    /// Shard payload length, bytes.
    pub shard_len: usize,
    /// Crash points injected (one recovery per crash).
    pub crashes: u64,
    /// Persist boundaries in one full write cycle (the crash-point space).
    pub boundaries: u64,
    /// Mean `recovery_ns` across all recoveries of this row.
    pub recovery_ns_mean: f64,
    /// Worst `recovery_ns` across all recoveries of this row.
    pub recovery_ns_max: u64,
    /// Stripes rolled back (torn shadow slot discarded) across the sweep.
    pub stripes_rolled_back: u64,
    /// Stripes rolled forward (intact slot re-committed) across the sweep.
    pub stripes_rolled_forward: u64,
    /// Shards re-derived by the boot scrub across the sweep.
    pub shards_repaired: u64,
    /// Recovered images that were neither the old nor the new stripe —
    /// must be zero; non-zero means the commit protocol tore.
    pub torn_hybrid: u64,
}

impl RecoveryRow {
    fn to_json(&self) -> String {
        format!(
            "    {{\"k\": {}, \"m\": {}, \"stripes\": {}, \"shard_len\": {}, \"crashes\": {}, \"boundaries\": {}, \"recovery_ns_mean\": {:.1}, \"recovery_ns_max\": {}, \"stripes_rolled_back\": {}, \"stripes_rolled_forward\": {}, \"shards_repaired\": {}, \"torn_hybrid\": {}}}",
            self.k,
            self.m,
            self.stripes,
            self.shard_len,
            self.crashes,
            self.boundaries,
            self.recovery_ns_mean,
            self.recovery_ns_max,
            self.stripes_rolled_back,
            self.stripes_rolled_forward,
            self.shards_repaired,
            self.torn_hybrid
        )
    }
}

/// Assemble a `"bench": "recovery"` artifact (`BENCH_PR10.json`).
pub fn recovery_json(pr: u32, smoke: bool, rows: &[RecoveryRow]) -> String {
    let body: Vec<String> = rows.iter().map(RecoveryRow::to_json).collect();
    format!(
        "{{\n  \"bench\": \"recovery\",\n  \"pr\": {},\n  \"smoke\": {},\n  \"unit\": \"ns, crash counts\",\n  \"results\": [\n{}\n  ]\n}}\n",
        pr,
        smoke,
        body.join(",\n")
    )
}

fn want_num(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{ctx}: missing numeric `{key}`"))
}

fn want_str<'j>(obj: &'j Json, key: &str, ctx: &str) -> Result<&'j str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: missing string `{key}`"))
}

fn want_arr<'j>(obj: &'j Json, key: &str, ctx: &str) -> Result<&'j [Json], String> {
    obj.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: missing array `{key}`"))
}

fn check_class(class: &Json, ctx: &str) -> Result<(), String> {
    let op = want_str(class, "op", ctx)?;
    let ctx = format!("{ctx} class `{op}`");
    want_num(class, "count", &ctx)?;
    want_num(class, "mean_us", &ctx)?;
    let p50 = want_num(class, "p50_us", &ctx)?;
    let p99 = want_num(class, "p99_us", &ctx)?;
    let p999 = want_num(class, "p999_us", &ctx)?;
    want_num(class, "max_us", &ctx)?;
    if p50 > p99 || p99 > p999 {
        return Err(format!(
            "{ctx}: quantiles not monotone (p50 {p50}, p99 {p99}, p999 {p999})"
        ));
    }
    Ok(())
}

/// Validate a `"bench": "workload"` artifact against the PR 7 schema.
/// Returns the profile names on success.
pub fn validate_workload(doc: &Json) -> Result<Vec<String>, String> {
    if want_str(doc, "bench", "root")? != "workload" {
        return Err("root: `bench` is not \"workload\"".to_string());
    }
    want_num(doc, "pr", "root")?;
    if !matches!(doc.get("smoke"), Some(Json::Bool(_))) {
        return Err("root: missing boolean `smoke`".to_string());
    }
    let profiles = want_arr(doc, "profiles", "root")?;
    if profiles.is_empty() {
        return Err("root: `profiles` is empty".to_string());
    }
    let mut names = Vec::new();
    for profile in profiles {
        let name = want_str(profile, "profile", "profile")?.to_string();
        let ctx = format!("profile `{name}`");
        for key in ["seed", "k", "m", "shards", "threads_per_shard", "tenants"] {
            want_num(profile, key, &ctx)?;
        }
        want_num(profile, "ops", &ctx)?;
        want_num(profile, "wall_s", &ctx)?;
        want_num(profile, "ops_per_s", &ctx)?;
        want_num(profile, "mib_s", &ctx)?;
        match profile.get("convergence_after_shift_ms") {
            Some(v) if v.is_null() || v.as_f64().is_some() => {}
            _ => return Err(format!("{ctx}: missing `convergence_after_shift_ms`")),
        }
        let scrubs = profile
            .get("scrubs")
            .ok_or_else(|| format!("{ctx}: missing `scrubs`"))?;
        for key in ["clean", "corrupt_detected", "missed"] {
            want_num(scrubs, key, &format!("{ctx} scrubs"))?;
        }
        let classes = want_arr(profile, "classes", &ctx)?;
        if classes.is_empty() {
            return Err(format!("{ctx}: `classes` is empty"));
        }
        for class in classes {
            check_class(class, &ctx)?;
        }
        let phases = want_arr(profile, "phases", &ctx)?;
        if phases.is_empty() {
            return Err(format!("{ctx}: `phases` is empty"));
        }
        for phase in phases {
            let pname = want_str(phase, "name", &format!("{ctx} phase"))?;
            let pctx = format!("{ctx} phase `{pname}`");
            for key in ["ops_done", "wall_s", "ops_per_s", "mib_s"] {
                want_num(phase, key, &pctx)?;
            }
        }
        profile
            .get("service")
            .ok_or_else(|| format!("{ctx}: missing `service`"))?;
        names.push(name);
    }
    if let Some(pool) = doc.get("pool") {
        for key in ["ops", "ops_per_s", "mib_s", "p50_batch_us", "p99_batch_us"] {
            want_num(pool, key, "pool")?;
        }
    }
    Ok(names)
}

/// One trajectory row distilled from any known artifact kind.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryRow {
    /// The artifact's `bench` kind.
    pub kind: String,
    /// Headline throughput for cross-PR comparison.
    pub headline: String,
    /// Tail-latency summary when the kind records one.
    pub tail: String,
}

/// Validate any known artifact kind and distill its trajectory row.
/// Unknown kinds and schema drift are hard errors — that is the point.
pub fn validate_artifact(doc: &Json) -> Result<TrajectoryRow, String> {
    let kind = want_str(doc, "bench", "root")?.to_string();
    match kind.as_str() {
        "kernel_fusion" => {
            let results = want_arr(doc, "results", "root")?;
            if results.is_empty() {
                return Err("kernel_fusion: empty `results`".to_string());
            }
            let mut best = 0.0f64;
            let mut sum = 0.0;
            for row in results {
                let fused = want_num(row, "fused_gibs", "kernel_fusion result")?;
                want_num(row, "per_row_gibs", "kernel_fusion result")?;
                want_num(row, "speedup", "kernel_fusion result")?;
                best = best.max(fused);
                sum += fused;
            }
            Ok(TrajectoryRow {
                kind,
                headline: format!(
                    "fused {:.1} GiB/s mean, {best:.1} peak ({} configs)",
                    sum / results.len() as f64,
                    results.len()
                ),
                tail: "-".to_string(),
            })
        }
        "service_bench" => {
            let results = want_arr(doc, "results", "root")?;
            if results.is_empty() {
                return Err("service_bench: empty `results`".to_string());
            }
            let mut best_ops = 0.0f64;
            let mut p99_at_best = 0.0f64;
            for row in results {
                let ops = want_num(row, "ops_per_s", "service_bench result")?;
                let p99 = want_num(row, "p99_us", "service_bench result")?;
                if ops > best_ops {
                    best_ops = ops;
                    p99_at_best = p99;
                }
            }
            Ok(TrajectoryRow {
                kind,
                headline: format!("best {best_ops:.0} ops/s"),
                tail: format!("p99 {p99_at_best:.0} us at best shard count"),
            })
        }
        "workload" => {
            let names = validate_workload(doc)?;
            let profiles = want_arr(doc, "profiles", "root")?;
            let mut parts = Vec::new();
            let mut tails = Vec::new();
            for profile in profiles {
                let name = want_str(profile, "profile", "profile")?;
                let ops = want_num(profile, "ops_per_s", "profile")?;
                parts.push(format!("{name} {ops:.0} ops/s"));
                if let Some(classes) = profile.get("classes").and_then(Json::as_arr) {
                    for class in classes {
                        if class.get("op").and_then(Json::as_str) == Some("encode") {
                            if let Some(p99) = class.get("p99_us").and_then(Json::as_f64) {
                                tails.push(format!("{name} enc p99 {p99:.0} us"));
                            }
                        }
                    }
                }
            }
            let _ = names;
            Ok(TrajectoryRow {
                kind,
                headline: parts.join(", "),
                tail: tails.join(", "),
            })
        }
        "xor_opt" => {
            let results = want_arr(doc, "results", "root")?;
            if results.is_empty() {
                return Err("xor_opt: empty `results`".to_string());
            }
            let mut improved = 0usize;
            let mut total_naive = 0.0f64;
            let mut total_opt = 0.0f64;
            let mut best_gibs = 0.0f64;
            for row in results {
                let family = want_str(row, "family", "xor_opt result")?;
                let ctx = format!("xor_opt `{family}`");
                want_num(row, "k", &ctx)?;
                want_num(row, "m", &ctx)?;
                let naive_xors = want_num(row, "naive_xors", &ctx)?;
                let opt_xors = want_num(row, "opt_xors", &ctx)?;
                want_num(row, "naive_gibs", &ctx)?;
                let opt_gibs = want_num(row, "opt_gibs", &ctx)?;
                match row.get("fused_rs_gibs") {
                    Some(v) if v.is_null() || v.as_f64().is_some() => {}
                    _ => return Err(format!("{ctx}: missing `fused_rs_gibs`")),
                }
                // The optimizer must never make a schedule worse: its
                // candidate set includes the input schedule.
                if opt_xors > naive_xors {
                    return Err(format!(
                        "{ctx}: optimizer increased XOR count ({naive_xors} -> {opt_xors})"
                    ));
                }
                if opt_xors < naive_xors {
                    improved += 1;
                }
                total_naive += naive_xors;
                total_opt += opt_xors;
                best_gibs = best_gibs.max(opt_gibs);
            }
            // PR 9 acceptance: the pass pipeline must strictly reduce the
            // XOR count on at least three zoo families.
            if improved < 3 {
                return Err(format!(
                    "xor_opt: only {improved} families improved (need >= 3)"
                ));
            }
            let reduction = 100.0 * (1.0 - total_opt / total_naive.max(1.0));
            Ok(TrajectoryRow {
                kind,
                headline: format!(
                    "xor count -{reduction:.1}% over {} families, opt peak {best_gibs:.1} GiB/s",
                    results.len()
                ),
                tail: format!("{improved}/{} families strictly improved", results.len()),
            })
        }
        "recovery" => {
            let results = want_arr(doc, "results", "root")?;
            if results.is_empty() {
                return Err("recovery: empty `results`".to_string());
            }
            let mut crashes = 0u64;
            let mut rolled_back = 0u64;
            let mut rolled_forward = 0u64;
            let mut repaired = 0u64;
            let mut worst_ns = 0.0f64;
            for row in results {
                let k = want_num(row, "k", "recovery result")?;
                let m = want_num(row, "m", "recovery result")?;
                let ctx = format!("recovery ({k},{m})");
                want_num(row, "stripes", &ctx)?;
                want_num(row, "shard_len", &ctx)?;
                let row_crashes = want_num(row, "crashes", &ctx)?;
                want_num(row, "boundaries", &ctx)?;
                let mean = want_num(row, "recovery_ns_mean", &ctx)?;
                let max = want_num(row, "recovery_ns_max", &ctx)?;
                rolled_back += want_num(row, "stripes_rolled_back", &ctx)? as u64;
                rolled_forward += want_num(row, "stripes_rolled_forward", &ctx)? as u64;
                repaired += want_num(row, "shards_repaired", &ctx)? as u64;
                let torn = want_num(row, "torn_hybrid", &ctx)?;
                // Correctness gates, not schema: any hybrid image means the
                // commit-record protocol failed, and a row with no crashes
                // measured nothing.
                if torn != 0.0 {
                    return Err(format!("{ctx}: {torn} torn-hybrid recoveries (must be 0)"));
                }
                if row_crashes <= 0.0 {
                    return Err(format!("{ctx}: zero crashes injected"));
                }
                if mean > max {
                    return Err(format!(
                        "{ctx}: recovery_ns_mean {mean} exceeds recovery_ns_max {max}"
                    ));
                }
                crashes += row_crashes as u64;
                worst_ns = worst_ns.max(max);
            }
            // A sweep where recovery never rolled a stripe either way never
            // actually exercised the protocol.
            if rolled_back + rolled_forward == 0 {
                return Err("recovery: no stripe ever rolled back or forward".to_string());
            }
            Ok(TrajectoryRow {
                kind,
                headline: format!(
                    "{crashes} crashes over {} geometries, 0 hybrid images",
                    results.len()
                ),
                tail: format!(
                    "rolled back {rolled_back} / forward {rolled_forward}, {repaired} shards re-derived, worst recovery {:.0} us",
                    worst_ns / 1_000.0
                ),
            })
        }
        other => Err(format!("unknown bench kind `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_report() -> RunReport {
        let mut encode_ns = vec![10_000u64, 20_000, 30_000, 900_000];
        let mut report = RunReport {
            profile: "steady".to_string(),
            seed: 7,
            k: 6,
            m: 3,
            shards: 2,
            threads_per_shard: 2,
            tenants: 8,
            wall_s: 0.5,
            mib_s: 12.5,
            classes: vec![ClassReport::from_samples("encode", &mut encode_ns)],
            phases: vec![PhaseReport {
                name: "steady".to_string(),
                ops_done: 4,
                wall_s: 0.5,
                ops_per_s: 8.0,
                mib_s: 12.5,
                scrubs: ScrubOutcomes {
                    clean: 2,
                    corrupt_detected: 1,
                    missed: 0,
                },
                classes: Vec::new(),
                ..PhaseReport::default()
            }],
            ..RunReport::default()
        };
        report.fold_phases();
        report
    }

    #[test]
    fn class_report_quantiles_are_exact() {
        let mut samples: Vec<u64> = (1..=1000).map(|i| i * 1_000).collect();
        let c = ClassReport::from_samples("encode", &mut samples);
        assert_eq!(c.count, 1000);
        assert_eq!(c.p50_us, 500.0);
        assert_eq!(c.p99_us, 990.0);
        assert_eq!(c.p999_us, 999.0);
        assert_eq!(c.max_us, 1000.0);
        let mut empty = Vec::new();
        let e = ClassReport::from_samples("scrub", &mut empty);
        assert_eq!(e.count, 0);
        assert_eq!(e.p999_us, 0.0);
    }

    #[test]
    fn emitted_artifact_validates_round_trip() {
        let artifact = bench_json(7, true, &[sample_report()], None);
        let doc = parse(&artifact).expect("own emission must parse");
        let names = validate_workload(&doc).expect("own emission must validate");
        assert_eq!(names, vec!["steady".to_string()]);
        let row = validate_artifact(&doc).expect("trajectory row");
        assert_eq!(row.kind, "workload");
        assert!(row.headline.contains("steady"));
    }

    #[test]
    fn validation_rejects_schema_drift() {
        let good = bench_json(7, false, &[sample_report()], None);
        // Drop a required field and the validator must complain.
        let missing_scrubs = good.replace("\"scrubs\"", "\"scrubz\"");
        let doc = parse(&missing_scrubs).expect("still JSON");
        assert!(validate_workload(&doc).is_err(), "renamed field accepted");
        // Non-monotone quantiles are semantic drift, also rejected.
        let bad_q = good.replace("\"p99_us\": 900.0", "\"p99_us\": 1.0");
        let doc = parse(&bad_q).expect("still JSON");
        assert!(
            validate_workload(&doc).is_err(),
            "non-monotone quantiles accepted"
        );
    }

    #[test]
    fn legacy_artifact_kinds_produce_trajectory_rows() {
        let pr4 = parse(
            r#"{"bench": "kernel_fusion", "results": [
                {"k": 4, "m": 2, "block_bytes": 4096, "per_row_gibs": 3.4, "fused_gibs": 9.6, "speedup": 2.8}
            ]}"#,
        )
        .expect("pr4");
        let row = validate_artifact(&pr4).expect("kernel_fusion row");
        assert!(row.headline.contains("peak"));

        let pr6 = parse(
            r#"{"bench": "service_bench", "results": [
                {"shards": 1, "ops_per_s": 19394.8, "p99_us": 3827.8},
                {"shards": 4, "ops_per_s": 21253.4, "p99_us": 790.3}
            ]}"#,
        )
        .expect("pr6");
        let row = validate_artifact(&pr6).expect("service_bench row");
        assert!(row.headline.contains("21253"));
        assert!(validate_artifact(&parse(r#"{"bench": "mystery"}"#).expect("doc")).is_err());
    }

    #[test]
    fn xor_opt_artifact_validates_and_gates() {
        let good = r#"{"bench": "xor_opt", "pr": 9, "smoke": false, "results": [
            {"family": "cauchy-rs(8,4)", "k": 8, "m": 4, "naive_xors": 900, "opt_xors": 600, "naive_gibs": 3.0, "opt_gibs": 4.1, "fused_rs_gibs": 9.0},
            {"family": "raid6(10)", "k": 10, "m": 2, "naive_xors": 300, "opt_xors": 260, "naive_gibs": 5.0, "opt_gibs": 5.6, "fused_rs_gibs": 8.0},
            {"family": "lrc(12,2,2)", "k": 12, "m": 4, "naive_xors": 700, "opt_xors": 540, "naive_gibs": 3.5, "opt_gibs": 4.0, "fused_rs_gibs": null},
            {"family": "wide-cauchy(20,4)", "k": 20, "m": 4, "naive_xors": 2400, "opt_xors": 2400, "naive_gibs": 2.0, "opt_gibs": 2.0, "fused_rs_gibs": 7.0}
        ]}"#;
        let row = validate_artifact(&parse(good).expect("doc")).expect("xor_opt row");
        assert_eq!(row.kind, "xor_opt");
        assert!(row.headline.contains("xor count -"), "{}", row.headline);
        assert!(row.tail.contains("3/4"), "{}", row.tail);

        // An optimizer that *increases* the XOR count is schema-valid data
        // but a broken pass pipeline: hard error.
        let worse = good.replace("\"opt_xors\": 600", "\"opt_xors\": 901");
        assert!(validate_artifact(&parse(&worse).expect("doc")).is_err());

        // Fewer than three strictly-improved families fails the PR gate.
        let flat = good
            .replace("\"opt_xors\": 600", "\"opt_xors\": 900")
            .replace("\"opt_xors\": 260", "\"opt_xors\": 300");
        assert!(validate_artifact(&parse(&flat).expect("doc")).is_err());

        // Missing per-family field is schema drift.
        let drift = good.replace("\"naive_gibs\"", "\"naive_gibz\"");
        assert!(validate_artifact(&parse(&drift).expect("doc")).is_err());
    }

    #[test]
    fn recovery_artifact_validates_and_gates() {
        let rows = vec![
            RecoveryRow {
                k: 4,
                m: 2,
                stripes: 8,
                shard_len: 256,
                crashes: 64,
                boundaries: 4,
                recovery_ns_mean: 41_000.0,
                recovery_ns_max: 90_000,
                stripes_rolled_back: 11,
                stripes_rolled_forward: 20,
                shards_repaired: 0,
                torn_hybrid: 0,
            },
            RecoveryRow {
                k: 10,
                m: 4,
                stripes: 4,
                shard_len: 512,
                crashes: 32,
                boundaries: 4,
                recovery_ns_mean: 120_000.0,
                recovery_ns_max: 300_000,
                stripes_rolled_back: 5,
                stripes_rolled_forward: 9,
                shards_repaired: 6,
                torn_hybrid: 0,
            },
        ];
        let good = recovery_json(10, false, &rows);
        let row = validate_artifact(&parse(&good).expect("doc")).expect("recovery row");
        assert_eq!(row.kind, "recovery");
        assert!(row.headline.contains("96 crashes"), "{}", row.headline);
        assert!(row.tail.contains("6 shards"), "{}", row.tail);

        // A hybrid image is a protocol failure, not data: hard error.
        let hybrid = good.replace("\"torn_hybrid\": 0}", "\"torn_hybrid\": 1}");
        assert!(validate_artifact(&parse(&hybrid).expect("doc")).is_err());

        // A sweep that never rolled a stripe exercised nothing.
        let inert = good
            .replace("\"stripes_rolled_back\": 11", "\"stripes_rolled_back\": 0")
            .replace(
                "\"stripes_rolled_forward\": 20",
                "\"stripes_rolled_forward\": 0",
            )
            .replace("\"stripes_rolled_back\": 5", "\"stripes_rolled_back\": 0")
            .replace(
                "\"stripes_rolled_forward\": 9",
                "\"stripes_rolled_forward\": 0",
            );
        assert!(validate_artifact(&parse(&inert).expect("doc")).is_err());

        // Zero crashes and missing fields are both drift.
        let idle = good.replace("\"crashes\": 64", "\"crashes\": 0");
        assert!(validate_artifact(&parse(&idle).expect("doc")).is_err());
        let drift = good.replace("\"recovery_ns_mean\"", "\"recovery_ms_mean\"");
        assert!(validate_artifact(&parse(&drift).expect("doc")).is_err());
    }

    #[test]
    fn fold_phases_picks_latest_shift_convergence() {
        let mut report = sample_report();
        report.phases.push(PhaseReport {
            name: "shift".to_string(),
            ops_done: 2,
            convergence_ms: Some(12.0),
            ..PhaseReport::default()
        });
        report.phases.push(PhaseReport {
            name: "tail".to_string(),
            ops_done: 2,
            convergence_ms: None,
            ..PhaseReport::default()
        });
        report.fold_phases();
        assert_eq!(report.convergence_after_shift_ms, Some(12.0));
        assert_eq!(report.ops, 8);
        // Phase 0's convergence (if any) is warm-up, not a shift.
        report.phases[0].convergence_ms = Some(99.0);
        report.phases[1].convergence_ms = None;
        report.fold_phases();
        assert_eq!(report.convergence_after_shift_ms, None);
    }
}
