//! Property-based tests for the scheduler and the persistent encode pool:
//! the hill climber, the Eq. (1) bound, the prefetch-pointer construction
//! and the coordinator must be robust to arbitrary inputs, and pool
//! encoding must be bit-exact with serial encoding for every geometry.
//!
//! Randomized with the in-tree deterministic harness (`dialga-testkit`).

use dialga::coordinator::{eq1_max_distance, Coordinator};
use dialga::encoder::Dialga;
use dialga::hillclimb::HillClimber;
use dialga::operator::build_prefetch_ptrs;
use dialga::pool::{split_ranges, EncodePool, StripeJob, CHUNK_ALIGN};
use dialga_memsim::{Counters, MachineConfig};
use dialga_testkit::run_cases;

/// The climber's candidate never leaves its bounds, for any objective.
#[test]
fn hillclimber_stays_in_bounds() {
    run_cases(64, |rng| {
        let init = rng.range_u32(1, 500);
        let min = rng.range_u32(1, 100);
        let max = min + rng.range_u32(0, 400);
        let n = rng.range(1, 120);
        let mut hc = HillClimber::new(init, min, max);
        for _ in 0..n {
            let d = hc.current();
            assert!(
                (min..=max).contains(&d),
                "candidate {d} out of [{min}, {max}]"
            );
            hc.observe(rng.range_f64(0.0, 1e6));
        }
    });
}

/// On a deterministic objective the climber settles in bounded time, at a
/// point no worse than its start.
#[test]
fn hillclimber_settles_and_never_regresses() {
    run_cases(64, |rng| {
        let init = rng.range_u32(1, 256);
        let opt = rng.range_u32(1, 256);
        let f = |d: u32| {
            let x = d as f64 - opt as f64;
            10.0 + x * x
        };
        let mut hc = HillClimber::new(init, 1, 256);
        let start_score = f(init);
        for _ in 0..400 {
            if hc.settled() {
                break;
            }
            let d = hc.current();
            hc.observe(f(d));
        }
        assert!(hc.settled(), "no convergence from {init} toward {opt}");
        assert!(f(hc.current()) <= start_score + 1e-9);
    });
}

/// Eq. (1): monotone non-increasing in threads and unit size; never below
/// its floor (k); always a sane value.
#[test]
fn eq1_bound_monotone() {
    run_cases(64, |rng| {
        let threads = rng.range(1, 32);
        let k = rng.range(1, 128);
        let buffer = rng.range_u64(1, 1024) * 1024;
        let unit = [256u64, 512, 1024][rng.range(0, 3)];
        let d = eq1_max_distance(threads, k, buffer, unit);
        assert!(d >= k.min(4096) as u32);
        assert!(d <= 4096);
        assert!(eq1_max_distance(threads + 1, k, buffer, unit) <= d);
        assert!(eq1_max_distance(threads, k, buffer, unit * 2) <= d);
    });
}

/// Prefetch-pointer coverage: over a whole stripe, every step except the
/// d-length warm-up is targeted exactly once, in bounds, for any
/// (k, rows, d, shuffle).
#[test]
fn prefetch_ptrs_cover_exactly_once() {
    run_cases(64, |rng| {
        let k = rng.range(1, 32);
        let rows = 1u64 << rng.range(0, 7);
        let d = rng.range_u32(1, 300);
        let shuffled = rng.bool();
        let total = rows * k as u64;
        let mut seen = std::collections::HashSet::new();
        for row in 0..rows {
            for p in build_prefetch_ptrs(row, k, rows, d, shuffled)
                .into_iter()
                .flatten()
            {
                assert!(p.block < k);
                assert!(p.row < rows);
                assert!(seen.insert((p.block, p.row)), "duplicate {p:?}");
            }
        }
        assert_eq!(seen.len() as u64, total.saturating_sub(d as u64));
    });
}

/// `build_prefetch_ptrs` past the end of the stripe: when the distance
/// exceeds the remaining steps (including d > rows * k, where the warm-up
/// swallows the whole stripe), the pointers must be empty rather than out
/// of bounds.
#[test]
fn prefetch_ptrs_beyond_stripe_are_empty() {
    run_cases(64, |rng| {
        let k = rng.range(1, 16);
        let rows = rng.range_u64(1, 32);
        let total = rows * k as u64;
        // Distances at and beyond the stripe total.
        let d = total as u32 + rng.range_u32(0, 1000);
        let shuffled = rng.bool();
        for row in 0..rows {
            let ptrs = build_prefetch_ptrs(row, k, rows, d, shuffled);
            assert!(
                ptrs.into_iter().flatten().next().is_none(),
                "d={d} >= total={total} must prefetch nothing (row {row})"
            );
        }
    });
}

/// The coordinator never panics and never violates the Eq. (1) bound for
/// arbitrary counter streams.
#[test]
fn coordinator_robust_to_arbitrary_counters() {
    run_cases(64, |rng| {
        let k = rng.range(1, 64);
        let m = rng.range(1, 8);
        let threads = rng.range(1, 20);
        let steps = rng.range(1, 40);
        let cfg = MachineConfig::pm();
        let mut coord = Coordinator::new(k, m, 1024, threads, &cfg);
        coord.set_sample_interval(100.0);
        let mut ctr = Counters::default();
        let mut now = 0.0;
        for _ in 0..steps {
            ctr.loads += rng.range_u64(1, 10_000);
            ctr.demand_stall_ns += rng.range_f64(0.0, 1e7);
            let useless = rng.range_u64(0, 5_000);
            ctr.useless_prefetches += useless;
            ctr.hw_prefetches += useless + 1;
            now += 150.0;
            coord.on_tick(now, &ctr);
            let p = coord.policy();
            if let Some(d) = p.knobs.sw_distance {
                assert!(d <= coord.d_max(), "d {} > bound {}", d, coord.d_max());
            }
            // BF split and shuffle are mutually exclusive by construction.
            if p.knobs.shuffle {
                assert!(p.knobs.bf_first_distance.is_none());
            }
        }
    });
}

/// `split_ranges` partitions exactly, aligned, and evenly for arbitrary
/// lengths and worker counts.
#[test]
fn split_ranges_partitions_evenly() {
    run_cases(128, |rng| {
        let len = rng.range(1, 1 << 20);
        let parts = rng.range(1, 33);
        let ranges = split_ranges(len, parts);
        assert!(!ranges.is_empty());
        assert!(ranges.len() <= parts);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, len);
        for w in ranges.windows(2) {
            assert_eq!(
                w[0].end, w[1].start,
                "gap/overlap at len={len} parts={parts}"
            );
        }
        for r in &ranges[..ranges.len() - 1] {
            assert_eq!(r.end % CHUNK_ALIGN, 0, "interior boundary unaligned");
        }
        let min = ranges.iter().map(|r| r.len()).min().unwrap();
        let max = ranges.iter().map(|r| r.len()).max().unwrap();
        assert!(
            max - min <= CHUNK_ALIGN,
            "uneven split len={len} parts={parts}: min={min} max={max}"
        );
    });
}

/// Pool encoding is bit-exact with serial encoding for arbitrary
/// (k, m, block length, thread count), including unaligned tails, both for
/// single-stripe and batched submission.
#[test]
fn pool_encode_bit_exact_with_serial() {
    run_cases(24, |rng| {
        let k = rng.range(2, 17);
        let m = rng.range(1, 5);
        let threads = rng.range(1, 9);
        // Lengths around chunk boundaries, plus random unaligned tails.
        let len = rng.range(1, 9) * CHUNK_ALIGN + rng.range(0, 260);
        let coder = Dialga::new(k, m).unwrap();
        let data: Vec<Vec<u8>> = (0..k).map(|_| rng.bytes(len)).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = coder.encode_vec(&refs).unwrap();

        let pool = EncodePool::new(threads);
        assert_eq!(
            pool.encode_vec(&coder, &refs).unwrap(),
            serial,
            "k={k} m={m} len={len} threads={threads}"
        );

        // Batched: several stripes of differing lengths in one submission.
        let n_stripes = rng.range(1, 4);
        let stripes_data: Vec<Vec<Vec<u8>>> = (0..n_stripes)
            .map(|_| {
                let l = rng.range(1, 5) * CHUNK_ALIGN + rng.range(0, 300);
                (0..k).map(|_| rng.bytes(l)).collect()
            })
            .collect();
        let expected: Vec<Vec<Vec<u8>>> = stripes_data
            .iter()
            .map(|sd| {
                let r: Vec<&[u8]> = sd.iter().map(|d| d.as_slice()).collect();
                coder.encode_vec(&r).unwrap()
            })
            .collect();
        let mut parity: Vec<Vec<Vec<u8>>> = stripes_data
            .iter()
            .map(|sd| vec![vec![0u8; sd[0].len()]; m])
            .collect();
        {
            let data_refs: Vec<Vec<&[u8]>> = stripes_data
                .iter()
                .map(|sd| sd.iter().map(|d| d.as_slice()).collect())
                .collect();
            let mut parity_refs: Vec<Vec<&mut [u8]>> = parity
                .iter_mut()
                .map(|sp| sp.iter_mut().map(|p| p.as_mut_slice()).collect())
                .collect();
            let mut jobs: Vec<StripeJob<'_, '_>> = data_refs
                .iter()
                .zip(parity_refs.iter_mut())
                .map(|(d, p)| StripeJob {
                    data: d.as_slice(),
                    parity: p.as_mut_slice(),
                })
                .collect();
            pool.encode_batch(&coder, &mut jobs).unwrap();
        }
        assert_eq!(parity, expected, "batch k={k} m={m} threads={threads}");
    });
}

/// Pool decode is bit-exact with serial decode for arbitrary geometry,
/// block length, erasure pattern and thread count. Pools are built once
/// per thread count and reused across every case, so this also exercises
/// queue reuse across decode submissions.
#[test]
fn pool_decode_bit_exact_with_serial() {
    let pools: Vec<EncodePool> = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| EncodePool::new(t))
        .collect();
    run_cases(24, |rng| {
        let k = rng.range(2, 17);
        let m = rng.range(1, 5);
        let len = rng.range(1, 9) * CHUNK_ALIGN + rng.range(0, 260);
        let coder = Dialga::new(k, m).unwrap();
        let data: Vec<Vec<u8>> = (0..k).map(|_| rng.bytes(len)).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = coder.encode_vec(&refs).unwrap();
        let full: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();

        // Random erasure pattern: 1..=m lost blocks, anywhere in the stripe.
        let mut idx: Vec<usize> = (0..k + m).collect();
        rng.shuffle(&mut idx);
        let lost_n = rng.range(1, m + 1);
        let mut erased = full.clone();
        for &i in &idx[..lost_n] {
            erased[i] = None;
        }

        let mut serial = erased.clone();
        coder.decode(&mut serial).unwrap();
        assert_eq!(serial, full, "serial decode k={k} m={m} len={len}");

        for pool in &pools {
            let mut shards = erased.clone();
            pool.decode(&coder, &mut shards).unwrap();
            assert_eq!(
                shards,
                full,
                "pool decode k={k} m={m} len={len} lost={:?} threads={}",
                &idx[..lost_n],
                pool.threads()
            );
        }

        // Single-block repair of a random block agrees with the stripe.
        let target = idx[0];
        let got = pools[rng.range(0, pools.len())]
            .repair(&coder, &erased, target)
            .unwrap();
        assert_eq!(&got, full[target].as_ref().unwrap(), "repair {target}");
    });
}

/// A pool built with a live coordinator drives `on_tick` from the workers:
/// the coordinator samples, at least one policy change is published, and
/// at least one in-flight worker observes the knob switch mid-run.
#[test]
fn pool_coordinator_propagates_policy_changes_to_workers() {
    let (k, m, threads) = (12usize, 4, 2);
    let cfg = MachineConfig::pm();
    let mut coord = Coordinator::new(k, m, 4096, threads, &cfg);
    // Sample (wall-clock ns here) aggressively so a short run takes many
    // samples; the hill climber's Reference -> Probing transition then
    // changes sw_distance deterministically within a few samples.
    coord.set_sample_interval(10_000.0); // 10 us
    let pool = EncodePool::with_coordinator(threads, coord);

    let coder = Dialga::new(k, m).unwrap();
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| {
            (0..64 * 1024)
                .map(|j| ((i * 31 + j * 7) % 256) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let serial = coder.encode_vec(&refs).unwrap();

    let initial = pool.current_knobs();
    let mut submissions = 0u64;
    while submissions < 3000 {
        assert_eq!(pool.encode_vec(&coder, &refs).unwrap(), serial);
        submissions += 1;
        let stats = pool.stats();
        if stats.policy_changes >= 1 && stats.knob_switches >= 1 {
            break;
        }
    }
    let stats = pool.stats();
    assert!(
        pool.coordinator_samples() > 0,
        "workers never drove a coordinator sample"
    );
    assert!(
        stats.policy_changes >= 1,
        "no policy change published after {submissions} submissions"
    );
    assert!(
        stats.knob_switches >= 1,
        "no worker observed a knob switch mid-run"
    );
    assert_ne!(
        pool.current_knobs(),
        initial,
        "published knobs should differ from the initial policy"
    );
    assert!(
        !pool.policy_log().is_empty(),
        "policy log records the change"
    );
    // Adaptation never perturbs correctness.
    assert_eq!(pool.encode_vec(&coder, &refs).unwrap(), serial);
}

/// The decode path sees live coordinator retuning exactly like the encode
/// path: a knob change published mid-run lands in in-flight decode workers
/// (chunk granularity), and every decode stays bit-exact throughout.
#[test]
fn pool_coordinator_retunes_inflight_decodes() {
    let (k, m, threads) = (12usize, 4, 2);
    let cfg = MachineConfig::pm();
    let mut coord = Coordinator::new(k, m, 4096, threads, &cfg);
    coord.set_sample_interval(10_000.0); // 10 us
    let pool = EncodePool::with_coordinator(threads, coord);

    let coder = Dialga::new(k, m).unwrap();
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| {
            (0..64 * 1024)
                .map(|j| ((i * 37 + j * 11) % 256) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = coder.encode_vec(&refs).unwrap();
    let full: Vec<Option<Vec<u8>>> = data
        .iter()
        .cloned()
        .map(Some)
        .chain(parity.into_iter().map(Some))
        .collect();
    let mut erased = full.clone();
    erased[1] = None;
    erased[5] = None;
    erased[13] = None; // data + parity so both decode stages run

    let initial = pool.current_knobs();
    let mut submissions = 0u64;
    while submissions < 3000 {
        let mut shards = erased.clone();
        pool.decode(&coder, &mut shards).unwrap();
        assert_eq!(shards, full);
        submissions += 1;
        let stats = pool.stats();
        if stats.policy_changes >= 1 && stats.knob_switches >= 1 {
            break;
        }
    }
    let stats = pool.stats();
    assert!(
        pool.coordinator_samples() > 0,
        "decode workers never drove a coordinator sample"
    );
    assert!(
        stats.policy_changes >= 1,
        "no policy change published after {submissions} decodes"
    );
    assert!(
        stats.knob_switches >= 1,
        "no decode worker observed a knob switch mid-run"
    );
    assert_ne!(
        pool.current_knobs(),
        initial,
        "published knobs should differ from the initial policy"
    );
    // Retuned knobs never change bytes.
    let mut shards = erased.clone();
    pool.decode(&coder, &mut shards).unwrap();
    assert_eq!(shards, full);
}
