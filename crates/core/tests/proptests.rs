//! Property-based tests for the scheduler: the hill climber, the Eq. (1)
//! bound, the prefetch-pointer construction and the coordinator must be
//! robust to arbitrary inputs.

use dialga::coordinator::{eq1_max_distance, Coordinator};
use dialga::hillclimb::HillClimber;
use dialga::operator::build_prefetch_ptrs;
use dialga_memsim::{Counters, MachineConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The climber's candidate never leaves its bounds, for any objective.
    #[test]
    fn hillclimber_stays_in_bounds(
        init in 1u32..500,
        min in 1u32..100,
        span in 0u32..400,
        scores in proptest::collection::vec(0.0f64..1e6, 1..120),
    ) {
        let max = min + span;
        let mut hc = HillClimber::new(init, min, max);
        for s in scores {
            let d = hc.current();
            prop_assert!((min..=max).contains(&d), "candidate {} out of [{}, {}]", d, min, max);
            hc.observe(s);
        }
    }

    /// On a deterministic objective the climber settles in bounded time,
    /// at a point no worse than its start.
    #[test]
    fn hillclimber_settles_and_never_regresses(
        init in 1u32..256,
        opt in 1u32..256,
    ) {
        let f = |d: u32| {
            let x = d as f64 - opt as f64;
            10.0 + x * x
        };
        let mut hc = HillClimber::new(init, 1, 256);
        let start_score = f(init);
        for _ in 0..400 {
            if hc.settled() {
                break;
            }
            let d = hc.current();
            hc.observe(f(d));
        }
        prop_assert!(hc.settled(), "no convergence from {} toward {}", init, opt);
        prop_assert!(f(hc.current()) <= start_score + 1e-9);
    }

    /// Eq. (1): monotone non-increasing in threads, k, and unit size; never
    /// below its floor (k); always a sane value.
    #[test]
    fn eq1_bound_monotone(
        threads in 1usize..32,
        k in 1usize..128,
        buffer_kib in 1u64..1024,
        unit in prop_oneof![Just(256u64), Just(512), Just(1024)],
    ) {
        let buffer = buffer_kib * 1024;
        let d = eq1_max_distance(threads, k, buffer, unit);
        prop_assert!(d >= k.min(4096) as u32);
        prop_assert!(d <= 4096);
        let d_more_threads = eq1_max_distance(threads + 1, k, buffer, unit);
        prop_assert!(d_more_threads <= d);
        let d_bigger_unit = eq1_max_distance(threads, k, buffer, unit * 2);
        prop_assert!(d_bigger_unit <= d);
    }

    /// Prefetch-pointer coverage: over a whole stripe, every step except
    /// the d-length warm-up is targeted exactly once, in bounds, for any
    /// (k, rows, d, shuffle).
    #[test]
    fn prefetch_ptrs_cover_exactly_once(
        k in 1usize..32,
        rows_pow in 0u32..7, // rows = 2^pow (1..64)
        d in 1u32..300,
        shuffled in any::<bool>(),
    ) {
        let rows = 1u64 << rows_pow;
        let total = rows * k as u64;
        let mut seen = std::collections::HashSet::new();
        for row in 0..rows {
            for p in build_prefetch_ptrs(row, k, rows, d, shuffled).into_iter().flatten() {
                prop_assert!(p.block < k);
                prop_assert!(p.row < rows);
                prop_assert!(seen.insert((p.block, p.row)), "duplicate {:?}", p);
            }
        }
        prop_assert_eq!(seen.len() as u64, total.saturating_sub(d as u64));
    }

    /// The coordinator never panics and never violates the Eq. (1) bound
    /// for arbitrary counter streams.
    #[test]
    fn coordinator_robust_to_arbitrary_counters(
        k in 1usize..64,
        m in 1usize..8,
        threads in 1usize..20,
        steps in proptest::collection::vec((1u64..10_000, 0.0f64..1e7, 0u64..5_000), 1..40),
    ) {
        let cfg = MachineConfig::pm();
        let mut coord = Coordinator::new(k, m, 1024, threads, &cfg);
        coord.set_sample_interval(100.0);
        let mut ctr = Counters::default();
        let mut now = 0.0;
        for (loads, stall, useless) in steps {
            ctr.loads += loads;
            ctr.demand_stall_ns += stall;
            ctr.useless_prefetches += useless;
            ctr.hw_prefetches += useless + 1;
            now += 150.0;
            coord.on_tick(now, &ctr);
            let p = coord.policy();
            if let Some(d) = p.knobs.sw_distance {
                prop_assert!(d <= coord.d_max(), "d {} > bound {}", d, coord.d_max());
            }
            // BF split and shuffle are mutually exclusive by construction.
            if p.knobs.shuffle {
                prop_assert!(p.knobs.bf_first_distance.is_none());
            }
        }
    }
}
