//! Functional DIALGA encoder/decoder on real bytes.
//!
//! Bit-exact with `dialga-ec`'s Reed–Solomon, but organized the way the
//! paper's kernels are: row-major across the k source blocks (64 B per
//! block per step), with the Fig. 9 prefetch-pointer pipeline emitting real
//! `prefetcht0` hints, optional shuffle-mapped row order, and tail rows
//! reverting to the standard kernel. On non-PM hardware these mechanisms
//! are performance-neutral; their *correctness* (identical output under
//! any d/shuffle combination) is what the tests pin down.

use crate::operator::build_prefetch_ptrs;
use dialga_ec::{CodeParams, EcError, ReedSolomon};
use dialga_gf::simd::mul_add_slice_simd;
use dialga_gf::slice::prefetch_read;
use dialga_gf::tables::NibbleTables;

/// Scheduling options for the functional kernels.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DialgaOptions {
    /// Software prefetch distance in row-major cacheline steps
    /// (default: k, the paper's initial value).
    pub prefetch_distance: Option<u32>,
    /// Apply the static shuffle mapping to the row order.
    pub shuffle: bool,
}

/// The DIALGA erasure coder: ISA-L-style table-driven Reed–Solomon with
/// pipelined software prefetching.
///
/// # Examples
///
/// ```
/// use dialga::encoder::{Dialga, DialgaOptions};
///
/// let coder = Dialga::with_options(6, 2, DialgaOptions {
///     prefetch_distance: Some(12), // d = 2k
///     shuffle: false,
/// }).unwrap();
/// let data: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8 * 7; 1024]).collect();
/// let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
/// let parity = coder.encode_vec(&refs).unwrap();
/// assert_eq!(parity.len(), 2);
///
/// // Scheduling options never change the bytes produced.
/// let plain = Dialga::new(6, 2).unwrap();
/// assert_eq!(plain.encode_vec(&refs).unwrap(), parity);
/// ```
#[derive(Debug, Clone)]
pub struct Dialga {
    rs: ReedSolomon,
    /// Precomputed split-nibble tables, `m x k` (ISA-L's `gf_table`).
    tables: Vec<NibbleTables>,
    d: u32,
    shuffle: bool,
}

impl Dialga {
    /// Build RS(k+m, k) with default options.
    pub fn new(k: usize, m: usize) -> Result<Self, EcError> {
        Self::with_options(k, m, DialgaOptions::default())
    }

    /// Build with explicit scheduling options.
    pub fn with_options(k: usize, m: usize, opts: DialgaOptions) -> Result<Self, EcError> {
        let rs = ReedSolomon::new(k, m)?;
        Ok(Self::from_rs(rs, opts))
    }

    /// Wrap an existing Reed–Solomon code.
    pub fn from_rs(rs: ReedSolomon, opts: DialgaOptions) -> Self {
        let params = rs.params();
        let pm = rs.parity_matrix();
        let mut tables = Vec::with_capacity(params.m * params.k);
        for i in 0..params.m {
            for j in 0..params.k {
                tables.push(NibbleTables::new(pm[(i, j)].0));
            }
        }
        Dialga {
            rs,
            tables,
            d: opts.prefetch_distance.unwrap_or(params.k as u32),
            shuffle: opts.shuffle,
        }
    }

    /// Code geometry.
    pub fn params(&self) -> CodeParams {
        self.rs.params()
    }

    /// The prefetch distance in effect.
    pub fn prefetch_distance(&self) -> u32 {
        self.d
    }

    /// The wrapped Reed–Solomon code.
    pub fn inner(&self) -> &ReedSolomon {
        &self.rs
    }

    fn check(&self, data: &[&[u8]], parity_len: usize) -> Result<usize, EcError> {
        let params = self.params();
        if data.len() != params.k {
            return Err(EcError::BlockCount {
                expected: params.k,
                got: data.len(),
            });
        }
        if parity_len != params.m {
            return Err(EcError::BlockCount {
                expected: params.m,
                got: parity_len,
            });
        }
        let len = data[0].len();
        for b in data {
            if b.len() != len {
                return Err(EcError::BlockLength {
                    expected: len,
                    got: b.len(),
                });
            }
        }
        Ok(len)
    }

    /// Row-pipelined multiply-accumulate: `outputs[i] = sum_j T[i][j] src[j]`
    /// walking 64 B rows across all sources, prefetching `d` steps ahead.
    fn pipelined_apply(
        tables: &[NibbleTables],
        sources: &[&[u8]],
        outputs: &mut [&mut [u8]],
        d: u32,
        shuffle: bool,
    ) {
        let k = sources.len();
        let n_out = outputs.len();
        if k == 0 || n_out == 0 {
            return;
        }
        let len = sources[0].len();
        for o in outputs.iter_mut() {
            o.fill(0);
        }
        let rows = (len / 64) as u64;

        for vr in 0..rows {
            let row = if shuffle {
                dialga_pipeline::isal::shuffle_row(vr, rows)
            } else {
                vr
            } as usize;
            // Fig. 9: issue the row's prefetches before touching its data.
            for ptr in build_prefetch_ptrs(vr, k, rows, d, shuffle)
                .into_iter()
                .flatten()
            {
                prefetch_read(sources[ptr.block][(ptr.row as usize) * 64..].as_ptr());
            }
            let off = row * 64;
            for (i, out) in outputs.iter_mut().enumerate() {
                let dst = &mut out[off..off + 64];
                for (j, src) in sources.iter().enumerate() {
                    mul_add_slice_simd(&tables[i * k + j], &src[off..off + 64], dst);
                }
            }
        }

        // Tail: partial final row handled by the standard kernel.
        let tail = (rows as usize) * 64;
        if tail < len {
            for (i, out) in outputs.iter_mut().enumerate() {
                let dst = &mut out[tail..];
                for (j, src) in sources.iter().enumerate() {
                    mul_add_slice_simd(&tables[i * k + j], &src[tail..], dst);
                }
            }
        }
    }

    /// Encode the k data blocks into the m parity blocks.
    pub fn encode(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<(), EcError> {
        self.encode_with(data, parity, self.d, self.shuffle)
    }

    /// Encode with explicit scheduling overrides, ignoring the distance and
    /// shuffle the coder was built with.
    ///
    /// This is the entry point the persistent encode pool uses: the
    /// coordinator retunes `d`/`shuffle` at its sampling interval and
    /// workers pick up the current values per chunk, without rebuilding the
    /// coder (the tables only depend on the code, not the schedule).
    /// Scheduling never changes the bytes produced.
    pub fn encode_with(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
        d: u32,
        shuffle: bool,
    ) -> Result<(), EcError> {
        let len = self.check(data, parity.len())?;
        for p in parity.iter() {
            if p.len() != len {
                return Err(EcError::BlockLength {
                    expected: len,
                    got: p.len(),
                });
            }
        }
        Self::pipelined_apply(&self.tables, data, parity, d, shuffle);
        Ok(())
    }

    /// Convenience encode returning freshly allocated parity.
    pub fn encode_vec(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
        let len = self.check(data, self.params().m)?;
        let mut parity = vec![vec![0u8; len]; self.params().m];
        let mut refs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
        Self::pipelined_apply(&self.tables, data, &mut refs, self.d, self.shuffle);
        Ok(parity)
    }

    /// Reconstruct missing blocks in place (same contract as
    /// [`ReedSolomon::decode`]); lost data blocks are rebuilt with the
    /// pipelined kernel — decoding shares the encode load pattern (§4.1).
    pub fn decode(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        let params = self.params();
        let (k, m) = (params.k, params.m);
        if shards.len() != k + m {
            return Err(EcError::BlockCount {
                expected: k + m,
                got: shards.len(),
            });
        }
        let lost: Vec<usize> = (0..k + m).filter(|&i| shards[i].is_none()).collect();
        if lost.is_empty() {
            return Ok(());
        }
        if lost.len() > m {
            return Err(EcError::TooManyErasures {
                lost: lost.len(),
                tolerance: m,
            });
        }
        let survivors: Vec<usize> = (0..k + m).filter(|&i| shards[i].is_some()).collect();
        let survivors = &survivors[..k];
        let len = shards[survivors[0]].as_ref().unwrap().len();

        let lost_data: Vec<usize> = lost.iter().copied().filter(|&i| i < k).collect();
        if !lost_data.is_empty() {
            let dec = self.rs.decode_matrix(survivors)?;
            let mut tables = Vec::with_capacity(lost_data.len() * k);
            for &ld in &lost_data {
                for col in 0..k {
                    tables.push(NibbleTables::new(dec[(ld, col)].0));
                }
            }
            let srcs: Vec<&[u8]> = survivors
                .iter()
                .map(|&s| shards[s].as_ref().unwrap().as_slice())
                .collect();
            let mut outs = vec![vec![0u8; len]; lost_data.len()];
            {
                let mut refs: Vec<&mut [u8]> = outs.iter_mut().map(|o| o.as_mut_slice()).collect();
                Self::pipelined_apply(&tables, &srcs, &mut refs, self.d, self.shuffle);
            }
            for (&ld, out) in lost_data.iter().zip(outs) {
                shards[ld] = Some(out);
            }
        }

        let lost_parity: Vec<usize> = lost.iter().copied().filter(|&i| i >= k).collect();
        if !lost_parity.is_empty() {
            let data_refs: Vec<&[u8]> = (0..k)
                .map(|i| shards[i].as_ref().unwrap().as_slice())
                .collect();
            let parity = self.encode_vec(&data_refs)?;
            for &lp in &lost_parity {
                shards[lp] = Some(parity[lp - k].clone());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 89 + j * 7 + 3) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn assert_matches_rs(k: usize, m: usize, len: usize, opts: DialgaOptions) {
        let dialga = Dialga::with_options(k, m, opts).unwrap();
        let rs = ReedSolomon::new(k, m).unwrap();
        let data = make_data(k, len);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert_eq!(
            dialga.encode_vec(&refs).unwrap(),
            rs.encode_vec(&refs).unwrap(),
            "k={k} m={m} len={len} opts={opts:?}"
        );
    }

    #[test]
    fn encode_matches_rs_default() {
        assert_matches_rs(4, 2, 1024, DialgaOptions::default());
        assert_matches_rs(12, 4, 4096, DialgaOptions::default());
    }

    #[test]
    fn encode_matches_rs_various_distances() {
        for d in [1u32, 3, 12, 100, 10_000] {
            assert_matches_rs(
                6,
                3,
                2048,
                DialgaOptions {
                    prefetch_distance: Some(d),
                    shuffle: false,
                },
            );
        }
    }

    #[test]
    fn encode_matches_rs_with_shuffle() {
        for len in [64usize, 1024, 4096, 8192] {
            assert_matches_rs(
                8,
                4,
                len,
                DialgaOptions {
                    prefetch_distance: Some(16),
                    shuffle: true,
                },
            );
        }
    }

    #[test]
    fn encode_handles_unaligned_tail() {
        // Lengths that are not multiples of 64 exercise the tail kernel.
        for len in [1usize, 63, 65, 127, 1000] {
            assert_matches_rs(5, 2, len, DialgaOptions::default());
            assert_matches_rs(
                5,
                2,
                len,
                DialgaOptions {
                    prefetch_distance: Some(7),
                    shuffle: true,
                },
            );
        }
    }

    #[test]
    fn decode_roundtrip() {
        let dialga = Dialga::with_options(
            10,
            4,
            DialgaOptions {
                prefetch_distance: Some(20),
                shuffle: true,
            },
        )
        .unwrap();
        let data = make_data(10, 2048);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = dialga.encode_vec(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        shards[0] = None;
        shards[7] = None;
        shards[11] = None; // one parity
        shards[13] = None; // another parity
        dialga.decode(&mut shards).unwrap();
        for (i, d) in data.iter().enumerate() {
            assert_eq!(shards[i].as_ref().unwrap(), d, "data {i}");
        }
        for (i, p) in parity.iter().enumerate() {
            assert_eq!(shards[10 + i].as_ref().unwrap(), p, "parity {i}");
        }
    }

    #[test]
    fn decode_rejects_excess_erasures() {
        let dialga = Dialga::new(4, 2).unwrap();
        let data = make_data(4, 128);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = dialga.encode_vec(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .into_iter()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert!(matches!(
            dialga.decode(&mut shards),
            Err(EcError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn geometry_errors_propagate() {
        assert!(Dialga::new(0, 2).is_err());
        let dialga = Dialga::new(3, 2).unwrap();
        let a = vec![0u8; 64];
        let b = vec![0u8; 64];
        let refs: Vec<&[u8]> = vec![&a, &b]; // k mismatch
        assert!(matches!(
            dialga.encode_vec(&refs),
            Err(EcError::BlockCount { .. })
        ));
    }
}
