//! Functional DIALGA encoder/decoder on real bytes.
//!
//! Bit-exact with `dialga-ec`'s Reed–Solomon, organized the way the
//! paper's kernels are: the fused multi-output dot product
//! ([`dialga_gf::simd::dot_prod_fused`]) loads each 64 B source line once
//! and accumulates it into up to `FUSED_GROUP` register-resident parity
//! rows, with the Fig. 9 prefetch-pointer pipeline emitting real
//! `prefetcht0` hints, the §4.3 long/short distance split, optional
//! shuffle-mapped row order, and tail bytes reverting to the standard
//! kernel. On non-PM hardware these mechanisms are performance-neutral;
//! their *correctness* (identical output under any schedule) is what the
//! tests pin down.

use dialga_ec::{CodeParams, EcError, ReedSolomon};
use dialga_gf::sched::FusedSched;
use dialga_gf::simd::dot_prod_fused;
use dialga_gf::tables::NibbleTables;
use dialga_gf::Gf8;

/// Default bound on batch retries after a worker death/panic (see
/// [`DialgaOptions::max_batch_retries`]).
pub const DEFAULT_BATCH_RETRIES: u32 = 2;

/// Scheduling options for the functional kernels.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DialgaOptions {
    /// Software prefetch distance in row-major cacheline steps
    /// (default: k, the paper's initial value).
    pub prefetch_distance: Option<u32>,
    /// §4.3 longer distance for XPLine-first cachelines (the paper's
    /// `bf_first_distance`, initial value k+4). Only applied when
    /// prefetching is active and `shuffle` is off.
    pub bf_first_distance: Option<u32>,
    /// Apply the static shuffle mapping to the row order.
    pub shuffle: bool,
    /// How many times the persistent pool may *retry* a batch that failed
    /// because a worker died or panicked mid-run, after healing the dead
    /// workers (default: [`DEFAULT_BATCH_RETRIES`]). Retries are safe:
    /// the fused kernel overwrites its outputs, so re-running a batch is
    /// idempotent, and the batch latch quiesces every chunk before a
    /// retry starts. `Some(0)` disables retries (heal-only).
    pub max_batch_retries: Option<u32>,
}

/// Row-pipelined multiply-accumulate: `outputs[i] = sum_j T[i][j] src[j]`
/// via the fused multi-output kernel — every 64 B source line is loaded
/// once per register-blocked output group, prefetched `sched.d` steps
/// ahead (long/short split per `sched.d_long`).
///
/// This is the one kernel every DIALGA path (encode, decode, repair —
/// serial or pool-chunked) bottoms out in; `tables` is row-major,
/// `outputs.len() x sources.len()`. Scheduling never changes the bytes
/// produced.
pub(crate) fn apply_tables(
    tables: &[NibbleTables],
    sources: &[&[u8]],
    outputs: &mut [&mut [u8]],
    sched: FusedSched,
) {
    if outputs.is_empty() {
        return;
    }
    dot_prod_fused(tables, sources, outputs, sched);
}

/// Check that `sources`/`outputs` agree with the table geometry and with
/// each other in length (the apply kernels index without bounds slack).
fn check_apply(
    n_src: usize,
    n_out: usize,
    sources: &[&[u8]],
    outputs: &[&mut [u8]],
) -> Result<(), EcError> {
    if sources.len() != n_src {
        return Err(EcError::BlockCount {
            expected: n_src,
            got: sources.len(),
        });
    }
    if outputs.len() != n_out {
        return Err(EcError::BlockCount {
            expected: n_out,
            got: outputs.len(),
        });
    }
    let len = sources.first().map_or(0, |s| s.len());
    for s in sources {
        if s.len() != len {
            return Err(EcError::BlockLength {
                expected: len,
                got: s.len(),
            });
        }
    }
    for o in outputs {
        if o.len() != len {
            return Err(EcError::BlockLength {
                expected: len,
                got: o.len(),
            });
        }
    }
    Ok(())
}

/// A decode/repair plan: survivor selection and decode-matrix tables,
/// separated from kernel application so the kernel can be chunked across
/// the persistent pool's workers (or applied serially via
/// [`DecodePlan::apply_data`]/[`DecodePlan::apply_parity`]).
///
/// Built by [`Dialga::decode_plan`]. Reconstruction is two stages: lost
/// *data* blocks from the k survivors (inverted-matrix tables), then lost
/// *parity* rows from the completed data (the encode tables' subset for
/// just those rows — never all m rows).
#[derive(Debug, Clone)]
pub struct DecodePlan {
    survivors: Vec<usize>,
    lost_data: Vec<usize>,
    lost_parity: Vec<usize>,
    data_tables: Vec<NibbleTables>,
    parity_tables: Vec<NibbleTables>,
    len: usize,
}

impl DecodePlan {
    /// The k survivor shard indices the data stage reads.
    pub fn survivors(&self) -> &[usize] {
        &self.survivors
    }

    /// Lost data-block indices, ascending.
    pub fn lost_data(&self) -> &[usize] {
        &self.lost_data
    }

    /// Lost parity shard indices (>= k), ascending.
    pub fn lost_parity(&self) -> &[usize] {
        &self.lost_parity
    }

    /// Common shard length (validated over every present shard).
    pub fn shard_len(&self) -> usize {
        self.len
    }

    /// Whether there is nothing to reconstruct.
    pub fn is_noop(&self) -> bool {
        self.lost_data.is_empty() && self.lost_parity.is_empty()
    }

    /// Data-stage tables, `lost_data.len() x survivors.len()` row-major.
    pub(crate) fn data_tables(&self) -> &[NibbleTables] {
        &self.data_tables
    }

    /// Parity-stage tables, `lost_parity.len() x k` row-major.
    pub(crate) fn parity_tables(&self) -> &[NibbleTables] {
        &self.parity_tables
    }

    /// Apply the data stage: reconstruct the lost data blocks from the
    /// survivor slices, in plan order. Slices may be any equal-length
    /// horizontal chunk of the shards (RS is independent per 64 B row).
    pub fn apply_data(
        &self,
        survivors: &[&[u8]],
        outputs: &mut [&mut [u8]],
        d: u32,
        shuffle: bool,
    ) -> Result<(), EcError> {
        check_apply(
            self.survivors.len(),
            self.lost_data.len(),
            survivors,
            outputs,
        )?;
        apply_tables(
            &self.data_tables,
            survivors,
            outputs,
            FusedSched {
                d: Some(d),
                d_long: None,
                shuffle,
            },
        );
        Ok(())
    }

    /// Apply the parity stage: recompute the lost parity rows from the
    /// (complete) k data slices, in plan order.
    pub fn apply_parity(
        &self,
        data: &[&[u8]],
        outputs: &mut [&mut [u8]],
        d: u32,
        shuffle: bool,
    ) -> Result<(), EcError> {
        check_apply(self.survivors.len(), self.lost_parity.len(), data, outputs)?;
        apply_tables(
            &self.parity_tables,
            data,
            outputs,
            FusedSched {
                d: Some(d),
                d_long: None,
                shuffle,
            },
        );
        Ok(())
    }
}

/// A single-block repair plan (the degraded-read fast path): one composed
/// coefficient row over k survivors, built by [`Dialga::repair_plan`].
///
/// Works for any target block — a lost *parity* target with lost data
/// among the non-survivors composes the parity row with the decode matrix
/// (`parity_row · dec`), so the kernel still runs once over k sources.
#[derive(Debug, Clone)]
pub struct RepairPlan {
    survivors: Vec<usize>,
    tables: Vec<NibbleTables>,
}

impl RepairPlan {
    /// The k survivor shard indices the kernel reads, in source order.
    pub fn survivors(&self) -> &[usize] {
        &self.survivors
    }

    /// The composed `1 x k` coefficient tables.
    pub(crate) fn tables(&self) -> &[NibbleTables] {
        &self.tables
    }

    /// Reconstruct the target block (or any equal-length horizontal chunk
    /// of it) from survivor slices in plan order.
    pub fn apply(
        &self,
        sources: &[&[u8]],
        out: &mut [u8],
        d: u32,
        shuffle: bool,
    ) -> Result<(), EcError> {
        let mut outputs = [out];
        check_apply(self.survivors.len(), 1, sources, &outputs)?;
        apply_tables(
            &self.tables,
            sources,
            &mut outputs,
            FusedSched {
                d: Some(d),
                d_long: None,
                shuffle,
            },
        );
        Ok(())
    }
}

/// The DIALGA erasure coder: ISA-L-style table-driven Reed–Solomon with
/// pipelined software prefetching.
///
/// # Examples
///
/// ```
/// use dialga::encoder::{Dialga, DialgaOptions};
///
/// let coder = Dialga::with_options(6, 2, DialgaOptions {
///     prefetch_distance: Some(12),  // d = 2k
///     bf_first_distance: Some(10),  // §4.3 long distance, k + 4
///     shuffle: false,
///     ..Default::default()
/// }).unwrap();
/// let data: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8 * 7; 1024]).collect();
/// let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
/// let parity = coder.encode_vec(&refs).unwrap();
/// assert_eq!(parity.len(), 2);
///
/// // Scheduling options never change the bytes produced.
/// let plain = Dialga::new(6, 2).unwrap();
/// assert_eq!(plain.encode_vec(&refs).unwrap(), parity);
/// ```
#[derive(Debug, Clone)]
pub struct Dialga {
    rs: ReedSolomon,
    /// Precomputed split-nibble tables, `m x k` (ISA-L's `gf_table`).
    tables: Vec<NibbleTables>,
    d: u32,
    d_long: Option<u32>,
    shuffle: bool,
    max_batch_retries: u32,
}

impl Dialga {
    /// Build RS(k+m, k) with default options.
    pub fn new(k: usize, m: usize) -> Result<Self, EcError> {
        Self::with_options(k, m, DialgaOptions::default())
    }

    /// Build with explicit scheduling options.
    pub fn with_options(k: usize, m: usize, opts: DialgaOptions) -> Result<Self, EcError> {
        let rs = ReedSolomon::new(k, m)?;
        Ok(Self::from_rs(rs, opts))
    }

    /// Wrap an existing Reed–Solomon code.
    pub fn from_rs(rs: ReedSolomon, opts: DialgaOptions) -> Self {
        let params = rs.params();
        let pm = rs.parity_matrix();
        let mut tables = Vec::with_capacity(params.m * params.k);
        for i in 0..params.m {
            for j in 0..params.k {
                tables.push(NibbleTables::new(pm[(i, j)].0));
            }
        }
        Dialga {
            rs,
            tables,
            d: opts.prefetch_distance.unwrap_or(params.k as u32),
            d_long: opts.bf_first_distance,
            shuffle: opts.shuffle,
            max_batch_retries: opts.max_batch_retries.unwrap_or(DEFAULT_BATCH_RETRIES),
        }
    }

    /// Code geometry.
    pub fn params(&self) -> CodeParams {
        self.rs.params()
    }

    /// The prefetch distance in effect.
    pub fn prefetch_distance(&self) -> u32 {
        self.d
    }

    /// The §4.3 long distance for XPLine-first cachelines, if enabled.
    pub fn bf_first_distance(&self) -> Option<u32> {
        self.d_long
    }

    /// Bound on pool batch retries after worker death/panic healing.
    pub fn max_batch_retries(&self) -> u32 {
        self.max_batch_retries
    }

    /// The schedule the non-override paths ([`Self::encode`],
    /// [`Self::encode_vec`], [`Self::decode`]) run with.
    fn sched(&self) -> FusedSched {
        FusedSched {
            d: Some(self.d),
            d_long: self.d_long,
            shuffle: self.shuffle,
        }
    }

    /// The wrapped Reed–Solomon code.
    pub fn inner(&self) -> &ReedSolomon {
        &self.rs
    }

    fn check(&self, data: &[&[u8]], parity_len: usize) -> Result<usize, EcError> {
        let params = self.params();
        if data.len() != params.k {
            return Err(EcError::BlockCount {
                expected: params.k,
                got: data.len(),
            });
        }
        if parity_len != params.m {
            return Err(EcError::BlockCount {
                expected: params.m,
                got: parity_len,
            });
        }
        let len = data[0].len();
        for b in data {
            if b.len() != len {
                return Err(EcError::BlockLength {
                    expected: len,
                    got: b.len(),
                });
            }
        }
        Ok(len)
    }

    /// The precomputed `m x k` encode tables (row-major per parity row).
    pub(crate) fn tables(&self) -> &[NibbleTables] {
        &self.tables
    }

    /// Encode the k data blocks into the m parity blocks.
    pub fn encode(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<(), EcError> {
        self.encode_sched(data, parity, self.sched())
    }

    /// Encode with explicit scheduling overrides, ignoring the distance and
    /// shuffle the coder was built with.
    ///
    /// This is the entry point the persistent encode pool uses: the
    /// coordinator retunes `d`/`shuffle` at its sampling interval and
    /// workers pick up the current values per chunk, without rebuilding the
    /// coder (the tables only depend on the code, not the schedule).
    /// Scheduling never changes the bytes produced.
    pub fn encode_with(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
        d: u32,
        shuffle: bool,
    ) -> Result<(), EcError> {
        self.encode_sched(
            data,
            parity,
            FusedSched {
                d: Some(d),
                d_long: None,
                shuffle,
            },
        )
    }

    fn encode_sched(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
        sched: FusedSched,
    ) -> Result<(), EcError> {
        let len = self.check(data, parity.len())?;
        for p in parity.iter() {
            if p.len() != len {
                return Err(EcError::BlockLength {
                    expected: len,
                    got: p.len(),
                });
            }
        }
        apply_tables(&self.tables, data, parity, sched);
        Ok(())
    }

    /// Convenience encode returning freshly allocated parity.
    pub fn encode_vec(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
        let len = self.check(data, self.params().m)?;
        let mut parity = vec![vec![0u8; len]; self.params().m];
        let mut refs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
        apply_tables(&self.tables, data, &mut refs, self.sched());
        Ok(parity)
    }

    /// Build the reconstruction plan for the erasure pattern in `shards`:
    /// validate geometry and every present shard's length, select the k
    /// survivors, invert the decode matrix for lost data rows and subset
    /// the encode tables for lost parity rows.
    pub fn decode_plan(&self, shards: &[Option<Vec<u8>>]) -> Result<DecodePlan, EcError> {
        let params = self.params();
        let (k, m) = (params.k, params.m);
        if shards.len() != k + m {
            return Err(EcError::BlockCount {
                expected: k + m,
                got: shards.len(),
            });
        }
        let lost: Vec<usize> = (0..k + m).filter(|&i| shards[i].is_none()).collect();
        if lost.len() > m {
            return Err(EcError::TooManyErasures {
                lost: lost.len(),
                tolerance: m,
            });
        }
        // Every present shard must agree on length — not just the first
        // survivor. A mismatched survivor would otherwise reach the kernel
        // and panic (or a mismatched non-survivor would silently corrupt a
        // later parity recompute).
        let mut len = 0usize;
        let mut first = true;
        for s in shards.iter().flatten() {
            if first {
                len = s.len();
                first = false;
            } else if s.len() != len {
                return Err(EcError::BlockLength {
                    expected: len,
                    got: s.len(),
                });
            }
        }
        let survivors: Vec<usize> = (0..k + m)
            .filter(|&i| shards[i].is_some())
            .take(k)
            .collect();
        let lost_data: Vec<usize> = lost.iter().copied().filter(|&i| i < k).collect();
        let lost_parity: Vec<usize> = lost.iter().copied().filter(|&i| i >= k).collect();

        let mut data_tables = Vec::with_capacity(lost_data.len() * k);
        if !lost_data.is_empty() {
            let dec = self.rs.decode_matrix(&survivors)?;
            for &ld in &lost_data {
                for col in 0..k {
                    data_tables.push(NibbleTables::new(dec[(ld, col)].0));
                }
            }
        }
        // Only the *lost* parity rows' tables — recomputing all m rows to
        // keep a subset was the old path's wasted work.
        let mut parity_tables = Vec::with_capacity(lost_parity.len() * k);
        for &lp in &lost_parity {
            parity_tables.extend_from_slice(&self.tables[(lp - k) * k..(lp - k + 1) * k]);
        }
        Ok(DecodePlan {
            survivors,
            lost_data,
            lost_parity,
            data_tables,
            parity_tables,
            len,
        })
    }

    /// Build a single-block repair plan: reconstruct block `target` from
    /// the given k survivors (the degraded-read fast path — one kernel
    /// pass, no full-stripe decode).
    ///
    /// For a data target this is one row of the inverted decode matrix;
    /// for a parity target the parity row is composed with the decode
    /// matrix, so it works even when some data blocks are among the
    /// erasures.
    pub fn repair_plan(&self, survivors: &[usize], target: usize) -> Result<RepairPlan, EcError> {
        let params = self.params();
        let (k, m) = (params.k, params.m);
        if target >= k + m {
            return Err(EcError::BlockCount {
                expected: k + m,
                got: target,
            });
        }
        if survivors.contains(&target) {
            return Err(EcError::BlockCount {
                expected: k,
                got: target,
            });
        }
        let dec = self.rs.decode_matrix(survivors)?;
        let mut tables = Vec::with_capacity(k);
        if target < k {
            for col in 0..k {
                tables.push(NibbleTables::new(dec[(target, col)].0));
            }
        } else {
            let pm = self.rs.parity_matrix();
            let row = target - k;
            for col in 0..k {
                let mut c = Gf8::ZERO;
                for j in 0..k {
                    c += pm[(row, j)] * dec[(j, col)];
                }
                tables.push(NibbleTables::new(c.0));
            }
        }
        Ok(RepairPlan {
            survivors: survivors.to_vec(),
            tables,
        })
    }

    /// Reconstruct missing blocks in place (same contract as
    /// [`ReedSolomon::decode`]); lost blocks are rebuilt with the
    /// pipelined kernel — decoding shares the encode load pattern (§4.1).
    pub fn decode(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        self.decode_with(shards, self.d, self.shuffle)
    }

    /// Decode with explicit scheduling overrides, ignoring the distance
    /// and shuffle the coder was built with (mirrors [`Self::encode_with`];
    /// the persistent pool's workers pick up coordinator-retuned values per
    /// chunk through this). Scheduling never changes the bytes produced.
    pub fn decode_with(
        &self,
        shards: &mut [Option<Vec<u8>>],
        d: u32,
        shuffle: bool,
    ) -> Result<(), EcError> {
        let plan = self.decode_plan(shards)?;
        if plan.is_noop() {
            return Ok(());
        }
        let len = plan.shard_len();
        let k = self.params().k;
        if !plan.lost_data().is_empty() {
            let srcs: Vec<&[u8]> = plan
                .survivors()
                .iter()
                .map(|&s| {
                    dialga_ec::present_shard(shards, s, "decode-plan survivor absent")
                        .map(|v| v.as_slice())
                })
                .collect::<Result<_, _>>()?;
            let mut outs = vec![vec![0u8; len]; plan.lost_data().len()];
            let mut refs: Vec<&mut [u8]> = outs.iter_mut().map(|o| o.as_mut_slice()).collect();
            plan.apply_data(&srcs, &mut refs, d, shuffle)?;
            for (&ld, out) in plan.lost_data().iter().zip(outs) {
                shards[ld] = Some(out);
            }
        }
        if !plan.lost_parity().is_empty() {
            let data_refs: Vec<&[u8]> = (0..k)
                .map(|i| {
                    dialga_ec::present_shard(shards, i, "data shard absent after rebuild")
                        .map(|v| v.as_slice())
                })
                .collect::<Result<_, _>>()?;
            let mut outs = vec![vec![0u8; len]; plan.lost_parity().len()];
            let mut refs: Vec<&mut [u8]> = outs.iter_mut().map(|o| o.as_mut_slice()).collect();
            plan.apply_parity(&data_refs, &mut refs, d, shuffle)?;
            for (&lp, out) in plan.lost_parity().iter().zip(outs) {
                shards[lp] = Some(out);
            }
        }
        Ok(())
    }

    /// Which parity rows disagree with parity recomputed from `data`
    /// (sorted ascending, window-early-exit via the fused verification
    /// kernel). Empty means the stripe is consistent. A corrupt *data*
    /// shard mismatches every row (all MDS parity coefficients are
    /// nonzero); a corrupt parity shard mismatches only its own row —
    /// the localization signal [`Self::scrub`] is built on.
    fn parity_syndromes(&self, data: &[&[u8]], parity: &[&[u8]]) -> Result<Vec<usize>, EcError> {
        let len = self.check(data, parity.len())?;
        for p in parity.iter() {
            if p.len() != len {
                return Err(EcError::BlockLength {
                    expected: len,
                    got: p.len(),
                });
            }
        }
        Ok(dialga_gf::simd::dot_prod_verify(
            &self.tables,
            data,
            parity,
            self.sched(),
        ))
    }

    /// Verify stripe integrity: recompute all m parity rows from `data`
    /// through the fused kernel (windowed, early-exit — no full parity
    /// allocation) and compare against the stored `parity`.
    ///
    /// On mismatch returns [`EcError::Corrupt`] naming the disagreeing
    /// *parity rows* (indices `k..k+m`). A mismatch proves the stripe is
    /// inconsistent but not *which* shard is bad — a corrupt data shard
    /// also trips every row. Use [`Self::scrub`] to localize.
    pub fn verify(&self, data: &[&[u8]], parity: &[&[u8]]) -> Result<(), EcError> {
        let k = self.params().k;
        let bad = self.parity_syndromes(data, parity)?;
        if bad.is_empty() {
            Ok(())
        } else {
            Err(EcError::Corrupt {
                shards: bad.into_iter().map(|r| k + r).collect(),
            })
        }
    }

    /// Localize corrupt shards in a full stripe (`shards.len() == k + m`,
    /// data first). Returns the corrupt shard indices, sorted (empty =
    /// stripe consistent). Localizes any corruption of up to `m - 1`
    /// shards; [`EcError::Corrupt`] with the mismatching parity rows as
    /// evidence when the corruption is beyond that (or ambiguous).
    ///
    /// Localization treats syndromes as erasure candidates (the scrub
    /// half of the tentpole): mismatching parity rows `S` with `|S| < m`
    /// can only come from corrupt parity shards — a corrupt data byte
    /// trips *every* row, since every MDS parity coefficient is nonzero —
    /// so the corrupt set is exactly `S`. When `|S| == m`, candidate
    /// subsets are erased, re-decoded, and the fixed stripe re-verified;
    /// a unique minimal consistent candidate is the corrupt set (unique
    /// for single-shard corruption by the MDS distance bound: two
    /// codewords cannot differ in fewer than `m + 1` positions).
    pub fn scrub(&self, shards: &[&[u8]]) -> Result<Vec<usize>, EcError> {
        let params = self.params();
        let (k, m) = (params.k, params.m);
        if shards.len() != k + m {
            return Err(EcError::BlockCount {
                expected: k + m,
                got: shards.len(),
            });
        }
        let syndromes = self.parity_syndromes(&shards[..k], &shards[k..])?;
        if syndromes.is_empty() {
            return Ok(Vec::new());
        }
        if syndromes.len() < m {
            // Data must be clean, so the mismatching rows are themselves
            // the corrupt shards.
            return Ok(syndromes.into_iter().map(|r| k + r).collect());
        }
        // Every row mismatches: at least one data shard is suspect. Erase
        // candidate subsets, re-decode, and keep candidates whose fixed
        // stripe is a codeword again and whose members all actually
        // changed (otherwise a smaller subset explains the stripe).
        let evidence: Vec<usize> = syndromes.iter().map(|&r| k + r).collect();
        let max_t = m.saturating_sub(1).max(1);
        for t in 1..=max_t {
            let mut found: Option<Vec<usize>> = None;
            let mut candidate = vec![0usize; t];
            if !self.scrub_candidates(shards, &mut candidate, 0, 0, &mut found)? {
                // Ambiguous at this cardinality: more than one consistent
                // candidate — the corruption cannot be localized.
                return Err(EcError::Corrupt { shards: evidence });
            }
            if let Some(bad) = found {
                return Ok(bad);
            }
        }
        Err(EcError::Corrupt { shards: evidence })
    }

    /// Depth-first sweep over `t`-subsets (positions `depth..` filled from
    /// `from..k+m`) for [`Self::scrub`]. Returns `false` the moment two
    /// distinct consistent candidates exist (ambiguous).
    fn scrub_candidates(
        &self,
        shards: &[&[u8]],
        candidate: &mut Vec<usize>,
        depth: usize,
        from: usize,
        found: &mut Option<Vec<usize>>,
    ) -> Result<bool, EcError> {
        let n = shards.len();
        if depth == candidate.len() {
            if !self.scrub_candidate_fits(shards, candidate)? {
                return Ok(true);
            }
            if found.is_some() {
                return Ok(false);
            }
            *found = Some(candidate.clone());
            return Ok(true);
        }
        for i in from..n {
            candidate[depth] = i;
            if !self.scrub_candidates(shards, candidate, depth + 1, i + 1, found)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Does erasing `candidate` and re-decoding yield a consistent stripe
    /// in which every candidate member actually changed?
    fn scrub_candidate_fits(&self, shards: &[&[u8]], candidate: &[usize]) -> Result<bool, EcError> {
        let k = self.params().k;
        let mut trial: Vec<Option<Vec<u8>>> = shards.iter().map(|s| Some(s.to_vec())).collect();
        for &c in candidate {
            trial[c] = None;
        }
        if self.decode(&mut trial).is_err() {
            return Ok(false);
        }
        let all_changed = candidate
            .iter()
            .all(|&c| trial[c].as_deref().is_some_and(|fixed| fixed != shards[c]));
        if !all_changed {
            return Ok(false);
        }
        let data: Vec<&[u8]> = (0..k)
            .map(|i| dialga_ec::present_shard(&trial, i, "scrub trial data absent"))
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|v| v.as_slice())
            .collect();
        let parity: Vec<&[u8]> = (k..shards.len())
            .map(|i| dialga_ec::present_shard(&trial, i, "scrub trial parity absent"))
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|v| v.as_slice())
            .collect();
        Ok(self.parity_syndromes(&data, &parity)?.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 89 + j * 7 + 3) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn assert_matches_rs(k: usize, m: usize, len: usize, opts: DialgaOptions) {
        let dialga = Dialga::with_options(k, m, opts).unwrap();
        let rs = ReedSolomon::new(k, m).unwrap();
        let data = make_data(k, len);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert_eq!(
            dialga.encode_vec(&refs).unwrap(),
            rs.encode_vec(&refs).unwrap(),
            "k={k} m={m} len={len} opts={opts:?}"
        );
    }

    #[test]
    fn encode_matches_rs_default() {
        assert_matches_rs(4, 2, 1024, DialgaOptions::default());
        assert_matches_rs(12, 4, 4096, DialgaOptions::default());
    }

    #[test]
    fn encode_matches_rs_various_distances() {
        for d in [1u32, 3, 12, 100, 10_000] {
            assert_matches_rs(
                6,
                3,
                2048,
                DialgaOptions {
                    prefetch_distance: Some(d),
                    bf_first_distance: Some(d + 4),
                    shuffle: false,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn encode_matches_rs_with_shuffle() {
        for len in [64usize, 1024, 4096, 8192] {
            assert_matches_rs(
                8,
                4,
                len,
                DialgaOptions {
                    prefetch_distance: Some(16),
                    bf_first_distance: Some(20),
                    shuffle: true,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn encode_handles_unaligned_tail() {
        // Lengths that are not multiples of 64 exercise the tail kernel.
        for len in [1usize, 63, 65, 127, 1000] {
            assert_matches_rs(5, 2, len, DialgaOptions::default());
            assert_matches_rs(
                5,
                2,
                len,
                DialgaOptions {
                    prefetch_distance: Some(7),
                    bf_first_distance: Some(11),
                    shuffle: true,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn decode_roundtrip() {
        let dialga = Dialga::with_options(
            10,
            4,
            DialgaOptions {
                prefetch_distance: Some(20),
                bf_first_distance: Some(14),
                shuffle: true,
                ..Default::default()
            },
        )
        .unwrap();
        let data = make_data(10, 2048);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = dialga.encode_vec(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        shards[0] = None;
        shards[7] = None;
        shards[11] = None; // one parity
        shards[13] = None; // another parity
        dialga.decode(&mut shards).unwrap();
        for (i, d) in data.iter().enumerate() {
            assert_eq!(shards[i].as_ref().unwrap(), d, "data {i}");
        }
        for (i, p) in parity.iter().enumerate() {
            assert_eq!(shards[10 + i].as_ref().unwrap(), p, "parity {i}");
        }
    }

    fn shards_of(data: &[Vec<u8>], parity: &[Vec<u8>]) -> Vec<Option<Vec<u8>>> {
        data.iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect()
    }

    #[test]
    fn decode_rejects_mismatched_survivor_lengths() {
        // Regression: decode used to read the length off the first
        // survivor only, letting a short later survivor reach the kernel
        // (panic) or a mismatched non-survivor corrupt the parity stage.
        let dialga = Dialga::new(4, 2).unwrap();
        let data = make_data(4, 128);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = dialga.encode_vec(&refs).unwrap();
        for bad in 1..6 {
            let mut shards = shards_of(&data, &parity);
            shards[0] = None;
            shards[bad].as_mut().unwrap().truncate(100);
            assert!(
                matches!(dialga.decode(&mut shards), Err(EcError::BlockLength { .. })),
                "mismatched shard {bad} must be rejected"
            );
        }
    }

    #[test]
    fn decode_lost_parity_only_recomputes_lost_rows() {
        // Regression: lost-parity reconstruction used to recompute all m
        // parity rows and clone out the lost ones. The plan now carries
        // tables for the lost rows only; output stays bit-exact.
        let dialga = Dialga::new(6, 4).unwrap();
        let data = make_data(6, 1000); // unaligned tail
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = dialga.encode_vec(&refs).unwrap();
        let mut shards = shards_of(&data, &parity);
        shards[7] = None;
        shards[9] = None;
        let plan = dialga.decode_plan(&shards).unwrap();
        assert!(plan.lost_data().is_empty());
        assert_eq!(plan.lost_parity(), &[7, 9]);
        assert_eq!(plan.parity_tables().len(), 2 * 6, "lost rows only");
        dialga.decode(&mut shards).unwrap();
        assert_eq!(shards, shards_of(&data, &parity));
    }

    #[test]
    fn decode_with_overrides_are_bit_exact() {
        let dialga = Dialga::new(8, 3).unwrap();
        let data = make_data(8, 2048 + 40);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = dialga.encode_vec(&refs).unwrap();
        let reference = shards_of(&data, &parity);
        for (d, shuffle) in [(1u32, false), (8, true), (100, false), (10_000, true)] {
            let mut shards = shards_of(&data, &parity);
            shards[2] = None;
            shards[5] = None;
            shards[9] = None;
            dialga.decode_with(&mut shards, d, shuffle).unwrap();
            assert_eq!(shards, reference, "d={d} shuffle={shuffle}");
        }
    }

    #[test]
    fn repair_plan_rebuilds_any_single_block() {
        let dialga = Dialga::new(6, 3).unwrap();
        let data = make_data(6, 513);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = dialga.encode_vec(&refs).unwrap();
        let shards = shards_of(&data, &parity);
        for target in 0..9usize {
            // Survivors: the k lowest-indexed other blocks — includes a
            // parity survivor when the target is a data block, and
            // exercises the composed parity row when the target is parity.
            let survivors: Vec<usize> = (0..9).filter(|&i| i != target).take(6).collect();
            let plan = dialga.repair_plan(&survivors, target).unwrap();
            let srcs: Vec<&[u8]> = survivors
                .iter()
                .map(|&s| shards[s].as_ref().unwrap().as_slice())
                .collect();
            let mut out = vec![0u8; 513];
            plan.apply(&srcs, &mut out, 6, false).unwrap();
            let expect = shards[target].as_ref().unwrap();
            assert_eq!(&out, expect, "target {target}");
        }
        // A parity target with a *data* block among the erasures: the
        // composed row must route around the missing data block.
        let survivors = [1usize, 2, 3, 4, 5, 6]; // data 0 lost, parity 6 survives
        let plan = dialga.repair_plan(&survivors, 8).unwrap();
        let srcs: Vec<&[u8]> = survivors
            .iter()
            .map(|&s| shards[s].as_ref().unwrap().as_slice())
            .collect();
        let mut out = vec![0u8; 513];
        plan.apply(&srcs, &mut out, 6, true).unwrap();
        assert_eq!(&out, shards[8].as_ref().unwrap());
        // The target itself can never be a survivor.
        assert!(dialga.repair_plan(&[0, 1, 2, 3, 4, 5], 3).is_err());
    }

    #[test]
    fn decode_rejects_excess_erasures() {
        let dialga = Dialga::new(4, 2).unwrap();
        let data = make_data(4, 128);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = dialga.encode_vec(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .into_iter()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert!(matches!(
            dialga.decode(&mut shards),
            Err(EcError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn geometry_errors_propagate() {
        assert!(Dialga::new(0, 2).is_err());
        let dialga = Dialga::new(3, 2).unwrap();
        let a = vec![0u8; 64];
        let b = vec![0u8; 64];
        let refs: Vec<&[u8]> = vec![&a, &b]; // k mismatch
        assert!(matches!(
            dialga.encode_vec(&refs),
            Err(EcError::BlockCount { .. })
        ));
    }

    fn encoded_stripe(dialga: &Dialga, len: usize) -> Vec<Vec<u8>> {
        let k = dialga.params().k;
        let data = make_data(k, len);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = dialga.encode_vec(&refs).unwrap();
        data.into_iter().chain(parity).collect()
    }

    #[test]
    fn verify_accepts_clean_and_names_mismatching_rows() {
        let dialga = Dialga::new(6, 3).unwrap();
        let mut stripe = encoded_stripe(&dialga, 2048 + 17);
        {
            let refs: Vec<&[u8]> = stripe.iter().map(|s| s.as_slice()).collect();
            dialga.verify(&refs[..6], &refs[6..]).unwrap();
        }
        // Flip one byte of parity row 1: exactly that row mismatches.
        stripe[7][100] ^= 0x40;
        let refs: Vec<&[u8]> = stripe.iter().map(|s| s.as_slice()).collect();
        assert!(matches!(
            dialga.verify(&refs[..6], &refs[6..]),
            Err(EcError::Corrupt { shards }) if shards == vec![7]
        ));
        // A corrupt data shard trips every parity row.
        let mut stripe2 = encoded_stripe(&dialga, 512);
        stripe2[2][13] ^= 0x01;
        let refs2: Vec<&[u8]> = stripe2.iter().map(|s| s.as_slice()).collect();
        assert!(matches!(
            dialga.verify(&refs2[..6], &refs2[6..]),
            Err(EcError::Corrupt { shards }) if shards == vec![6, 7, 8]
        ));
    }

    #[test]
    fn scrub_localizes_data_and_parity_corruption() {
        let dialga = Dialga::new(4, 2).unwrap();
        let clean = encoded_stripe(&dialga, 1024 + 5);
        {
            let refs: Vec<&[u8]> = clean.iter().map(|s| s.as_slice()).collect();
            assert_eq!(dialga.scrub(&refs).unwrap(), Vec::<usize>::new());
        }
        for victim in 0..6usize {
            let mut stripe = clean.clone();
            stripe[victim][511] ^= 0x80;
            let refs: Vec<&[u8]> = stripe.iter().map(|s| s.as_slice()).collect();
            assert_eq!(
                dialga.scrub(&refs).unwrap(),
                vec![victim],
                "victim={victim}"
            );
        }
        // Two corrupt parity shards stay localizable for m = 3 codes.
        let dialga3 = Dialga::new(4, 3).unwrap();
        let mut stripe = encoded_stripe(&dialga3, 700);
        stripe[4][0] ^= 0xAA;
        stripe[6][699] ^= 0x11;
        let refs: Vec<&[u8]> = stripe.iter().map(|s| s.as_slice()).collect();
        assert_eq!(dialga3.scrub(&refs).unwrap(), vec![4, 6]);
    }

    #[test]
    fn scrub_rejects_bad_geometry_and_overwhelming_corruption() {
        let dialga = Dialga::new(4, 2).unwrap();
        let stripe = encoded_stripe(&dialga, 256);
        let refs: Vec<&[u8]> = stripe[..5].iter().map(|s| s.as_slice()).collect();
        assert!(matches!(
            dialga.scrub(&refs),
            Err(EcError::BlockCount { .. })
        ));
        // m = 2 tolerates localizing one corrupt shard; corrupting two
        // (one data + one parity) must surface Corrupt, not a wrong
        // localization.
        let mut bad = stripe.clone();
        bad[0][0] ^= 0x01;
        bad[5][1] ^= 0x02;
        let refs: Vec<&[u8]> = bad.iter().map(|s| s.as_slice()).collect();
        assert!(matches!(dialga.scrub(&refs), Err(EcError::Corrupt { .. })));
    }
}
