//! Timed DIALGA: the task source that couples the scheduler to the PM
//! simulator, with the Fig. 18 breakdown variants.

use crate::coordinator::Coordinator;
use dialga_memsim::{Counters, MachineConfig, RowTask, TaskSource};
use dialga_pipeline::cost::CostModel;
use dialga_pipeline::isal::{IsalSource, Knobs};
use dialga_pipeline::layout::StripeLayout;

/// Feature selection for the Fig. 18 breakdown (each variant adds one
/// mechanism) plus the full adaptive scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// All optimizations off (hardware prefetching suppressed too): the
    /// breakdown baseline.
    Vanilla,
    /// + pipelined software prefetching (d = k, static).
    Sw,
    /// + hardware prefetching (shuffle released).
    SwHw,
    /// + buffer-friendly prefetching (per-XPLine distance split).
    SwHwBf,
    /// The full adaptive coordinator (what every other figure runs).
    Adaptive,
}

impl Variant {
    /// Static knobs for the non-adaptive variants.
    pub fn knobs(self, k: usize) -> Knobs {
        match self {
            Variant::Vanilla => Knobs {
                shuffle: true,
                ..Default::default()
            },
            Variant::Sw => Knobs {
                shuffle: true,
                sw_distance: Some(k as u32),
                ..Default::default()
            },
            Variant::SwHw => Knobs {
                shuffle: false,
                sw_distance: Some(k as u32),
                ..Default::default()
            },
            Variant::SwHwBf => Knobs {
                shuffle: false,
                sw_distance: Some(k as u32),
                // First cacheline of each XPLine is prefetched much
                // earlier: it pays media (not buffer) latency (§4.3.2).
                bf_first_distance: Some(4 * k as u32),
                ..Default::default()
            },
            Variant::Adaptive => Knobs::default(), // replaced by the coordinator
        }
    }
}

/// DIALGA as a [`TaskSource`]: an ISA-L-pattern encode whose knobs are
/// driven by the adaptive coordinator (or pinned, for the breakdown).
#[derive(Debug, Clone)]
pub struct DialgaSource {
    inner: IsalSource,
    coord: Option<Coordinator>,
}

impl DialgaSource {
    /// Build the full adaptive scheduler for a workload.
    pub fn new(layout: StripeLayout, cost: CostModel, threads: usize, cfg: &MachineConfig) -> Self {
        Self::with_variant(layout, cost, threads, cfg, Variant::Adaptive)
    }

    /// Build a specific breakdown variant.
    pub fn with_variant(
        layout: StripeLayout,
        cost: CostModel,
        threads: usize,
        cfg: &MachineConfig,
        variant: Variant,
    ) -> Self {
        match variant {
            Variant::Adaptive => {
                let coord = Coordinator::new(layout.k, layout.m, layout.block_bytes, threads, cfg);
                let inner = IsalSource::new(layout, cost, coord.policy().knobs, threads);
                DialgaSource {
                    inner,
                    coord: Some(coord),
                }
            }
            pinned => DialgaSource {
                inner: IsalSource::new(layout, cost, pinned.knobs(layout.k), threads),
                coord: None,
            },
        }
    }

    /// The coordinator (None for pinned variants).
    pub fn coordinator(&self) -> Option<&Coordinator> {
        self.coord.as_ref()
    }

    /// Current knobs in effect.
    pub fn knobs(&self) -> Knobs {
        self.inner.knobs()
    }

    /// Override the sampling interval (simulated ns) — figure harnesses use
    /// shorter intervals than the 1 kHz default so short runs still adapt.
    pub fn set_sample_interval(&mut self, ns: f64) {
        if let Some(c) = &mut self.coord {
            c.set_sample_interval(ns);
        }
    }
}

impl TaskSource for DialgaSource {
    fn next_task(
        &mut self,
        tid: usize,
        now_ns: f64,
        counters: &Counters,
        task: &mut RowTask,
    ) -> bool {
        // Thread 0 hosts the coordinator (the paper's coordinator is a
        // single lightweight sampling loop).
        if tid == 0 {
            if let Some(coord) = &mut self.coord {
                if let Some(knobs) = coord.on_tick(now_ns, counters) {
                    self.inner.set_knobs(knobs);
                }
            }
        }
        self.inner.next_task(tid, now_ns, counters, task)
    }

    fn data_bytes(&self) -> u64 {
        self.inner.data_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialga_pipeline::run_source;

    fn layout(k: usize, m: usize, block: u64) -> StripeLayout {
        StripeLayout::sized_for(k, m, block, 2 << 20)
    }

    fn run(variant: Variant, k: usize, m: usize, block: u64, threads: usize) -> f64 {
        let cfg = MachineConfig::pm();
        let mut src = DialgaSource::with_variant(
            layout(k, m, block),
            CostModel::default(),
            threads,
            &cfg,
            variant,
        );
        src.set_sample_interval(50_000.0);
        run_source(&cfg, threads, &mut src).throughput_gbs()
    }

    /// Fig. 18 ordering: each added mechanism helps.
    #[test]
    fn breakdown_variants_are_monotone() {
        let (k, m, block) = (12, 4, 1024);
        let vanilla = run(Variant::Vanilla, k, m, block, 1);
        let sw = run(Variant::Sw, k, m, block, 1);
        let swhw = run(Variant::SwHw, k, m, block, 1);
        let full = run(Variant::SwHwBf, k, m, block, 1);
        assert!(sw > 1.1 * vanilla, "+SW: {sw:.2} vs {vanilla:.2}");
        assert!(
            swhw > sw * 0.98,
            "+HW must not regress: {swhw:.2} vs {sw:.2}"
        );
        assert!(
            full >= swhw * 0.98,
            "+BF must not regress: {full:.2} vs {swhw:.2}"
        );
        assert!(
            full > 1.3 * vanilla,
            "full stack: {full:.2} vs {vanilla:.2}"
        );
    }

    /// The adaptive scheduler must beat plain ISA-L (the headline claim)
    /// on a narrow stripe with 1 KiB blocks.
    #[test]
    fn adaptive_beats_plain_isal_narrow_stripe() {
        let cfg = MachineConfig::pm();
        let mut isal = IsalSource::new(
            layout(12, 4, 1024),
            CostModel::default(),
            Knobs::default(),
            1,
        );
        let plain = run_source(&cfg, 1, &mut isal).throughput_gbs();
        let dialga = run(Variant::Adaptive, 12, 4, 1024, 1);
        assert!(
            dialga > 1.25 * plain,
            "DIALGA {dialga:.2} should clearly beat ISA-L {plain:.2}"
        );
    }

    /// Wide stripes: ISA-L collapses (prefetcher table overflow), DIALGA's
    /// software prefetching does not.
    #[test]
    fn adaptive_rescues_wide_stripes() {
        let cfg = MachineConfig::pm();
        let mut isal = IsalSource::new(
            layout(48, 4, 1024),
            CostModel::default(),
            Knobs::default(),
            1,
        );
        let plain = run_source(&cfg, 1, &mut isal).throughput_gbs();
        let dialga = run(Variant::Adaptive, 48, 4, 1024, 1);
        assert!(
            dialga > 1.8 * plain,
            "wide stripe: DIALGA {dialga:.2} vs ISA-L {plain:.2}"
        );
    }

    /// Under high concurrency the coordinator's initial policy suppresses
    /// hardware prefetching, and the run completes with zero HW prefetches
    /// issued by thread tasks generated after suppression.
    #[test]
    fn adaptive_suppresses_hw_under_high_concurrency() {
        let cfg = MachineConfig::pm();
        let mut src = DialgaSource::new(layout(28, 4, 1024), CostModel::default(), 16, &cfg);
        assert!(src.knobs().shuffle, "initial policy at 16 threads shuffles");
        assert!(src.knobs().xpline_expand);
        let r = run_source(&cfg, 16, &mut src);
        assert_eq!(r.counters.hw_prefetches, 0, "shuffle must silence HW PF");
    }

    /// The adaptive coordinator must take samples during a run.
    #[test]
    fn coordinator_samples_during_run() {
        let cfg = MachineConfig::pm();
        let mut src = DialgaSource::new(layout(12, 4, 1024), CostModel::default(), 1, &cfg);
        src.set_sample_interval(20_000.0);
        let _ = run_source(&cfg, 1, &mut src);
        assert!(
            src.coordinator().unwrap().samples() > 10,
            "too few samples: {}",
            src.coordinator().unwrap().samples()
        );
    }
}
