//! Hill climbing for the software prefetch distance (§4.1).
//!
//! The paper: "DIALGA employs hill climbing to determine the software
//! prefetch distance d. It initiates this search upon startup or when the
//! encoding performance fluctuates by more than 10 %. The search begins by
//! setting d = k [...] It then iteratively explores a neighborhood of size
//! 16 around the current distance to find a local optimum."
//!
//! The climber is sample-driven: the coordinator feeds it one objective
//! measurement (mean sub-task latency — lower is better) per sampling
//! interval, and it answers with the next candidate distance to try.

/// Search neighborhood radius (paper: 16).
pub const NEIGHBORHOOD: i64 = 16;

/// Probe offsets explored around the current best, coarse to fine.
const OFFSETS: [i64; 8] = [-16, -8, -4, -2, 2, 4, 8, 16];

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    /// Measuring the current best distance to establish the reference.
    Reference,
    /// Probing `OFFSETS[idx]`.
    Probing { idx: usize },
    /// Search converged; watching for >10 % fluctuation.
    Settled,
}

/// Sample-driven hill climber over prefetch distances.
#[derive(Debug, Clone)]
pub struct HillClimber {
    best: u32,
    best_score: f64,
    min: u32,
    max: u32,
    state: State,
    /// Set when a probe round improved, to re-probe around the new best.
    improved: bool,
    /// Distances already measured this probe round. Near a bound, several
    /// `OFFSETS` clamp to the same candidate (best = 2, min = 1 turns
    /// −16/−8/−4/−2 all into 1); each distance is probed at most once per
    /// round instead of burning a sampling interval per duplicate.
    probed: Vec<u32>,
}

impl HillClimber {
    /// Start a search at `init` (the paper starts at d = k), clamped to
    /// `[min, max]` (`max` comes from the Eq. (1) bound).
    pub fn new(init: u32, min: u32, max: u32) -> Self {
        assert!(min <= max, "empty distance range");
        HillClimber {
            best: init.clamp(min, max),
            best_score: f64::INFINITY,
            min,
            max,
            state: State::Reference,
            improved: false,
            probed: Vec::new(),
        }
    }

    /// The distance the encoder should use right now (the candidate under
    /// measurement, or the settled optimum).
    pub fn current(&self) -> u32 {
        match self.state {
            State::Reference | State::Settled => self.best,
            State::Probing { idx } => self.candidate(OFFSETS[idx]),
        }
    }

    /// Whether the search has converged.
    pub fn settled(&self) -> bool {
        self.state == State::Settled
    }

    fn candidate(&self, offset: i64) -> u32 {
        (self.best as i64 + offset).clamp(self.min as i64, self.max as i64) as u32
    }

    /// Start a fresh probe round around the current best.
    fn begin_round(&mut self) {
        self.improved = false;
        self.probed.clear();
        // The reference (best) was just measured; clamped duplicates of it
        // carry no information either.
        self.probed.push(self.best);
        self.enter_probe(0);
    }

    /// Move to the first offset at or after `from` whose clamped candidate
    /// has not been measured this round; settle (or re-probe around an
    /// improved best) when none remains.
    fn enter_probe(&mut self, from: usize) {
        let next =
            (from..OFFSETS.len()).find(|&i| !self.probed.contains(&self.candidate(OFFSETS[i])));
        match next {
            Some(idx) => {
                self.probed.push(self.candidate(OFFSETS[idx]));
                self.state = State::Probing { idx };
            }
            None if self.improved => self.begin_round(),
            None => self.state = State::Settled,
        }
    }

    /// Feed the objective (mean sub-task latency, lower = better) measured
    /// while [`Self::current`] was active. Returns the next distance.
    pub fn observe(&mut self, score: f64) -> u32 {
        match self.state {
            State::Reference => {
                self.best_score = score;
                self.begin_round();
            }
            State::Probing { idx } => {
                let cand = self.candidate(OFFSETS[idx]);
                if cand != self.best && score < self.best_score {
                    self.best = cand;
                    self.best_score = score;
                    self.improved = true;
                }
                self.enter_probe(idx + 1);
            }
            State::Settled => {
                // Restart when performance drifts >10 % from the optimum's
                // reference score (either direction — the paper re-searches
                // on fluctuation, not just regression).
                let drift = (score - self.best_score).abs() / self.best_score.max(1e-9);
                if drift > 0.10 {
                    self.state = State::Reference;
                }
            }
        }
        self.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Convex objective with optimum at 40: the climber must find it.
    fn objective(d: u32) -> f64 {
        let x = d as f64 - 40.0;
        100.0 + x * x
    }

    #[test]
    fn converges_to_optimum_of_convex_objective() {
        let mut hc = HillClimber::new(12, 1, 128);
        for _ in 0..200 {
            if hc.settled() {
                break;
            }
            let d = hc.current();
            hc.observe(objective(d));
        }
        assert!(hc.settled(), "did not settle");
        assert!(
            (hc.current() as i64 - 40).abs() <= 2,
            "settled at {} instead of ~40",
            hc.current()
        );
    }

    #[test]
    fn respects_bounds() {
        let mut hc = HillClimber::new(100, 4, 24);
        assert!(hc.current() <= 24);
        for _ in 0..100 {
            if hc.settled() {
                break;
            }
            let d = hc.current();
            assert!((4..=24).contains(&d), "candidate {d} out of bounds");
            hc.observe(objective(d));
        }
        // Optimum 40 is outside the range: must settle at the top bound.
        assert_eq!(hc.current(), 24);
    }

    #[test]
    fn restarts_on_fluctuation() {
        let mut hc = HillClimber::new(40, 1, 128);
        for _ in 0..100 {
            if hc.settled() {
                break;
            }
            let d = hc.current();
            hc.observe(objective(d));
        }
        assert!(hc.settled());
        // Stable scores keep it settled.
        hc.observe(hc.best_score * 1.05);
        assert!(hc.settled());
        // A >10 % swing restarts the search.
        hc.observe(hc.best_score * 1.5);
        assert!(!hc.settled());
    }

    #[test]
    fn clamped_duplicate_candidates_probed_once() {
        // best = 2, min = 1: offsets −16/−8/−4/−2 all clamp to 1. One
        // probe round must measure {1, 4, 6, 10, 18} — five distances, no
        // candidate twice (the old climber burned four intervals on 1).
        let mut hc = HillClimber::new(2, 1, 64);
        hc.observe(100.0); // reference for best = 2
        let mut seen = Vec::new();
        while !hc.settled() && seen.len() <= OFFSETS.len() {
            seen.push(hc.current());
            hc.observe(200.0); // everything worse: one round, then settle
        }
        assert!(hc.settled(), "probe round did not terminate: {seen:?}");
        assert_eq!(seen, vec![1, 4, 6, 10, 18], "duplicate or missing probe");
    }

    #[test]
    fn upper_bound_duplicates_also_skipped() {
        // best at max: +2/+4/+8/+16 all clamp onto max and are skipped.
        let mut hc = HillClimber::new(24, 4, 24);
        hc.observe(100.0);
        let mut seen = Vec::new();
        while !hc.settled() && seen.len() <= OFFSETS.len() {
            seen.push(hc.current());
            hc.observe(200.0);
        }
        assert_eq!(seen, vec![8, 16, 20, 22]);
        assert_eq!(hc.current(), 24);
    }

    #[test]
    fn stays_within_neighborhood_per_round() {
        let hc = HillClimber::new(50, 1, 128);
        for off in OFFSETS {
            assert!(off.abs() <= NEIGHBORHOOD);
        }
        assert_eq!(hc.current(), 50);
    }
}
