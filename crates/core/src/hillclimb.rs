//! Hill climbing for the software prefetch distance (§4.1).
//!
//! The paper: "DIALGA employs hill climbing to determine the software
//! prefetch distance d. It initiates this search upon startup or when the
//! encoding performance fluctuates by more than 10 %. The search begins by
//! setting d = k [...] It then iteratively explores a neighborhood of size
//! 16 around the current distance to find a local optimum."
//!
//! The climber is sample-driven: the coordinator feeds it one objective
//! measurement (mean sub-task latency — lower is better) per sampling
//! interval, and it answers with the next candidate distance to try.

/// Search neighborhood radius (paper: 16).
pub const NEIGHBORHOOD: i64 = 16;

/// Probe offsets explored around the current best, coarse to fine.
const OFFSETS: [i64; 8] = [-16, -8, -4, -2, 2, 4, 8, 16];

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    /// Measuring the current best distance to establish the reference.
    Reference,
    /// Probing `OFFSETS[idx]`.
    Probing { idx: usize },
    /// Search converged; watching for >10 % fluctuation.
    Settled,
}

/// Sample-driven hill climber over prefetch distances.
#[derive(Debug, Clone)]
pub struct HillClimber {
    best: u32,
    best_score: f64,
    min: u32,
    max: u32,
    state: State,
    /// Set when a probe round improved, to re-probe around the new best.
    improved: bool,
}

impl HillClimber {
    /// Start a search at `init` (the paper starts at d = k), clamped to
    /// `[min, max]` (`max` comes from the Eq. (1) bound).
    pub fn new(init: u32, min: u32, max: u32) -> Self {
        assert!(min <= max, "empty distance range");
        HillClimber {
            best: init.clamp(min, max),
            best_score: f64::INFINITY,
            min,
            max,
            state: State::Reference,
            improved: false,
        }
    }

    /// The distance the encoder should use right now (the candidate under
    /// measurement, or the settled optimum).
    pub fn current(&self) -> u32 {
        match self.state {
            State::Reference | State::Settled => self.best,
            State::Probing { idx } => self.candidate(OFFSETS[idx]),
        }
    }

    /// Whether the search has converged.
    pub fn settled(&self) -> bool {
        self.state == State::Settled
    }

    fn candidate(&self, offset: i64) -> u32 {
        (self.best as i64 + offset).clamp(self.min as i64, self.max as i64) as u32
    }

    /// Feed the objective (mean sub-task latency, lower = better) measured
    /// while [`Self::current`] was active. Returns the next distance.
    pub fn observe(&mut self, score: f64) -> u32 {
        match self.state {
            State::Reference => {
                self.best_score = score;
                self.improved = false;
                self.state = State::Probing { idx: 0 };
            }
            State::Probing { idx } => {
                let cand = self.candidate(OFFSETS[idx]);
                if cand != self.best && score < self.best_score {
                    self.best = cand;
                    self.best_score = score;
                    self.improved = true;
                }
                if idx + 1 < OFFSETS.len() {
                    self.state = State::Probing { idx: idx + 1 };
                } else if self.improved {
                    // Re-probe around the improved optimum.
                    self.improved = false;
                    self.state = State::Probing { idx: 0 };
                } else {
                    self.state = State::Settled;
                }
            }
            State::Settled => {
                // Restart when performance drifts >10 % from the optimum's
                // reference score (either direction — the paper re-searches
                // on fluctuation, not just regression).
                let drift = (score - self.best_score).abs() / self.best_score.max(1e-9);
                if drift > 0.10 {
                    self.state = State::Reference;
                }
            }
        }
        self.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Convex objective with optimum at 40: the climber must find it.
    fn objective(d: u32) -> f64 {
        let x = d as f64 - 40.0;
        100.0 + x * x
    }

    #[test]
    fn converges_to_optimum_of_convex_objective() {
        let mut hc = HillClimber::new(12, 1, 128);
        for _ in 0..200 {
            if hc.settled() {
                break;
            }
            let d = hc.current();
            hc.observe(objective(d));
        }
        assert!(hc.settled(), "did not settle");
        assert!(
            (hc.current() as i64 - 40).abs() <= 2,
            "settled at {} instead of ~40",
            hc.current()
        );
    }

    #[test]
    fn respects_bounds() {
        let mut hc = HillClimber::new(100, 4, 24);
        assert!(hc.current() <= 24);
        for _ in 0..100 {
            if hc.settled() {
                break;
            }
            let d = hc.current();
            assert!((4..=24).contains(&d), "candidate {d} out of bounds");
            hc.observe(objective(d));
        }
        // Optimum 40 is outside the range: must settle at the top bound.
        assert_eq!(hc.current(), 24);
    }

    #[test]
    fn restarts_on_fluctuation() {
        let mut hc = HillClimber::new(40, 1, 128);
        for _ in 0..100 {
            if hc.settled() {
                break;
            }
            let d = hc.current();
            hc.observe(objective(d));
        }
        assert!(hc.settled());
        // Stable scores keep it settled.
        hc.observe(hc.best_score * 1.05);
        assert!(hc.settled());
        // A >10 % swing restarts the search.
        hc.observe(hc.best_score * 1.5);
        assert!(!hc.settled());
    }

    #[test]
    fn stays_within_neighborhood_per_round() {
        let hc = HillClimber::new(50, 1, 128);
        for off in OFFSETS {
            assert!(off.abs() <= NEIGHBORHOOD);
        }
        assert_eq!(hc.current(), 50);
    }
}
