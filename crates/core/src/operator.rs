//! The lightweight operator (§4.2): fine-grained hardware-prefetcher
//! control via static shuffle mapping, and branchless pipelined software
//! prefetch pointers.
//!
//! The *timed* side of these mechanisms lives in `dialga-pipeline`
//! ([`dialga_pipeline::isal::shuffle_row`] drives the simulator). The
//! real-bytes encoder no longer materializes the pointer array: the fused
//! kernels ([`dialga_gf::simd::dot_prod_fused`]) issue the same targets
//! arithmetically from inside their row loop via
//! [`dialga_gf::sched::for_each_prefetch_target`]. This module keeps
//! [`build_prefetch_ptrs`] as the executable Fig. 9 *specification* —
//! tests verify it directly (fixed offset, two-group construction when
//! `d % k != 0`, order preserved under shuffle) and cross-check the fused
//! scheduler against it.

pub use dialga_pipeline::isal::shuffle_row;

/// One entry of the prefetch-pointer array: which (block, row) to prefetch
/// while executing a given step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchPtr {
    /// Data block index.
    pub block: usize,
    /// Cacheline row within the block.
    pub row: u64,
}

/// Build the Fig. 9 prefetch-pointer array for one row of the encode loop.
///
/// While the kernel processes step `n = row * k + j` (reading row `row` of
/// block `j`), it prefetches step `n + d`. Because the mapping from step to
/// (block, row) is fixed, the whole row's pointers can be constructed
/// branchlessly in advance: block `(n + d) % k`, row `(n + d) / k`. When
/// `d % k != 0` the construction naturally splits into two groups with
/// different row offsets — exactly the paper's two-group vectorized build.
/// Steps whose target falls past the stripe (`>= rows * k`) get no pointer:
/// tail tasks revert to the standard kernel.
pub fn build_prefetch_ptrs(
    row: u64,
    k: usize,
    rows: u64,
    d: u32,
    shuffled: bool,
) -> Vec<Option<PrefetchPtr>> {
    let total = rows * k as u64;
    (0..k as u64)
        .map(|j| {
            let t = row * k as u64 + j + d as u64;
            if t >= total {
                return None;
            }
            let vrow = t / k as u64;
            let target_row = if shuffled {
                shuffle_row(vrow, rows)
            } else {
                vrow
            };
            Some(PrefetchPtr {
                block: (t % k as u64) as usize,
                row: target_row,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_offset_when_d_is_multiple_of_k() {
        // d = 2k: every pointer is "same block, two rows ahead".
        let k = 4;
        let ptrs = build_prefetch_ptrs(3, k, 16, 8, false);
        for (j, p) in ptrs.iter().enumerate() {
            let p = p.expect("within stripe");
            assert_eq!(p.block, j);
            assert_eq!(p.row, 5);
        }
    }

    #[test]
    fn two_group_construction_when_d_not_multiple_of_k() {
        // d = 6, k = 4: group one (j < 2) targets row+1 shifted blocks,
        // group two wraps to row+2 — two distinct row offsets, as in §4.2.
        let k = 4;
        let ptrs = build_prefetch_ptrs(0, k, 16, 6, false);
        let rows: Vec<u64> = ptrs.iter().map(|p| p.unwrap().row).collect();
        let blocks: Vec<usize> = ptrs.iter().map(|p| p.unwrap().block).collect();
        assert_eq!(rows, vec![1, 1, 2, 2]);
        assert_eq!(blocks, vec![2, 3, 0, 1]);
        let distinct: std::collections::HashSet<u64> = rows.into_iter().collect();
        assert_eq!(distinct.len(), 2, "exactly two groups");
    }

    #[test]
    fn tail_steps_have_no_pointer() {
        let k = 4;
        let rows = 16;
        // Last row with d = k: every target is past the stripe.
        let ptrs = build_prefetch_ptrs(rows - 1, k, rows, 4, false);
        assert!(ptrs.iter().all(|p| p.is_none()));
        // Second-to-last row with d = 6: half in, half out.
        let ptrs = build_prefetch_ptrs(rows - 2, k, rows, 6, false);
        let some = ptrs.iter().filter(|p| p.is_some()).count();
        assert_eq!(some, 2);
    }

    #[test]
    fn shuffle_preserves_pointer_order() {
        // §4.2: "externally constructed prefetch pointers retain their
        // order even after shuffling" — the pointer array for a row is
        // still indexed by j in order; only the target row is remapped
        // bijectively.
        let k = 6;
        let rows = 32;
        let plain = build_prefetch_ptrs(5, k, rows, 12, false);
        let shuf = build_prefetch_ptrs(5, k, rows, 12, true);
        for (a, b) in plain.iter().zip(&shuf) {
            let (a, b) = (a.unwrap(), b.unwrap());
            assert_eq!(a.block, b.block, "block order must be preserved");
            assert_eq!(
                b.row,
                shuffle_row(a.row, rows),
                "row remapped by the static map"
            );
        }
    }

    #[test]
    fn fused_scheduler_matches_fig9_spec() {
        // The fused kernels compute prefetch targets arithmetically
        // (dialga_gf::sched); this array is the Fig. 9 specification. The
        // two must agree for every (k, d, shuffle, row).
        use dialga_gf::sched::{for_each_prefetch_target, FusedSched};
        for k in [1usize, 3, 4, 6, 10] {
            let rows = 24u64;
            for d in [1u32, 4, 6, 13, 100] {
                for shuffle in [false, true] {
                    let sched = FusedSched {
                        d: Some(d),
                        d_long: None,
                        shuffle,
                    };
                    for vr in 0..rows {
                        let spec: Vec<(usize, u64)> = build_prefetch_ptrs(vr, k, rows, d, shuffle)
                            .into_iter()
                            .flatten()
                            .map(|p| (p.block, p.row))
                            .collect();
                        let mut fused = Vec::new();
                        for_each_prefetch_target(vr, k, rows, &sched, |b, r| fused.push((b, r)));
                        assert_eq!(fused, spec, "k={k} d={d} shuffle={shuffle} vr={vr}");
                    }
                }
            }
        }
    }

    #[test]
    fn every_step_prefetched_exactly_once() {
        // Union of pointers over all rows covers each (block,row) once —
        // no duplicate or missing prefetches (modulo the d-step warm-up).
        let k = 4;
        let rows = 16;
        let d = 7;
        let mut seen = std::collections::HashSet::new();
        for row in 0..rows {
            for p in build_prefetch_ptrs(row, k, rows, d, false)
                .into_iter()
                .flatten()
            {
                assert!(seen.insert((p.block, p.row)), "duplicate {p:?}");
            }
        }
        assert_eq!(seen.len(), (rows * k as u64 - d as u64) as usize);
    }
}
