//! Persistent worker-pool encoding engine.
//!
//! The paper encodes with up to 18 concurrent threads (§5), and its
//! coordinator samples counters at 1 kHz to retune the prefetcher knobs
//! (§4.1). Neither works if every stripe pays for a fresh set of OS
//! threads: at the paper's default 4 KiB blocks, thread spawn/join costs
//! dwarf the encode itself, and the coordinator never sees a steady-state
//! worker to observe. This module replaces the old scope-per-call design
//! with long-lived workers:
//!
//! * **per-worker task queues** — each worker owns an MPSC receiver and
//!   chunks are dealt round-robin, so submission never contends on a
//!   single shared queue;
//! * **batch submission** — [`EncodePool::encode_batch`] accepts many
//!   stripes in one call and keeps every worker busy across stripe
//!   boundaries;
//! * **even chunk distribution** — [`split_ranges`] spreads the remainder
//!   across workers (the old `next_multiple_of` rounding left workers
//!   idle; see the module tests);
//! * **live coordinator** — a pool built with
//!   [`EncodePool::with_coordinator`] drives [`Coordinator::on_tick`] from
//!   the workers themselves, and updated [`Knobs`] propagate to in-flight
//!   workers at chunk granularity through a packed atomic cell;
//! * **decode and repair** — decoding shares the encode load pattern
//!   (§4.1), so [`EncodePool::decode`]/[`EncodePool::decode_batch`], the
//!   single-block [`EncodePool::repair`] fast path and LRC
//!   [`EncodePool::repair_local`] run through the same workers, the same
//!   [`split_ranges`] chunking and the same knob cell: every path bottoms
//!   out in one apply-tables kernel, and the coordinator's `d`/shuffle
//!   retuning reaches in-flight decode workers exactly as it does encode
//!   workers.
//!
//! Results are bit-exact with serial encoding/decoding for every thread
//! count: Reed–Solomon is independent per row, so any horizontal split is
//! exact, and scheduling knobs never change the bytes produced.

use crate::coordinator::Coordinator;
use crate::encoder::{Dialga, DEFAULT_BATCH_RETRIES};
use dialga_ec::{EcError, Lrc};
#[cfg(feature = "fault-injection")]
use dialga_faultkit::{ChunkFault, FaultCell, FaultPlan};
use dialga_gf::bitmatrix::W;
use dialga_gf::tables::NibbleTables;
use dialga_gf::xorexec::{ProgOp, TempArena, XorProgram};
use dialga_memsim::Counters;
use dialga_pipeline::Knobs;
use std::ops::Range;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Chunk boundaries are multiples of this (keeps rows and XPLines intact).
pub const CHUNK_ALIGN: usize = 256;

/// Split `[0, len)` into at most `parts` ranges whose boundaries are
/// multiples of [`CHUNK_ALIGN`], sized as evenly as the alignment allows:
/// every range length differs from every other by at most `CHUNK_ALIGN`
/// bytes.
///
/// The old splitter rounded `len / parts` *up* to the alignment, which
/// starves the tail: `len = 2100, parts = 8` produced chunks of 512 bytes
/// and left three of eight workers idle. Here the surplus alignment units
/// go to the *last* ranges, so the sub-unit tail shortfall offsets one of
/// them instead of compounding the imbalance.
pub fn split_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    let units = len.div_ceil(CHUNK_ALIGN);
    let n = parts.min(units);
    let base = units / n;
    let extra = units % n;
    let mut ranges = Vec::with_capacity(n);
    let mut start = 0usize;
    for i in 0..n {
        // The last `extra` ranges carry one surplus unit each.
        let units_here = base + usize::from(i >= n - extra);
        let end = (start + units_here * CHUNK_ALIGN).min(len);
        ranges.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, len);
    ranges
}

/// One stripe of a batch submission: `k` data blocks in, `m` parity blocks
/// out. Lengths are validated against the coder on submission.
pub struct StripeJob<'d, 'p> {
    /// The k data blocks (equal lengths).
    pub data: &'d [&'d [u8]],
    /// The m parity blocks (overwritten; same length as the data blocks).
    pub parity: &'d mut [&'p mut [u8]],
}

/// One stripe of a decode batch: `k + m` shards with `None` marking
/// erasures, repaired in place (the [`Dialga::decode`] contract).
pub struct DecodeJob<'a> {
    /// The stripe's shards; every entry is `Some` on success.
    pub shards: &'a mut [Option<Vec<u8>>],
}

/// Sentinel meaning "no distance override" in the packed knob cell.
const KNOB_NONE: u64 = 0xFFFF;

fn pack_knobs(k: &Knobs) -> u64 {
    let sw = k
        .sw_distance
        .map_or(KNOB_NONE, |d| (d as u64).min(KNOB_NONE - 1));
    let bf = k
        .bf_first_distance
        .map_or(KNOB_NONE, |d| (d as u64).min(KNOB_NONE - 1));
    sw | (bf << 16) | ((k.shuffle as u64) << 32) | ((k.xpline_expand as u64) << 33)
}

fn unpack_knobs(v: u64) -> Knobs {
    let sw = v & 0xFFFF;
    let bf = (v >> 16) & 0xFFFF;
    Knobs {
        sw_distance: (sw != KNOB_NONE).then_some(sw as u32),
        bf_first_distance: (bf != KNOB_NONE).then_some(bf as u32),
        shuffle: v & (1 << 32) != 0,
        xpline_expand: v & (1 << 33) != 0,
    }
}

/// Live counters the pool accumulates; the coordinator samples these the
/// way the paper samples PMU counters.
struct PoolCounters {
    /// Row-major 64 B steps encoded (one "load" per source row read).
    loads: AtomicU64,
    /// Nanoseconds workers spent inside encode kernels.
    busy_ns: AtomicU64,
    /// Estimated nanoseconds of that busy time spent *stalled* on memory
    /// rather than computing. Derived per chunk as the excess of its wall
    /// time over the pool's best observed per-load cost
    /// ([`PoolCounters::load_ns_floor_x1024`]): the fastest chunk ever run
    /// defines the pure-compute baseline, and anything slower is charged
    /// to stall. This is what [`PoolShared::counters`] reports as
    /// `demand_stall_ns` — reporting raw `busy_ns` there inflated every
    /// latency the coordinator tunes on by the kernel compute time.
    stall_ns: AtomicU64,
    /// Best (lowest) observed per-load chunk cost, in 1/1024 ns fixed
    /// point (`u64::MAX` until the first non-empty chunk lands).
    load_ns_floor_x1024: AtomicU64,
    /// Chunks executed.
    chunks: AtomicU64,
    /// Stripes submitted.
    stripes: AtomicU64,
    /// Batch submissions.
    dispatches: AtomicU64,
    /// Times a worker observed a knob value different from its previous
    /// chunk (policy changes that actually reached a worker mid-run).
    knob_switches: AtomicU64,
    /// Coordinator policy changes published to the knob cell.
    policy_changes: AtomicU64,
    /// Workers observed dead (exited or unreachable) during healing.
    worker_deaths: AtomicU64,
    /// Workers respawned by [`EncodePool::heal_workers`].
    worker_respawns: AtomicU64,
    /// Batches re-submitted after a worker death/panic.
    batch_retries: AtomicU64,
}

impl Default for PoolCounters {
    fn default() -> Self {
        PoolCounters {
            loads: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            stall_ns: AtomicU64::new(0),
            // `fetch_min` ratchet: MAX until the first chunk lands.
            load_ns_floor_x1024: AtomicU64::new(u64::MAX),
            chunks: AtomicU64::new(0),
            stripes: AtomicU64::new(0),
            dispatches: AtomicU64::new(0),
            knob_switches: AtomicU64::new(0),
            policy_changes: AtomicU64::new(0),
            worker_deaths: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            batch_retries: AtomicU64::new(0),
        }
    }
}

/// Read-only snapshot of pool activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Row-major 64 B steps encoded.
    pub loads: u64,
    /// Nanoseconds workers spent inside encode kernels.
    pub busy_ns: u64,
    /// Estimated nanoseconds of `busy_ns` attributable to memory stalls
    /// rather than compute (excess over the fastest observed per-load
    /// cost; see [`PoolStats::loads`]). This — not `busy_ns` — is what
    /// the coordinator consumes as `demand_stall_ns`.
    pub stall_ns: u64,
    /// Chunks executed.
    pub chunks: u64,
    /// Stripes submitted.
    pub stripes: u64,
    /// Batch submissions.
    pub dispatches: u64,
    /// Knob changes observed by workers between consecutive chunks.
    pub knob_switches: u64,
    /// Coordinator policy changes published to workers.
    pub policy_changes: u64,
    /// Workers observed dead during healing (a worker that dies and is
    /// respawned counts once here and once in `worker_respawns`).
    pub worker_deaths: u64,
    /// Workers respawned after a death.
    pub worker_respawns: u64,
    /// Batches re-submitted after a worker death/panic (bounded by
    /// [`crate::encoder::DialgaOptions::max_batch_retries`]).
    pub batch_retries: u64,
    /// Workers currently alive (== [`EncodePool::threads`] unless a
    /// worker died and could not be respawned).
    pub workers_alive: usize,
}

/// Coordinator state guarded by one lock; workers `try_lock` it so the
/// sampling loop never blocks the encode path.
struct CoordState {
    coord: Coordinator,
    last: Counters,
}

/// State shared between the pool handle and its workers.
struct PoolShared {
    /// Packed current [`Knobs`] (see [`pack_knobs`]).
    ///
    /// # Memory-ordering contract (checked by `dialga-lint` rule R3)
    ///
    /// The knob word is the only cross-thread *publication* channel in the
    /// pool, so it is the only place that needs more than `Relaxed`:
    ///
    /// * every **store** uses [`Ordering::Release`] — the coordinator's
    ///   policy state is written before the packed word, and the Release
    ///   fence makes those writes visible to any worker that observes the
    ///   new value;
    /// * every worker **load** uses [`Ordering::Acquire`] — a worker that
    ///   sees a new packed value also sees everything the coordinator
    ///   wrote before publishing it.
    ///
    /// The stat counters in [`PoolCounters`] are pure monotonic tallies —
    /// no reader derives control flow from their relative order — so they
    /// stay `Relaxed` by design.
    knobs: AtomicU64,
    stats: PoolCounters,
    coord: Option<Mutex<CoordState>>,
    /// Wall-clock origin for coordinator timestamps.
    origin: Instant,
    /// Deterministic fault-injection cell (disarmed unless a test arms
    /// it via [`EncodePool::arm_faults`]). The cell reuses the knob-word
    /// Release/Acquire protocol, so a disarmed hook costs one `Acquire`
    /// load of zero on the worker path.
    #[cfg(feature = "fault-injection")]
    fault: Arc<FaultCell>,
}

impl PoolShared {
    /// Synthesize a [`Counters`] view of the pool's own activity. Loads and
    /// stall time are the two inputs the coordinator's thresholds and hill
    /// climber consume; the prefetch counters stay zero on real hardware
    /// (no PMU access here), which the thresholds tolerate.
    fn counters(&self) -> Counters {
        Counters {
            loads: self.stats.loads.load(Ordering::Relaxed),
            // The *stall estimate*, not raw `busy_ns`: feeding total chunk
            // wall time here inflated `avg_load_latency_ns` (and the hill
            // climber's row latency) by pure kernel compute time, so a
            // compute-heavy, stall-free workload read as high-latency.
            demand_stall_ns: self.stats.stall_ns.load(Ordering::Relaxed) as f64,
            ..Default::default()
        }
    }

    /// Drive one coordinator tick if the sampling interval elapsed. Called
    /// by workers after each chunk; `try_lock` keeps it contention-free.
    fn maybe_tick(&self) {
        let Some(coord) = &self.coord else { return };
        let Ok(mut state) = coord.try_lock() else {
            return;
        };
        let now_ns = self.origin.elapsed().as_nanos() as f64;
        let counters = self.counters();
        state.last = counters;
        if let Some(knobs) = state.coord.on_tick(now_ns, &counters) {
            self.knobs.store(pack_knobs(&knobs), Ordering::Release);
            self.stats.policy_changes.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// `Send`-able view of a borrowed `&[NibbleTables]`, shared read-only by
/// every chunk of a job.
///
/// The submission protocol is what makes the detached lifetime sound:
/// [`EncodePool::run_jobs`] blocks in [`BatchState::wait`] until every
/// chunk of the batch has completed (even when enqueueing fails part-way),
/// so the slice this span was built from — borrowed by the caller of
/// `encode*`/`decode*`/`repair*` or owned by their stack frames — strictly
/// outlives every dereference.
#[derive(Clone, Copy)]
struct TabSpan {
    ptr: NonNull<NibbleTables>,
    len: usize,
}

// SAFETY: a read-only view; the referent outlives all dereferences per the
// submission protocol documented on the type.
unsafe impl Send for TabSpan {}

impl TabSpan {
    fn new(tables: &[NibbleTables]) -> Self {
        // SAFETY: slice pointers are never null (empty slices use a
        // dangling, still non-null pointer).
        let ptr = unsafe { NonNull::new_unchecked(tables.as_ptr().cast_mut()) };
        TabSpan {
            ptr,
            len: tables.len(),
        }
    }

    /// Rebuild the table slice on the worker.
    ///
    /// # Safety
    /// The slice passed to [`TabSpan::new`] must still be live, i.e. the
    /// submitting thread must still be blocked in [`BatchState::wait`].
    unsafe fn as_slice<'a>(self) -> &'a [NibbleTables] {
        // SAFETY: caller upholds liveness; `ptr`/`len` came from a real
        // slice, and workers only read.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

/// `Send`-able view of a borrowed `&[ProgOp]` — the lowered XOR program a
/// batch of XOR chunks shares, exactly as [`TabSpan`] shares the nibble
/// tables of a GF batch. Same liveness contract: the submitting thread
/// blocks in [`BatchState::wait`] until every chunk completes, so the
/// program slice outlives every worker dereference.
#[derive(Clone, Copy)]
struct ProgSpan {
    ptr: NonNull<ProgOp>,
    len: usize,
}

// SAFETY: a read-only view; the referent outlives all dereferences per the
// submission protocol documented on the type.
unsafe impl Send for ProgSpan {}

impl ProgSpan {
    fn new(ops: &[ProgOp]) -> Self {
        // SAFETY: slice pointers are never null (empty slices use a
        // dangling, still non-null pointer).
        let ptr = unsafe { NonNull::new_unchecked(ops.as_ptr().cast_mut()) };
        ProgSpan {
            ptr,
            len: ops.len(),
        }
    }

    /// Rebuild the op slice on the worker.
    ///
    /// # Safety
    /// The slice passed to [`ProgSpan::new`] must still be live, i.e. the
    /// submitting thread must still be blocked in [`BatchState::wait`].
    unsafe fn as_slice<'a>(self) -> &'a [ProgOp] {
        // SAFETY: caller upholds liveness; `ptr`/`len` came from a real
        // slice, and workers only read.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

/// `Send`-able read-only view of one source block (or a chunk of it).
#[derive(Clone, Copy)]
struct SrcSpan {
    ptr: NonNull<u8>,
    len: usize,
}

// SAFETY: read-only view; liveness per the submission protocol (see
// [`TabSpan`]), and workers never write through it.
unsafe impl Send for SrcSpan {}

impl SrcSpan {
    fn new(block: &[u8]) -> Self {
        // SAFETY: slice pointers are never null.
        let ptr = unsafe { NonNull::new_unchecked(block.as_ptr().cast_mut()) };
        SrcSpan {
            ptr,
            len: block.len(),
        }
    }

    /// Sub-span `[start, start + len)` of this span.
    ///
    /// # Safety
    /// `start + len <= self.len` (the chunker derives both from
    /// [`split_ranges`] over the common block length).
    unsafe fn sub(self, start: usize, len: usize) -> Self {
        debug_assert!(start + len <= self.len);
        // SAFETY: in-bounds offset within the span's allocation per the
        // caller contract.
        let ptr = unsafe { NonNull::new_unchecked(self.ptr.as_ptr().add(start)) };
        SrcSpan { ptr, len }
    }

    /// Rebuild the source slice on the worker.
    ///
    /// # Safety
    /// The block this span was derived from must still be live (submitting
    /// thread blocked in [`BatchState::wait`]).
    unsafe fn as_slice<'a>(self) -> &'a [u8] {
        // SAFETY: caller upholds liveness; bounds per construction.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

/// `Send`-able mutable view of one output block (or a chunk of it).
///
/// Exclusivity is structural: [`split_ranges`] yields non-overlapping
/// ranges, and the chunker derives every `OutSpan` of one output block
/// from exactly one range each — so no two chunks (hence no two workers)
/// ever hold spans over the same bytes, and the submitting thread does not
/// touch the output borrows until the batch completes.
#[derive(Clone, Copy)]
struct OutSpan {
    ptr: NonNull<u8>,
    len: usize,
}

// SAFETY: liveness per the submission protocol (see [`TabSpan`]) and
// write-exclusivity per the disjoint-range construction documented on the
// type: each span's byte range is owned by exactly one chunk.
unsafe impl Send for OutSpan {}

impl OutSpan {
    fn new(block: &mut [u8]) -> Self {
        // SAFETY: slice pointers are never null.
        let ptr = unsafe { NonNull::new_unchecked(block.as_mut_ptr()) };
        OutSpan {
            ptr,
            len: block.len(),
        }
    }

    /// Sub-span `[start, start + len)` of this span.
    ///
    /// # Safety
    /// `start + len <= self.len`, and the caller must hand each resulting
    /// sub-span to at most one chunk (disjointness comes from using
    /// [`split_ranges`] output as the only source of ranges).
    unsafe fn sub(self, start: usize, len: usize) -> Self {
        debug_assert!(start + len <= self.len);
        // SAFETY: in-bounds offset within the span's allocation per the
        // caller contract.
        let ptr = unsafe { NonNull::new_unchecked(self.ptr.as_ptr().add(start)) };
        OutSpan { ptr, len }
    }

    /// Rebuild the mutable output slice on the worker.
    ///
    /// # Safety
    /// The block must still be live (submitting thread blocked in
    /// [`BatchState::wait`]) and this span's range disjoint from every
    /// other chunk's, per the construction contract above.
    unsafe fn as_mut_slice<'a>(self) -> &'a mut [u8] {
        // SAFETY: caller upholds liveness and exclusive ownership of the
        // range; bounds per construction.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

/// What a chunk computes over its source/output sub-spans: the fused GF
/// apply-tables kernel, or a lowered XOR program run through the batched
/// schedule executor ([`dialga_gf::xorexec`]). Both bottom out in the same
/// §4.2/§4.3 prefetch-distance machinery, so the coordinator's knob cell
/// steers either kind identically.
#[derive(Clone, Copy)]
enum ChunkWork {
    /// `outputs[i] = sum_j tables[i * sources.len() + j] * sources[j]`.
    Gf { tables: TabSpan },
    /// Run `prog` over per-packet sub-spans (`sources`/`outputs` are the
    /// program's `n_data`/`n_parity` packets, not whole blocks).
    Xor { prog: ProgSpan, n_temps: usize },
}

/// One job over full-length blocks (or packets), before chunking.
///
/// Encode, decode stages, single-block repair and XOR-program encode all
/// reduce to this shape, so the pool has exactly one submission path.
/// Detached spans (not borrows) so jobs built from mixed origins (caller
/// slices, shard vectors, plan tables) share it; see
/// [`TabSpan`]/[`OutSpan`] for the safety contract.
struct RawJob {
    work: ChunkWork,
    sources: Vec<SrcSpan>,
    outputs: Vec<OutSpan>,
    /// Common block length (every source/output).
    len: usize,
    /// Distance fallback when the knob cell carries no override.
    default_d: u32,
    /// §4.3 long-distance fallback when the knob cell carries no override.
    default_bf: Option<u32>,
}

/// One unit of worker work: run `work` over `sources[range]` →
/// `outputs[range]`. `Send` because every field is (the spans carry the
/// safety argument on their own `unsafe impl Send`).
///
/// Every chunk reports to its batch latch exactly once: through
/// [`Chunk::finish`] after running, or through `Drop` (as a failure) if it
/// never reaches a worker — a send that fails, or a queue torn down by a
/// worker exiting with work still enqueued. Without the `Drop` path those
/// chunks would vanish and [`BatchState::wait`] would block forever.
struct Chunk {
    work: ChunkWork,
    sources: Vec<SrcSpan>,
    outputs: Vec<OutSpan>,
    default_d: u32,
    default_bf: Option<u32>,
    batch: Arc<BatchState>,
    finished: bool,
}

impl Chunk {
    /// Report this chunk's kernel result to the batch latch.
    fn finish(mut self, result: Result<(), ()>) {
        self.finished = true;
        self.batch.complete(result);
    }
}

impl Drop for Chunk {
    fn drop(&mut self) {
        if !self.finished {
            self.batch.complete(Err(()));
        }
    }
}

/// Completion latch for one submitted batch.
struct BatchState {
    inner: Mutex<BatchInner>,
    done: Condvar,
}

struct BatchInner {
    remaining: usize,
    panicked: bool,
}

impl BatchState {
    fn new(chunks: usize) -> Arc<Self> {
        Arc::new(BatchState {
            inner: Mutex::new(BatchInner {
                remaining: chunks,
                panicked: false,
            }),
            done: Condvar::new(),
        })
    }

    fn complete(&self, result: Result<(), ()>) {
        // Poisoning carries no information here: the latch state is a
        // counter plus a flag, both updated atomically under the lock, so
        // recover the guard — a stuck latch would deadlock the submitter.
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if result.is_err() {
            inner.panicked = true;
        }
        inner.remaining -= 1;
        if inner.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Block until every chunk has reported in, or until `watchdog`
    /// elapses ([`BatchWait::TimedOut`]).
    ///
    /// On `Clean`/`Failed` the batch is fully quiesced: every chunk
    /// reported through `finish` or `Drop`, so the caller's borrows are
    /// safe to release (and `Failed` batches are safe to retry — the
    /// kernel overwrites outputs). `TimedOut` can only happen if a chunk
    /// was *lost* — neither run, nor dropped — which the latch/Drop
    /// protocol rules out on every known path; the watchdog exists so a
    /// future regression in that protocol degrades into an error instead
    /// of blocking the submitter forever. After a timeout the borrows are
    /// formally released while a stuck worker could still hold spans, so
    /// the caller must surface the error and must NOT retry.
    fn wait_with_deadline(&self, watchdog: Option<Duration>) -> BatchWait {
        let start = Instant::now();
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        while inner.remaining > 0 {
            match watchdog {
                None => {
                    inner = self
                        .done
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Some(limit) => {
                    let elapsed = start.elapsed();
                    if elapsed >= limit {
                        return BatchWait::TimedOut;
                    }
                    inner = self
                        .done
                        .wait_timeout(inner, limit - elapsed)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        }
        if inner.panicked {
            BatchWait::Failed
        } else {
            BatchWait::Clean
        }
    }
}

enum Msg {
    Run(Chunk),
    /// Liveness probe: healing sends one to distinguish "thread still
    /// winding down" from "alive" without blocking (a send to a dropped
    /// receiver fails immediately). Workers ignore it.
    Ping,
    Shutdown,
}

/// One worker: its queue's send half plus the thread handle, kept
/// together so healing can replace both atomically under the slot lock.
struct WorkerSlot {
    sender: Sender<Msg>,
    handle: JoinHandle<()>,
}

/// How a batch wait ended (see [`BatchState::wait_with_deadline`]).
enum BatchWait {
    /// Every chunk completed cleanly.
    Clean,
    /// Every chunk is accounted for, but at least one failed (kernel
    /// panic, dead worker, dropped send). Safe to retry.
    Failed,
    /// The watchdog deadline expired with chunks still unaccounted for —
    /// a lost-completion bug. NOT safe to retry (spans may still be
    /// referenced); surfaced as [`EcError::Internal`] instead of a hang.
    TimedOut,
}

/// A persistent pool of encoding workers with per-worker task queues and
/// an optional live [`Coordinator`].
///
/// # Examples
///
/// ```
/// use dialga::encoder::Dialga;
/// use dialga::pool::EncodePool;
///
/// let coder = Dialga::new(6, 2).unwrap();
/// let pool = EncodePool::new(4);
/// let data: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 8192]).collect();
/// let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
/// let parity = pool.encode_vec(&coder, &refs).unwrap();
/// assert_eq!(parity, coder.encode_vec(&refs).unwrap());
/// ```
pub struct EncodePool {
    shared: Arc<PoolShared>,
    /// The worker slots. Submission clones the senders out under this
    /// lock; healing replaces dead slots in place under it, so a slot
    /// index is a stable worker identity across respawns.
    slots: Mutex<Vec<WorkerSlot>>,
    /// Nominal worker count (slot count never changes after build).
    threads: usize,
    /// Round-robin cursor so consecutive small submissions spread over
    /// different workers.
    next_worker: AtomicU64,
    /// Watchdog deadline for one batch wait, in nanoseconds; 0 disables
    /// the watchdog. Nanosecond storage keeps sub-millisecond deadlines
    /// exact (millisecond storage silently rounded them). Not a counter:
    /// read/written with Acquire/Release.
    watchdog_ns: AtomicU64,
}

/// Default batch watchdog: generous — a batch is chunks of at most a few
/// MiB each, so half a minute only elapses if completions were *lost*,
/// not merely slow.
const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);

/// Spawn one worker thread for `slot`. Respawned workers reuse the slot
/// index (stable identity for stats and fault plans) and read the live
/// knob word from `shared` on their first chunk — a healed worker starts
/// at the coordinator's *current* policy, not the policy at pool build.
fn spawn_worker(slot: usize, shared: Arc<PoolShared>) -> std::io::Result<WorkerSlot> {
    let (tx, rx) = channel::<Msg>();
    let handle = std::thread::Builder::new()
        .name(format!("dialga-enc-{slot}"))
        .spawn(move || worker_loop(slot, rx, shared))?;
    Ok(WorkerSlot { sender: tx, handle })
}

impl EncodePool {
    /// Spawn a pool of `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> Self {
        Self::build(threads, None)
    }

    /// Spawn a pool whose workers drive `coordinator` ticks: knob updates
    /// published by the coordinator reach workers on their next chunk.
    pub fn with_coordinator(threads: usize, coordinator: Coordinator) -> Self {
        Self::build(threads, Some(coordinator))
    }

    fn build(threads: usize, coordinator: Option<Coordinator>) -> Self {
        let threads = threads.max(1);
        let initial = coordinator.as_ref().map_or_else(
            || pack_knobs(&Knobs::default()),
            |c| pack_knobs(&c.policy().knobs),
        );
        #[cfg(feature = "fault-injection")]
        let fault: Arc<FaultCell> = Arc::new(FaultCell::new());
        #[cfg(feature = "fault-injection")]
        let coordinator = coordinator.map(|mut c| {
            c.set_fault_cell(Arc::clone(&fault));
            c
        });
        let shared = Arc::new(PoolShared {
            knobs: AtomicU64::new(initial),
            stats: PoolCounters::default(),
            coord: coordinator.map(|coord| {
                Mutex::new(CoordState {
                    coord,
                    last: Counters::default(),
                })
            }),
            origin: Instant::now(),
            #[cfg(feature = "fault-injection")]
            fault,
        });
        let mut slots = Vec::with_capacity(threads);
        for i in 0..threads {
            slots.push(
                spawn_worker(i, Arc::clone(&shared))
                    // A host that cannot spawn threads cannot make progress
                    // anyway; submission tolerates dead workers (`run_jobs`).
                    // lint:allow(panic-path): no Result channel at construction
                    .expect("spawn encode worker"),
            );
        }
        EncodePool {
            shared,
            slots: Mutex::new(slots),
            threads,
            next_worker: AtomicU64::new(0),
            watchdog_ns: AtomicU64::new(DEFAULT_WATCHDOG.as_nanos() as u64),
        }
    }

    /// Number of worker slots (alive or not; see
    /// [`PoolStats::workers_alive`] for liveness).
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn lock_slots(&self) -> std::sync::MutexGuard<'_, Vec<WorkerSlot>> {
        // Slot state stays consistent under panic (plain Vec of handles),
        // so recover a poisoned guard rather than propagate.
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Set the per-batch watchdog deadline (`None` disables it). The
    /// default is [`DEFAULT_WATCHDOG`] — far above any real batch, so
    /// it only ever fires on a lost-completion bug.
    ///
    /// Stored in nanoseconds, so sub-millisecond deadlines survive
    /// exactly (a zero-length deadline clamps to 1 ns rather than
    /// colliding with the "disabled" sentinel).
    pub fn set_watchdog(&self, deadline: Option<Duration>) {
        let ns = deadline.map_or(0, |d| {
            u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1)
        });
        self.watchdog_ns.store(ns, Ordering::Release);
    }

    fn watchdog(&self) -> Option<Duration> {
        match self.watchdog_ns.load(Ordering::Acquire) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// Arm a deterministic fault plan against this pool (and its
    /// coordinator, when one is attached). Replaces any plan already
    /// armed; scripted faults fire on the matching hook crossings until
    /// [`Self::disarm_faults`] (worker indices in the plan are slot
    /// indices, stable across respawns).
    #[cfg(feature = "fault-injection")]
    pub fn arm_faults(&self, plan: &FaultPlan) {
        self.shared.fault.arm(plan, self.threads);
    }

    /// Disarm any armed fault plan; hooks revert to a single relaxed
    /// load of a zero word.
    #[cfg(feature = "fault-injection")]
    pub fn disarm_faults(&self) {
        self.shared.fault.disarm();
    }

    /// Total scripted faults injected since construction (across all
    /// armed plans).
    #[cfg(feature = "fault-injection")]
    pub fn faults_injected(&self) -> u64 {
        self.shared.fault.injected()
    }

    /// Snapshot of pool activity counters.
    pub fn stats(&self) -> PoolStats {
        let workers_alive = self
            .lock_slots()
            .iter()
            .filter(|slot| !slot.handle.is_finished())
            .count();
        let s = &self.shared.stats;
        PoolStats {
            loads: s.loads.load(Ordering::Relaxed),
            busy_ns: s.busy_ns.load(Ordering::Relaxed),
            stall_ns: s.stall_ns.load(Ordering::Relaxed),
            chunks: s.chunks.load(Ordering::Relaxed),
            stripes: s.stripes.load(Ordering::Relaxed),
            dispatches: s.dispatches.load(Ordering::Relaxed),
            knob_switches: s.knob_switches.load(Ordering::Relaxed),
            policy_changes: s.policy_changes.load(Ordering::Relaxed),
            worker_deaths: s.worker_deaths.load(Ordering::Relaxed),
            worker_respawns: s.worker_respawns.load(Ordering::Relaxed),
            batch_retries: s.batch_retries.load(Ordering::Relaxed),
            workers_alive,
        }
    }

    /// The knobs workers currently apply.
    pub fn current_knobs(&self) -> Knobs {
        unpack_knobs(self.shared.knobs.load(Ordering::Acquire))
    }

    /// Samples the coordinator has taken (0 without a coordinator).
    pub fn coordinator_samples(&self) -> u64 {
        // Tick state stays consistent under panic (plain counters), so a
        // poisoned lock is recovered rather than propagated.
        self.shared.coord.as_ref().map_or(0, |coord| {
            coord
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .coord
                .samples()
        })
    }

    /// Stat snapshot of the attached coordinator (`None` without one).
    /// Timestamps inside the snapshot are on the [`EncodePool::clock_ns`]
    /// timeline, so `clock_ns() - snapshot.last_change_ns` is the age of
    /// the newest policy change — the workload harness uses exactly this
    /// to measure re-convergence time after a mid-run workload shift.
    pub fn coordinator_snapshot(&self) -> Option<crate::coordinator::CoordinatorSnapshot> {
        self.shared.coord.as_ref().map(|coord| {
            coord
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .coord
                .snapshot()
        })
    }

    /// Nanoseconds since this pool's construction — the clock that stamps
    /// coordinator ticks, policy-log entries and
    /// [`EncodePool::coordinator_snapshot`] timestamps.
    pub fn clock_ns(&self) -> f64 {
        self.shared.origin.elapsed().as_nanos() as f64
    }

    /// Timestamped policy changes the coordinator recorded (empty without a
    /// coordinator).
    pub fn policy_log(&self) -> Vec<(f64, crate::coordinator::Policy)> {
        self.shared.coord.as_ref().map_or_else(Vec::new, |coord| {
            coord
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .coord
                .policy_log()
        })
    }

    /// Encode one stripe across the pool. Blocks until the stripe is done;
    /// bit-exact with [`Dialga::encode`].
    pub fn encode(
        &self,
        coder: &Dialga,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
    ) -> Result<(), EcError> {
        let mut stripes = [StripeJob { data, parity }];
        self.encode_batch(coder, &mut stripes)
    }

    /// Encode a batch of stripes across the pool in one submission.
    ///
    /// All stripes are validated up front (nothing is enqueued when any
    /// stripe is malformed), then chunked with [`split_ranges`] and dealt
    /// round-robin to the per-worker queues. Blocks until the whole batch
    /// completes.
    pub fn encode_batch(
        &self,
        coder: &Dialga,
        stripes: &mut [StripeJob<'_, '_>],
    ) -> Result<(), EcError> {
        let params = coder.params();
        for s in stripes.iter() {
            if s.data.len() != params.k {
                return Err(EcError::BlockCount {
                    expected: params.k,
                    got: s.data.len(),
                });
            }
            if s.parity.len() != params.m {
                return Err(EcError::BlockCount {
                    expected: params.m,
                    got: s.parity.len(),
                });
            }
            let len = s.data.first().map_or(0, |d| d.len());
            for d in s.data.iter() {
                if d.len() != len {
                    return Err(EcError::BlockLength {
                        expected: len,
                        got: d.len(),
                    });
                }
            }
            for p in s.parity.iter() {
                if p.len() != len {
                    return Err(EcError::BlockLength {
                        expected: len,
                        got: p.len(),
                    });
                }
            }
        }

        // Build one apply-tables job per stripe; `run_jobs` chunks them.
        let tables = coder.tables();
        let default_d = coder.prefetch_distance();
        let default_bf = coder.bf_first_distance();
        let mut jobs: Vec<RawJob> = Vec::with_capacity(stripes.len());
        for s in stripes.iter_mut() {
            let len = s.data.first().map_or(0, |d| d.len());
            jobs.push(RawJob {
                work: ChunkWork::Gf {
                    tables: TabSpan::new(tables),
                },
                sources: s.data.iter().map(|d| SrcSpan::new(d)).collect(),
                outputs: s.parity.iter_mut().map(|p| OutSpan::new(p)).collect(),
                len,
                default_d,
                default_bf,
            });
        }
        self.shared
            .stats
            .stripes
            .fetch_add(stripes.len() as u64, Ordering::Relaxed);
        self.shared.stats.dispatches.fetch_add(1, Ordering::Relaxed);
        self.run_jobs(&jobs, coder.max_batch_retries())
    }

    /// Convenience wrapper allocating the parity blocks.
    pub fn encode_vec(&self, coder: &Dialga, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
        let len = data.first().map_or(0, |d| d.len());
        let mut parity = vec![vec![0u8; len]; coder.params().m];
        let mut refs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
        self.encode(coder, data, &mut refs)?;
        Ok(parity)
    }

    /// Encode one stripe through a lowered XOR program (a bitmatrix
    /// schedule from `dialga-ec`, optimized or not) across the pool.
    /// Blocks until the stripe is done; bit-exact with the serial
    /// schedule executors.
    pub fn encode_xor(
        &self,
        prog: &XorProgram,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
    ) -> Result<(), EcError> {
        let mut stripes = [StripeJob { data, parity }];
        self.encode_xor_batch(prog, &mut stripes)
    }

    /// Encode a batch of stripes through one lowered XOR program.
    ///
    /// Mirrors [`EncodePool::encode_batch`] for the schedule-driven path:
    /// every stripe is validated up front, then each block is split into
    /// its `W` bit packets and the *packet* range is chunked with
    /// [`split_ranges`] — XOR ops are byte-wise, so any horizontal split of
    /// the packet range is exact. Workers run the chunks through the
    /// batched executor ([`dialga_gf::xorexec::execute_ops`]) with the
    /// live coordinator knobs steering the §4.2/§4.3 prefetch distances
    /// exactly as on the fused-RS path (the shuffle is stripped by the
    /// executor: schedule ops carry dependencies).
    pub fn encode_xor_batch(
        &self,
        prog: &XorProgram,
        stripes: &mut [StripeJob<'_, '_>],
    ) -> Result<(), EcError> {
        let (k, m) = (prog.n_data / W, prog.n_parity / W);
        if !prog.n_data.is_multiple_of(W) || !prog.n_parity.is_multiple_of(W) {
            return Err(EcError::Internal {
                what: "XOR program packet counts are not multiples of W",
            });
        }
        for s in stripes.iter() {
            if s.data.len() != k {
                return Err(EcError::BlockCount {
                    expected: k,
                    got: s.data.len(),
                });
            }
            if s.parity.len() != m {
                return Err(EcError::BlockCount {
                    expected: m,
                    got: s.parity.len(),
                });
            }
            let len = s.data.first().map_or(0, |d| d.len());
            if !len.is_multiple_of(W) {
                return Err(EcError::BlockLength {
                    expected: len.next_multiple_of(W),
                    got: len,
                });
            }
            for d in s.data.iter() {
                if d.len() != len {
                    return Err(EcError::BlockLength {
                        expected: len,
                        got: d.len(),
                    });
                }
            }
            for p in s.parity.iter() {
                if p.len() != len {
                    return Err(EcError::BlockLength {
                        expected: len,
                        got: p.len(),
                    });
                }
            }
        }

        // One job per stripe over *packet* spans: flat packet index
        // `block * W + packet` maps to the block's packet sub-slice, the
        // same layout the serial executors use. `job.len` is the packet
        // length, so the existing chunker applies unchanged.
        //
        // Default prefetch distance: one op-step per source stream (`k`),
        // mirroring the fused path's streams-default; the knob cell
        // overrides it live.
        let default_d = (k as u32).max(1);
        let mut jobs: Vec<RawJob> = Vec::with_capacity(stripes.len());
        for s in stripes.iter_mut() {
            let len = s.data.first().map_or(0, |d| d.len());
            let psize = len / W;
            let mut sources = Vec::with_capacity(prog.n_data);
            for d in s.data.iter() {
                for p in 0..W {
                    sources.push(SrcSpan::new(&d[p * psize..(p + 1) * psize]));
                }
            }
            let mut outputs = Vec::with_capacity(prog.n_parity);
            for blk in s.parity.iter_mut() {
                for p in 0..W {
                    outputs.push(OutSpan::new(&mut blk[p * psize..(p + 1) * psize]));
                }
            }
            jobs.push(RawJob {
                work: ChunkWork::Xor {
                    prog: ProgSpan::new(&prog.ops),
                    n_temps: prog.n_temps,
                },
                sources,
                outputs,
                len: psize,
                default_d,
                default_bf: None,
            });
        }
        self.shared
            .stats
            .stripes
            .fetch_add(stripes.len() as u64, Ordering::Relaxed);
        self.shared.stats.dispatches.fetch_add(1, Ordering::Relaxed);
        self.run_jobs(&jobs, DEFAULT_BATCH_RETRIES)
    }

    /// Convenience wrapper allocating the parity blocks for
    /// [`EncodePool::encode_xor`].
    pub fn encode_xor_vec(
        &self,
        prog: &XorProgram,
        data: &[&[u8]],
    ) -> Result<Vec<Vec<u8>>, EcError> {
        let len = data.first().map_or(0, |d| d.len());
        let mut parity = vec![vec![0u8; len]; prog.n_parity / W];
        let mut refs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
        self.encode_xor(prog, data, &mut refs)?;
        Ok(parity)
    }

    /// Reconstruct missing shards in place across the pool. Blocks until
    /// the stripe is repaired; bit-exact with [`Dialga::decode`].
    pub fn decode(&self, coder: &Dialga, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        let mut jobs = [DecodeJob { shards }];
        self.decode_batch(coder, &mut jobs)
    }

    /// Decode a batch of stripes across the pool in one submission.
    ///
    /// All stripes are planned and validated up front (survivor selection,
    /// per-present-shard length checks, decode-matrix inversion — nothing
    /// is enqueued or mutated when any stripe is malformed), then the two
    /// reconstruction stages run chunked over the workers: lost data from
    /// survivors, then lost parity rows from the completed data. Workers
    /// pick up coordinator knob changes per chunk exactly as on the encode
    /// path.
    pub fn decode_batch(
        &self,
        coder: &Dialga,
        stripes: &mut [DecodeJob<'_>],
    ) -> Result<(), EcError> {
        let default_d = coder.prefetch_distance();
        let default_bf = coder.bf_first_distance();
        let plans: Vec<crate::encoder::DecodePlan> = stripes
            .iter()
            .map(|s| coder.decode_plan(s.shards))
            .collect::<Result<_, _>>()?;

        // Give every lost shard its zeroed buffer before taking pointers.
        for (s, plan) in stripes.iter_mut().zip(&plans) {
            for &l in plan.lost_data().iter().chain(plan.lost_parity()) {
                s.shards[l] = Some(vec![0u8; plan.shard_len()]);
            }
        }
        self.shared
            .stats
            .stripes
            .fetch_add(stripes.len() as u64, Ordering::Relaxed);
        self.shared.stats.dispatches.fetch_add(1, Ordering::Relaxed);

        // Stage 1: lost data blocks from the k survivors.
        let mut jobs: Vec<RawJob> = Vec::new();
        for (s, plan) in stripes.iter_mut().zip(&plans) {
            if plan.lost_data().is_empty() {
                continue;
            }
            let mut sources = Vec::with_capacity(plan.survivors().len());
            for &i in plan.survivors() {
                let v = dialga_ec::present_shard(s.shards, i, "decode-plan survivor absent")?;
                sources.push(SrcSpan::new(v));
            }
            let mut outputs = Vec::with_capacity(plan.lost_data().len());
            for &i in plan.lost_data() {
                let v = dialga_ec::present_shard_mut(s.shards, i, "lost-data buffer absent")?;
                outputs.push(OutSpan::new(v));
            }
            jobs.push(RawJob {
                work: ChunkWork::Gf {
                    tables: TabSpan::new(plan.data_tables()),
                },
                sources,
                outputs,
                len: plan.shard_len(),
                default_d,
                default_bf,
            });
        }
        self.run_jobs(&jobs, coder.max_batch_retries())?;

        // Stage 2: lost parity rows from the (now complete) data blocks.
        // The stage-1 wait orders the reconstructed data before these reads.
        let k = coder.params().k;
        jobs.clear();
        for (s, plan) in stripes.iter_mut().zip(&plans) {
            if plan.lost_parity().is_empty() {
                continue;
            }
            let mut sources = Vec::with_capacity(k);
            for i in 0..k {
                let v = dialga_ec::present_shard(s.shards, i, "data shard absent after rebuild")?;
                sources.push(SrcSpan::new(v));
            }
            let mut outputs = Vec::with_capacity(plan.lost_parity().len());
            for &i in plan.lost_parity() {
                let v = dialga_ec::present_shard_mut(s.shards, i, "lost-parity buffer absent")?;
                outputs.push(OutSpan::new(v));
            }
            jobs.push(RawJob {
                work: ChunkWork::Gf {
                    tables: TabSpan::new(plan.parity_tables()),
                },
                sources,
                outputs,
                len: plan.shard_len(),
                default_d,
                default_bf,
            });
        }
        self.run_jobs(&jobs, coder.max_batch_retries())
    }

    /// Single-block repair fast path (degraded read): reconstruct shard
    /// `target` from k survivors without mutating `shards` or decoding the
    /// rest of the stripe — one composed-coefficient kernel pass, chunked
    /// across the workers.
    pub fn repair(
        &self,
        coder: &Dialga,
        shards: &[Option<Vec<u8>>],
        target: usize,
    ) -> Result<Vec<u8>, EcError> {
        let params = coder.params();
        let (k, m) = (params.k, params.m);
        if shards.len() != k + m {
            return Err(EcError::BlockCount {
                expected: k + m,
                got: shards.len(),
            });
        }
        if target >= k + m {
            return Err(EcError::BlockCount {
                expected: k + m,
                got: target,
            });
        }
        let survivors: Vec<usize> = (0..k + m)
            .filter(|&i| i != target && shards[i].is_some())
            .take(k)
            .collect();
        if survivors.len() < k {
            let lost = (0..k + m).filter(|&i| shards[i].is_none()).count().max(1);
            return Err(EcError::TooManyErasures { lost, tolerance: m });
        }
        let len = dialga_ec::present_shard(shards, survivors[0], "repair survivor absent")?.len();
        for s in shards.iter().flatten() {
            if s.len() != len {
                return Err(EcError::BlockLength {
                    expected: len,
                    got: s.len(),
                });
            }
        }
        let plan = coder.repair_plan(&survivors, target)?;
        let mut out = vec![0u8; len];
        let mut sources = Vec::with_capacity(survivors.len());
        for &i in &survivors {
            let v = dialga_ec::present_shard(shards, i, "repair survivor absent")?;
            sources.push(SrcSpan::new(v));
        }
        let job = RawJob {
            work: ChunkWork::Gf {
                tables: TabSpan::new(plan.tables()),
            },
            sources,
            outputs: vec![OutSpan::new(&mut out)],
            len,
            default_d: coder.prefetch_distance(),
            default_bf: coder.bf_first_distance(),
        };
        self.shared.stats.stripes.fetch_add(1, Ordering::Relaxed);
        self.shared.stats.dispatches.fetch_add(1, Ordering::Relaxed);
        self.run_jobs(std::slice::from_ref(&job), coder.max_batch_retries())?;
        Ok(out)
    }

    /// LRC local-group repair across the pool: rebuild a single lost data
    /// block from its `k/l − 1` surviving peers plus the group's local
    /// parity (an XOR — identity-coefficient tables through the same
    /// kernel). Bit-exact with [`Lrc::repair_local`].
    pub fn repair_local(
        &self,
        lrc: &Lrc,
        lost: usize,
        group_data: &[&[u8]],
        local_parity: &[u8],
    ) -> Result<Vec<u8>, EcError> {
        let gs = lrc.group_size();
        if lost >= lrc.params().k {
            return Err(EcError::BlockCount {
                expected: lrc.params().k,
                got: lost,
            });
        }
        if group_data.len() != gs - 1 {
            return Err(EcError::BlockCount {
                expected: gs - 1,
                got: group_data.len(),
            });
        }
        let len = local_parity.len();
        for d in group_data {
            if d.len() != len {
                return Err(EcError::BlockLength {
                    expected: len,
                    got: d.len(),
                });
            }
        }
        // XOR is GF multiply by 1: one identity coefficient per source.
        let tables = vec![NibbleTables::new(1); gs];
        let mut out = vec![0u8; len];
        let mut sources: Vec<SrcSpan> = group_data.iter().map(|d| SrcSpan::new(d)).collect();
        sources.push(SrcSpan::new(local_parity));
        let job = RawJob {
            work: ChunkWork::Gf {
                tables: TabSpan::new(&tables),
            },
            sources,
            outputs: vec![OutSpan::new(&mut out)],
            len,
            default_d: gs as u32,
            default_bf: None,
        };
        self.shared.stats.stripes.fetch_add(1, Ordering::Relaxed);
        self.shared.stats.dispatches.fetch_add(1, Ordering::Relaxed);
        self.run_jobs(std::slice::from_ref(&job), DEFAULT_BATCH_RETRIES)?;
        Ok(out)
    }

    /// Verify stripe integrity on the workers: recompute all m parity
    /// rows from `data` (chunked across the pool like an encode) and
    /// compare against the stored `parity`. On mismatch returns
    /// [`EcError::Corrupt`] naming the disagreeing parity rows (indices
    /// `k..k+m`) — evidence of inconsistency, not a localization (a
    /// corrupt data shard trips every row; see [`Dialga::scrub`]).
    pub fn verify(&self, coder: &Dialga, data: &[&[u8]], parity: &[&[u8]]) -> Result<(), EcError> {
        let params = coder.params();
        let (k, m) = (params.k, params.m);
        if data.len() != k {
            return Err(EcError::BlockCount {
                expected: k,
                got: data.len(),
            });
        }
        if parity.len() != m {
            return Err(EcError::BlockCount {
                expected: m,
                got: parity.len(),
            });
        }
        let len = data.first().map_or(0, |d| d.len());
        for b in data.iter().chain(parity.iter()) {
            if b.len() != len {
                return Err(EcError::BlockLength {
                    expected: len,
                    got: b.len(),
                });
            }
        }
        let mut scratch = vec![vec![0u8; len]; m];
        {
            let job = RawJob {
                work: ChunkWork::Gf {
                    tables: TabSpan::new(coder.tables()),
                },
                sources: data.iter().map(|d| SrcSpan::new(d)).collect(),
                outputs: scratch.iter_mut().map(|o| OutSpan::new(o)).collect(),
                len,
                default_d: coder.prefetch_distance(),
                default_bf: coder.bf_first_distance(),
            };
            self.shared.stats.stripes.fetch_add(1, Ordering::Relaxed);
            self.shared.stats.dispatches.fetch_add(1, Ordering::Relaxed);
            self.run_jobs(std::slice::from_ref(&job), coder.max_batch_retries())?;
        }
        let bad: Vec<usize> = scratch
            .iter()
            .zip(parity.iter())
            .enumerate()
            .filter(|(_, (got, want))| got.as_slice() != **want)
            .map(|(r, _)| k + r)
            .collect();
        if bad.is_empty() {
            Ok(())
        } else {
            Err(EcError::Corrupt { shards: bad })
        }
    }

    /// [`Self::decode`] plus an integrity check of the completed stripe
    /// on the same workers. A corrupted *survivor* silently poisons a
    /// plain decode (the decode matrix trusts every present byte);
    /// here the full stripe is re-verified after reconstruction and a
    /// corrupt survivor is rejected with [`EcError::Corrupt`] naming it
    /// (localized by leave-one-out re-decode over the original
    /// survivors when the erasure budget allows, the mismatching parity
    /// rows as evidence otherwise).
    ///
    /// On `Err`, reconstructed shard contents are unspecified (they were
    /// derived from corrupt input).
    pub fn decode_verified(
        &self,
        coder: &Dialga,
        shards: &mut [Option<Vec<u8>>],
    ) -> Result<(), EcError> {
        let params = coder.params();
        let (k, m) = (params.k, params.m);
        let lost: Vec<usize> = (0..shards.len())
            .filter(|&i| shards.get(i).is_some_and(|s| s.is_none()))
            .collect();
        self.decode(coder, shards)?;
        let data: Vec<&[u8]> = (0..k)
            .map(|i| dialga_ec::present_shard(shards, i, "data shard absent after decode"))
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|v| v.as_slice())
            .collect();
        let parity: Vec<&[u8]> = (k..k + m)
            .map(|i| dialga_ec::present_shard(shards, i, "parity shard absent after decode"))
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|v| v.as_slice())
            .collect();
        let evidence = match self.verify(coder, &data, &parity) {
            Ok(()) => return Ok(()),
            Err(EcError::Corrupt { shards }) => shards,
            Err(e) => return Err(e),
        };
        // Localize: re-decode with one original survivor additionally
        // erased; the trial that comes back consistent names the corrupt
        // survivor (unique for one corrupt shard by the MDS distance
        // bound). Needs a *spare* parity constraint beyond the trial's
        // erasures — with `lost + 1 == m` every remaining shard becomes a
        // survivor and any trial decode is trivially consistent, so the
        // corruption is detectable but not localizable.
        if lost.len() + 1 < m {
            for s in (0..k + m).filter(|i| !lost.contains(i)) {
                let mut trial: Vec<Option<Vec<u8>>> = shards.to_vec();
                for &l in &lost {
                    trial[l] = None;
                }
                trial[s] = None;
                if coder.decode(&mut trial).is_err() {
                    continue;
                }
                let fixed: Vec<&[u8]> = trial.iter().flatten().map(|v| v.as_slice()).collect();
                if fixed.len() == k + m && coder.verify(&fixed[..k], &fixed[k..]).is_ok() {
                    return Err(EcError::Corrupt { shards: vec![s] });
                }
            }
        }
        Err(EcError::Corrupt { shards: evidence })
    }

    /// [`Self::repair`] plus an integrity check: reconstruct shard
    /// `target` *and* verify the stripe it came from, rejecting corrupt
    /// survivors with [`EcError::Corrupt`] (a plain repair would fold a
    /// corrupted survivor straight into the rebuilt shard). Decodes the
    /// whole stripe on the workers to make the cross-check possible —
    /// the verified path trades the degraded-read fast path for
    /// end-to-end integrity.
    pub fn repair_verified(
        &self,
        coder: &Dialga,
        shards: &[Option<Vec<u8>>],
        target: usize,
    ) -> Result<Vec<u8>, EcError> {
        let params = coder.params();
        let (k, m) = (params.k, params.m);
        if shards.len() != k + m {
            return Err(EcError::BlockCount {
                expected: k + m,
                got: shards.len(),
            });
        }
        if target >= k + m {
            return Err(EcError::BlockCount {
                expected: k + m,
                got: target,
            });
        }
        let mut trial: Vec<Option<Vec<u8>>> = shards.to_vec();
        // Erasing a present target re-derives (and thus verifies) it too.
        trial[target] = None;
        self.decode_verified(coder, &mut trial)?;
        trial[target].take().ok_or(EcError::Internal {
            what: "repair_verified target absent after verified decode",
        })
    }

    /// Run a batch with healing and bounded retry: submit via
    /// [`Self::run_jobs_once`]; when the batch fails (worker death,
    /// kernel panic, dropped send), respawn any dead workers and — up to
    /// `retries` times — resubmit the whole batch. Resubmission is
    /// idempotent: the fused kernel *overwrites* its outputs and the
    /// batch latch quiesced every chunk of the failed attempt first, so
    /// no byte of a previous attempt can land after (or interleave with)
    /// the retry. Watchdog timeouts are never retried (see
    /// [`BatchWait::TimedOut`]).
    ///
    /// Healing runs even when `retries` is 0 or exhausted, so the pool
    /// returns to full capacity for the *next* submission either way.
    fn run_jobs(&self, jobs: &[RawJob], retries: u32) -> Result<(), EcError> {
        let mut attempt = 0u32;
        loop {
            match self.run_jobs_once(jobs) {
                BatchWait::Clean => return Ok(()),
                BatchWait::TimedOut => {
                    return Err(EcError::Internal {
                        what: "encode pool batch watchdog expired (lost chunk completion)",
                    });
                }
                BatchWait::Failed => {
                    self.heal_workers();
                    if attempt >= retries {
                        return Err(EcError::Internal {
                            what: "encode pool worker panicked or exited mid-batch",
                        });
                    }
                    attempt += 1;
                    self.shared
                        .stats
                        .batch_retries
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Respawn every dead worker slot in place (fresh queue, same slot
    /// index; the replacement reads the current knob word on its first
    /// chunk). Returns how many workers were respawned. A slot whose
    /// respawn fails (thread spawn error) stays dead and is retried on
    /// the next heal.
    fn heal_workers(&self) -> usize {
        let mut slots = self.lock_slots();
        let mut healed = 0;
        for (i, slot) in slots.iter_mut().enumerate() {
            // `is_finished` covers a fully-exited thread; the ping probe
            // covers the window where the receiver is already dropped but
            // the thread has not finished tearing down.
            // Probe-and-replace must be atomic per slot (a dispatch in
            // between would clone a dead sender), and the unbounded std
            // channel makes this send non-blocking, so holding `slots`
            // across the probe is deliberate:
            // lint:allow(lock-order): non-blocking ping probe; the slot swap must be atomic with it
            let dead = slot.handle.is_finished() || slot.sender.send(Msg::Ping).is_err();
            if !dead {
                continue;
            }
            self.shared
                .stats
                .worker_deaths
                .fetch_add(1, Ordering::Relaxed);
            let Ok(fresh) = spawn_worker(i, Arc::clone(&self.shared)) else {
                continue;
            };
            let old = std::mem::replace(slot, fresh);
            // The dead worker's receiver is gone (or going); joining reaps
            // the thread, and cannot block: its loop has already returned.
            drop(old.sender);
            let _ = old.handle.join();
            self.shared
                .stats
                .worker_respawns
                .fetch_add(1, Ordering::Relaxed);
            healed += 1;
        }
        healed
    }

    /// Chunk every job with [`split_ranges`], deal the chunks round-robin
    /// to the per-worker queues, and block until all complete (or the
    /// watchdog expires). Jobs with zero-length blocks contribute no
    /// chunks.
    ///
    /// This function MUST NOT return (or unwind) before every chunk of the
    /// batch is accounted for: the chunks carry detached spans into the
    /// caller's borrows, and a worker may already be executing one while
    /// later sends are still in flight. A failed send (worker died, its
    /// receiver dropped) therefore does not bail out — the unsent chunk is
    /// marked failed on the latch and submission continues, so
    /// [`BatchState::wait_with_deadline`] still quiesces the whole batch
    /// before the borrows are released. (The single exception is the
    /// watchdog path, documented on [`BatchWait::TimedOut`].)
    fn run_jobs_once(&self, jobs: &[RawJob]) -> BatchWait {
        let mut chunks: Vec<Chunk> = Vec::new();
        // Latch count is known only after chunking; build chunk protos
        // first so the batch starts exact.
        let mut protos: Vec<(usize, Range<usize>)> = Vec::new();
        for (j, job) in jobs.iter().enumerate() {
            for r in split_ranges(job.len, self.threads()) {
                protos.push((j, r));
            }
        }
        if protos.is_empty() {
            return BatchWait::Clean;
        }
        let batch = BatchState::new(protos.len());
        for (j, r) in protos {
            let job = &jobs[j];
            // SAFETY: `r` came from `split_ranges(job.len, _)`, so it lies
            // within `[0, job.len)`, every source and output of a job spans
            // `job.len` bytes (validated by the public entry points), and
            // each range is handed to exactly one chunk.
            let sources = job
                .sources
                .iter()
                .map(|s| unsafe { s.sub(r.start, r.len()) })
                .collect();
            // SAFETY: as above; disjoint ranges give each output sub-span
            // to exactly one chunk.
            let outputs = job
                .outputs
                .iter()
                .map(|o| unsafe { o.sub(r.start, r.len()) })
                .collect();
            chunks.push(Chunk {
                work: job.work,
                sources,
                outputs,
                default_d: job.default_d,
                default_bf: job.default_bf,
                batch: Arc::clone(&batch),
                finished: false,
            });
        }
        // Senders are cloned out so the slot lock is not held across the
        // batch wait (healing and other submitters stay unblocked). A
        // concurrent heal can invalidate a cloned sender mid-submission;
        // the send then fails and the chunk's Drop closes the latch, so
        // the batch still quiesces and the retry loop recovers.
        let senders: Vec<Sender<Msg>> =
            self.lock_slots().iter().map(|s| s.sender.clone()).collect();
        let start = self.next_worker.fetch_add(1, Ordering::Relaxed) as usize;
        for (i, chunk) in chunks.into_iter().enumerate() {
            let w = (start + i) % senders.len();
            // Scripted fault: drop this send as if the queue were gone.
            #[cfg(feature = "fault-injection")]
            if self.shared.fault.on_send() {
                drop(chunk);
                continue;
            }
            // A failed send means the worker is gone and its queue will
            // never drain; dropping the returned chunk marks it failed on
            // the latch so it still closes. The old `.expect` here unwound
            // the submitting frame while live workers held spans into it
            // (a use-after-free window).
            let _ = senders[w].send(Msg::Run(chunk));
        }
        batch.wait_with_deadline(self.watchdog())
    }
}

impl Drop for EncodePool {
    fn drop(&mut self) {
        // Drain the slots out of the lock first: `&mut self` means no
        // healer or dispatcher can race the teardown, and signalling +
        // joining outside the critical section keeps the shutdown path
        // clean under R8 (no channel ops while holding `slots`).
        let slots: Vec<WorkerSlot> = self.lock_slots().drain(..).collect();
        for slot in &slots {
            // A worker that already exited (or panicked) has dropped its
            // receiver; nothing to signal then.
            let _ = slot.sender.send(Msg::Shutdown);
        }
        for slot in slots {
            drop(slot.sender);
            let _ = slot.handle.join();
        }
    }
}

/// Worker body for slot `index`. The slot index is the worker's stable
/// identity: a respawned worker runs the same loop with the same index,
/// so scripted faults keyed on a worker keep matching across respawns
/// (their per-slot counters live in the shared [`FaultCell`], not here).
fn worker_loop(index: usize, rx: Receiver<Msg>, shared: Arc<PoolShared>) {
    #[cfg(not(feature = "fault-injection"))]
    let _ = index;
    let mut last_knobs = shared.knobs.load(Ordering::Acquire);
    // Per-worker temp arena for XOR-program chunks: tile-sized buffers,
    // allocated once and reused for the worker's lifetime (satellite of the
    // schedule-optimizer PR — the old naive path allocated per stripe).
    let mut arena = TempArena::new();
    while let Ok(msg) = rx.recv() {
        let chunk = match msg {
            Msg::Run(chunk) => chunk,
            // Liveness probe from `heal_workers`; nothing to do.
            Msg::Ping => continue,
            Msg::Shutdown => break,
        };
        #[cfg(feature = "fault-injection")]
        let scripted_panic = match shared.fault.on_worker_chunk(index) {
            ChunkFault::None => false,
            ChunkFault::Panic => true,
            ChunkFault::Exit => {
                // Dropping the chunk before running it completes the
                // latch with a failure (Chunk::drop), exactly like a
                // worker that died between recv and finish.
                drop(chunk);
                return;
            }
        };

        let packed = shared.knobs.load(Ordering::Acquire);
        if packed != last_knobs {
            shared.stats.knob_switches.fetch_add(1, Ordering::Relaxed);
            last_knobs = packed;
        }
        let knobs = unpack_knobs(packed);

        let started = Instant::now();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Scripted fault: die exactly where a kernel bug would, inside
            // the catch_unwind that guards real kernel panics.
            #[cfg(feature = "fault-injection")]
            if scripted_panic {
                // Only reachable with the fault-injection feature and an
                // armed plan; caught by the surrounding catch_unwind.
                // lint:allow(panic-path): deliberate scripted worker fault
                panic!("injected worker panic (slot {index})");
            }
            // SAFETY: the submitting thread blocks in `BatchState::wait`
            // until this chunk (and its whole batch) completes, so all
            // spans are live; output sub-spans of distinct chunks never
            // alias (see `OutSpan`).
            let sources: Vec<&[u8]> = chunk
                .sources
                .iter()
                .map(|s| unsafe { s.as_slice() })
                .collect();
            // SAFETY: as above, plus range-exclusivity per `OutSpan`.
            let mut outputs: Vec<&mut [u8]> = chunk
                .outputs
                .iter()
                .map(|o| unsafe { o.as_mut_slice() })
                .collect();
            // The coordinator's live knobs win; the job's defaults fill in
            // when the knob cell carries no override.
            let sched = dialga_gf::sched::FusedSched {
                d: Some(knobs.sw_distance.unwrap_or(chunk.default_d)),
                d_long: knobs.bf_first_distance.or(chunk.default_bf),
                shuffle: knobs.shuffle,
            };
            match chunk.work {
                ChunkWork::Gf { tables } => {
                    // SAFETY: tables outlive the batch wait (see `TabSpan`).
                    let tables: &[NibbleTables] = unsafe { tables.as_slice() };
                    crate::encoder::apply_tables(tables, &sources, &mut outputs, sched);
                }
                ChunkWork::Xor { prog, n_temps } => {
                    // SAFETY: the program outlives the batch wait (see
                    // `ProgSpan`).
                    let ops: &[ProgOp] = unsafe { prog.as_slice() };
                    // The executor strips the shuffle itself (schedule ops
                    // carry dependencies); distances apply as-is.
                    dialga_gf::xorexec::execute_ops(
                        ops,
                        n_temps,
                        &sources,
                        &mut outputs,
                        &mut arena,
                        sched,
                    );
                }
            }
        }));

        let len = chunk.sources.first().map_or(0, |s| s.len);
        // `div_ceil`, not `/`: a ragged tail still touches a full cache
        // line, and truncating undercounted the `loads` the coordinator's
        // latency estimate divides by.
        let rows = len.div_ceil(dialga_gf::CACHELINE) as u64 * chunk.sources.len() as u64;
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        let s = &shared.stats;
        s.loads.fetch_add(rows, Ordering::Relaxed);
        s.busy_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
        // Stall estimate: no PMU access here, so treat the cheapest
        // per-load chunk ever observed as the pure-compute floor and
        // charge each chunk's excess over that floor to memory stall.
        // The first chunk defines its own floor (zero stall); warm-up
        // outliers only raise the floor they are judged against, never
        // a later, lower one. Fixed point ×1024 keeps sub-ns per-load
        // costs from truncating to zero on large chunks.
        if let Some(per_load_x1024) = elapsed_ns.saturating_mul(1024).checked_div(rows) {
            let prev = s
                .load_ns_floor_x1024
                .fetch_min(per_load_x1024, Ordering::Relaxed);
            let floor = prev.min(per_load_x1024);
            let compute_ns = floor.saturating_mul(rows) / 1024;
            s.stall_ns
                .fetch_add(elapsed_ns.saturating_sub(compute_ns), Ordering::Relaxed);
        }
        s.chunks.fetch_add(1, Ordering::Relaxed);

        chunk.finish(result.map_err(|_| ()));
        shared.maybe_tick();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| ((i * 37 + j * 11) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn knob_packing_roundtrips() {
        for knobs in [
            Knobs::default(),
            Knobs {
                sw_distance: Some(0),
                bf_first_distance: Some(4096),
                shuffle: true,
                xpline_expand: false,
            },
            Knobs {
                sw_distance: Some(12),
                bf_first_distance: None,
                shuffle: false,
                xpline_expand: true,
            },
        ] {
            assert_eq!(unpack_knobs(pack_knobs(&knobs)), knobs);
        }
    }

    #[test]
    fn split_ranges_covers_exactly_and_evenly() {
        for (len, parts) in [
            (2100usize, 8usize),
            (256, 1),
            (256, 8),
            (257, 8),
            (1 << 20, 7),
            (3 * 256 + 1, 3),
            (64 * 1024 + 192, 5),
        ] {
            let ranges = split_ranges(len, parts);
            assert!(!ranges.is_empty());
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap in {len}/{parts}");
            }
            for r in &ranges[..ranges.len() - 1] {
                assert_eq!(r.start % CHUNK_ALIGN, 0, "unaligned chunk in {len}/{parts}");
            }
            let min = ranges.iter().map(|r| r.len()).min().unwrap();
            let max = ranges.iter().map(|r| r.len()).max().unwrap();
            assert!(
                max - min <= CHUNK_ALIGN,
                "uneven split for len={len} parts={parts}: min={min} max={max}"
            );
        }
    }

    #[test]
    fn split_ranges_uses_all_workers_with_remainder_tail() {
        // The old `next_multiple_of` splitter left 3 of 8 workers idle
        // here (chunks of 512 B); every worker must now get a chunk.
        let threads = 8;
        let len = threads * CHUNK_ALIGN + 52; // small unaligned tail
        let ranges = split_ranges(len, threads);
        assert_eq!(ranges.len(), threads, "all workers busy");
        assert!(ranges.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn split_ranges_degenerate_inputs() {
        assert!(split_ranges(0, 4).is_empty());
        assert!(split_ranges(100, 0).is_empty());
        assert_eq!(split_ranges(100, 4), vec![0..100]);
    }

    #[test]
    fn pool_matches_serial_encode() {
        let coder = Dialga::new(12, 4).unwrap();
        let data = make_data(12, 64 * 1024 + 192); // unaligned tail
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = coder.encode_vec(&refs).unwrap();
        for threads in [1usize, 2, 3, 4, 8] {
            let pool = EncodePool::new(threads);
            let par = pool.encode_vec(&coder, &refs).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn pool_batch_matches_serial() {
        let coder = Dialga::new(6, 3).unwrap();
        let pool = EncodePool::new(4);
        let stripes_data: Vec<Vec<Vec<u8>>> =
            (0..5).map(|s| make_data(6, 4096 + s * 300)).collect();
        let mut expected = Vec::new();
        let mut parity: Vec<Vec<Vec<u8>>> = Vec::new();
        for sd in &stripes_data {
            let refs: Vec<&[u8]> = sd.iter().map(|d| d.as_slice()).collect();
            expected.push(coder.encode_vec(&refs).unwrap());
            parity.push(vec![vec![0u8; sd[0].len()]; 3]);
        }
        {
            let data_refs: Vec<Vec<&[u8]>> = stripes_data
                .iter()
                .map(|sd| sd.iter().map(|d| d.as_slice()).collect())
                .collect();
            let mut parity_refs: Vec<Vec<&mut [u8]>> = parity
                .iter_mut()
                .map(|sp| sp.iter_mut().map(|p| p.as_mut_slice()).collect())
                .collect();
            let mut jobs: Vec<StripeJob<'_, '_>> = data_refs
                .iter()
                .zip(parity_refs.iter_mut())
                .map(|(d, p)| StripeJob {
                    data: d.as_slice(),
                    parity: p.as_mut_slice(),
                })
                .collect();
            pool.encode_batch(&coder, &mut jobs).unwrap();
        }
        assert_eq!(parity, expected);
        assert_eq!(pool.stats().stripes, 5);
        assert_eq!(pool.stats().dispatches, 1);
    }

    #[test]
    fn pool_xor_program_matches_serial() {
        use dialga_ec::xor::{XorCode, XorFlavor};
        let code = XorCode::new(6, 3, XorFlavor::Cerasure).unwrap();
        // Multiple of W, packet length not CHUNK_ALIGN-aligned: ragged
        // chunking over the packet range.
        let data = make_data(6, W * 1200);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = code.encode_vec(&refs).unwrap();
        let naive = code.schedule().to_program().unwrap();
        let opt = code.optimized_schedule().unwrap().to_program().unwrap();
        for threads in [1usize, 2, 4] {
            let pool = EncodePool::new(threads);
            assert_eq!(
                pool.encode_xor_vec(&naive, &refs).unwrap(),
                serial,
                "naive threads={threads}"
            );
            assert_eq!(
                pool.encode_xor_vec(&opt, &refs).unwrap(),
                serial,
                "optimized threads={threads}"
            );
        }
    }

    #[test]
    fn pool_xor_rejects_bad_geometry_before_enqueue() {
        use dialga_ec::xor::{XorCode, XorFlavor};
        let code = XorCode::new(4, 2, XorFlavor::Plain).unwrap();
        let prog = code.schedule().to_program().unwrap();
        let pool = EncodePool::new(2);
        // Wrong block count.
        let data = make_data(3, W * 64);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert!(matches!(
            pool.encode_xor_vec(&prog, &refs),
            Err(EcError::BlockCount { .. })
        ));
        // Length not a multiple of W.
        let data = make_data(4, W * 64 + 3);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert!(matches!(
            pool.encode_xor_vec(&prog, &refs),
            Err(EcError::BlockLength { .. })
        ));
        assert_eq!(pool.stats().chunks, 0, "nothing must reach the queues");
    }

    #[test]
    fn pool_xor_batch_matches_serial() {
        use dialga_ec::xor::{XorCode, XorFlavor};
        let code = XorCode::new(5, 2, XorFlavor::Cerasure).unwrap();
        let prog = code.schedule().to_program().unwrap();
        let pool = EncodePool::new(3);
        let stripes_data: Vec<Vec<Vec<u8>>> =
            (0..4).map(|s| make_data(5, W * (512 + s * 37))).collect();
        let mut expected = Vec::new();
        let mut parity: Vec<Vec<Vec<u8>>> = Vec::new();
        for sd in &stripes_data {
            let refs: Vec<&[u8]> = sd.iter().map(|d| d.as_slice()).collect();
            expected.push(code.encode_vec(&refs).unwrap());
            parity.push(vec![vec![0u8; sd[0].len()]; 2]);
        }
        {
            let data_refs: Vec<Vec<&[u8]>> = stripes_data
                .iter()
                .map(|sd| sd.iter().map(|d| d.as_slice()).collect())
                .collect();
            let mut parity_refs: Vec<Vec<&mut [u8]>> = parity
                .iter_mut()
                .map(|sp| sp.iter_mut().map(|p| p.as_mut_slice()).collect())
                .collect();
            let mut jobs: Vec<StripeJob<'_, '_>> = data_refs
                .iter()
                .zip(parity_refs.iter_mut())
                .map(|(d, p)| StripeJob {
                    data: d.as_slice(),
                    parity: p.as_mut_slice(),
                })
                .collect();
            pool.encode_xor_batch(&prog, &mut jobs).unwrap();
        }
        assert_eq!(parity, expected);
        assert_eq!(pool.stats().stripes, 4);
        assert_eq!(pool.stats().dispatches, 1);
    }

    #[test]
    fn pool_rejects_bad_geometry_before_enqueue() {
        let coder = Dialga::new(4, 2).unwrap();
        let pool = EncodePool::new(2);
        let data = make_data(3, 4096); // wrong k
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert!(matches!(
            pool.encode_vec(&coder, &refs),
            Err(EcError::BlockCount { .. })
        ));
        assert_eq!(pool.stats().chunks, 0, "nothing must reach the queues");
    }

    #[test]
    fn stats_count_full_lines_for_ragged_tails() {
        // Regression: `len / CACHELINE` truncated ragged tails — a 255 B
        // chunk counted 3 lines, not the 4 it actually touches — and the
        // undercounted `loads` skewed every per-load latency downstream.
        let coder = Dialga::new(4, 2).unwrap();
        let pool = EncodePool::new(1);
        let data = make_data(4, 255);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        pool.encode_vec(&coder, &refs).unwrap();
        let lines = 255usize.div_ceil(dialga_gf::CACHELINE) as u64;
        assert_eq!(lines, 4);
        assert_eq!(pool.stats().loads, lines * 4, "4 sources x 4 lines");

        // Multi-chunk split with a ragged final chunk: interior chunk
        // boundaries are CHUNK_ALIGN-aligned (a multiple of the cache
        // line), so per-chunk ceilings must sum to the global ceiling.
        let pool = EncodePool::new(2);
        let len = 2 * CHUNK_ALIGN + 100;
        let data = make_data(4, len);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        pool.encode_vec(&coder, &refs).unwrap();
        assert_eq!(
            pool.stats().loads,
            len.div_ceil(dialga_gf::CACHELINE) as u64 * 4
        );
    }

    #[test]
    fn watchdog_keeps_submillisecond_deadlines() {
        // Regression: the deadline was stored in whole milliseconds, so
        // sub-millisecond (and fractional-millisecond) deadlines were
        // silently rounded to the nearest whole millisecond.
        let pool = EncodePool::new(1);
        pool.set_watchdog(Some(Duration::from_micros(500)));
        assert_eq!(pool.watchdog(), Some(Duration::from_micros(500)));
        pool.set_watchdog(Some(Duration::from_micros(2500)));
        assert_eq!(pool.watchdog(), Some(Duration::from_micros(2500)));
        pool.set_watchdog(None);
        assert_eq!(pool.watchdog(), None);
        // A zero-length deadline clamps to 1 ns: armed, not "disabled".
        pool.set_watchdog(Some(Duration::ZERO));
        assert_eq!(pool.watchdog(), Some(Duration::from_nanos(1)));
    }

    #[test]
    fn compute_heavy_workload_does_not_read_as_stalled() {
        // Regression: `PoolShared::counters()` reported cumulative
        // `busy_ns` (total chunk wall time, compute included) as
        // `demand_stall_ns`, so a pure-compute, stall-free workload fed
        // the coordinator an inflated latency and could trip the 110%
        // contention threshold with no memory pressure at all.
        let coder = Dialga::new(8, 4).unwrap();
        let pool = EncodePool::new(1);
        let data = make_data(8, 256 * 1024);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        for _ in 0..16 {
            pool.encode_vec(&coder, &refs).unwrap();
        }
        let stats = pool.stats();
        assert!(stats.busy_ns > 0);
        assert!(
            stats.stall_ns <= stats.busy_ns / 2,
            "uniform compute-bound run must not attribute most busy time \
             to stall (stall {} ns vs busy {} ns)",
            stats.stall_ns,
            stats.busy_ns
        );
        // The coordinator-facing view consumes the stall estimate, not
        // raw busy time.
        let counters = pool.shared.counters();
        assert_eq!(counters.loads, stats.loads);
        assert_eq!(counters.demand_stall_ns as u64, stats.stall_ns);
    }

    #[test]
    fn pool_handles_zero_length_blocks() {
        let coder = Dialga::new(4, 2).unwrap();
        let pool = EncodePool::new(2);
        let data = vec![vec![]; 4];
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = pool.encode_vec(&coder, &refs).unwrap();
        assert_eq!(parity, vec![Vec::<u8>::new(); 2]);
    }

    fn encode_shards(coder: &Dialga, data: &[Vec<u8>]) -> Vec<Option<Vec<u8>>> {
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = coder.encode_vec(&refs).unwrap();
        data.iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect()
    }

    #[test]
    fn pool_decode_matches_serial() {
        let coder = Dialga::new(10, 4).unwrap();
        let data = make_data(10, 8 * 1024 + 100); // unaligned tail
        let full = encode_shards(&coder, &data);
        let mut erased = full.clone();
        erased[0] = None;
        erased[7] = None; // data
        erased[11] = None; // parity
        erased[13] = None; // parity
        let mut serial = erased.clone();
        coder.decode(&mut serial).unwrap();
        assert_eq!(serial, full);
        for threads in [1usize, 2, 3, 4, 8] {
            let pool = EncodePool::new(threads);
            let mut shards = erased.clone();
            pool.decode(&coder, &mut shards).unwrap();
            assert_eq!(shards, full, "threads={threads}");
        }
    }

    #[test]
    fn pool_fused_dispatch_is_bit_exact_under_full_schedule() {
        // Encode AND decode through the fused dispatch with every schedule
        // knob active (d, §4.3 long distance, shuffle) must match the
        // unscheduled serial reference — prefetch scheduling may move
        // hints, never bytes.
        let plain = Dialga::new(10, 4).unwrap();
        let tuned = Dialga::with_options(
            10,
            4,
            crate::encoder::DialgaOptions {
                prefetch_distance: Some(10),
                bf_first_distance: Some(14),
                shuffle: true,
                ..Default::default()
            },
        )
        .unwrap();
        let data = make_data(10, 16 * 1024 + 100); // unaligned tail
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let want_parity = plain.encode_vec(&refs).unwrap();
        let full = encode_shards(&plain, &data);
        for threads in [1usize, 2, 4, 8] {
            let pool = EncodePool::new(threads);
            assert_eq!(
                pool.encode_vec(&tuned, &refs).unwrap(),
                want_parity,
                "encode threads={threads}"
            );
            let mut shards = full.clone();
            shards[2] = None; // data
            shards[9] = None; // data
            shards[12] = None; // parity
            pool.decode(&tuned, &mut shards).unwrap();
            assert_eq!(shards, full, "decode threads={threads}");
        }
    }

    #[test]
    fn pool_decode_batch_repairs_every_stripe() {
        let coder = Dialga::new(6, 3).unwrap();
        let pool = EncodePool::new(4);
        let fulls: Vec<Vec<Option<Vec<u8>>>> = (0..4)
            .map(|s| encode_shards(&coder, &make_data(6, 2048 + s * 300)))
            .collect();
        let mut stripes: Vec<Vec<Option<Vec<u8>>>> = fulls.clone();
        // Different erasure patterns per stripe: data-only, parity-only,
        // mixed, none.
        stripes[0][1] = None;
        stripes[0][4] = None;
        stripes[1][6] = None;
        stripes[1][8] = None;
        stripes[2][0] = None;
        stripes[2][7] = None;
        {
            let mut jobs: Vec<DecodeJob<'_>> = stripes
                .iter_mut()
                .map(|s| DecodeJob {
                    shards: s.as_mut_slice(),
                })
                .collect();
            pool.decode_batch(&coder, &mut jobs).unwrap();
        }
        assert_eq!(stripes, fulls);
        assert_eq!(pool.stats().stripes, 4);
        assert_eq!(pool.stats().dispatches, 1);
    }

    #[test]
    fn pool_decode_rejects_mismatched_shards_before_mutation() {
        let coder = Dialga::new(4, 2).unwrap();
        let pool = EncodePool::new(2);
        let mut shards = encode_shards(&coder, &make_data(4, 4096));
        shards[0] = None;
        shards[3].as_mut().unwrap().truncate(100);
        let before = shards.clone();
        assert!(matches!(
            pool.decode(&coder, &mut shards),
            Err(EcError::BlockLength { .. })
        ));
        assert_eq!(shards, before, "failed decode must not mutate shards");
        assert_eq!(pool.stats().chunks, 0, "nothing must reach the queues");
    }

    #[test]
    fn pool_repair_single_block_matches_stripe() {
        let coder = Dialga::new(8, 3).unwrap();
        let data = make_data(8, 4096 + 60);
        let full = encode_shards(&coder, &data);
        let pool = EncodePool::new(4);
        // Degraded read of each block in turn, with a second unrelated
        // erasure present.
        for target in 0..11usize {
            let mut shards = full.clone();
            shards[target] = None;
            shards[(target + 5) % 11] = None;
            let got = pool.repair(&coder, &shards, target).unwrap();
            assert_eq!(&got, full[target].as_ref().unwrap(), "target {target}");
        }
        // Too few survivors.
        let mut shards = full.clone();
        for s in shards.iter_mut().take(4) {
            *s = None;
        }
        assert!(matches!(
            pool.repair(&coder, &shards, 0),
            Err(EcError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn pool_repair_local_matches_lrc() {
        let lrc = Lrc::new(12, 4, 2).unwrap();
        let data = make_data(12, 8192 + 30);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = lrc.encode_vec(&refs).unwrap();
        let plan = lrc.local_repair_plan(3).unwrap();
        let peers: Vec<&[u8]> = plan.peers.iter().map(|&i| refs[i]).collect();
        let serial = lrc
            .repair_local(3, &peers, &parity[plan.parity_index])
            .unwrap();
        assert_eq!(serial, data[3]);
        for threads in [1usize, 2, 4, 8] {
            let pool = EncodePool::new(threads);
            let got = pool
                .repair_local(&lrc, 3, &peers, &parity[plan.parity_index])
                .unwrap();
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn dead_worker_surfaces_error_instead_of_unwinding_submitter() {
        // Regression (PR 1): the old submission path `.expect`ed every
        // send, so a dead worker unwound `run_jobs` while live workers
        // still held spans into the submitting frame (use-after-free
        // window). Since the self-healing pool, the failed attempt still
        // quiesces, the dead slot is respawned, and the retry succeeds —
        // so the submission now *recovers* instead of erroring, and the
        // pool returns to full capacity.
        let coder = Dialga::new(4, 2).unwrap();
        let pool = EncodePool::new(2);
        {
            let slots = pool.lock_slots();
            slots[0].sender.send(Msg::Shutdown).unwrap();
            // The worker tears its queue down when it exits; wait for that.
            while slots[0].sender.send(Msg::Shutdown).is_ok() {
                std::thread::yield_now();
            }
        }
        let data = make_data(4, 4096);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let expected = coder.encode_vec(&refs).unwrap();
        assert_eq!(
            pool.encode_vec(&coder, &refs).unwrap(),
            expected,
            "healing + retry must recover from a dead worker"
        );
        let stats = pool.stats();
        assert_eq!(stats.workers_alive, pool.threads(), "slot 0 respawned");
        assert!(stats.worker_deaths >= 1);
        assert_eq!(stats.worker_respawns, stats.worker_deaths);
        assert!(stats.batch_retries >= 1);
        // With retries disabled the same failure surfaces as an error —
        // but the pool must still heal for the *next* submission.
        let pool0 = {
            let opts = crate::encoder::DialgaOptions {
                max_batch_retries: Some(0),
                ..Default::default()
            };
            let coder0 = Dialga::with_options(4, 2, opts).unwrap();
            let pool0 = EncodePool::new(2);
            {
                let slots = pool0.lock_slots();
                slots[0].sender.send(Msg::Shutdown).unwrap();
                while slots[0].sender.send(Msg::Shutdown).is_ok() {
                    std::thread::yield_now();
                }
            }
            assert!(matches!(
                pool0.encode_vec(&coder0, &refs),
                Err(EcError::Internal { .. })
            ));
            assert_eq!(pool0.encode_vec(&coder0, &refs).unwrap(), expected);
            pool0
        };
        assert_eq!(pool0.stats().workers_alive, pool0.threads());
    }

    #[test]
    fn worker_kernel_panic_surfaces_as_internal_error() {
        // A malformed job (zero tables for one output × one source) makes
        // `apply_tables` panic inside the worker; the pool must report
        // `EcError::Internal` — not hang, not unwind the submitter — and
        // keep serving later submissions. The panic is deterministic, so
        // retries cannot mask it (retries=0 keeps the test tight).
        let pool = EncodePool::new(2);
        let src = vec![0u8; 1024];
        let mut out = vec![0u8; 1024];
        let tables: Vec<NibbleTables> = Vec::new();
        let job = RawJob {
            work: ChunkWork::Gf {
                tables: TabSpan::new(&tables),
            },
            sources: vec![SrcSpan::new(&src)],
            outputs: vec![OutSpan::new(&mut out)],
            len: 1024,
            default_d: 4,
            default_bf: None,
        };
        assert!(matches!(
            pool.run_jobs(std::slice::from_ref(&job), 0),
            Err(EcError::Internal { .. })
        ));
        let coder = Dialga::new(4, 2).unwrap();
        let data = make_data(4, 4096);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert_eq!(
            pool.encode_vec(&coder, &refs).unwrap(),
            coder.encode_vec(&refs).unwrap(),
            "pool must survive a kernel panic"
        );
        // The panic is caught inside the worker, so no thread died.
        let stats = pool.stats();
        assert_eq!(stats.workers_alive, pool.threads());
        assert_eq!(stats.worker_deaths, 0);
    }

    #[test]
    fn policy_log_snapshots_stay_consistent_under_concurrent_ticks() {
        // Audit of the `try_lock` race (robustness PR): `maybe_tick`
        // (worker side, `try_lock`) and `policy_log()` (observer side,
        // `lock`) guard the coordinator — log ring buffer included —
        // with the *same* Mutex, so a snapshot can never observe a torn
        // entry; a tick that loses the race is skipped, not corrupted.
        // Pin that: hammer snapshots from observer threads while encodes
        // drive ticks, and check every snapshot is internally ordered
        // and a prefix-extension of the previous one.
        let cfg = dialga_memsim::MachineConfig::pm();
        let mut coord = crate::Coordinator::new(4, 2, 4096, 2, &cfg);
        // Aggressive interval so real ticks land during the test.
        coord.set_sample_interval(10_000.0);
        let pool = std::sync::Arc::new(EncodePool::with_coordinator(2, coord));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let observers: Vec<_> = (0..2)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut prev: Vec<(f64, crate::coordinator::Policy)> = Vec::new();
                    while !stop.load(Ordering::Acquire) {
                        let snap = pool.policy_log();
                        for w in snap.windows(2) {
                            assert!(w[0].0 < w[1].0, "timestamps must increase");
                        }
                        assert!(snap.len() >= prev.len(), "log only grows (below cap)");
                        for (a, b) in prev.iter().zip(snap.iter()) {
                            assert_eq!(a, b, "snapshot must extend the previous one");
                        }
                        prev = snap;
                    }
                })
            })
            .collect();
        let coder = Dialga::new(4, 2).unwrap();
        let data = make_data(4, 8192);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let expected = coder.encode_vec(&refs).unwrap();
        for _ in 0..200 {
            assert_eq!(pool.encode_vec(&coder, &refs).unwrap(), expected);
        }
        stop.store(true, Ordering::Release);
        for o in observers {
            o.join().unwrap();
        }
        assert!(
            pool.coordinator_samples() > 0,
            "ticks must make progress despite concurrent snapshots"
        );
    }

    #[test]
    fn pool_is_reusable_across_many_submissions() {
        let coder = Dialga::new(4, 2).unwrap();
        let pool = EncodePool::new(3);
        let data = make_data(4, 4096);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let expected = coder.encode_vec(&refs).unwrap();
        for _ in 0..50 {
            assert_eq!(pool.encode_vec(&coder, &refs).unwrap(), expected);
        }
        assert_eq!(pool.stats().dispatches, 50);
    }
}
