#![deny(unsafe_op_in_unsafe_fn)]
#![deny(missing_docs)]
//! DIALGA — adaptive hardware/software prefetcher scheduling for erasure
//! coding on persistent memory.
//!
//! This crate is the paper's primary contribution. It layers three
//! mechanisms over the table-driven Reed–Solomon substrate of `dialga-ec`:
//!
//! * the **adaptive coordinator** ([`coordinator`]) — samples PMU-analogue
//!   counters at a fixed rate, tracks the I/O access pattern (k, m, block
//!   size, thread count) and switches prefetch strategy with threshold
//!   heuristics (110 % load-latency threshold, 150 % useless-prefetch
//!   threshold, 12-thread concurrency threshold) plus hill climbing
//!   ([`hillclimb`]) for the software prefetch distance;
//! * the **lightweight operator** ([`operator`]) — the static shuffle
//!   mapping that silences the L2 stream prefetcher from userspace, and the
//!   branchless prefetch-pointer construction of Fig. 9;
//! * **PM read-buffer-friendly prefetch** — the per-XPLine distance split
//!   (first line at `k+4`) under low pressure, 256 B task expansion under
//!   high pressure, and the Eq. (1) bound on the maximum prefetch distance
//!   (all dispatched from [`coordinator::Policy`]).
//!
//! Two execution surfaces:
//!
//! * [`encoder::Dialga`] — a *functional* encoder/decoder on real bytes
//!   (bit-exact with `dialga-ec`), whose kernels really are row-pipelined
//!   and emit real `prefetcht0` hints on x86-64;
//! * [`source::DialgaSource`] — the *timed* coupling to the PM simulator,
//!   used by every figure reproduction.
//!
//! Multi-threaded encoding goes through the persistent worker pool of
//! [`pool::EncodePool`] (long-lived workers, per-worker queues, batch
//! submission, live coordinator-driven knob propagation); [`parallel`]
//! keeps the old one-call surface on top of a cached pool.

pub mod coordinator;
pub mod encoder;
pub mod hillclimb;
pub mod operator;
pub mod parallel;
pub mod pool;
pub mod source;

pub use coordinator::{Coordinator, CoordinatorSnapshot, Policy, PressureState};
pub use encoder::{DecodePlan, Dialga, RepairPlan};
pub use parallel::{encode_parallel, encode_parallel_vec};
pub use pool::{DecodeJob, EncodePool, PoolStats, StripeJob};
pub use source::{DialgaSource, Variant};
