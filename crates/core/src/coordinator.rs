//! The adaptive coordinator (§4.1): counter sampling, threshold heuristics,
//! I/O-pattern rules and the Eq. (1) distance bound.

use crate::hillclimb::HillClimber;
use dialga_memsim::{Counters, MachineConfig};
use dialga_pipeline::Knobs;
use std::collections::VecDeque;

/// Latency threshold: contention is declared when the interval's average
/// load latency exceeds 110 % of the low-pressure baseline (§4.1, after
/// MT^2 [33]).
pub const LATENCY_THRESHOLD: f64 = 1.10;
/// Useless-prefetch threshold: the hardware prefetcher is declared
/// inefficient when the interval's useless-prefetch count exceeds 150 % of
/// the baseline interval's (§4.1).
pub const USELESS_THRESHOLD: f64 = 1.50;
/// Concurrency threshold: beyond this many threads DIALGA pre-emptively
/// disables the hardware prefetcher and expands task granularity (§4.1,
/// derived from the 96 KiB read buffer in §4.3.3).
pub const THREAD_THRESHOLD: usize = 12;
/// Default sampling interval: 1 kHz, the rate the paper samples PMU
/// counters at to stay low-overhead (§4.1, after Shim [32]).
pub const SAMPLE_INTERVAL_NS: f64 = 1_000_000.0;

/// Interval pressure assessment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PressureState {
    /// Read-traffic contention (latency over 110 % of baseline).
    pub contended: bool,
    /// Hardware prefetcher inefficiency (useless prefetches over 150 % of
    /// baseline).
    pub prefetcher_inefficient: bool,
}

/// The strategy the coordinator currently dispatches (one of the "entry
/// point variants" of §4.1 — the coordinator switches between statically
/// compiled kernels rather than instrumenting dynamically).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Policy {
    /// Scheduling knobs handed to the encode kernels.
    pub knobs: Knobs,
    /// Whether the hardware prefetcher is currently being suppressed via
    /// the shuffle mapping.
    pub hw_suppressed: bool,
    /// Last pressure assessment.
    pub pressure: PressureState,
}

/// Maximum software prefetch distance permitted by Eq. (1):
/// `nthread * k * unit * ceil(max(d)/(k+m)) <= buffersize`, with `m = 0`
/// because parity is written with non-temporal stores. `unit_bytes` is the
/// device's implicit-load granularity (256 B XPLines on Optane).
pub fn eq1_max_distance(threads: usize, k: usize, buffer_bytes: u64, unit_bytes: u64) -> u32 {
    const CEILING: u64 = 4096;
    let per_wave = threads as u64 * k as u64 * unit_bytes;
    // Degenerate wave size (threads = 0, k = 0, or unit_bytes = 0): the
    // buffer imposes no constraint, so the distance is limited only by the
    // documented ceiling below — not `u32::MAX`, which would hand the hill
    // climber an unbounded search space no real device justifies.
    // (`checked_div`: None exactly in the degenerate case above.)
    let d = buffer_bytes
        .checked_div(per_wave)
        // Floor of the allowed multiple of k rows.
        .map_or(u64::MAX, |waves| waves.saturating_mul(k as u64));
    // Never clamp below one row (d = k): the pipelined kernel needs at
    // least the next row in flight, and the ablation harness shows d = k
    // strictly beats shorter distances even past the budget. (The floor
    // itself saturates at the ceiling so stripes wider than 4096 rows
    // cannot invert the clamp.)
    d.clamp((k as u64).min(CEILING), CEILING) as u32
}

/// Read-only snapshot of coordinator activity, consumed by telemetry and
/// the workload harness's convergence-after-shift reporting: a workload
/// shift is "converged" once no further policy change lands, so the
/// interesting quantities are how many changes have happened and when the
/// newest one did (on the owning pool's [`clock_ns`] timeline).
///
/// [`clock_ns`]: crate::pool::EncodePool::clock_ns
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoordinatorSnapshot {
    /// Samples taken so far.
    pub samples: u64,
    /// Policy changes published so far (monotone; unlike the ring-buffered
    /// policy log, this never forgets evicted changes).
    pub policy_changes: u64,
    /// Timestamp of the newest policy change, if any (same clock as
    /// [`Coordinator::on_tick`]'s `now_ns`).
    pub last_change_ns: Option<f64>,
    /// Eq. (1) distance bound in effect.
    pub d_max: u32,
    /// Currently dispatched software prefetch distance.
    pub sw_distance: Option<u32>,
    /// Whether the hardware prefetcher is currently suppressed.
    pub hw_suppressed: bool,
}

/// The adaptive coordinator.
#[derive(Debug, Clone)]
pub struct Coordinator {
    k: usize,
    threads: usize,
    wide_stripe: bool,
    small_block: bool,
    d_max: u32,
    l2_hit_ns: f64,
    /// Sampling interval (simulated ns).
    pub sample_interval_ns: f64,
    next_sample_ns: f64,
    last: Counters,
    last_sample_ns: f64,
    baseline_latency: Option<f64>,
    baseline_useless: Option<f64>,
    climber: HillClimber,
    policy: Policy,
    samples: u64,
    /// Total policy changes published (not capped like the log).
    changes: u64,
    /// Timestamp of the newest policy change.
    last_change_ns: Option<f64>,
    /// Timestamped policy changes (ring buffer of the most recent
    /// [`LOG_CAP`]), for tracing/telemetry.
    log: VecDeque<(f64, Policy)>,
    /// Deterministic fault cell shared with the owning pool (see
    /// [`crate::pool::EncodePool::arm_faults`]); scripted sample spikes
    /// multiply the observed load latency to provoke policy churn.
    #[cfg(feature = "fault-injection")]
    fault: Option<std::sync::Arc<dialga_faultkit::FaultCell>>,
}

/// Maximum retained policy-log entries (oldest are evicted first).
pub const LOG_CAP: usize = 4096;

impl Coordinator {
    /// Build a coordinator for one encoding configuration. The static
    /// I/O-pattern rules of §4.1 pick the initial policy; sampling then
    /// adapts it.
    pub fn new(k: usize, _m: usize, block_bytes: u64, threads: usize, cfg: &MachineConfig) -> Self {
        let wide_stripe = k > cfg.prefetcher.streams;
        let small_block = block_bytes < 4096;
        let high_threads = threads > THREAD_THRESHOLD;
        let d_max = eq1_max_distance(threads, k, cfg.pm.read_buffer_bytes, cfg.pm.unit_bytes);
        let climber = HillClimber::new(k as u32, 4, d_max.max(4));

        // Initial policy:
        // * high concurrency -> suppress HW prefetching (shuffle) and
        //   expand task granularity to XPLines (§4.1, §4.3.3);
        // * wide stripes -> no HW management needed (the prefetcher's
        //   stream table overflows and it silences itself);
        // * otherwise leave the HW prefetcher on (its amplified traffic is
        //   harmless at low pressure) and add pipelined SW prefetching with
        //   the buffer-friendly per-XPLine distance split.
        let hw_suppressed = high_threads;
        let knobs = Knobs {
            sw_distance: Some(climber.current()),
            // Initial first-cacheline distance k + 4 (§4.3.2); the sampler
            // then scales it with the climbed distance.
            bf_first_distance: if high_threads {
                None
            } else {
                Some((k as u32 + 4).min(d_max))
            },
            shuffle: hw_suppressed,
            xpline_expand: high_threads,
        };
        Coordinator {
            k,
            threads,
            wide_stripe,
            small_block,
            d_max,
            l2_hit_ns: cfg.l2.hit_ns,
            sample_interval_ns: SAMPLE_INTERVAL_NS,
            next_sample_ns: SAMPLE_INTERVAL_NS,
            last: Counters::default(),
            last_sample_ns: 0.0,
            baseline_latency: None,
            baseline_useless: None,
            climber,
            policy: Policy {
                knobs,
                hw_suppressed,
                pressure: PressureState::default(),
            },
            samples: 0,
            changes: 0,
            last_change_ns: None,
            log: VecDeque::new(),
            #[cfg(feature = "fault-injection")]
            fault: None,
        }
    }

    /// Attach the pool's shared fault cell so scripted sample spikes
    /// reach this coordinator. Hooks stay one disarmed atomic load when
    /// no plan is armed.
    #[cfg(feature = "fault-injection")]
    pub fn set_fault_cell(&mut self, cell: std::sync::Arc<dialga_faultkit::FaultCell>) {
        self.fault = Some(cell);
    }

    /// Change the sampling interval (and realign the next sample).
    pub fn set_sample_interval(&mut self, ns: f64) {
        self.sample_interval_ns = ns;
        self.next_sample_ns = self.last_sample_ns + ns;
    }

    /// Current policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Eq. (1) bound in effect.
    pub fn d_max(&self) -> u32 {
        self.d_max
    }

    /// Number of samples taken so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Stat snapshot for telemetry and the workload harness's
    /// convergence-after-shift measurement (see [`CoordinatorSnapshot`]).
    pub fn snapshot(&self) -> CoordinatorSnapshot {
        CoordinatorSnapshot {
            samples: self.samples,
            policy_changes: self.changes,
            last_change_ns: self.last_change_ns,
            d_max: self.d_max,
            sw_distance: self.policy.knobs.sw_distance,
            hw_suppressed: self.policy.hw_suppressed,
        }
    }

    /// Called on every task issue with the live clock and counters; takes a
    /// sample when the interval has elapsed. Returns the new knobs if the
    /// policy changed.
    pub fn on_tick(&mut self, now_ns: f64, counters: &Counters) -> Option<Knobs> {
        if now_ns < self.next_sample_ns {
            return None;
        }
        let delta = counters.delta(&self.last);
        let interval = (now_ns - self.last_sample_ns).max(1.0);
        self.last = *counters;
        self.last_sample_ns = now_ns;
        self.next_sample_ns = now_ns + self.sample_interval_ns;
        self.samples += 1;

        if delta.loads == 0 {
            return None;
        }
        #[allow(unused_mut)]
        let mut latency = delta.avg_load_latency_ns(self.l2_hit_ns);
        // Scripted fault: inflate this sample's observed latency, as a PM
        // pressure transient would, and let the policy react.
        #[cfg(feature = "fault-injection")]
        if let Some(factor) = self.fault.as_ref().and_then(|f| f.on_sample()) {
            latency *= factor;
        }
        let useless = (delta.useless_prefetches + delta.late_prefetches) as f64;

        // First sample establishes the low-pressure baselines (§4.1).
        let base_lat = *self.baseline_latency.get_or_insert(latency);
        let base_useless = *self.baseline_useless.get_or_insert(useless.max(1.0));

        let pressure = PressureState {
            contended: latency > LATENCY_THRESHOLD * base_lat,
            prefetcher_inefficient: useless > USELESS_THRESHOLD * base_useless,
        };

        // Threshold heuristic for the HW prefetcher: suppress when both
        // contention and inefficiency are detected; restore when pressure
        // subsides (unless concurrency alone demands suppression). Wide
        // stripes need no management — the prefetcher silenced itself.
        let mut hw_suppressed = self.policy.hw_suppressed;
        if !self.wide_stripe {
            if pressure.contended && pressure.prefetcher_inefficient {
                hw_suppressed = true;
            } else if !pressure.contended && self.threads <= THREAD_THRESHOLD {
                // Small blocks keep the prefetcher despite inefficiency:
                // amplified traffic under low pressure is harmless (§4.1).
                let _ = self.small_block;
                hw_suppressed = false;
            }
        }
        // Task-granularity expansion is a high-pressure tool (§4.3.3): it
        // stays on above the concurrency threshold, and kicks in under
        // measured contention once it has been engaged.
        let expand = self.threads > THREAD_THRESHOLD
            || (self.policy.knobs.xpline_expand && pressure.contended);

        // Hill-climb the prefetch distance on the mean row latency
        // (the per-sub-task objective of §4.1).
        let rows = (delta.loads as f64 / self.k as f64).max(1.0);
        let row_latency = interval / rows;
        let d = self.climber.observe(row_latency).min(self.d_max);

        let knobs = Knobs {
            sw_distance: Some(d),
            // XPLine-first lines pay media (not buffer) latency, so their
            // distance is scaled up from the climbed value (§4.3.2). The
            // split is a low-pressure tool: it widens the simultaneously
            // touched XPLine set, so it is dropped under contention.
            bf_first_distance: if hw_suppressed || expand || pressure.contended {
                None
            } else {
                Some((4 * d).max(d + 4).min(self.d_max))
            },
            shuffle: hw_suppressed,
            xpline_expand: expand,
        };
        let changed = knobs != self.policy.knobs;
        self.policy = Policy {
            knobs,
            hw_suppressed,
            pressure,
        };
        if changed {
            self.changes += 1;
            self.last_change_ns = Some(now_ns);
            // Ring buffer: retain the newest LOG_CAP entries. (The old
            // `len() < LOG_CAP` guard silently stopped recording once the
            // log filled, so long runs lost exactly the changes an operator
            // would be debugging.)
            if self.log.len() == LOG_CAP {
                self.log.pop_front();
            }
            self.log.push_back((now_ns, self.policy));
        }
        changed.then_some(knobs)
    }

    /// Timestamped policy changes recorded so far, oldest first (what the
    /// scheduler did and when — the observability surface for operators).
    /// Retains the most recent [`LOG_CAP`] changes.
    pub fn policy_log(&self) -> Vec<(f64, Policy)> {
        self.log.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::pm()
    }

    #[test]
    fn eq1_bound_matches_paper_example() {
        // §4.3.3: "on our 6 channel system with a total 96 KB read buffer,
        // thrashing occurs when the number of threads exceeds 12" — at 12
        // threads and k = 28 the bound still admits one wave (d <= k);
        // at 14 threads it collapses to the floor.
        let buffer = 96 * 1024;
        assert!(eq1_max_distance(12, 28, buffer, 256) >= 28);
        // Past the thread budget the bound collapses to its floor (one
        // row, d = k).
        assert_eq!(eq1_max_distance(14, 28, buffer, 256), 28);
        // Single thread: plenty of headroom.
        assert!(eq1_max_distance(1, 28, buffer, 256) >= 13 * 28);
        // Larger-granularity devices tighten the bound proportionally.
        assert!(eq1_max_distance(4, 28, buffer, 1024) < eq1_max_distance(4, 28, buffer, 256));
    }

    #[test]
    fn eq1_bound_edge_cases() {
        // Degenerate wave size (threads = 0, k = 0, or unit_bytes = 0):
        // nothing constrains the distance, so the bound is the documented
        // ceiling rather than a divide-by-zero.
        assert_eq!(eq1_max_distance(0, 28, 96 * 1024, 256), 4096);
        assert_eq!(eq1_max_distance(4, 0, 96 * 1024, 256), 4096);
        assert_eq!(eq1_max_distance(4, 28, 96 * 1024, 0), 4096);
        // Buffer smaller than one wave: zero waves, clamped to the d = k
        // floor instead of zero.
        let per_wave = 4u64 * 28 * 256;
        assert_eq!(eq1_max_distance(4, 28, per_wave - 1, 256), 28);
        assert_eq!(eq1_max_distance(4, 28, 0, 256), 28);
        // Huge buffer: the 4096 ceiling holds.
        assert_eq!(eq1_max_distance(1, 28, u64::MAX, 256), 4096);
    }

    /// Regression (PR 7): the `per_wave == 0` early return used to yield
    /// `u32::MAX`, bypassing the `clamp(k, 4096)` the doc comment promises.
    /// Every zero-input combination must respect the documented ceiling.
    #[test]
    fn eq1_zero_wave_inputs_respect_documented_ceiling() {
        for (threads, k, unit) in [
            (0usize, 28usize, 256u64),
            (0, 0, 256),
            (8, 0, 256),
            (8, 28, 0),
            (0, 0, 0),
        ] {
            let d = eq1_max_distance(threads, k, 96 * 1024, unit);
            assert!(
                d <= 4096,
                "eq1_max_distance({threads}, {k}, 96K, {unit}) = {d} exceeds the 4096 ceiling"
            );
            assert!(d >= k.min(4096) as u32, "bound fell below the d = k floor");
        }
        // A stripe wider than the ceiling cannot invert the clamp (which
        // would panic); it saturates at the ceiling instead.
        assert_eq!(eq1_max_distance(1, 5000, u64::MAX, 256), 4096);
        assert_eq!(eq1_max_distance(0, 5000, 96 * 1024, 256), 4096);
    }

    #[test]
    fn initial_policy_low_pressure() {
        let c = Coordinator::new(12, 4, 1024, 1, &cfg());
        let p = c.policy();
        assert!(!p.hw_suppressed);
        assert!(!p.knobs.shuffle);
        assert!(!p.knobs.xpline_expand);
        assert_eq!(p.knobs.sw_distance, Some(12));
        assert_eq!(p.knobs.bf_first_distance, Some(16)); // k + 4
    }

    #[test]
    fn initial_policy_high_concurrency() {
        let c = Coordinator::new(28, 4, 1024, 16, &cfg());
        let p = c.policy();
        assert!(p.hw_suppressed, "threads > 12 must suppress HW prefetch");
        assert!(p.knobs.shuffle);
        assert!(p.knobs.xpline_expand);
        assert!(p.knobs.bf_first_distance.is_none());
    }

    #[test]
    fn wide_stripe_needs_no_management() {
        let c = Coordinator::new(48, 4, 1024, 1, &cfg());
        assert!(!c.policy().hw_suppressed, "prefetcher silences itself");
        assert!(c.policy().knobs.sw_distance.is_some());
    }

    #[test]
    fn sampling_detects_contention_and_suppresses_hw() {
        let mut c = Coordinator::new(12, 4, 1024, 4, &cfg());
        c.sample_interval_ns = 1000.0;
        c.next_sample_ns = 1000.0;
        // Baseline interval: calm (100 ns/load).
        let mut ctr = Counters {
            loads: 1000,
            demand_stall_ns: 100_000.0,
            useless_prefetches: 10,
            ..Default::default()
        };
        c.on_tick(1500.0, &ctr);

        // Pressure interval: latency x2, useless x10.
        ctr.loads += 1000;
        ctr.demand_stall_ns += 250_000.0;
        ctr.useless_prefetches += 200;
        c.on_tick(3000.0, &ctr);
        assert!(c.policy().pressure.contended);
        assert!(c.policy().pressure.prefetcher_inefficient);
        assert!(c.policy().hw_suppressed);

        // Calm again: restored.
        ctr.loads += 1000;
        ctr.demand_stall_ns += 100_000.0;
        ctr.useless_prefetches += 10;
        c.on_tick(4500.0, &ctr);
        assert!(!c.policy().hw_suppressed);
    }

    #[test]
    fn distance_respects_eq1_under_many_threads() {
        let mut c = Coordinator::new(28, 4, 1024, 16, &cfg());
        c.sample_interval_ns = 1000.0;
        c.next_sample_ns = 1000.0;
        let mut ctr = Counters::default();
        for i in 1..40u64 {
            ctr.loads += 2800;
            ctr.demand_stall_ns += 280_000.0;
            c.on_tick(1000.0 * i as f64 + 500.0, &ctr);
            if let Some(d) = c.policy().knobs.sw_distance {
                assert!(d <= c.d_max(), "d={d} exceeds Eq.1 bound {}", c.d_max());
            }
        }
        assert!(c.samples() > 30);
    }

    #[test]
    fn policy_log_records_changes_with_timestamps() {
        let mut c = Coordinator::new(12, 4, 1024, 4, &cfg());
        c.set_sample_interval(1000.0);
        let mut ctr = Counters {
            loads: 1000,
            demand_stall_ns: 100_000.0,
            ..Default::default()
        };
        c.on_tick(1500.0, &ctr);
        ctr.loads += 1000;
        ctr.demand_stall_ns += 400_000.0;
        ctr.useless_prefetches += 500;
        ctr.hw_prefetches += 600;
        c.on_tick(3000.0, &ctr);
        let log = c.policy_log();
        assert!(!log.is_empty());
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "log out of order");
        }
        assert_eq!(log.last().unwrap().1, c.policy());
    }

    #[test]
    fn policy_log_retains_newest_past_capacity() {
        let mut c = Coordinator::new(12, 4, 1024, 4, &cfg());
        c.set_sample_interval(1000.0);
        let mut ctr = Counters::default();
        let mut now = 0.0;
        // Alternate calm and pressured intervals so every sample flips the
        // policy; run well past LOG_CAP changes.
        let mut changes = 0usize;
        let mut last_change_ns = 0.0;
        for i in 0.. {
            now += 1500.0;
            ctr.loads += 1000;
            if i % 2 == 0 {
                ctr.demand_stall_ns += 100_000.0;
                ctr.useless_prefetches += 10;
            } else {
                ctr.demand_stall_ns += 400_000.0;
                ctr.useless_prefetches += 500;
            }
            if c.on_tick(now, &ctr).is_some() {
                changes += 1;
                last_change_ns = now;
            }
            if changes >= LOG_CAP + 50 {
                break;
            }
            assert!(i < 100_000, "policy stopped changing; test stuck");
        }
        let log = c.policy_log();
        assert_eq!(log.len(), LOG_CAP, "ring buffer caps retention");
        // The newest change is retained; the evicted ones are the oldest.
        assert_eq!(log.last().unwrap().0, last_change_ns);
        for w in log.windows(2) {
            assert!(w[0].0 < w[1].0, "log out of order");
        }
    }

    #[test]
    fn snapshot_tracks_change_count_and_newest_timestamp() {
        let mut c = Coordinator::new(12, 4, 1024, 4, &cfg());
        c.set_sample_interval(1000.0);
        let snap = c.snapshot();
        assert_eq!(snap.samples, 0);
        assert_eq!(snap.policy_changes, 0);
        assert_eq!(snap.last_change_ns, None);
        assert_eq!(snap.d_max, c.d_max());

        let mut ctr = Counters {
            loads: 1000,
            demand_stall_ns: 100_000.0,
            ..Default::default()
        };
        c.on_tick(1500.0, &ctr);
        ctr.loads += 1000;
        ctr.demand_stall_ns += 400_000.0;
        ctr.useless_prefetches += 500;
        let changed = c.on_tick(3000.0, &ctr).is_some();
        let snap = c.snapshot();
        assert_eq!(snap.samples, 2);
        assert_eq!(changed, snap.policy_changes > 0);
        if changed {
            assert_eq!(snap.last_change_ns, Some(3000.0));
        }
        assert_eq!(snap.hw_suppressed, c.policy().hw_suppressed);
        assert_eq!(snap.sw_distance, c.policy().knobs.sw_distance);
    }

    #[test]
    fn no_sample_before_interval() {
        let mut c = Coordinator::new(12, 4, 1024, 1, &cfg());
        let ctr = Counters::default();
        assert!(c.on_tick(10.0, &ctr).is_none());
        assert_eq!(c.samples(), 0);
    }
}
