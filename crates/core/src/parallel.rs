//! Multi-threaded functional encoding.
//!
//! The paper's evaluation encodes with up to 18 concurrent threads; this
//! module provides the equivalent functional surface. Blocks are split
//! into horizontal chunks and encoded by the persistent worker pool of
//! [`crate::pool`] — the old implementation spawned (and joined) a fresh
//! scoped thread per chunk on every call, which at the paper's 4 KiB
//! default block size cost more than the encode itself. Pools are cached
//! per thread count and reused across calls. Every chunk runs the fused
//! multi-output kernel ([`dialga_gf::simd::dot_prod_fused`]) with the
//! coordinator's live schedule. Results are bit-exact with single-threaded
//! encoding (RS coding is independent per 64 B row, so any horizontal
//! split is exact).

use crate::encoder::Dialga;
use crate::pool::{EncodePool, CHUNK_ALIGN};
use dialga_ec::EcError;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Process-wide pool cache, one persistent pool per requested thread
/// count. Pools live for the life of the process; their workers idle on an
/// empty queue when unused.
fn pool_for(threads: usize) -> Arc<EncodePool> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<EncodePool>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    // The cache map stays consistent even if a previous holder panicked
    // between `entry` and insertion, so poisoning carries no information
    // here — recover the guard instead of propagating the panic.
    let mut pools = pools.lock().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(
        pools
            .entry(threads)
            .or_insert_with(|| Arc::new(EncodePool::new(threads))),
    )
}

/// Encode with `threads` pool workers, splitting the stripe horizontally.
///
/// `parity` is overwritten. Falls back to the single-threaded kernel for
/// `threads <= 1` or blocks too short to give every worker an aligned
/// chunk.
pub fn encode_parallel(
    coder: &Dialga,
    data: &[&[u8]],
    parity: &mut [&mut [u8]],
    threads: usize,
) -> Result<(), EcError> {
    let params = coder.params();
    if data.len() != params.k {
        return Err(EcError::BlockCount {
            expected: params.k,
            got: data.len(),
        });
    }
    if parity.len() != params.m {
        return Err(EcError::BlockCount {
            expected: params.m,
            got: parity.len(),
        });
    }
    let len = data.first().map_or(0, |d| d.len());
    for d in data {
        if d.len() != len {
            return Err(EcError::BlockLength {
                expected: len,
                got: d.len(),
            });
        }
    }
    for p in parity.iter() {
        if p.len() != len {
            return Err(EcError::BlockLength {
                expected: len,
                got: p.len(),
            });
        }
    }
    if threads <= 1 || len < threads * CHUNK_ALIGN {
        return coder.encode(data, parity);
    }
    pool_for(threads).encode(coder, data, parity)
}

/// Convenience wrapper allocating the parity blocks.
pub fn encode_parallel_vec(
    coder: &Dialga,
    data: &[&[u8]],
    threads: usize,
) -> Result<Vec<Vec<u8>>, EcError> {
    let len = data.first().map_or(0, |d| d.len());
    let mut parity = vec![vec![0u8; len]; coder.params().m];
    let mut refs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
    encode_parallel(coder, data, &mut refs, threads)?;
    Ok(parity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| ((i * 37 + j * 11) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn parallel_matches_serial() {
        let coder = Dialga::new(12, 4).unwrap();
        let data = make_data(12, 64 * 1024 + 192); // unaligned tail
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = coder.encode_vec(&refs).unwrap();
        for threads in [1usize, 2, 3, 4, 8] {
            let par = encode_parallel_vec(&coder, &refs, threads).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn remainder_tail_is_spread_across_workers() {
        // Regression for the old `next_multiple_of` splitter, which at
        // len = threads * CHUNK_ALIGN + small_tail rounded the chunk size
        // up and left several workers idle (and at larger imbalances
        // produced wrong per-worker slices). All thread counts must still
        // be bit-exact at exactly this shape.
        let coder = Dialga::new(6, 3).unwrap();
        for threads in [2usize, 4, 8] {
            let len = threads * CHUNK_ALIGN + 52;
            let data = make_data(6, len);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let serial = coder.encode_vec(&refs).unwrap();
            let par = encode_parallel_vec(&coder, &refs, threads).unwrap();
            assert_eq!(par, serial, "threads={threads} len={len}");
        }
    }

    #[test]
    fn parallel_matches_serial_under_full_schedule() {
        // Every scheduling knob active (d, §4.3 long distance, shuffle):
        // the fused dispatch must stay bit-exact with the unscheduled
        // serial reference across worker splits.
        use crate::encoder::DialgaOptions;
        let plain = Dialga::new(10, 4).unwrap();
        let tuned = Dialga::with_options(
            10,
            4,
            DialgaOptions {
                prefetch_distance: Some(10),
                bf_first_distance: Some(14),
                shuffle: true,
                ..Default::default()
            },
        )
        .unwrap();
        let data = make_data(10, 32 * 1024 + 100);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let want = plain.encode_vec(&refs).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let got = encode_parallel_vec(&tuned, &refs, threads).unwrap();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn short_blocks_fall_back() {
        let coder = Dialga::new(4, 2).unwrap();
        let data = make_data(4, 300);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = coder.encode_vec(&refs).unwrap();
        let par = encode_parallel_vec(&coder, &refs, 8).unwrap();
        assert_eq!(par, serial);
    }

    #[test]
    fn geometry_errors_checked_before_spawning() {
        let coder = Dialga::new(4, 2).unwrap();
        let data = make_data(3, 4096); // wrong k
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert!(matches!(
            encode_parallel_vec(&coder, &refs, 4),
            Err(EcError::BlockCount { .. })
        ));
    }

    #[test]
    fn ragged_blocks_rejected() {
        let coder = Dialga::new(2, 1).unwrap();
        let a = vec![0u8; 4096];
        let b = vec![0u8; 4095];
        let refs: Vec<&[u8]> = vec![&a, &b];
        assert!(matches!(
            encode_parallel_vec(&coder, &refs, 2),
            Err(EcError::BlockLength { .. })
        ));
    }

    #[test]
    fn pools_are_cached_per_thread_count() {
        let a = pool_for(3);
        let b = pool_for(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.threads(), 3);
        let c = pool_for(5);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
