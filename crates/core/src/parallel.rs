//! Multi-threaded functional encoding.
//!
//! The paper's evaluation encodes with up to 18 concurrent threads; this
//! module provides the equivalent functional surface: blocks are split
//! into horizontal chunks and encoded by a scoped thread pool. Results are
//! bit-exact with single-threaded encoding (RS coding is independent per
//! 64 B row, so any horizontal split is exact).

use crate::encoder::Dialga;
use dialga_ec::EcError;

/// Chunks are multiples of this (keeps rows and XPLines intact).
const CHUNK_ALIGN: usize = 256;

/// Encode with `threads` OS threads, splitting the stripe horizontally.
///
/// `parity` is overwritten. Falls back to the single-threaded kernel for
/// `threads <= 1` or short blocks.
pub fn encode_parallel(
    coder: &Dialga,
    data: &[&[u8]],
    parity: &mut [&mut [u8]],
    threads: usize,
) -> Result<(), EcError> {
    let params = coder.params();
    if data.len() != params.k {
        return Err(EcError::BlockCount {
            expected: params.k,
            got: data.len(),
        });
    }
    if parity.len() != params.m {
        return Err(EcError::BlockCount {
            expected: params.m,
            got: parity.len(),
        });
    }
    let len = data.first().map_or(0, |d| d.len());
    for d in data {
        if d.len() != len {
            return Err(EcError::BlockLength {
                expected: len,
                got: d.len(),
            });
        }
    }
    for p in parity.iter() {
        if p.len() != len {
            return Err(EcError::BlockLength {
                expected: len,
                got: p.len(),
            });
        }
    }
    if threads <= 1 || len < threads * CHUNK_ALIGN {
        return coder.encode(data, parity);
    }

    // Split [0, len) into per-thread ranges aligned to CHUNK_ALIGN.
    let per = (len / threads).next_multiple_of(CHUNK_ALIGN).max(CHUNK_ALIGN);
    let mut ranges = Vec::new();
    let mut start = 0usize;
    while start < len {
        let end = (start + per).min(len);
        ranges.push(start..end);
        start = end;
    }

    // Hand each worker its disjoint horizontal slice of every parity block.
    // Slicing &mut [&mut [u8]] per range needs a small transpose: collect
    // per-range mutable sub-slices up front.
    let mut parity_chunks: Vec<Vec<&mut [u8]>> = ranges.iter().map(|_| Vec::new()).collect();
    for p in parity.iter_mut() {
        let mut rest: &mut [u8] = p;
        for (i, r) in ranges.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(r.len().min(rest.len()));
            parity_chunks[i].push(head);
            rest = tail;
        }
    }

    let result: Result<(), EcError> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (range, mut chunk) in ranges.iter().cloned().zip(parity_chunks) {
            let data_slices: Vec<&[u8]> = data.iter().map(|d| &d[range.clone()]).collect();
            handles.push(scope.spawn(move |_| coder.encode(&data_slices, &mut chunk)));
        }
        for h in handles {
            h.join().expect("encode worker panicked")?;
        }
        Ok(())
    })
    .expect("scope panicked");
    result
}

/// Convenience wrapper allocating the parity blocks.
pub fn encode_parallel_vec(
    coder: &Dialga,
    data: &[&[u8]],
    threads: usize,
) -> Result<Vec<Vec<u8>>, EcError> {
    let len = data.first().map_or(0, |d| d.len());
    let mut parity = vec![vec![0u8; len]; coder.params().m];
    let mut refs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
    encode_parallel(coder, data, &mut refs, threads)?;
    Ok(parity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| ((i * 37 + j * 11) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn parallel_matches_serial() {
        let coder = Dialga::new(12, 4).unwrap();
        let data = make_data(12, 64 * 1024 + 192); // unaligned tail
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = coder.encode_vec(&refs).unwrap();
        for threads in [1usize, 2, 3, 4, 8] {
            let par = encode_parallel_vec(&coder, &refs, threads).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn short_blocks_fall_back() {
        let coder = Dialga::new(4, 2).unwrap();
        let data = make_data(4, 300);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = coder.encode_vec(&refs).unwrap();
        let par = encode_parallel_vec(&coder, &refs, 8).unwrap();
        assert_eq!(par, serial);
    }

    #[test]
    fn geometry_errors_checked_before_spawning() {
        let coder = Dialga::new(4, 2).unwrap();
        let data = make_data(3, 4096); // wrong k
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert!(matches!(
            encode_parallel_vec(&coder, &refs, 4),
            Err(EcError::BlockCount { .. })
        ));
    }

    #[test]
    fn ragged_blocks_rejected() {
        let coder = Dialga::new(2, 1).unwrap();
        let a = vec![0u8; 4096];
        let b = vec![0u8; 4095];
        let refs: Vec<&[u8]> = vec![&a, &b];
        assert!(matches!(
            encode_parallel_vec(&coder, &refs, 2),
            Err(EcError::BlockLength { .. })
        ));
    }
}
