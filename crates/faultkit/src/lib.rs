#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Deterministic fault injection for the DIALGA workspace.
//!
//! Production code cannot be trusted on its failure paths unless those
//! paths can be *driven*: a worker thread that dies mid-batch, a queue
//! send that fails, a coordinator sample that spikes, a PM read that
//! suddenly pays a media-latency storm, a shard whose bytes rot. This
//! crate scripts all of those as data — a [`FaultPlan`] is a plain list
//! of [`Fault`]s, either hand-written or generated from a seed — and
//! delivers them through a [`FaultCell`] that the instrumented crates
//! poll from `#[cfg(feature = "fault-injection")]`-gated hooks.
//!
//! # Hot-path contract
//!
//! The cell reuses the workspace's knob-word atomic protocol (lint rule
//! R3): a packed `AtomicU64` generation word written with
//! `Ordering::Release` on [`FaultCell::arm`]/[`FaultCell::disarm`] and
//! read with `Ordering::Acquire` by every hook. While the cell is
//! disarmed — always, in production; almost always, in tests — a hook
//! costs exactly one `Acquire` load of zero and touches no locks. Only
//! an armed cell takes the internal mutex to consult the plan.
//!
//! # Determinism
//!
//! Fault matching is counter-based ("worker 2's 3rd chunk", "the 5th
//! queue send"), and the counters live inside the cell, so a plan fires
//! the same way on every run with the same submission order. Counters
//! persist across worker respawns (a respawned worker keeps its slot
//! index), so a `nth_chunk` fault fires exactly once per arm.
//!
//! Everything here is 100 % safe code: the crate is a *plan*, the
//! instrumented crates own the consequences.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use dialga_testkit::Rng;

/// One scripted fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Worker `worker` panics instead of running its `nth_chunk`-th
    /// chunk (0-based, counted per worker slot across respawns). The
    /// pool's `catch_unwind` converts this into a failed chunk; the
    /// worker thread itself survives.
    WorkerPanic {
        /// Worker slot index.
        worker: usize,
        /// 0-based chunk ordinal for that slot.
        nth_chunk: u64,
    },
    /// Worker `worker` exits its receive loop instead of running its
    /// `nth_chunk`-th chunk: the thread tears down, queued chunks are
    /// dropped (completing the batch latch as failures), and the slot
    /// stays dead until the pool heals it.
    WorkerExit {
        /// Worker slot index.
        worker: usize,
        /// 0-based chunk ordinal for that slot.
        nth_chunk: u64,
    },
    /// The `nth_send`-th queue submission (0-based, counted across all
    /// workers in submission order) is dropped as if the channel were
    /// disconnected.
    SendFail {
        /// 0-based global send ordinal.
        nth_send: u64,
    },
    /// The coordinator's `nth_sample`-th tick observes its demand-stall
    /// latency multiplied by `factor` — a synthetic throughput
    /// fluctuation of the kind §4.1 re-triggers the hill-climb on.
    SampleSpike {
        /// 0-based coordinator tick ordinal.
        nth_sample: u64,
        /// Multiplier applied to the sampled demand-stall time.
        factor: f64,
    },
    /// The `nth_read`-th PM media fetch (0-based; buffer hits are not
    /// counted) pays `extra_ns` additional latency.
    MediaSpike {
        /// 0-based media-fetch ordinal.
        nth_read: u64,
        /// Additional latency in nanoseconds.
        extra_ns: f64,
    },
    /// Power fails at the `nth_persist`-th persist boundary (0-based,
    /// counted per arm across every fence the instrumented persistence
    /// domain issues). The boundary does *not* complete: lines flushed
    /// but not yet fenced may tear (an arbitrary cacheline subset
    /// persists, chosen by the domain's seeded RNG) and everything after
    /// the crash observes a dead domain.
    CrashPoint {
        /// 0-based persist-boundary ordinal.
        nth_persist: u64,
    },
}

/// What a worker should do with the chunk it just dequeued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkFault {
    /// Run it normally.
    None,
    /// Panic instead of running it (caught by the worker's
    /// `catch_unwind`; the thread survives).
    Panic,
    /// Exit the worker loop instead of running it (the thread dies).
    Exit,
}

/// An ordered script of faults. Plain data: build one by hand for a
/// targeted test, or derive one from a seed for chaos sweeps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (arming it is equivalent to staying disarmed).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder-style push.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Append a fault.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// The scripted faults, in plan order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when the plan scripts nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Derive a small randomized pool-fault plan from `seed` for a pool
    /// of `workers` threads: one to three faults drawn from worker
    /// panics, worker exits and send failures, with small ordinals so
    /// they actually land inside test-sized batches. Equal seeds give
    /// equal plans.
    pub fn seeded(seed: u64, workers: usize) -> Self {
        let mut rng = Rng::new(seed);
        let workers = workers.max(1);
        let n = rng.range(1, 4);
        let mut plan = FaultPlan::new();
        for _ in 0..n {
            let fault = match rng.below(3) {
                0 => Fault::WorkerPanic {
                    worker: rng.range(0, workers),
                    nth_chunk: rng.range_u64(0, 4),
                },
                1 => Fault::WorkerExit {
                    worker: rng.range(0, workers),
                    nth_chunk: rng.range_u64(0, 4),
                },
                _ => Fault::SendFail {
                    nth_send: rng.range_u64(0, 4 * workers as u64),
                },
            };
            plan.push(fault);
        }
        plan
    }
}

/// A phase-scoped chaos script: named workload phases, each with its own
/// [`FaultPlan`]. The workload replayer arms the matching plan when a
/// phase begins and disarms at the phase boundary, so every injected
/// fault stays attributable to the phase that scripted it. Phases with
/// no entry (or an empty plan) run clean.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    phases: Vec<(String, FaultPlan)>,
}

impl FaultSchedule {
    /// An empty schedule (every phase runs clean).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Builder-style: script `plan` for the phase named `phase`. A
    /// repeated name replaces the earlier plan.
    pub fn with_phase(mut self, phase: &str, plan: FaultPlan) -> Self {
        match self.phases.iter_mut().find(|(name, _)| name == phase) {
            Some((_, existing)) => *existing = plan,
            None => self.phases.push((phase.to_string(), plan)),
        }
        self
    }

    /// The plan scripted for `phase`, if a non-empty one exists.
    pub fn plan_for(&self, phase: &str) -> Option<&FaultPlan> {
        self.phases
            .iter()
            .find(|(name, _)| name == phase)
            .map(|(_, plan)| plan)
            .filter(|plan| !plan.is_empty())
    }

    /// True when no phase scripts any fault.
    pub fn is_empty(&self) -> bool {
        self.phases.iter().all(|(_, plan)| plan.is_empty())
    }

    /// Scheduled `(phase, plan)` pairs in insertion order.
    pub fn phases(&self) -> impl Iterator<Item = (&str, &FaultPlan)> {
        self.phases.iter().map(|(n, p)| (n.as_str(), p))
    }

    /// Derive a deterministic schedule from `seed`: one seeded pool plan
    /// per named phase, each drawn from an independent substream so
    /// adding or renaming one phase does not reshuffle the others.
    pub fn seeded(seed: u64, workers: usize, phase_names: &[&str]) -> Self {
        let mut sched = FaultSchedule::new();
        for (i, name) in phase_names.iter().enumerate() {
            let sub = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            sched = sched.with_phase(name, FaultPlan::seeded(sub, workers));
        }
        sched
    }
}

/// Counter state for an armed plan. Lives behind the cell's mutex, so
/// plain integers suffice; hooks only reach here after observing a
/// non-zero generation word.
#[derive(Debug)]
struct Armed {
    faults: Vec<Fault>,
    /// Per-worker-slot chunk ordinals (index = worker slot).
    chunks_seen: Vec<u64>,
    sends_seen: u64,
    samples_seen: u64,
    reads_seen: u64,
    persists_seen: u64,
    injected: u64,
}

/// The hook cell: a generation word plus the armed plan's counters.
///
/// Embedded (under `#[cfg(feature = "fault-injection")]`) in the encode
/// pool, the coordinator and the PM simulator. See the module docs for
/// the memory-ordering contract.
#[derive(Debug, Default)]
pub struct FaultCell {
    /// Generation word: `0` = disarmed; any other value = armed with the
    /// plan behind `armed`. Published with `Release`, observed with
    /// `Acquire` so a hook that sees generation `g` also sees the plan
    /// stored before `g` (the knob-word protocol, lint rule R3).
    fault_word: AtomicU64,
    armed: Mutex<Option<Armed>>,
    /// Monotonic generation source so re-arming is always visible.
    generation: AtomicU64,
}

impl FaultCell {
    /// A disarmed cell.
    pub const fn new() -> Self {
        FaultCell {
            fault_word: AtomicU64::new(0),
            armed: Mutex::new(None),
            generation: AtomicU64::new(0),
        }
    }

    fn lock_armed(&self) -> std::sync::MutexGuard<'_, Option<Armed>> {
        self.armed.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arm the cell with `plan` for a pool of `workers` slots. Replaces
    /// any previous plan and resets all counters.
    pub fn arm(&self, plan: &FaultPlan, workers: usize) {
        let mut armed = self.lock_armed();
        *armed = Some(Armed {
            faults: plan.faults.clone(),
            chunks_seen: vec![0; workers],
            sends_seen: 0,
            samples_seen: 0,
            reads_seen: 0,
            persists_seen: 0,
            injected: 0,
        });
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        self.fault_word.store(generation, Ordering::Release);
    }

    /// Disarm: hooks go back to the single-load fast path.
    pub fn disarm(&self) {
        let mut armed = self.lock_armed();
        *armed = None;
        self.fault_word.store(0, Ordering::Release);
    }

    /// Is a plan armed?
    pub fn armed(&self) -> bool {
        self.fault_word.load(Ordering::Acquire) != 0
    }

    /// How many faults have fired since the last [`arm`](Self::arm).
    pub fn injected(&self) -> u64 {
        if !self.armed() {
            return 0;
        }
        self.lock_armed().as_ref().map_or(0, |a| a.injected)
    }

    /// Hook: a worker dequeued a chunk. Returns what it should do.
    pub fn on_worker_chunk(&self, worker: usize) -> ChunkFault {
        if !self.armed() {
            return ChunkFault::None;
        }
        let mut guard = self.lock_armed();
        let Some(armed) = guard.as_mut() else {
            return ChunkFault::None;
        };
        let Some(seen) = armed.chunks_seen.get_mut(worker) else {
            return ChunkFault::None;
        };
        let nth = *seen;
        *seen += 1;
        for fault in &armed.faults {
            match *fault {
                Fault::WorkerPanic {
                    worker: w,
                    nth_chunk,
                } if w == worker && nth_chunk == nth => {
                    armed.injected += 1;
                    return ChunkFault::Panic;
                }
                Fault::WorkerExit {
                    worker: w,
                    nth_chunk,
                } if w == worker && nth_chunk == nth => {
                    armed.injected += 1;
                    return ChunkFault::Exit;
                }
                _ => {}
            }
        }
        ChunkFault::None
    }

    /// Hook: the pool is about to enqueue a chunk. `true` means the send
    /// must be dropped as if the channel were disconnected.
    pub fn on_send(&self) -> bool {
        if !self.armed() {
            return false;
        }
        let mut guard = self.lock_armed();
        let Some(armed) = guard.as_mut() else {
            return false;
        };
        let nth = armed.sends_seen;
        armed.sends_seen += 1;
        let hit = armed
            .faults
            .iter()
            .any(|f| matches!(*f, Fault::SendFail { nth_send } if nth_send == nth));
        if hit {
            armed.injected += 1;
        }
        hit
    }

    /// Hook: the coordinator is taking a sample. Returns a multiplier
    /// for the sampled demand-stall latency, if this tick is scripted.
    pub fn on_sample(&self) -> Option<f64> {
        if !self.armed() {
            return None;
        }
        let mut guard = self.lock_armed();
        let armed = guard.as_mut()?;
        let nth = armed.samples_seen;
        armed.samples_seen += 1;
        let factor = armed.faults.iter().find_map(|f| match *f {
            Fault::SampleSpike { nth_sample, factor } if nth_sample == nth => Some(factor),
            _ => None,
        });
        if factor.is_some() {
            armed.injected += 1;
        }
        factor
    }

    /// Hook: the PM simulator is fetching a line from media. Returns
    /// extra latency in nanoseconds, if this fetch is scripted.
    pub fn on_media_read(&self) -> Option<f64> {
        if !self.armed() {
            return None;
        }
        let mut guard = self.lock_armed();
        let armed = guard.as_mut()?;
        let nth = armed.reads_seen;
        armed.reads_seen += 1;
        let extra = armed.faults.iter().find_map(|f| match *f {
            Fault::MediaSpike { nth_read, extra_ns } if nth_read == nth => Some(extra_ns),
            _ => None,
        });
        if extra.is_some() {
            armed.injected += 1;
        }
        extra
    }

    /// Hook: a persistence domain is about to complete a persist
    /// boundary (flush + fence). `true` means power fails *at* this
    /// boundary: the fence must not complete, and the domain should
    /// freeze to its crash image.
    pub fn on_persist(&self) -> bool {
        if !self.armed() {
            return false;
        }
        let mut guard = self.lock_armed();
        let Some(armed) = guard.as_mut() else {
            return false;
        };
        let nth = armed.persists_seen;
        armed.persists_seen += 1;
        let hit = armed
            .faults
            .iter()
            .any(|f| matches!(*f, Fault::CrashPoint { nth_persist } if nth_persist == nth));
        if hit {
            armed.injected += 1;
        }
        hit
    }
}

/// Flip one byte of a shard in place: XOR `mask` (coerced to `0x01` when
/// zero, so the shard always actually changes) into `shard[offset]`.
pub fn flip_byte(shard: &mut [u8], offset: usize, mask: u8) {
    let mask = if mask == 0 { 1 } else { mask };
    if let Some(b) = shard.get_mut(offset) {
        *b ^= mask;
    }
}

/// Truncate a shard to `new_len` bytes (no-op when already shorter).
/// Models a torn trailing write; decode planning must reject the stripe
/// with a length mismatch rather than read past the tear.
pub fn truncate_shard(shard: &mut Vec<u8>, new_len: usize) {
    shard.truncate(new_len);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_cell_is_inert() {
        let cell = FaultCell::new();
        assert!(!cell.armed());
        assert_eq!(cell.on_worker_chunk(0), ChunkFault::None);
        assert!(!cell.on_send());
        assert_eq!(cell.on_sample(), None);
        assert_eq!(cell.on_media_read(), None);
        assert!(!cell.on_persist());
        assert_eq!(cell.injected(), 0);
    }

    #[test]
    fn worker_chunk_faults_fire_exactly_once_at_the_scripted_ordinal() {
        let cell = FaultCell::new();
        let plan = FaultPlan::new()
            .with(Fault::WorkerPanic {
                worker: 1,
                nth_chunk: 2,
            })
            .with(Fault::WorkerExit {
                worker: 0,
                nth_chunk: 0,
            });
        cell.arm(&plan, 2);
        // Worker 0 exits on its very first chunk, then (respawned, same
        // slot) runs clean forever.
        assert_eq!(cell.on_worker_chunk(0), ChunkFault::Exit);
        for _ in 0..5 {
            assert_eq!(cell.on_worker_chunk(0), ChunkFault::None);
        }
        // Worker 1 panics on its third chunk only.
        assert_eq!(cell.on_worker_chunk(1), ChunkFault::None);
        assert_eq!(cell.on_worker_chunk(1), ChunkFault::None);
        assert_eq!(cell.on_worker_chunk(1), ChunkFault::Panic);
        assert_eq!(cell.on_worker_chunk(1), ChunkFault::None);
        assert_eq!(cell.injected(), 2);
    }

    #[test]
    fn send_faults_count_globally() {
        let cell = FaultCell::new();
        cell.arm(&FaultPlan::new().with(Fault::SendFail { nth_send: 1 }), 4);
        assert!(!cell.on_send());
        assert!(cell.on_send());
        assert!(!cell.on_send());
        assert_eq!(cell.injected(), 1);
    }

    #[test]
    fn sample_and_media_hooks_return_scripted_magnitudes() {
        let cell = FaultCell::new();
        let plan = FaultPlan::new()
            .with(Fault::SampleSpike {
                nth_sample: 1,
                factor: 5.0,
            })
            .with(Fault::MediaSpike {
                nth_read: 0,
                extra_ns: 900.0,
            });
        cell.arm(&plan, 1);
        assert_eq!(cell.on_sample(), None);
        assert_eq!(cell.on_sample(), Some(5.0));
        assert_eq!(cell.on_sample(), None);
        assert_eq!(cell.on_media_read(), Some(900.0));
        assert_eq!(cell.on_media_read(), None);
    }

    #[test]
    fn crash_points_fire_at_exactly_the_scripted_boundary() {
        let cell = FaultCell::new();
        assert!(!cell.on_persist(), "disarmed cell never crashes");
        cell.arm(
            &FaultPlan::new().with(Fault::CrashPoint { nth_persist: 2 }),
            1,
        );
        assert!(!cell.on_persist());
        assert!(!cell.on_persist());
        assert!(cell.on_persist(), "third boundary is ordinal 2");
        assert!(!cell.on_persist(), "a crash point fires exactly once");
        assert_eq!(cell.injected(), 1);
        // Re-arming resets the boundary counter.
        cell.arm(
            &FaultPlan::new().with(Fault::CrashPoint { nth_persist: 0 }),
            1,
        );
        assert!(cell.on_persist());
    }

    #[test]
    fn rearming_resets_counters_and_disarming_silences() {
        let cell = FaultCell::new();
        let plan = FaultPlan::new().with(Fault::SendFail { nth_send: 0 });
        cell.arm(&plan, 1);
        assert!(cell.on_send());
        cell.arm(&plan, 1);
        assert!(cell.on_send(), "re-arm must reset the send counter");
        cell.disarm();
        assert!(!cell.on_send());
        assert_eq!(cell.injected(), 0);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..64u64 {
            let a = FaultPlan::seeded(seed, 4);
            let b = FaultPlan::seeded(seed, 4);
            assert_eq!(a, b);
            assert!(!a.is_empty() && a.faults().len() <= 3);
            for f in a.faults() {
                match *f {
                    Fault::WorkerPanic { worker, nth_chunk }
                    | Fault::WorkerExit { worker, nth_chunk } => {
                        assert!(worker < 4 && nth_chunk < 4);
                    }
                    Fault::SendFail { nth_send } => assert!(nth_send < 16),
                    _ => panic!("seeded plans script pool faults only"),
                }
            }
        }
    }

    #[test]
    fn schedule_scopes_plans_to_named_phases() {
        let spike = FaultPlan::new().with(Fault::SampleSpike {
            nth_sample: 0,
            factor: 2.0,
        });
        let sched = FaultSchedule::new()
            .with_phase("burst", spike.clone())
            .with_phase("steady", FaultPlan::new());
        assert_eq!(sched.plan_for("burst"), Some(&spike));
        assert_eq!(sched.plan_for("steady"), None, "empty plan = clean phase");
        assert_eq!(sched.plan_for("absent"), None);
        assert!(!sched.is_empty());
        assert_eq!(sched.phases().count(), 2);
        // Re-scripting a phase replaces, never duplicates.
        let replaced = sched.with_phase("burst", FaultPlan::new());
        assert_eq!(replaced.plan_for("burst"), None);
        assert!(replaced.is_empty());
    }

    #[test]
    fn seeded_schedules_are_deterministic_with_independent_phases() {
        let a = FaultSchedule::seeded(9, 4, &["warm", "shift", "drain"]);
        let b = FaultSchedule::seeded(9, 4, &["warm", "shift", "drain"]);
        assert_eq!(a, b);
        assert!(a.plan_for("warm").is_some());
        // Truncating the phase list must not reshuffle surviving phases.
        let shorter = FaultSchedule::seeded(9, 4, &["warm", "shift"]);
        assert_eq!(shorter.plan_for("warm"), a.plan_for("warm"));
        assert_eq!(shorter.plan_for("shift"), a.plan_for("shift"));
        assert_ne!(
            FaultSchedule::seeded(10, 4, &["warm"]).plan_for("warm"),
            a.plan_for("warm"),
            "different seeds should disagree somewhere"
        );
    }

    #[test]
    fn corruption_helpers() {
        let mut shard = vec![7u8; 8];
        flip_byte(&mut shard, 3, 0);
        assert_eq!(shard[3], 6, "zero mask coerces to 0x01");
        flip_byte(&mut shard, 3, 0xFF);
        assert_eq!(shard[3], 6 ^ 0xFF);
        flip_byte(&mut shard, 100, 0xFF); // out of range: no-op
        let mut shard = vec![1u8; 8];
        truncate_shard(&mut shard, 3);
        assert_eq!(shard.len(), 3);
        truncate_shard(&mut shard, 9);
        assert_eq!(shard.len(), 3);
    }
}
