#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! `dialga-service` — a sharded stripe-service front end over the DIALGA
//! encode pool.
//!
//! The adaptive scheduling in [`dialga::coordinator`] only pays off under
//! sustained, concurrent stripe traffic; this crate is the serving layer
//! that produces such traffic shapes from many independent clients. The
//! dispatcher follows the master/slave `Prefetcher` organisation of AIFM
//! (SNIPPETS.md §1): per shard, one **master** thread turns queued client
//! requests into fused batch tasks, and the shard's [`EncodePool`] workers
//! are the bounded **slave** pool that executes them. A fixed 256-entry
//! trace ring per shard (AIFM's `traces_[256]`) records recent dispatches
//! for observability.
//!
//! Architecture, per shard:
//!
//! * its **own** [`EncodePool`] and (optionally) its own
//!   [`Coordinator`](dialga::coordinator::Coordinator) — shards tune their
//!   prefetch policy independently for their own traffic, the NUMA-style
//!   worker/buffer partitioning of the paper's multi-instance deployments;
//! * a **bounded admission queue** ([`ServiceConfig::queue_depth`]) of
//!   per-tenant FIFOs; [`StripeService::submit_encode`] and friends return
//!   [`ServiceError::Rejected`] when the shard is full instead of blocking
//!   unboundedly, and requests that outlive their deadline complete with
//!   [`ServiceError::Expired`];
//! * **deficit round-robin** over tenants (quantum
//!   [`ServiceConfig::quantum_bytes`]), so a tenant saturating the queue
//!   cannot starve a light tenant sharing its shard;
//! * **coalescing**: the master drains up to
//!   [`ServiceConfig::batch_limit`] requests per sweep and dispatches them
//!   as *fused* pool batches (`encode_batch`/`decode_batch`), amortising
//!   dispatch overhead exactly where small stripes lose it.
//!
//! Shard selection hashes `(tenant, seq)`; when the hashed shard's queue
//! occupancy crosses [`ServiceConfig::spill_occupancy`], the request
//! spills to the neighbouring shard if it is less loaded (load-aware
//! admission in the spirit of DSPatch's bandwidth-aware dual policies).

mod shard;

pub use shard::{OpKind, TraceEntry};

use dialga::coordinator::Coordinator;
use dialga::encoder::Dialga;
use dialga::pool::{EncodePool, PoolStats};
use dialga_ec::EcError;
use dialga_memsim::MachineConfig;
use dialga_store::{PmImage, RecoveryReport, StoreError, StripeStore};
use shard::{OpPayload, Pending, Shard};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[cfg(feature = "fault-injection")]
use dialga_faultkit::FaultPlan;

/// Configuration for a [`StripeService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards (each with its own pool + coordinator); at least 1.
    pub shards: usize,
    /// Encode-pool workers per shard; at least 1.
    pub threads_per_shard: usize,
    /// Data blocks per stripe.
    pub k: usize,
    /// Parity blocks per stripe.
    pub m: usize,
    /// Nominal block size fed to each shard's coordinator (the access
    /// pattern it tunes for); actual requests may vary around it.
    pub block_bytes: u64,
    /// Maximum queued requests per shard; admission beyond this returns
    /// [`ServiceError::Rejected`].
    pub queue_depth: usize,
    /// Maximum requests coalesced into one fused pool dispatch.
    pub batch_limit: usize,
    /// Deficit-round-robin quantum in bytes added per tenant visit.
    pub quantum_bytes: usize,
    /// Queue-occupancy fraction of `queue_depth` above which shard
    /// selection spills to the (less-loaded) neighbour shard.
    pub spill_occupancy: f64,
    /// Attach a per-shard [`Coordinator`] driving live knob updates.
    pub coordinated: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 1,
            threads_per_shard: 2,
            k: 8,
            m: 2,
            block_bytes: 64 * 1024,
            queue_depth: 256,
            batch_limit: 16,
            quantum_bytes: 1 << 20,
            spill_occupancy: 0.75,
            coordinated: true,
        }
    }
}

/// Errors surfaced by the service, either at submission or through a
/// [`Ticket`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The target shard's admission queue was full at submit time.
    Rejected {
        /// Shard whose queue was full.
        shard: usize,
        /// Its queue depth at the time.
        depth: usize,
    },
    /// The request sat queued past its deadline and was dropped at
    /// dispatch time.
    Expired {
        /// How long the request had been queued when it was dropped.
        waited: Duration,
    },
    /// The service is still recovering its stripe store after a crash;
    /// retry once [`StripeService::wait_recovered`] reports ready. Pure
    /// backpressure — recovery never blocks a submitting client.
    Recovering,
    /// The coding layer rejected or failed the request.
    Coding(EcError),
    /// The service shut down before the request completed.
    Disconnected,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Rejected { shard, depth } => {
                write!(f, "shard {shard} admission queue full ({depth} queued)")
            }
            ServiceError::Expired { waited } => {
                write!(f, "request expired after {} µs queued", waited.as_micros())
            }
            ServiceError::Recovering => {
                write!(f, "service is recovering its stripe store; retry shortly")
            }
            ServiceError::Coding(e) => write!(f, "coding error: {e}"),
            ServiceError::Disconnected => write!(f, "service shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EcError> for ServiceError {
    fn from(e: EcError) -> Self {
        ServiceError::Coding(e)
    }
}

/// Handle to one submitted request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Vec<Vec<u8>>, ServiceError>>,
    seq: u64,
    shard: usize,
}

impl Ticket {
    /// Block until the request completes. Payload by operation:
    /// encode → the `m` parity blocks; decode → all `k + m` restored
    /// shards; repair → the single rebuilt shard.
    pub fn wait(self) -> Result<Vec<Vec<u8>>, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Disconnected))
    }

    /// Like [`Ticket::wait`] with a timeout; `None` if still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Vec<Vec<u8>>, ServiceError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServiceError::Disconnected)),
        }
    }

    /// Service-wide submission sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Shard the request was admitted to (after any spill).
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// Number of latency-histogram buckets: two per power-of-two octave over
/// the u64 nanosecond range (`2 * 63 + 1 = 127` reachable indices).
const LAT_BUCKETS: usize = 128;

/// Lock-free log-scale latency histogram: two buckets per octave, pure
/// `Relaxed` tallies by the same protocol as the pool counters (lint R3).
/// Quantiles resolve to the *upper bound* of the crossing bucket, so a
/// reported p99 over-estimates by at most one half-octave (≤ 50 %) —
/// ample resolution for the regime classification the workload harness
/// performs, at zero cost on the completion path.
pub(crate) struct LatencyHist {
    bucket: [AtomicU64; LAT_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            bucket: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHist {
    /// Bucket index for a latency sample.
    fn index(ns: u64) -> usize {
        if ns < 2 {
            return 0;
        }
        let log = 63 - ns.leading_zeros() as usize;
        let half = ((ns >> (log - 1)) & 1) as usize;
        (2 * log + half - 1).min(LAT_BUCKETS - 1)
    }

    /// Exclusive upper bound (ns) of a bucket — what quantiles resolve to.
    fn upper_ns(idx: usize) -> u64 {
        if idx == 0 {
            return 2;
        }
        let log = idx.div_ceil(2);
        let half = ((idx + 1) & 1) as u64;
        (3 + half) << (log - 1)
    }

    pub(crate) fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.bucket[Self::index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Quantile in nanoseconds; 0.0 when no samples were recorded. The
    /// racy sweep may see `count` ahead of the buckets — the max-latency
    /// fallback keeps the answer sane in that window.
    fn quantile_ns(&self, q: f64) -> f64 {
        let n = self.count.load(Ordering::Relaxed);
        if n == 0 {
            return 0.0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, bucket) in self.bucket.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::upper_ns(i) as f64;
            }
        }
        self.max_ns.load(Ordering::Relaxed) as f64
    }

    fn snapshot(&self, op: &'static str) -> OpClassStats {
        let count = self.count.load(Ordering::Relaxed);
        let total_ns = self.total_ns.load(Ordering::Relaxed);
        let to_us = |ns: f64| ns / 1_000.0;
        OpClassStats {
            op,
            count,
            mean_us: if count == 0 {
                0.0
            } else {
                to_us(total_ns as f64 / count as f64)
            },
            p50_us: to_us(self.quantile_ns(0.50)),
            p99_us: to_us(self.quantile_ns(0.99)),
            p999_us: to_us(self.quantile_ns(0.999)),
            max_us: to_us(self.max_ns.load(Ordering::Relaxed) as f64),
        }
    }
}

/// Per-operation-class service-latency summary (submit → response,
/// including queueing). Microsecond floats straight from the log-scale
/// histogram: quantiles are bucket upper bounds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpClassStats {
    /// Class name (`"encode"`, `"decode"`, `"repair"`, `"scrub"`).
    pub op: &'static str,
    /// Completions recorded for this class.
    pub count: u64,
    /// Mean service latency, µs.
    pub mean_us: f64,
    /// Median, µs (bucket upper bound).
    pub p50_us: f64,
    /// 99th percentile, µs (bucket upper bound).
    pub p99_us: f64,
    /// 99.9th percentile, µs (bucket upper bound).
    pub p999_us: f64,
    /// Largest single sample, µs (exact).
    pub max_us: f64,
}

/// Service-wide counters. Pure monotonic tallies: `Relaxed` by the same
/// protocol as the pool's [`PoolStats`] counters (checked by lint R3).
#[derive(Default)]
pub(crate) struct ServiceCounters {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) expired: AtomicU64,
    pub(crate) spilled: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) coalesced: AtomicU64,
    pub(crate) fallbacks: AtomicU64,
    /// One latency histogram per [`OpKind`], indexed by [`OpKind::index`].
    pub(crate) classes: [LatencyHist; 4],
}

impl ServiceCounters {
    pub(crate) fn class(&self, kind: OpKind) -> &LatencyHist {
        &self.classes[kind.index()]
    }
}

/// Read-only snapshot of service activity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests admitted (excludes rejections).
    pub submitted: u64,
    /// Responses delivered (success or coding error; excludes expiries).
    pub completed: u64,
    /// Submissions refused because the shard queue was full.
    pub rejected: u64,
    /// Requests dropped at dispatch because their deadline had passed.
    pub expired: u64,
    /// Requests admitted to the neighbour shard by load-aware spill.
    pub spilled: u64,
    /// Fused batches dispatched to shard pools.
    pub batches: u64,
    /// Requests carried by those batches (coalescing ratio =
    /// `coalesced / batches`).
    pub coalesced: u64,
    /// Batches that failed as a unit and were re-run request-by-request
    /// to isolate the failing stripe.
    pub fallbacks: u64,
    /// Current queued requests per shard.
    pub shard_occupancy: Vec<usize>,
    /// Queue-depth high-water mark per shard since construction.
    pub shard_queue_peak: Vec<usize>,
    /// Per-op-class completion latency (submit → response), one entry per
    /// [`OpKind`] in [`OpKind::ALL`] order.
    pub classes: Vec<OpClassStats>,
}

/// A [`StripeStore`] over any boxed backing image — what
/// [`StripeService::with_store`] recovers and owns.
pub type BoxedStore = StripeStore<Box<dyn PmImage + Send>>;

/// The sharded stripe-service front end. See the crate docs for the
/// architecture; construct with [`StripeService::new`], submit with
/// [`StripeService::submit_encode`] /
/// [`StripeService::submit_decode`] / [`StripeService::submit_repair`].
pub struct StripeService {
    cfg: ServiceConfig,
    shards: Vec<Arc<Shard>>,
    masters: Vec<JoinHandle<()>>,
    seq: AtomicU64,
    counters: Arc<ServiceCounters>,
    /// True while the construction-time store recovery is still running.
    /// Store-`Release` by the recovery thread after the result is
    /// published, load-`Acquire` on the submit path (knob-word protocol,
    /// lint R9): a submitter that observes `false` also observes the
    /// recovered store behind `recovered`.
    recovering: Arc<AtomicBool>,
    /// The recovered store (or the recovery failure), published by the
    /// recovery thread before it clears `recovering`.
    recovered: Arc<Mutex<Option<Result<BoxedStore, StoreError>>>>,
}

impl StripeService {
    /// Build the service: `cfg.shards` shards, each with its own
    /// [`EncodePool`] (and coordinator when `cfg.coordinated`), plus one
    /// master thread per shard running admission → DRR → fused dispatch.
    pub fn new(cfg: ServiceConfig) -> Result<StripeService, EcError> {
        let mut cfg = cfg;
        cfg.shards = cfg.shards.max(1);
        cfg.threads_per_shard = cfg.threads_per_shard.max(1);
        cfg.queue_depth = cfg.queue_depth.max(1);
        cfg.batch_limit = cfg.batch_limit.max(1);
        cfg.quantum_bytes = cfg.quantum_bytes.max(1);
        let coder = Arc::new(Dialga::new(cfg.k, cfg.m)?);
        let counters = Arc::new(ServiceCounters::default());
        let machine = MachineConfig::pm();
        let mut shards = Vec::with_capacity(cfg.shards);
        let mut masters = Vec::with_capacity(cfg.shards);
        for index in 0..cfg.shards {
            let pool = if cfg.coordinated {
                let coordinator = Coordinator::new(
                    cfg.k,
                    cfg.m,
                    cfg.block_bytes,
                    cfg.threads_per_shard,
                    &machine,
                );
                EncodePool::with_coordinator(cfg.threads_per_shard, coordinator)
            } else {
                EncodePool::new(cfg.threads_per_shard)
            };
            let shard = Arc::new(Shard::new(
                index,
                pool,
                cfg.queue_depth,
                Arc::clone(&counters),
            ));
            let master_shard = Arc::clone(&shard);
            let master_coder = Arc::clone(&coder);
            let (batch_limit, quantum) = (cfg.batch_limit, cfg.quantum_bytes);
            let handle = std::thread::Builder::new()
                .name(format!("dialga-svc-{index}"))
                .spawn(move || shard::master_loop(master_shard, master_coder, batch_limit, quantum))
                // Mirrors pool construction: a host that cannot spawn a
                // thread cannot serve anyway, and there is no Result
                // channel at construction.
                // lint:allow(panic-path): unrecoverable at service build
                .expect("spawn shard master");
            shards.push(shard);
            masters.push(handle);
        }
        Ok(StripeService {
            cfg,
            shards,
            masters,
            seq: AtomicU64::new(0),
            counters,
            recovering: Arc::new(AtomicBool::new(false)),
            recovered: Arc::new(Mutex::new(None)),
        })
    }

    /// Build the service *over a dirty stripe store*: the shards come up
    /// immediately, a dedicated thread runs [`StripeStore::open`]
    /// (rollback/forward + boot scrub) on `image`, and until it finishes
    /// every submission is refused with [`ServiceError::Recovering`] —
    /// backpressure, never blocking. Poll with
    /// [`wait_recovered`](Self::wait_recovered); inspect the outcome with
    /// [`recovery_report`](Self::recovery_report) and reach the store
    /// through [`with_store_mut`](Self::with_store_mut).
    pub fn with_store(
        cfg: ServiceConfig,
        image: Box<dyn PmImage + Send>,
    ) -> Result<StripeService, EcError> {
        let mut svc = StripeService::new(cfg)?;
        svc.recovering.store(true, Ordering::Release);
        let recovering = Arc::clone(&svc.recovering);
        let recovered = Arc::clone(&svc.recovered);
        let handle = std::thread::Builder::new()
            .name("dialga-svc-recover".to_string())
            .spawn(move || {
                let result = StripeStore::open(image);
                *recovered.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                // Release-publish *after* the store is visible behind the
                // mutex: a submitter seeing `false` finds it there.
                recovering.store(false, Ordering::Release);
            })
            // Mirrors the shard-master spawn below: no thread, no service.
            // lint:allow(panic-path): unrecoverable at service build
            .expect("spawn recovery thread");
        svc.masters.push(handle);
        Ok(svc)
    }

    /// True while construction-time store recovery is still running.
    pub fn recovering(&self) -> bool {
        self.recovering.load(Ordering::Acquire)
    }

    /// Poll until recovery finishes or `timeout` elapses; returns `true`
    /// once the service is out of the recovering state. A plain
    /// [`StripeService::new`] service is never recovering.
    pub fn wait_recovered(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.recovering() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        true
    }

    /// What recovery found and did — `None` while still recovering, if
    /// the service has no store, or if recovery failed (see
    /// [`recovery_error`](Self::recovery_error)).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        if self.recovering() {
            return None;
        }
        let guard = self
            .recovered
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match guard.as_ref() {
            Some(Ok(store)) => Some(store.recovery_report().clone()),
            _ => None,
        }
    }

    /// The recovery failure, rendered — `None` while recovering, when
    /// there is no store, or when recovery succeeded.
    pub fn recovery_error(&self) -> Option<String> {
        if self.recovering() {
            return None;
        }
        let guard = self
            .recovered
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match guard.as_ref() {
            Some(Err(e)) => Some(e.to_string()),
            _ => None,
        }
    }

    /// Run `f` over the recovered store. `None` while recovering, when
    /// the service has no store, or when recovery failed.
    pub fn with_store_mut<R>(&self, f: impl FnOnce(&mut BoxedStore) -> R) -> Option<R> {
        if self.recovering() {
            return None;
        }
        let mut guard = self
            .recovered
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match guard.as_mut() {
            Some(Ok(store)) => Some(f(store)),
            _ => None,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The service configuration (normalised: minimums applied).
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Submit a stripe encode: `data` is the stripe's `k` equal-length
    /// data blocks; the ticket resolves to the `m` parity blocks.
    pub fn submit_encode(
        &self,
        tenant: u32,
        data: Vec<Vec<u8>>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServiceError> {
        if data.len() != self.cfg.k {
            return Err(ServiceError::Coding(EcError::BlockCount {
                expected: self.cfg.k,
                got: data.len(),
            }));
        }
        self.submit(tenant, OpPayload::Encode { data }, deadline)
    }

    /// Submit a stripe decode: `shards` is the full `k + m` shard vector
    /// with `None` holes; the ticket resolves to all `k + m` restored
    /// shards.
    pub fn submit_decode(
        &self,
        tenant: u32,
        shards: Vec<Option<Vec<u8>>>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServiceError> {
        let want = self.cfg.k + self.cfg.m;
        if shards.len() != want {
            return Err(ServiceError::Coding(EcError::BlockCount {
                expected: want,
                got: shards.len(),
            }));
        }
        self.submit(tenant, OpPayload::Decode { shards }, deadline)
    }

    /// Submit a single-shard repair (degraded read): rebuild shard
    /// `target` from the survivors in `shards`; the ticket resolves to a
    /// one-element vector holding the rebuilt shard.
    pub fn submit_repair(
        &self,
        tenant: u32,
        shards: Vec<Option<Vec<u8>>>,
        target: usize,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServiceError> {
        let want = self.cfg.k + self.cfg.m;
        if shards.len() != want || target >= want {
            return Err(ServiceError::Coding(EcError::BlockCount {
                expected: want,
                got: shards.len().max(target),
            }));
        }
        self.submit(tenant, OpPayload::Repair { shards, target }, deadline)
    }

    /// Submit an integrity scrub: `shards` is the full `k + m` stripe
    /// (data first, then parity). A clean stripe resolves to an empty
    /// vector; corruption resolves to
    /// [`ServiceError::Coding`]`(`[`EcError::Corrupt`]`)` carrying the
    /// localized shard evidence.
    pub fn submit_scrub(
        &self,
        tenant: u32,
        shards: Vec<Vec<u8>>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServiceError> {
        let want = self.cfg.k + self.cfg.m;
        if shards.len() != want {
            return Err(ServiceError::Coding(EcError::BlockCount {
                expected: want,
                got: shards.len(),
            }));
        }
        self.submit(tenant, OpPayload::Scrub { shards }, deadline)
    }

    fn submit(
        &self,
        tenant: u32,
        op: OpPayload,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServiceError> {
        if self.recovering.load(Ordering::Acquire) {
            return Err(ServiceError::Recovering);
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let (shard_idx, spilled) = self.pick_shard(tenant, seq);
        let (tx, rx) = mpsc::channel();
        let pending = Pending {
            seq,
            tenant,
            cost: op.cost_bytes().max(1),
            op,
            submitted: Instant::now(),
            deadline,
            done: tx,
        };
        match self.shards[shard_idx].admit(pending) {
            Ok(()) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                if spilled {
                    self.counters.spilled.fetch_add(1, Ordering::Relaxed);
                }
                Ok(Ticket {
                    rx,
                    seq,
                    shard: shard_idx,
                })
            }
            Err(depth) => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Rejected {
                    shard: shard_idx,
                    depth,
                })
            }
        }
    }

    /// Hash `(tenant, seq)` to a shard; spill to the neighbour when the
    /// hashed shard is above the occupancy threshold and the neighbour is
    /// strictly less loaded.
    fn pick_shard(&self, tenant: u32, seq: u64) -> (usize, bool) {
        let n = self.shards.len();
        let primary = (mix64(((tenant as u64) << 32) ^ seq) % n as u64) as usize;
        if n == 1 {
            return (primary, false);
        }
        let threshold = ((self.cfg.queue_depth as f64) * self.cfg.spill_occupancy) as usize;
        let occ = self.shards[primary].occupancy();
        if occ > threshold {
            let neighbour = (primary + 1) % n;
            if self.shards[neighbour].occupancy() < occ {
                return (neighbour, true);
            }
        }
        (primary, false)
    }

    /// Pause or resume dispatch on every shard master. While paused,
    /// admission still runs (the queue fills and then rejects), but no
    /// batch leaves the queues — the deterministic substrate for the
    /// backpressure and fairness tests.
    pub fn set_paused(&self, paused: bool) {
        for shard in &self.shards {
            shard.set_paused(paused);
        }
    }

    /// Snapshot of service-wide counters and per-shard queue occupancy.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            spilled: c.spilled.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            fallbacks: c.fallbacks.load(Ordering::Relaxed),
            shard_occupancy: self.shards.iter().map(|s| s.occupancy()).collect(),
            shard_queue_peak: self.shards.iter().map(|s| s.queue_peak()).collect(),
            classes: OpKind::ALL
                .iter()
                .map(|k| c.class(*k).snapshot(k.name()))
                .collect(),
        }
    }

    /// Pool stats of one shard (`None` if out of range).
    pub fn shard_pool_stats(&self, shard: usize) -> Option<PoolStats> {
        self.shards.get(shard).map(|s| s.pool_stats())
    }

    /// Recent dispatches from one shard's trace ring, oldest first
    /// (`None` if out of range).
    pub fn shard_traces(&self, shard: usize) -> Option<Vec<TraceEntry>> {
        self.shards.get(shard).map(|s| s.traces())
    }

    /// Coordinator snapshot of one shard's pool (`None` if out of range
    /// or the shard runs uncoordinated).
    pub fn shard_coordinator(&self, shard: usize) -> Option<dialga::CoordinatorSnapshot> {
        self.shards
            .get(shard)
            .and_then(|s| s.coordinator_snapshot())
    }

    /// Monotonic nanoseconds on one shard's pool clock — the clock that
    /// [`dialga::CoordinatorSnapshot::last_change_ns`] timestamps are
    /// measured on (`None` if out of range).
    pub fn shard_clock_ns(&self, shard: usize) -> Option<f64> {
        self.shards.get(shard).map(|s| s.clock_ns())
    }

    /// Arm a deterministic fault plan inside one shard's pool; other
    /// shards are untouched. Returns `false` if out of range.
    #[cfg(feature = "fault-injection")]
    pub fn arm_shard_faults(&self, shard: usize, plan: &FaultPlan) -> bool {
        match self.shards.get(shard) {
            Some(s) => {
                s.arm_faults(plan);
                true
            }
            None => false,
        }
    }

    /// Disarm any fault plan on one shard's pool. Returns `false` if out
    /// of range.
    #[cfg(feature = "fault-injection")]
    pub fn disarm_shard_faults(&self, shard: usize) -> bool {
        match self.shards.get(shard) {
            Some(s) => {
                s.disarm_faults();
                true
            }
            None => false,
        }
    }
}

impl Drop for StripeService {
    /// Graceful shutdown: masters drain what is already queued (expiring
    /// what must expire), then exit; their pools stop with them.
    fn drop(&mut self) {
        for shard in &self.shards {
            shard.begin_shutdown();
        }
        for handle in self.masters.drain(..) {
            let _ = handle.join();
        }
    }
}

/// SplitMix64 finaliser — a cheap, well-mixed stateless hash for shard
/// selection (std-only; no external hasher dependency).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_stripe(k: usize, len: usize, salt: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 37 + j * 11 + salt * 7) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn small_cfg() -> ServiceConfig {
        ServiceConfig {
            shards: 2,
            threads_per_shard: 1,
            k: 4,
            m: 2,
            block_bytes: 4096,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn encode_roundtrip_matches_direct_coder() {
        let svc = StripeService::new(small_cfg()).unwrap();
        let coder = Dialga::new(4, 2).unwrap();
        let data = make_stripe(4, 4096, 0);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let expected = coder.encode_vec(&refs).unwrap();
        let ticket = svc.submit_encode(1, data, None).unwrap();
        assert_eq!(ticket.wait().unwrap(), expected);
        let stats = svc.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn decode_and_repair_roundtrip() {
        let svc = StripeService::new(small_cfg()).unwrap();
        let coder = Dialga::new(4, 2).unwrap();
        let data = make_stripe(4, 2048, 3);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = coder.encode_vec(&refs).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();

        // Decode with two holes.
        let mut holes: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        holes[1] = None;
        holes[4] = None;
        let restored = svc.submit_decode(2, holes, None).unwrap().wait().unwrap();
        assert_eq!(restored, full);

        // Repair a single shard.
        let mut survivors: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        survivors[2] = None;
        let rebuilt = svc
            .submit_repair(2, survivors, 2, None)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(rebuilt, vec![full[2].clone()]);
    }

    #[test]
    fn geometry_is_rejected_at_submit() {
        let svc = StripeService::new(small_cfg()).unwrap();
        let bad = make_stripe(3, 1024, 0); // wrong k
        assert!(matches!(
            svc.submit_encode(1, bad, None),
            Err(ServiceError::Coding(EcError::BlockCount { .. }))
        ));
        assert!(matches!(
            svc.submit_decode(1, vec![None; 5], None),
            Err(ServiceError::Coding(EcError::BlockCount { .. }))
        ));
        assert_eq!(svc.stats().submitted, 0);
    }

    #[test]
    fn paused_service_fills_then_rejects() {
        let cfg = ServiceConfig {
            shards: 1,
            queue_depth: 3,
            spill_occupancy: 2.0, // spill disabled: single shard anyway
            ..small_cfg()
        };
        let svc = StripeService::new(cfg).unwrap();
        svc.set_paused(true);
        let mut tickets = Vec::new();
        let mut rejected = 0;
        for i in 0..5 {
            match svc.submit_encode(1, make_stripe(4, 1024, i), None) {
                Ok(t) => tickets.push(t),
                Err(ServiceError::Rejected { shard: 0, depth }) => {
                    assert!(depth >= 3);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(tickets.len(), 3, "queue_depth bounds admission");
        assert_eq!(rejected, 2);
        svc.set_paused(false);
        for t in tickets {
            assert!(t.wait().is_ok(), "resume drains the queue");
        }
    }

    /// A backing image whose every read pays a delay: makes the recovery
    /// window wide enough to observe deterministically.
    struct SlowImage {
        inner: dialga_store::MemImage,
        delay: Duration,
    }

    impl PmImage for SlowImage {
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn read(&self, offset: u64, out: &mut [u8]) -> Result<(), dialga_store::StoreError> {
            std::thread::sleep(self.delay);
            self.inner.read(offset, out)
        }
        fn store(&mut self, offset: u64, bytes: &[u8]) -> Result<(), dialga_store::StoreError> {
            self.inner.store(offset, bytes)
        }
        fn persist(&mut self, offset: u64, len: usize) -> Result<(), dialga_store::StoreError> {
            self.inner.persist(offset, len)
        }
    }

    #[test]
    fn recovery_phase_backpressures_then_serves() {
        use dialga_store::{Geometry, MemImage, StripeStore};
        // A store with a few committed stripes…
        let geo = Geometry::new(4, 2, 256, 8).unwrap();
        let mut store = StripeStore::format(MemImage::new(geo.image_len()), geo).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; 256]).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        for stripe in 0..8 {
            store.write_stripe(stripe, &refs).unwrap();
        }
        // …reopened behind a slow image so recovery visibly takes time.
        let slow = SlowImage {
            inner: store.into_image(),
            delay: Duration::from_micros(300),
        };
        let svc = StripeService::with_store(small_cfg(), Box::new(slow)).unwrap();
        assert!(svc.recovering());
        assert!(matches!(
            svc.submit_encode(1, make_stripe(4, 256, 0), None),
            Err(ServiceError::Recovering)
        ));
        assert!(svc.recovery_report().is_none());
        assert!(svc.with_store_mut(|_| ()).is_none());

        assert!(svc.wait_recovered(Duration::from_secs(30)));
        let report = svc.recovery_report().unwrap();
        assert_eq!(report.committed, 8);
        assert!(report.corrupt.is_empty());
        assert!(svc.recovery_error().is_none());
        let read = svc.with_store_mut(|s| s.read_stripe(3).unwrap()).unwrap();
        assert_eq!(read, data);
        // And admission is open again.
        let ticket = svc.submit_encode(1, make_stripe(4, 256, 1), None).unwrap();
        assert!(ticket.wait().is_ok());
    }

    #[test]
    fn failed_recovery_surfaces_the_error_and_reopens_admission() {
        use dialga_store::MemImage;
        // Garbage image: no superblock.
        let svc = StripeService::with_store(small_cfg(), Box::new(MemImage::new(1 << 16))).unwrap();
        assert!(svc.wait_recovered(Duration::from_secs(30)));
        assert!(svc.recovery_report().is_none());
        let err = svc.recovery_error().unwrap();
        assert!(err.contains("superblock"), "unexpected error: {err}");
        // The coding planes still serve: no store, but no deadlock.
        let ticket = svc.submit_encode(1, make_stripe(4, 256, 2), None).unwrap();
        assert!(ticket.wait().is_ok());
    }

    #[test]
    fn plain_service_is_never_recovering() {
        let svc = StripeService::new(small_cfg()).unwrap();
        assert!(!svc.recovering());
        assert!(svc.wait_recovered(Duration::from_millis(1)));
        assert!(svc.recovery_report().is_none());
        assert!(svc.recovery_error().is_none());
    }

    #[test]
    fn mix64_spreads_tenant_seq_pairs() {
        let mut hits = [0usize; 4];
        for tenant in 0..8u32 {
            for seq in 0..64u64 {
                hits[(mix64(((tenant as u64) << 32) ^ seq) % 4) as usize] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(h > 64, "shard {i} starved by the hash: {hits:?}");
        }
    }
}
