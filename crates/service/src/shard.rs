//! One shard: bounded per-tenant admission queues, a deficit-round-robin
//! master that coalesces requests into fused pool batches, and a fixed
//! trace ring of recent dispatches.
//!
//! The control shape mirrors AIFM's `Prefetcher` (SNIPPETS.md §1): the
//! shard master is the task-generating master thread, the shard's
//! [`EncodePool`] workers are the bounded slave pool, and [`TraceRing`]
//! plays the role of the 256-entry `traces_` ring.

use crate::{ServiceCounters, ServiceError};
use dialga::encoder::Dialga;
use dialga::pool::{DecodeJob, EncodePool, PoolStats, StripeJob};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

#[cfg(feature = "fault-injection")]
use dialga_faultkit::FaultPlan;

/// Capacity of the per-shard dispatch trace ring.
const TRACE_CAP: usize = 256;

/// Which operation a request (or trace entry) carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Stripe encode (k data blocks → m parity blocks).
    Encode,
    /// Full-stripe decode (restore the holes in a k+m shard vector).
    Decode,
    /// Single-shard repair (degraded read).
    Repair,
    /// Integrity scrub (syndrome verification of a full k+m stripe).
    Scrub,
}

impl OpKind {
    /// All operation classes, in the stable per-class reporting order.
    pub const ALL: [OpKind; 4] = [
        OpKind::Encode,
        OpKind::Decode,
        OpKind::Repair,
        OpKind::Scrub,
    ];

    /// Stable index of this class in per-class counter arrays.
    pub fn index(self) -> usize {
        match self {
            OpKind::Encode => 0,
            OpKind::Decode => 1,
            OpKind::Repair => 2,
            OpKind::Scrub => 3,
        }
    }

    /// Lowercase class name, as used in reports and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Encode => "encode",
            OpKind::Decode => "decode",
            OpKind::Repair => "repair",
            OpKind::Scrub => "scrub",
        }
    }
}

/// One entry of a shard's dispatch trace ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Service-wide submission sequence number.
    pub seq: u64,
    /// Submitting tenant.
    pub tenant: u32,
    /// Shard that dispatched the request.
    pub shard: usize,
    /// Operation kind.
    pub op: OpKind,
    /// Payload cost in bytes (DRR accounting unit).
    pub bytes: usize,
    /// Nanoseconds the request sat queued before dispatch.
    pub queued_ns: u64,
}

/// Owned request payload.
pub(crate) enum OpPayload {
    /// The stripe's k data blocks.
    Encode {
        /// Data blocks.
        data: Vec<Vec<u8>>,
    },
    /// The stripe's k+m shards with `None` holes.
    Decode {
        /// Shard vector.
        shards: Vec<Option<Vec<u8>>>,
    },
    /// Survivors plus the index to rebuild.
    Repair {
        /// Shard vector (holes allowed).
        shards: Vec<Option<Vec<u8>>>,
        /// Index to rebuild.
        target: usize,
    },
    /// The full `k + m` stripe to syndrome-verify.
    Scrub {
        /// All shards, data first then parity.
        shards: Vec<Vec<u8>>,
    },
}

impl OpPayload {
    pub(crate) fn kind(&self) -> OpKind {
        match self {
            OpPayload::Encode { .. } => OpKind::Encode,
            OpPayload::Decode { .. } => OpKind::Decode,
            OpPayload::Repair { .. } => OpKind::Repair,
            OpPayload::Scrub { .. } => OpKind::Scrub,
        }
    }

    /// Bytes of payload the request carries — the DRR cost unit.
    pub(crate) fn cost_bytes(&self) -> usize {
        match self {
            OpPayload::Encode { data } => data.iter().map(Vec::len).sum(),
            OpPayload::Decode { shards } | OpPayload::Repair { shards, .. } => {
                shards.iter().flatten().map(Vec::len).sum()
            }
            OpPayload::Scrub { shards } => shards.iter().map(Vec::len).sum(),
        }
    }
}

/// One admitted, not-yet-dispatched request.
pub(crate) struct Pending {
    pub(crate) seq: u64,
    pub(crate) tenant: u32,
    /// Payload bytes (precomputed, ≥ 1 so zero-byte requests still drain).
    pub(crate) cost: usize,
    pub(crate) op: OpPayload,
    pub(crate) submitted: Instant,
    pub(crate) deadline: Option<Duration>,
    pub(crate) done: mpsc::Sender<Result<Vec<Vec<u8>>, ServiceError>>,
}

/// Per-tenant FIFO plus its deficit-round-robin credit.
struct TenantQueue {
    tenant: u32,
    deficit: usize,
    pending: VecDeque<Pending>,
}

/// Queue state guarded by the shard lock. Invariant: every entry of
/// `tenants` has a non-empty `pending` (empty tenants are removed, which
/// also forfeits their deficit — classic DRR).
struct QueueState {
    tenants: Vec<TenantQueue>,
    rr_cursor: usize,
    paused: bool,
    shutdown: bool,
}

/// Fixed-capacity dispatch trace (oldest overwritten first).
struct TraceRing {
    slots: Vec<TraceEntry>,
    head: usize,
}

impl TraceRing {
    fn record(&mut self, entry: TraceEntry) {
        if self.slots.len() < TRACE_CAP {
            self.slots.push(entry);
            self.head = self.slots.len() % TRACE_CAP;
        } else {
            self.slots[self.head] = entry;
            self.head = (self.head + 1) % TRACE_CAP;
        }
    }

    /// Entries oldest → newest. When the ring has wrapped, `head` points
    /// at the oldest entry.
    fn snapshot(&self) -> Vec<TraceEntry> {
        if self.slots.len() < TRACE_CAP {
            self.slots.clone()
        } else {
            let (newest, oldest) = self.slots.split_at(self.head);
            let mut out = Vec::with_capacity(TRACE_CAP);
            out.extend_from_slice(oldest);
            out.extend_from_slice(newest);
            out
        }
    }
}

/// One shard: its pool, its bounded queue, and its trace ring.
pub(crate) struct Shard {
    index: usize,
    pool: EncodePool,
    queue: Mutex<QueueState>,
    cv: Condvar,
    /// Queued-request count, readable without the lock (shard selection
    /// and spill decisions poll it from other threads).
    occupancy: AtomicU64,
    /// High-water mark of `occupancy` since construction (queue-depth
    /// telemetry for the workload harness; advisory, `Relaxed`).
    occupancy_peak: AtomicU64,
    queue_depth: usize,
    counters: Arc<ServiceCounters>,
    traces: Mutex<TraceRing>,
}

impl Shard {
    pub(crate) fn new(
        index: usize,
        pool: EncodePool,
        queue_depth: usize,
        counters: Arc<ServiceCounters>,
    ) -> Shard {
        Shard {
            index,
            pool,
            queue: Mutex::new(QueueState {
                tenants: Vec::new(),
                rr_cursor: 0,
                paused: false,
                shutdown: false,
            }),
            cv: Condvar::new(),
            occupancy: AtomicU64::new(0),
            occupancy_peak: AtomicU64::new(0),
            queue_depth,
            counters,
            traces: Mutex::new(TraceRing {
                slots: Vec::new(),
                head: 0,
            }),
        }
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, QueueState> {
        // Queue state stays structurally consistent under panic (plain
        // collections), so recover a poisoned guard rather than propagate.
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current queued-request count.
    pub(crate) fn occupancy(&self) -> usize {
        self.occupancy.load(Ordering::Relaxed) as usize
    }

    /// Deepest the admission queue has been since construction.
    pub(crate) fn queue_peak(&self) -> usize {
        self.occupancy_peak.load(Ordering::Relaxed) as usize
    }

    /// Admit one request, or return the observed depth when full (the
    /// caller converts that into [`ServiceError::Rejected`]).
    pub(crate) fn admit(&self, pending: Pending) -> Result<(), usize> {
        let mut q = self.lock_queue();
        if q.shutdown {
            return Err(self.queue_depth);
        }
        let occ = self.occupancy.load(Ordering::Relaxed) as usize;
        if occ >= self.queue_depth {
            return Err(occ);
        }
        match q.tenants.iter_mut().find(|t| t.tenant == pending.tenant) {
            Some(t) => t.pending.push_back(pending),
            None => {
                let mut fifo = VecDeque::new();
                let tenant = pending.tenant;
                fifo.push_back(pending);
                q.tenants.push(TenantQueue {
                    tenant,
                    deficit: 0,
                    pending: fifo,
                });
            }
        }
        let now = self.occupancy.fetch_add(1, Ordering::Relaxed) + 1;
        self.occupancy_peak.fetch_max(now, Ordering::Relaxed);
        self.cv.notify_one();
        Ok(())
    }

    pub(crate) fn set_paused(&self, paused: bool) {
        let mut q = self.lock_queue();
        q.paused = paused;
        drop(q);
        self.cv.notify_all();
    }

    pub(crate) fn begin_shutdown(&self) {
        let mut q = self.lock_queue();
        q.shutdown = true;
        drop(q);
        self.cv.notify_all();
    }

    pub(crate) fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    pub(crate) fn coordinator_snapshot(&self) -> Option<dialga::CoordinatorSnapshot> {
        self.pool.coordinator_snapshot()
    }

    pub(crate) fn clock_ns(&self) -> f64 {
        self.pool.clock_ns()
    }

    pub(crate) fn traces(&self) -> Vec<TraceEntry> {
        self.traces
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .snapshot()
    }

    #[cfg(feature = "fault-injection")]
    pub(crate) fn arm_faults(&self, plan: &FaultPlan) {
        self.pool.arm_faults(plan);
    }

    #[cfg(feature = "fault-injection")]
    pub(crate) fn disarm_faults(&self) {
        self.pool.disarm_faults();
    }

    /// Block until a batch is available (or `None` on shutdown with an
    /// empty queue — shutdown drains what was admitted first). While
    /// paused, nothing is picked unless the shard is also shutting down.
    fn next_batch(&self, limit: usize, quantum: usize) -> Option<Vec<Pending>> {
        let mut q = self.lock_queue();
        loop {
            if !q.paused || q.shutdown {
                let batch = drr_pick(&mut q, limit, quantum);
                if !batch.is_empty() {
                    self.occupancy
                        .fetch_sub(batch.len() as u64, Ordering::Relaxed);
                    return Some(batch);
                }
            }
            if q.shutdown {
                return None;
            }
            q = self.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn record_trace(&self, pending: &Pending, waited: Duration) {
        let entry = TraceEntry {
            seq: pending.seq,
            tenant: pending.tenant,
            shard: self.index,
            op: pending.op.kind(),
            bytes: pending.cost,
            queued_ns: waited.as_nanos() as u64,
        };
        self.traces
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(entry);
    }

    /// Complete one request: record its per-class service latency
    /// (submit → response) in the shared histogram, bump the completion
    /// tally, and deliver the result.
    fn complete(
        &self,
        class: OpKind,
        submitted: Instant,
        done: &mpsc::Sender<Result<Vec<Vec<u8>>, ServiceError>>,
        result: Result<Vec<Vec<u8>>, ServiceError>,
    ) {
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        self.counters
            .class(class)
            .record(submitted.elapsed().as_nanos() as u64);
        let _ = done.send(result);
    }

    /// Expire, trace, partition by operation, and dispatch one batch.
    fn dispatch(&self, coder: &Dialga, batch: Vec<Pending>) {
        let mut live = Vec::with_capacity(batch.len());
        for pending in batch {
            let waited = pending.submitted.elapsed();
            if pending.deadline.is_some_and(|d| waited > d) {
                self.counters.expired.fetch_add(1, Ordering::Relaxed);
                let _ = pending.done.send(Err(ServiceError::Expired { waited }));
                continue;
            }
            self.record_trace(&pending, waited);
            live.push(pending);
        }
        if live.is_empty() {
            return;
        }
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .coalesced
            .fetch_add(live.len() as u64, Ordering::Relaxed);
        let mut encodes = Vec::new();
        let mut decodes = Vec::new();
        let mut repairs = Vec::new();
        let mut scrubs = Vec::new();
        for pending in live {
            match pending.op.kind() {
                OpKind::Encode => encodes.push(pending),
                OpKind::Decode => decodes.push(pending),
                OpKind::Repair => repairs.push(pending),
                OpKind::Scrub => scrubs.push(pending),
            }
        }
        self.dispatch_encodes(coder, encodes);
        self.dispatch_decodes(coder, decodes);
        self.dispatch_repairs(coder, repairs);
        self.dispatch_scrubs(coder, scrubs);
    }

    /// Fused encode dispatch; on batch failure, fall back to per-request
    /// submission so one bad stripe cannot poison its batch neighbours.
    fn dispatch_encodes(&self, coder: &Dialga, reqs: Vec<Pending>) {
        if reqs.is_empty() {
            return;
        }
        let m = coder.params().m;
        let mut dones = Vec::with_capacity(reqs.len());
        let mut datas: Vec<Vec<Vec<u8>>> = Vec::with_capacity(reqs.len());
        for pending in reqs {
            let Pending {
                op,
                done,
                submitted,
                ..
            } = pending;
            if let OpPayload::Encode { data } = op {
                datas.push(data);
                dones.push((done, submitted));
            }
        }
        let mut parities: Vec<Vec<Vec<u8>>> = datas
            .iter()
            .map(|d| {
                let len = d.first().map_or(0, Vec::len);
                vec![vec![0u8; len]; m]
            })
            .collect();
        let fused_ok = {
            let data_refs: Vec<Vec<&[u8]>> = datas
                .iter()
                .map(|d| d.iter().map(Vec::as_slice).collect())
                .collect();
            let mut parity_refs: Vec<Vec<&mut [u8]>> = parities
                .iter_mut()
                .map(|sp| sp.iter_mut().map(Vec::as_mut_slice).collect())
                .collect();
            let mut jobs: Vec<StripeJob<'_, '_>> = data_refs
                .iter()
                .zip(parity_refs.iter_mut())
                .map(|(d, p)| StripeJob {
                    data: d.as_slice(),
                    parity: p.as_mut_slice(),
                })
                .collect();
            self.pool.encode_batch(coder, &mut jobs).is_ok()
        };
        if fused_ok {
            for ((done, submitted), parity) in dones.into_iter().zip(parities) {
                self.complete(OpKind::Encode, submitted, &done, Ok(parity));
            }
        } else {
            self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
            for ((done, submitted), data) in dones.into_iter().zip(datas) {
                let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
                let result = self
                    .pool
                    .encode_vec(coder, &refs)
                    .map_err(ServiceError::Coding);
                self.complete(OpKind::Encode, submitted, &done, result);
            }
        }
    }

    /// Fused decode dispatch with the same per-request fallback.
    fn dispatch_decodes(&self, coder: &Dialga, reqs: Vec<Pending>) {
        if reqs.is_empty() {
            return;
        }
        let mut dones = Vec::with_capacity(reqs.len());
        let mut vecs: Vec<Vec<Option<Vec<u8>>>> = Vec::with_capacity(reqs.len());
        for pending in reqs {
            let Pending {
                op,
                done,
                submitted,
                ..
            } = pending;
            if let OpPayload::Decode { shards } = op {
                vecs.push(shards);
                dones.push((done, submitted));
            }
        }
        let fused_ok = {
            let mut jobs: Vec<DecodeJob<'_>> = vecs
                .iter_mut()
                .map(|s| DecodeJob {
                    shards: s.as_mut_slice(),
                })
                .collect();
            self.pool.decode_batch(coder, &mut jobs).is_ok()
        };
        if fused_ok {
            for ((done, submitted), restored) in dones.into_iter().zip(vecs) {
                let full: Vec<Vec<u8>> = restored
                    .into_iter()
                    .map(Option::unwrap_or_default)
                    .collect();
                self.complete(OpKind::Decode, submitted, &done, Ok(full));
            }
        } else {
            self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
            for ((done, submitted), mut shards) in dones.into_iter().zip(vecs) {
                let result = self
                    .pool
                    .decode(coder, &mut shards)
                    .map(|()| {
                        shards
                            .into_iter()
                            .map(Option::unwrap_or_default)
                            .collect::<Vec<Vec<u8>>>()
                    })
                    .map_err(ServiceError::Coding);
                self.complete(OpKind::Decode, submitted, &done, result);
            }
        }
    }

    /// Repairs run per-request (the composed-coefficient fast path is
    /// already a single fused kernel pass per stripe).
    fn dispatch_repairs(&self, coder: &Dialga, reqs: Vec<Pending>) {
        for pending in reqs {
            let Pending {
                op,
                done,
                submitted,
                ..
            } = pending;
            if let OpPayload::Repair { shards, target } = op {
                let result = self
                    .pool
                    .repair(coder, &shards, target)
                    .map(|rebuilt| vec![rebuilt])
                    .map_err(ServiceError::Coding);
                self.complete(OpKind::Repair, submitted, &done, result);
            }
        }
    }

    /// Scrubs run per-request through the pool's windowed syndrome kernel.
    /// A clean stripe resolves to an empty payload; corruption surfaces as
    /// [`ServiceError::Coding`] wrapping `EcError::Corrupt` with the
    /// localized shard evidence.
    fn dispatch_scrubs(&self, coder: &Dialga, reqs: Vec<Pending>) {
        let k = coder.params().k;
        for pending in reqs {
            let Pending {
                op,
                done,
                submitted,
                ..
            } = pending;
            if let OpPayload::Scrub { shards } = op {
                let refs: Vec<&[u8]> = shards.iter().map(Vec::as_slice).collect();
                let (data, parity) = refs.split_at(k.min(refs.len()));
                let result = self
                    .pool
                    .verify(coder, data, parity)
                    .map(|()| Vec::new())
                    .map_err(ServiceError::Coding);
                self.complete(OpKind::Scrub, submitted, &done, result);
            }
        }
    }
}

/// One deficit-round-robin pick: sweep tenants from the persistent
/// cursor, crediting `quantum` bytes per visit and draining each tenant's
/// FIFO while its head fits the deficit, until `limit` requests are
/// gathered. If a full sweep yields nothing (every head larger than its
/// tenant's deficit), sweep again — deficits grow by `quantum` per pass,
/// so progress is guaranteed while any tenant has pending work.
fn drr_pick(q: &mut QueueState, limit: usize, quantum: usize) -> Vec<Pending> {
    let mut out = Vec::new();
    while out.is_empty() && !q.tenants.is_empty() {
        let mut visits = q.tenants.len();
        while visits > 0 && out.len() < limit && !q.tenants.is_empty() {
            if q.rr_cursor >= q.tenants.len() {
                q.rr_cursor = 0;
            }
            let t = &mut q.tenants[q.rr_cursor];
            t.deficit = t.deficit.saturating_add(quantum);
            while out.len() < limit {
                let fits = t.pending.front().is_some_and(|p| p.cost <= t.deficit);
                if !fits {
                    break;
                }
                if let Some(p) = t.pending.pop_front() {
                    t.deficit = t.deficit.saturating_sub(p.cost);
                    out.push(p);
                }
            }
            if t.pending.is_empty() {
                // Forfeit the deficit with the slot (classic DRR).
                q.tenants.remove(q.rr_cursor);
            } else {
                q.rr_cursor += 1;
            }
            visits -= 1;
        }
        if out.len() >= limit {
            break;
        }
    }
    out
}

/// The shard master: the AIFM-style task-generating loop. Blocks for
/// work, picks a DRR batch, dispatches it fused, repeats; exits when the
/// shard shuts down and its queue has drained.
pub(crate) fn master_loop(shard: Arc<Shard>, coder: Arc<Dialga>, limit: usize, quantum: usize) {
    while let Some(batch) = shard.next_batch(limit, quantum) {
        shard.dispatch(&coder, batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(tenant: u32, seq: u64, cost: usize) -> Pending {
        // The receiver drops immediately; DRR tests never complete
        // requests, so nothing is ever sent on `tx`.
        let (tx, _rx) = mpsc::channel();
        Pending {
            seq,
            tenant,
            cost,
            op: OpPayload::Encode {
                data: vec![vec![0u8; cost]],
            },
            submitted: Instant::now(),
            deadline: None,
            done: tx,
        }
    }

    fn queue_of(entries: &[(u32, u64, usize)]) -> QueueState {
        let mut q = QueueState {
            tenants: Vec::new(),
            rr_cursor: 0,
            paused: false,
            shutdown: false,
        };
        for &(tenant, seq, cost) in entries {
            match q.tenants.iter_mut().find(|t| t.tenant == tenant) {
                Some(t) => t.pending.push_back(pending(tenant, seq, cost)),
                None => {
                    let mut fifo = VecDeque::new();
                    fifo.push_back(pending(tenant, seq, cost));
                    q.tenants.push(TenantQueue {
                        tenant,
                        deficit: 0,
                        pending: fifo,
                    });
                }
            }
        }
        q
    }

    #[test]
    fn drr_interleaves_equal_cost_tenants() {
        // 6 requests each for tenants 1 and 2, all cost 100; quantum 100
        // admits exactly one per visit, so picks alternate tenants.
        let mut entries = Vec::new();
        for i in 0..6u64 {
            entries.push((1u32, i, 100usize));
            entries.push((2u32, 100 + i, 100usize));
        }
        let mut q = queue_of(&entries);
        let mut order = Vec::new();
        loop {
            let batch = drr_pick(&mut q, 4, 100);
            if batch.is_empty() {
                break;
            }
            order.extend(batch.iter().map(|p| p.tenant));
        }
        assert_eq!(order.len(), 12);
        for pair in order.chunks(2) {
            assert_ne!(
                pair[0] == 1,
                pair[1] == 1,
                "each DRR round serves both tenants once: {order:?}"
            );
        }
    }

    #[test]
    fn drr_drains_head_larger_than_quantum() {
        // A request 10x the quantum must still drain (deficit accumulates
        // across sweeps) rather than wedging the shard.
        let mut q = queue_of(&[(7, 0, 1000)]);
        let batch = drr_pick(&mut q, 4, 100);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].tenant, 7);
        assert!(q.tenants.is_empty());
    }

    #[test]
    fn drr_favours_light_tenant_over_saturator() {
        // Tenant 1 queues 8 MiB-scale requests, tenant 2 one small one;
        // tenant 2's request leaves within the first DRR round instead of
        // waiting behind the saturator's whole backlog.
        let mut entries: Vec<(u32, u64, usize)> = (0..8u64).map(|i| (1u32, i, 1 << 20)).collect();
        entries.push((2, 99, 4096));
        let mut q = queue_of(&entries);
        let first = drr_pick(&mut q, 16, 1 << 20);
        let pos_small = first.iter().position(|p| p.tenant == 2);
        assert!(
            pos_small.is_some_and(|pos| pos <= 1),
            "light tenant must be served in the first round"
        );
    }

    /// Record `n` sequential entries into a fresh ring and check the
    /// snapshot invariant: the last `min(n, TRACE_CAP)` entries, oldest →
    /// newest. Exercised at every fill regime (empty, partial, exact
    /// fill, one-past, multiple wraps) — the exact-fill boundary is where
    /// `head` bookkeeping (`slots.len() % TRACE_CAP` → 0) would go wrong.
    fn check_ring_order(n: u64) {
        let mut ring = TraceRing {
            slots: Vec::new(),
            head: 0,
        };
        for seq in 0..n {
            ring.record(TraceEntry {
                seq,
                tenant: (seq % 7) as u32,
                shard: 0,
                op: OpKind::ALL[(seq % 4) as usize],
                bytes: 1,
                queued_ns: seq,
            });
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), (n as usize).min(TRACE_CAP), "n={n}");
        let oldest = n.saturating_sub(TRACE_CAP as u64);
        for (i, entry) in snap.iter().enumerate() {
            assert_eq!(entry.seq, oldest + i as u64, "n={n} position {i}");
        }
    }

    #[test]
    fn trace_ring_snapshot_order_across_fill_boundaries() {
        let cap = TRACE_CAP as u64;
        // The exact boundaries the satellite audit names, then random fill
        // counts across all three regimes.
        for n in [0, 1, cap - 1, cap, cap + 1, 2 * cap, 2 * cap + 7] {
            check_ring_order(n);
        }
        dialga_testkit::run_cases(32, |rng| {
            check_ring_order(rng.below(3 * cap));
        });
    }

    #[test]
    fn trace_ring_wraps_keeping_newest() {
        let mut ring = TraceRing {
            slots: Vec::new(),
            head: 0,
        };
        for seq in 0..(TRACE_CAP as u64 + 50) {
            ring.record(TraceEntry {
                seq,
                tenant: 0,
                shard: 0,
                op: OpKind::Encode,
                bytes: 1,
                queued_ns: 0,
            });
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), TRACE_CAP);
        assert_eq!(snap[0].seq, 50, "oldest surviving entry");
        assert_eq!(snap[TRACE_CAP - 1].seq, TRACE_CAP as u64 + 49);
        for w in snap.windows(2) {
            assert_eq!(w[0].seq + 1, w[1].seq, "snapshot is oldest -> newest");
        }
    }
}
