#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Access-pattern generation and timed execution.
//!
//! This crate couples the coding strategies of `dialga-ec` to the memory
//! simulator of `dialga-memsim`. Each strategy gets a *pattern*: a
//! [`TaskSource`](dialga_memsim::TaskSource) that emits, row by row, the
//! memory accesses the strategy's kernels perform:
//!
//! * [`isal::IsalSource`] — the table-driven dot-product loop (k interleaved
//!   read streams, m NT-store streams per row), with knobs for DIALGA's
//!   pipelined software prefetch, shuffle mapping and XPLine task expansion;
//! * [`xorpat::XorSource`] — schedule-driven packet XORs with repeated
//!   loads and cached parity read-modify-writes;
//! * [`decomp::DecomposeSource`] — sub-stripe passes with parity reload and
//!   re-store (the ISA-L-D / Cerasure-decompose strategy);
//! * [`lrc_pat::LrcSource`] — RS pattern plus local-parity XOR stores;
//! * decode variants of the above.
//!
//! [`layout::StripeLayout`] fixes where blocks live in simulated physical
//! memory, and [`cost::CostModel`] supplies the per-row compute cycles
//! (AVX512 vs AVX256, §5.5).

pub mod cost;
pub mod decomp;
pub mod isal;
pub mod layout;
pub mod lrc_pat;
pub mod runner;
pub mod update_pat;
pub mod xorpat;

pub use cost::{CostModel, Simd};
pub use isal::{IsalSource, Knobs};
pub use layout::StripeLayout;
pub use runner::{run_source, run_source_with_hook, ObservedSource};
